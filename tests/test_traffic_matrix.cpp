// TrafficMatrix: accessors, scaling, generators, validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "netgraph/traffic_matrix.hpp"

namespace net = altroute::net;

namespace {

TEST(TrafficMatrix, StartsZeroed) {
  const net::TrafficMatrix t(3);
  EXPECT_EQ(t.size(), 3);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
  EXPECT_EQ(t.active_pairs(), 0);
  EXPECT_DOUBLE_EQ(t.at(net::NodeId(0), net::NodeId(2)), 0.0);
}

TEST(TrafficMatrix, SetAndGet) {
  net::TrafficMatrix t(3);
  t.set(net::NodeId(0), net::NodeId(1), 4.5);
  t.set(net::NodeId(2), net::NodeId(0), 1.5);
  EXPECT_DOUBLE_EQ(t.at(net::NodeId(0), net::NodeId(1)), 4.5);
  EXPECT_DOUBLE_EQ(t.at(net::NodeId(2), net::NodeId(0)), 1.5);
  EXPECT_DOUBLE_EQ(t.total(), 6.0);
  EXPECT_EQ(t.active_pairs(), 2);
}

TEST(TrafficMatrix, Validation) {
  net::TrafficMatrix t(3);
  EXPECT_THROW(t.set(net::NodeId(0), net::NodeId(0), 1.0), std::invalid_argument);
  EXPECT_NO_THROW(t.set(net::NodeId(0), net::NodeId(0), 0.0));
  EXPECT_THROW(t.set(net::NodeId(0), net::NodeId(3), 1.0), std::invalid_argument);
  EXPECT_THROW(t.set(net::NodeId(0), net::NodeId(1), -1.0), std::invalid_argument);
  EXPECT_THROW((void)net::TrafficMatrix(-1), std::invalid_argument);
}

TEST(TrafficMatrix, ScalingIsElementwise) {
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 10.0);
  t.set(net::NodeId(1), net::NodeId(0), 4.0);
  const net::TrafficMatrix s = t.scaled(1.5);
  EXPECT_DOUBLE_EQ(s.at(net::NodeId(0), net::NodeId(1)), 15.0);
  EXPECT_DOUBLE_EQ(s.at(net::NodeId(1), net::NodeId(0)), 6.0);
  // Original untouched; zero scaling allowed; negative rejected.
  EXPECT_DOUBLE_EQ(t.total(), 14.0);
  EXPECT_DOUBLE_EQ(t.scaled(0.0).total(), 0.0);
  EXPECT_THROW((void)t.scaled(-0.1), std::invalid_argument);
}

TEST(TrafficMatrix, UniformFillsOffDiagonal) {
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 2.5);
  EXPECT_EQ(t.active_pairs(), 12);
  EXPECT_DOUBLE_EQ(t.total(), 30.0);
  EXPECT_DOUBLE_EQ(t.at(net::NodeId(1), net::NodeId(1)), 0.0);
  EXPECT_DOUBLE_EQ(t.at(net::NodeId(3), net::NodeId(0)), 2.5);
}

TEST(TrafficMatrix, GravityNormalizesToTotal) {
  const net::TrafficMatrix t = net::TrafficMatrix::gravity({1.0, 2.0, 3.0}, 60.0);
  EXPECT_NEAR(t.total(), 60.0, 1e-9);
  // Pair demand proportional to w_i * w_j: (2,1) twice (1,0)'s... compare
  // ratios directly.
  const double t01 = t.at(net::NodeId(0), net::NodeId(1));
  const double t12 = t.at(net::NodeId(1), net::NodeId(2));
  EXPECT_NEAR(t12 / t01, (2.0 * 3.0) / (1.0 * 2.0), 1e-9);
  // Symmetric weights give a symmetric matrix.
  EXPECT_NEAR(t.at(net::NodeId(2), net::NodeId(1)), t12, 1e-12);
}

TEST(TrafficMatrix, GravityEdgeCases) {
  const net::TrafficMatrix zero = net::TrafficMatrix::gravity({0.0, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(zero.total(), 0.0);
  EXPECT_THROW((void)net::TrafficMatrix::gravity({1.0, -1.0}, 10.0), std::invalid_argument);
  EXPECT_THROW((void)net::TrafficMatrix::gravity({1.0, 1.0}, -1.0), std::invalid_argument);
}

}  // namespace
