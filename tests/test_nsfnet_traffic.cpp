// NSFNet nominal traffic reconstruction: Table 1's link loads recovered.
#include <gtest/gtest.h>

#include "core/protection.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;
namespace core = altroute::core;
namespace study = altroute::study;

namespace {

TEST(NsfnetTraffic, WellFormedMatrix) {
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  EXPECT_EQ(t.size(), 12);
  EXPECT_GT(t.total(), 0.0);
  for (int i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(t.at(net::NodeId(i), net::NodeId(i)), 0.0);
  }
}

TEST(NsfnetTraffic, ResidualAgainstTable1IsSmall) {
  const study::ReconstructionQuality& q = study::nsfnet_reconstruction_quality();
  // The printed loads are integers (rounded); a fit within half a call of
  // every printed value is as faithful as the source data permits.
  EXPECT_LT(q.max_abs_residual, 0.5);
  EXPECT_LT(q.rms_residual, 0.25);
}

TEST(NsfnetTraffic, InducedLinkLoadsMatchTable1) {
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const auto lambda =
      routing::primary_link_loads(g, routes, study::nsfnet_nominal_traffic());
  const auto& table = net::nsfnet_table1();
  for (int k = 0; k < 30; ++k) {
    EXPECT_NEAR(lambda[static_cast<std::size_t>(k)], table[static_cast<std::size_t>(k)].lambda,
                0.5)
        << table[static_cast<std::size_t>(k)].src << "->" << table[static_cast<std::size_t>(k)].dst;
  }
}

TEST(NsfnetTraffic, ProtectionLevelsReproduceTable1) {
  // End-to-end: reconstructed T -> Eq. 1 loads -> Eq. 15 levels.  H = 11
  // must match the paper exactly on at least 28/30 links, H = 6 on at
  // least 24/30 (the printed Lambda rounding shifts a handful of
  // knife-edge rows by one or two units of r).
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const auto lambda =
      routing::primary_link_loads(g, routes, study::nsfnet_nominal_traffic());
  const auto r6 = core::protection_levels_from_lambda(g, lambda, 6);
  const auto r11 = core::protection_levels_from_lambda(g, lambda, 11);
  const auto& table = net::nsfnet_table1();
  int match6 = 0;
  int match11 = 0;
  for (std::size_t k = 0; k < 30; ++k) {
    if (r6[k] == table[k].r_h6) ++match6;
    if (r11[k] == table[k].r_h11) ++match11;
    EXPECT_NEAR(static_cast<double>(r6[k]), static_cast<double>(table[k].r_h6), 3.0) << k;
  }
  EXPECT_GE(match11, 28) << "H=11 levels diverge from Table 1";
  EXPECT_GE(match6, 24) << "H=6 levels diverge from Table 1";
}

TEST(NsfnetTraffic, WideDisparitiesAsInThePaper) {
  // "Note the wide disparities in the values of the elements of the
  // traffic matrix": the reconstruction should likewise span orders of
  // magnitude rather than being near-uniform.
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  double max_demand = 0.0;
  double min_positive = 1e18;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      const double d = t.at(net::NodeId(i), net::NodeId(j));
      max_demand = std::max(max_demand, d);
      if (d > 0.0) min_positive = std::min(min_positive, d);
    }
  }
  EXPECT_GT(max_demand / min_positive, 10.0);
}

TEST(NsfnetTraffic, CachedSingleton) {
  const net::TrafficMatrix& a = study::nsfnet_nominal_traffic();
  const net::TrafficMatrix& b = study::nsfnet_nominal_traffic();
  EXPECT_EQ(&a, &b);
}

}  // namespace
