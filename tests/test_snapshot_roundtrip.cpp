// Snapshot primitives, property-tested: every stateful piece the
// checkpoint stores must reproduce its EXACT observable stream after a
// save/restore -- RNG draws, queue pops (including FIFO tie groups, and
// across the two queue engines), arena handle sequences, and the codec's
// own bytes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/slab_arena.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"

namespace sim = altroute::sim;
namespace snapshot = altroute::snapshot;

namespace {

// --- RNG stream -------------------------------------------------------------

TEST(SnapshotRng, SavedStateResumesTheExactDrawStream) {
  sim::Rng rng(0xfeedface);
  for (int i = 0; i < 1000; ++i) (void)rng.uniform01();  // advance mid-stream

  const std::array<std::uint64_t, 4> saved = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 500; ++i) expected.push_back(rng.uniform01());

  sim::Rng restored(1);  // different seed: state must fully overwrite it
  restored.set_state(saved);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(restored.uniform01(), expected[static_cast<std::size_t>(i)]) << "draw " << i;
  }
}

TEST(SnapshotRng, AllZeroStateIsRejected) {
  sim::Rng rng(7);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), std::invalid_argument);
}

// --- departure queues -------------------------------------------------------
// One generic driver: build a queue with FIFO tie groups, pop part of it,
// snapshot the logical contents, restore into a DIFFERENT engine, and
// demand the identical remaining pop stream.  (time, seq) is the whole
// ordering contract, so heap -> calendar and calendar -> heap must both
// hold bit-for-bit.

template <typename Queue>
void fill_with_ties(Queue& q, sim::Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    // Coarse times force large tie groups; payload identifies insertions.
    const double time = static_cast<double>(static_cast<int>(rng.uniform01() * 16.0));
    q.schedule(time, static_cast<std::uint64_t>(i));
  }
}

template <typename Queue>
std::vector<snapshot::QueueEntry> capture_queue(const Queue& q) {
  std::vector<snapshot::QueueEntry> entries;
  q.visit([&](double time, std::uint64_t seq, const std::uint64_t& payload) {
    entries.push_back({time, seq, payload});
  });
  return entries;
}

template <typename From, typename To>
void expect_cross_engine_stream(std::uint64_t seed) {
  sim::Rng rng(seed);
  From original;
  fill_with_ties(original, rng, 400);
  for (int i = 0; i < 150; ++i) (void)original.pop();  // a mid-run shape

  To restored;
  for (const snapshot::QueueEntry& e : capture_queue(original)) {
    restored.restore_entry(e.time, e.seq, e.payload);
  }
  restored.set_next_seq(original.next_seq());

  // Drain both, interleaving fresh schedules so the restored counter's
  // effect on future tie groups is exercised too.
  int step = 0;
  while (!original.empty()) {
    const std::pair<double, std::uint64_t> a = original.pop();
    const std::pair<double, std::uint64_t> b = restored.pop();
    ASSERT_EQ(a.first, b.first) << "pop " << step << " time";
    ASSERT_EQ(a.second, b.second) << "pop " << step << " payload";
    if (step % 7 == 0) {
      const double time = a.first + static_cast<double>(step % 3);
      original.schedule(time, 1000000u + static_cast<std::uint64_t>(step));
      restored.schedule(time, 1000000u + static_cast<std::uint64_t>(step));
    }
    ++step;
  }
  EXPECT_TRUE(restored.empty());
}

using HeapQ = sim::EventQueue<std::uint64_t>;
using CalQ = sim::CalendarQueue<std::uint64_t>;

TEST(SnapshotQueue, HeapToHeapReproducesThePopStream) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_cross_engine_stream<HeapQ, HeapQ>(seed);
  }
}

TEST(SnapshotQueue, CalendarToCalendarReproducesThePopStream) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_cross_engine_stream<CalQ, CalQ>(seed);
  }
}

TEST(SnapshotQueue, HeapSaveRestoresIntoCalendar) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_cross_engine_stream<HeapQ, CalQ>(seed);
  }
}

TEST(SnapshotQueue, CalendarSaveRestoresIntoHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_cross_engine_stream<CalQ, HeapQ>(seed);
  }
}

// --- slab arena -------------------------------------------------------------

TEST(SnapshotArena, RestoredLayoutReplaysHandleSequenceAndStaleness) {
  sim::SlabArena<int> original;
  sim::Rng rng(42);
  std::vector<sim::SlabArena<int>::Handle> live;
  std::vector<sim::SlabArena<int>::Handle> released;
  for (int i = 0; i < 300; ++i) {
    if (!live.empty() && rng.uniform01() < 0.4) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.uniform01() * static_cast<double>(live.size()));
      original.release(live[victim]);
      released.push_back(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const auto h = original.acquire();
      original.value(h) = i;
      live.push_back(h);
    }
  }

  sim::SlabArena<int> restored;
  restored.restore_layout(original.layout());

  // Same live handles, in the same admission order, all stale handles dead.
  auto a = original.oldest();
  auto b = restored.oldest();
  while (a != sim::SlabArena<int>::kInvalid) {
    ASSERT_EQ(a, b);
    a = original.next(a);
    b = restored.next(b);
  }
  EXPECT_EQ(b, sim::SlabArena<int>::kInvalid);
  for (const auto h : released) {
    EXPECT_EQ(original.alive(h), restored.alive(h));
    EXPECT_FALSE(restored.alive(h));
  }

  // The future acquire/release sequence produces identical handles.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(original.acquire(), restored.acquire()) << "acquire " << i;
  }
}

// --- checkpoint codec -------------------------------------------------------

snapshot::ScenarioCheckpoint sample_checkpoint() {
  snapshot::ScenarioCheckpoint c;
  c.checkpoint_at = 40.0;
  c.advanced_to = 39.5;
  c.next_call = 123;
  c.next_event = 2;
  c.traffic_factor = 1.25;
  c.horizon = 110.0;
  c.warmup = 10.0;
  c.policy_seed = 77;
  c.node_count = 4;
  c.link_count = 12;
  c.trace_calls = 500;
  c.scenario_events = 3;
  c.legacy_event_queue = 1;
  c.max_alt_hops = 3;
  c.time_bins = 10;
  c.link_enabled = {1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  c.link_capacity.assign(12, 100);
  c.occupancy.assign(12, 7);
  c.reservation.assign(12, 2);
  c.engine_rng = {1, 2, 3, 4};
  c.policy = "sticky-random";
  c.policy_state = {9, 8, 7};
  c.departures.next_seq = 321;
  c.departures.entries = {{40.5, 10, 55}, {41.0, 11, 56}};
  c.arena.gens = {1, 2, 1};
  c.arena.live_order = {0, 2};
  c.arena.free_order = {1};
  c.arena.calls = {{{0, 1}, {0}, 1, 0}, {{2, 0, 3}, {4, 1}, 2, 1}};
  c.counters.offered = 400;
  c.counters.blocked = 31;
  c.counters.carried_primary = 350;
  c.counters.carried_alternate = 19;
  c.counters.per_pair.assign(4 * 4 * 4, 5);
  c.counters.class_bandwidth = {1, 2};
  c.counters.class_offered = {300, 100};
  c.counters.class_blocked = {20, 11};
  c.counters.carried_by_hops = {0, 350, 19};
  c.counters.bin_offered.assign(10, 40);
  c.counters.bin_blocked.assign(10, 3);
  c.counters.dropped = 2;
  c.counters.applied = {{40.0, 0, 2, 2}};
  c.obs.present = 1;
  c.obs.grid_cursor = 17;
  c.obs.ints = {1, 2, 3};
  c.obs.reals = {0.5, 0.25};
  c.memo_lambda = {3.0, 4.5};
  c.memo_capacity = {100, 100};
  return c;
}

TEST(SnapshotCodec, EncodeDecodeEncodeIsByteStable) {
  // decode(encode(c)) must lose nothing: re-encoding yields identical
  // bytes, which is equality over every field without listing them.
  const snapshot::ScenarioCheckpoint c = sample_checkpoint();
  const std::vector<std::uint8_t> image =
      snapshot::render_container(snapshot::encode_checkpoint(c));
  const snapshot::ScenarioCheckpoint back =
      snapshot::decode_checkpoint(snapshot::parse_container(image, "image"), "image");
  const std::vector<std::uint8_t> image2 =
      snapshot::render_container(snapshot::encode_checkpoint(back));
  EXPECT_EQ(image, image2);
}

TEST(SnapshotCodec, FileSaveLoadRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "altroute_roundtrip.ckpt").string();
  const snapshot::ScenarioCheckpoint c = sample_checkpoint();
  snapshot::save_checkpoint(path, c);
  const snapshot::ScenarioCheckpoint back = snapshot::load_checkpoint(path);
  EXPECT_EQ(snapshot::render_container(snapshot::encode_checkpoint(back)),
            snapshot::render_container(snapshot::encode_checkpoint(c)));
  std::filesystem::remove(path);
}

TEST(SnapshotCodec, SweepCarryFilesRoundTripAndSelfIdentify) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  snapshot::SweepTaskResult res;
  res.fingerprint = "sweep-v1|whatever";
  res.task = 3;
  res.slots.resize(2);
  res.slots[0].blocking = 0.125;
  res.slots[0].pair_offered = {1, 2, 3, 4};
  res.slots[1].obs.present = 1;
  res.slots[1].obs.ints = {10};
  res.slots[1].obs.reals = {2.5};
  const std::string res_path = dir + "/altroute_task.res";
  snapshot::save_sweep_task_result(res_path, res);
  const snapshot::SweepTaskResult res_back = snapshot::load_sweep_task_result(res_path);
  EXPECT_EQ(res_back.fingerprint, res.fingerprint);
  EXPECT_EQ(res_back.task, 3u);
  ASSERT_EQ(res_back.slots.size(), 2u);
  EXPECT_EQ(res_back.slots[0].blocking, 0.125);
  EXPECT_EQ(res_back.slots[0].pair_offered, res.slots[0].pair_offered);
  EXPECT_EQ(res_back.slots[1].obs.ints, res.slots[1].obs.ints);

  // A scenario checkpoint is NOT a task result; kinds must not mix.
  const std::string ckpt_path = dir + "/altroute_task.ckpt";
  snapshot::save_checkpoint(ckpt_path, sample_checkpoint());
  try {
    (void)snapshot::load_sweep_task_result(ckpt_path);
    FAIL() << "a scenario checkpoint was accepted as a task result";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scenario-checkpoint"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(res_path);
  std::filesystem::remove(ckpt_path);
}

}  // namespace
