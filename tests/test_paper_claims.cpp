// Integration tests asserting the paper's qualitative claims end-to-end.
// These are the "shape" checks of DESIGN.md section 6: controlled alternate
// routing tracks the better of uncontrolled and single-path, and never does
// worse than single-path.
#include <gtest/gtest.h>

#include <vector>

#include "erlang/birth_death.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace study = altroute::study;
namespace erlang = altroute::erlang;

namespace {

study::SweepResult quadrangle_sweep(std::vector<double> per_pair_loads, int seeds,
                                    double measure) {
  const net::Graph g = net::full_mesh(4, 100);
  // Nominal = 1 Erlang per pair; load factors then equal per-pair Erlangs.
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 1.0);
  study::SweepOptions options;
  options.load_factors = std::move(per_pair_loads);
  options.seeds = seeds;
  options.measure = measure;
  options.warmup = 10.0;
  options.max_alt_hops = 3;
  options.erlang_bound = true;
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate};
  return study::run_sweep(g, nominal, policies, options);
}

TEST(PaperClaims, QuadrangleLowLoadControlledMatchesUncontrolled) {
  // At 70 E/pair (well below the ~85-95 E critical region) both alternate
  // schemes should beat single-path clearly and be close to each other.
  const study::SweepResult r = quadrangle_sweep({70.0}, 5, 60.0);
  const double single = r.curves[0].mean_blocking[0];
  const double uncontrolled = r.curves[1].mean_blocking[0];
  const double controlled = r.curves[2].mean_blocking[0];
  EXPECT_LT(uncontrolled, single * 0.5);
  EXPECT_LT(controlled, single * 0.5);
  EXPECT_NEAR(controlled, uncontrolled, 0.01);
}

TEST(PaperClaims, QuadrangleOverloadUncontrolledCollapses) {
  // Beyond the critical load uncontrolled alternate routing does WORSE
  // than single-path (the avalanche of 2-hop calls), while the controlled
  // scheme stays at or below single-path blocking.
  const study::SweepResult r = quadrangle_sweep({110.0}, 5, 60.0);
  const double single = r.curves[0].mean_blocking[0];
  const double uncontrolled = r.curves[1].mean_blocking[0];
  const double controlled = r.curves[2].mean_blocking[0];
  EXPECT_GT(uncontrolled, single * 1.1);
  EXPECT_LE(controlled, single * 1.02 + 0.005);
}

TEST(PaperClaims, QuadrangleControlledNeverWorseThanSinglePathAcrossLoads) {
  const study::SweepResult r = quadrangle_sweep({75.0, 85.0, 95.0, 105.0}, 4, 50.0);
  for (std::size_t i = 0; i < r.load_factors.size(); ++i) {
    const double single = r.curves[0].mean_blocking[i];
    const double controlled = r.curves[2].mean_blocking[i];
    // Theorem guarantee is in expectation; allow the 95% CI plus a hair.
    EXPECT_LE(controlled, single + r.curves[2].ci95[i] + r.curves[0].ci95[i] + 0.004)
        << "load " << r.load_factors[i];
  }
}

TEST(PaperClaims, ErlangBoundIsALowerBoundEverywhere) {
  const study::SweepResult r = quadrangle_sweep({80.0, 100.0, 120.0}, 3, 40.0);
  for (std::size_t i = 0; i < r.load_factors.size(); ++i) {
    for (const study::PolicyCurve& curve : r.curves) {
      EXPECT_GE(curve.mean_blocking[i], r.erlang_bound[i] - curve.ci95[i] - 0.01)
          << curve.name << " load " << r.load_factors[i];
    }
  }
}

TEST(PaperClaims, FairnessSkewOrderingOnQuadrangleWithAsymmetricLoad) {
  // Alternate routing shares resources, flattening per-pair blocking: the
  // coefficient of variation across pairs must be largest for single-path
  // and smallest for uncontrolled (Section 4.2.2, "Blocking on an O-D pair
  // basis").  An asymmetric load makes the effect visible.
  const net::Graph g = net::full_mesh(4, 60);
  net::TrafficMatrix nominal(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) nominal.set(net::NodeId(i), net::NodeId(j), (i == 0 || j == 0) ? 66.0 : 30.0);
    }
  }
  study::SweepOptions options;
  options.load_factors = {1.0};
  options.seeds = 5;
  options.measure = 60.0;
  options.max_alt_hops = 3;
  options.fairness = true;
  options.erlang_bound = false;
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate};
  const study::SweepResult r = study::run_sweep(g, nominal, policies, options);
  const double cv_single = r.curves[0].pair_blocking[0].cv;
  const double cv_uncontrolled = r.curves[1].pair_blocking[0].cv;
  const double cv_controlled = r.curves[2].pair_blocking[0].cv;
  EXPECT_GT(cv_single, cv_uncontrolled);
  EXPECT_GE(cv_single, cv_controlled * 0.99);
}

TEST(PaperClaims, NsfnetControlledBeatsSinglePathAtNominalLoad) {
  study::SweepOptions options;
  options.load_factors = {1.0};
  options.seeds = 3;
  options.measure = 40.0;
  options.max_alt_hops = 11;
  options.erlang_bound = true;
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate};
  const study::SweepResult r = study::run_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), policies, options);
  const double single = r.curves[0].mean_blocking[0];
  const double controlled = r.curves[2].mean_blocking[0];
  EXPECT_LT(controlled, single);
  EXPECT_GE(controlled, r.erlang_bound[0] - 0.02);
}

TEST(PaperClaims, Theorem1BoundHoldsAgainstExactChainComputation) {
  // Exact check of L <= B(Lambda,C)/B(Lambda,C-r) on a protected link: the
  // extra primary loss from accepting one alternate call equals
  // E[tau] * B * nu (Eq. 3) computed on the exact birth-death chain; try
  // adversarial state-dependent overflow patterns.
  const double nu = 8.0;
  const int c = 12;
  for (const int r : {1, 2, 4}) {
    for (const double overflow_rate : {0.5, 4.0, 20.0}) {
      std::vector<double> overflow(static_cast<std::size_t>(c), overflow_rate);
      const auto birth = erlang::protected_link_births(nu, overflow, c, r);
      std::vector<double> death(static_cast<std::size_t>(c));
      for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
      const double blocking = erlang::generalized_erlang_b(birth);
      const auto passage = erlang::mean_passage_time_up(birth, death);
      // Worst case over admitting states s in [0, C-r-1].
      for (int s = 0; s < c - r; ++s) {
        const double extra_loss = passage[static_cast<std::size_t>(s)] * blocking * nu;
        EXPECT_LE(extra_loss, erlang::theorem1_bound(nu, c, r) + 1e-9)
            << "r=" << r << " overflow=" << overflow_rate << " s=" << s;
      }
    }
  }
}

}  // namespace
