// Symmetric reduced-load fixed point: closed-form edges, multiplicity (the
// analytic bistability), and its removal by trunk reservation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "erlang/symmetric_overflow.hpp"

namespace e = altroute::erlang;

namespace {

e::SymmetricOverflowModel classic(double load, int reservation) {
  e::SymmetricOverflowModel m;
  m.nodes = 10;
  m.capacity = 120;
  m.direct_load = load;
  m.reservation = reservation;
  return m;
}

TEST(SymmetricOverflow, FullReservationReducesToErlangB) {
  // r = C shuts alternates out entirely: B must be plain Erlang-B and no
  // overflow circulates.
  const auto fp = e::solve_symmetric_overflow(classic(95.0, 120));
  EXPECT_TRUE(fp.converged);
  EXPECT_NEAR(fp.link_blocking, e::erlang_b(95.0, 120), 1e-9);
  EXPECT_DOUBLE_EQ(fp.overflow_rate, 0.0);
  EXPECT_NEAR(fp.call_blocking, fp.link_blocking, 1e-9);
}

TEST(SymmetricOverflow, LightLoadHasVanishingBlocking) {
  const auto fp = e::solve_symmetric_overflow(classic(60.0, 0));
  EXPECT_TRUE(fp.converged);
  EXPECT_LT(fp.call_blocking, 1e-6);
  EXPECT_NEAR(fp.alternate_admission, 1.0, 0.01);
}

TEST(SymmetricOverflow, ColdBranchMonotoneInLoad) {
  double prev = -1.0;
  for (double load = 60.0; load <= 90.0; load += 5.0) {
    const auto fp = e::solve_symmetric_overflow(classic(load, 0));
    EXPECT_TRUE(fp.converged) << load;
    EXPECT_GE(fp.call_blocking, prev) << load;
    prev = fp.call_blocking;
  }
}

TEST(SymmetricOverflow, BistabilityWindowHasTwoFixedPoints) {
  // In the critical window (the same 90s-Erlang range where
  // bench/exp_bistability sees simulation hysteresis), the map solved from
  // B = 0 lands on the low state and from B = 1 on the high state.
  const auto cold = e::solve_symmetric_overflow(classic(96.0, 0), 0.0);
  const auto hot = e::solve_symmetric_overflow(classic(96.0, 0), 1.0);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(hot.converged);
  EXPECT_LT(cold.call_blocking, 0.01);
  EXPECT_GT(hot.call_blocking, cold.call_blocking + 0.05);
}

TEST(SymmetricOverflow, ReservationRestoresUniqueness) {
  // With the Eq.-15 reservation in force both starts converge to the same
  // (low) state: trunk reservation removes the bad equilibrium.
  const int r = e::min_state_protection(96.0, 120, 2);
  const auto cold = e::solve_symmetric_overflow(classic(96.0, r), 0.0);
  const auto hot = e::solve_symmetric_overflow(classic(96.0, r), 1.0);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(hot.converged);
  EXPECT_NEAR(cold.call_blocking, hot.call_blocking, 1e-6);
  EXPECT_LT(hot.call_blocking, 0.01);
}

TEST(SymmetricOverflow, DeepOverloadIsUniqueAgain) {
  // Far above critical both starts meet in the high state: bistability is
  // a window, not a half-line.
  const auto cold = e::solve_symmetric_overflow(classic(130.0, 0), 0.0);
  const auto hot = e::solve_symmetric_overflow(classic(130.0, 0), 1.0);
  EXPECT_NEAR(cold.call_blocking, hot.call_blocking, 1e-6);
  EXPECT_GT(cold.call_blocking, 0.05);
}

TEST(SymmetricOverflow, Validation) {
  EXPECT_THROW((void)e::solve_symmetric_overflow(classic(-1.0, 0)), std::invalid_argument);
  e::SymmetricOverflowModel bad = classic(90.0, 0);
  bad.nodes = 2;
  EXPECT_THROW((void)e::solve_symmetric_overflow(bad), std::invalid_argument);
  bad = classic(90.0, 121);
  EXPECT_THROW((void)e::solve_symmetric_overflow(bad), std::invalid_argument);
  EXPECT_THROW((void)e::solve_symmetric_overflow(classic(90.0, 0), 2.0),
               std::invalid_argument);
}

}  // namespace
