// Scenario sweep determinism and the ISSUE acceptance scenario: a
// failure-recovery scenario on the NSFNet model (fail 2<->3 at t = 40,
// repair at t = 70) must produce a transient blocking time series that is
// bit-identical at threads 1 and 4, and the post-repair steady state must
// sit within noise of the intact run on the same traces.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "netgraph/topologies.hpp"
#include "scenario/scenario.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace scenario = altroute::scenario;
namespace study = altroute::study;

namespace {

// Field-by-field exact comparison (EXPECT_EQ on double is bitwise-valued
// equality, not a tolerance check).
void expect_identical(const study::ScenarioSweepResult& a,
                      const study::ScenarioSweepResult& b) {
  EXPECT_EQ(a.bin_start, b.bin_start);
  ASSERT_EQ(a.applied.size(), b.applied.size());
  for (std::size_t e = 0; e < a.applied.size(); ++e) {
    EXPECT_EQ(a.applied[e].time, b.applied[e].time);
    EXPECT_EQ(a.applied[e].kind, b.applied[e].kind);
    EXPECT_EQ(a.applied[e].links_changed, b.applied[e].links_changed);
    EXPECT_EQ(a.applied[e].calls_killed, b.applied[e].calls_killed);
  }
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t pi = 0; pi < a.curves.size(); ++pi) {
    SCOPED_TRACE(a.curves[pi].name);
    EXPECT_EQ(a.curves[pi].name, b.curves[pi].name);
    EXPECT_EQ(a.curves[pi].mean_blocking, b.curves[pi].mean_blocking);
    EXPECT_EQ(a.curves[pi].ci95, b.curves[pi].ci95);
    EXPECT_EQ(a.curves[pi].dropped, b.curves[pi].dropped);
    EXPECT_EQ(a.curves[pi].bin_offered, b.curves[pi].bin_offered);
    EXPECT_EQ(a.curves[pi].bin_blocked, b.curves[pi].bin_blocked);
    EXPECT_EQ(a.curves[pi].bin_blocking, b.curves[pi].bin_blocking);
  }
}

scenario::Scenario quadrangle_scenario() {
  scenario::Scenario s;
  s.name = "quadrangle-outage";
  s.events.push_back(scenario::ScenarioEvent::link_fail(12.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(12.0));
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(18.0, 2, 3, 0.5));
  s.events.push_back(scenario::ScenarioEvent::link_repair(24.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(24.0));
  return s;
}

study::ScenarioSweepResult quadrangle_sweep(int threads) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 26.0);
  study::ScenarioSweepOptions options;
  options.seeds = 5;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.time_bins = 6;
  options.threads = threads;
  return study::run_scenario_sweep(g, nominal, quadrangle_scenario(),
                                   {study::PolicyKind::kSinglePath,
                                    study::PolicyKind::kUncontrolledAlternate,
                                    study::PolicyKind::kControlledAlternate},
                                   options);
}

TEST(ScenarioSweep, QuadrangleIdenticalAcrossThreadCounts) {
  const study::ScenarioSweepResult serial = quadrangle_sweep(1);
  expect_identical(serial, quadrangle_sweep(4));
  expect_identical(serial, quadrangle_sweep(0));  // auto mode
}

TEST(ScenarioSweep, AppliedLogAndBinsAreWellFormed) {
  const study::ScenarioSweepResult r = quadrangle_sweep(1);
  ASSERT_EQ(r.applied.size(), 5u);
  EXPECT_EQ(r.applied[0].kind, scenario::EventKind::kLinkFail);
  EXPECT_EQ(r.applied[0].links_changed, 2);
  EXPECT_EQ(r.applied[2].kind, scenario::EventKind::kCapacityScale);
  EXPECT_EQ(r.applied[3].kind, scenario::EventKind::kLinkRepair);
  ASSERT_EQ(r.bin_start.size(), 6u);
  EXPECT_DOUBLE_EQ(r.bin_start[0], 5.0);
  EXPECT_DOUBLE_EQ(r.bin_start[1], 10.0);
  for (const study::ScenarioCurve& curve : r.curves) {
    SCOPED_TRACE(curve.name);
    ASSERT_EQ(curve.bin_offered.size(), 6u);
    long long offered = 0;
    for (std::size_t b = 0; b < 6; ++b) {
      offered += curve.bin_offered[b];
      EXPECT_LE(curve.bin_blocked[b], curve.bin_offered[b]);
      if (curve.bin_offered[b] > 0) {
        EXPECT_DOUBLE_EQ(curve.bin_blocking[b],
                         static_cast<double>(curve.bin_blocked[b]) /
                             static_cast<double>(curve.bin_offered[b]));
      }
    }
    EXPECT_GT(offered, 0);
  }
  // All policies replay the same per-seed traces (common random numbers).
  for (std::size_t pi = 1; pi < r.curves.size(); ++pi) {
    EXPECT_EQ(r.curves[pi].bin_offered, r.curves[0].bin_offered);
  }
}

TEST(ScenarioSweep, RejectsBadOptions) {
  const net::Graph g = net::full_mesh(3, 10);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(3, 1.0);
  study::ScenarioSweepOptions options;
  options.seeds = 0;
  EXPECT_THROW(
      (void)study::run_scenario_sweep(g, t, {}, {study::PolicyKind::kSinglePath}, options),
      std::invalid_argument);
  options.seeds = 2;
  options.time_bins = 0;
  EXPECT_THROW(
      (void)study::run_scenario_sweep(g, t, {}, {study::PolicyKind::kSinglePath}, options),
      std::invalid_argument);
  options.time_bins = 4;
  options.threads = -2;
  EXPECT_THROW(
      (void)study::run_scenario_sweep(g, t, {}, {study::PolicyKind::kSinglePath}, options),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The ISSUE acceptance scenario.

scenario::Scenario nsfnet_failure_recovery() {
  scenario::Scenario s;
  s.name = "nsfnet-failure-recovery";
  s.events.push_back(scenario::ScenarioEvent::link_fail(40.0, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(40.0));
  s.events.push_back(scenario::ScenarioEvent::link_repair(70.0, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(70.0));
  return s;
}

study::ScenarioSweepOptions nsfnet_options(int threads) {
  study::ScenarioSweepOptions options;
  options.seeds = 3;  // modest: the full NSFNet horizon is the expensive part
  options.measure = 100.0;
  options.warmup = 10.0;
  options.max_alt_hops = 11;
  options.time_bins = 10;
  options.threads = threads;
  return options;
}

TEST(ScenarioSweep, NsfnetFailureRecoveryBitIdenticalAcrossThreads) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = study::nsfnet_nominal_traffic();
  const scenario::Scenario scen = nsfnet_failure_recovery();
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kControlledAlternate};
  const study::ScenarioSweepResult serial =
      study::run_scenario_sweep(g, nominal, scen, policies, nsfnet_options(1));
  const study::ScenarioSweepResult parallel =
      study::run_scenario_sweep(g, nominal, scen, policies, nsfnet_options(4));
  expect_identical(serial, parallel);

  // The transient shape: the event log shows fail at 40 and repair at 70,
  // and the outage window's blocking never falls below the pooled intact
  // level of the same bins (the failure can only hurt).
  ASSERT_EQ(serial.applied.size(), 4u);
  EXPECT_DOUBLE_EQ(serial.applied[0].time, 40.0);
  EXPECT_EQ(serial.applied[0].links_changed, 2);
  EXPECT_DOUBLE_EQ(serial.applied[2].time, 70.0);

  const study::ScenarioSweepResult intact =
      study::run_scenario_sweep(g, nominal, {}, policies, nsfnet_options(1));
  // Same traces (failure events never perturb the trace): offered counts
  // match bin-for-bin between the failure run and the intact run.
  EXPECT_EQ(serial.curves[0].bin_offered, intact.curves[0].bin_offered);

  // Bins 0..2 cover [10, 40) -- before the failure the two runs are the
  // same system, so the series agree exactly.
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(serial.curves[0].bin_blocked[b], intact.curves[0].bin_blocked[b]) << "bin " << b;
  }

  // Bins 3..5 cover [40, 70): the outage.  Pooled over the window, the
  // degraded network blocks at least as much as the intact one.
  long long outage_blocked = 0, outage_intact = 0;
  for (std::size_t b = 3; b < 6; ++b) {
    outage_blocked += serial.curves[0].bin_blocked[b];
    outage_intact += intact.curves[0].bin_blocked[b];
  }
  EXPECT_GE(outage_blocked, outage_intact);

  // Bins 7..9 cover [80, 110): post-repair steady state.  Within noise of
  // the intact run: pooled blocking probabilities agree to a couple of
  // percentage points (the paper's NSFNet point blocks ~0-2% when intact).
  long long post_offered = 0, post_blocked = 0, post_intact_blocked = 0;
  for (std::size_t b = 7; b < 10; ++b) {
    post_offered += serial.curves[0].bin_offered[b];
    post_blocked += serial.curves[0].bin_blocked[b];
    post_intact_blocked += intact.curves[0].bin_blocked[b];
  }
  ASSERT_GT(post_offered, 0);
  const double post = static_cast<double>(post_blocked) / static_cast<double>(post_offered);
  const double post_intact =
      static_cast<double>(post_intact_blocked) / static_cast<double>(post_offered);
  EXPECT_NEAR(post, post_intact, 0.03);
}

}  // namespace
