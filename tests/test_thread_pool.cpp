// ThreadPool + parallel_for: completion, exception propagation, nested
// submission rejection, shutdown-with-queued-work drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel_for.hpp"
#include "sim/thread_pool.hpp"

namespace sim = altroute::sim;

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> done{0};
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, WaitIsReusable) {
  sim::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(done.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, PropagatesWorkerExceptionFromWait) {
  sim::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom in worker"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error was collected; the pool stays usable and clean afterwards.
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, KeepsFirstOfManyExceptions) {
  sim::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one throw per wait(); the rest were discarded, not queued up.
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, RejectsNestedSubmission) {
  sim::ThreadPool pool(2);
  std::atomic<bool> saw_logic_error{false};
  pool.submit([&] {
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      saw_logic_error = true;
    }
  });
  pool.wait();
  EXPECT_TRUE(saw_logic_error.load());
  EXPECT_FALSE(sim::ThreadPool::on_worker_thread());
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    sim::ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction must still run everything already queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(sim::ThreadPool pool(0), std::invalid_argument);
  EXPECT_THROW(sim::ThreadPool pool(-3), std::invalid_argument);
  EXPECT_GE(sim::ThreadPool::hardware_threads(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  constexpr std::size_t kCount = 500;
  std::vector<int> hits(kCount, 0);
  sim::parallel_for(&pool, kCount, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<int>(kCount));
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, NullPoolRunsInlineInOrder) {
  std::vector<std::size_t> order;
  sim::parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(sim::ThreadPool::on_worker_thread());
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  sim::ThreadPool pool(2);
  bool ran = false;
  sim::parallel_for(&pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesBodyException) {
  sim::ThreadPool pool(4);
  EXPECT_THROW(sim::parallel_for(&pool, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
  // And serially too, straight through the inline path.
  EXPECT_THROW(
      sim::parallel_for(nullptr, 100,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
}

TEST(ParallelFor, ParallelMatchesSerialReduction) {
  // The determinism discipline in miniature: per-index slots, fixed-order
  // reduce.  The parallel sum must equal the serial sum exactly.
  constexpr std::size_t kCount = 257;
  const auto work = [](std::size_t i) {
    double x = 1.0;
    for (std::size_t k = 0; k < 50; ++k) x = x * 1.0000001 + static_cast<double>(i) * 1e-9;
    return x;
  };
  std::vector<double> serial(kCount), parallel(kCount);
  sim::parallel_for(nullptr, kCount, [&](std::size_t i) { serial[i] = work(i); });
  sim::ThreadPool pool(4);
  sim::parallel_for(&pool, kCount, [&](std::size_t i) { parallel[i] = work(i); });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
