// Mutation test of the whole checking pipeline: with the runner's
// release-leak fault injected (scenario::ScenarioEngineOptions::
// fault_leak_release), the oracles MUST fail a corpus case, the shrinker
// MUST reduce it to a replayable minimum that still fails, and the dumped
// artifact MUST round-trip into the same failing case.  A checker that
// cannot catch a seeded occupancy bug is decoration.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/case.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"

using namespace altroute;

namespace {

check::CheckOptions injected_options() {
  check::CheckOptions options;
  options.inject_release_leak = true;
  options.thread_count = 2;
  return options;
}

// The first corpus entry of the pinned tier-1 run (--cases 200 --seed 1):
// the same case the ctest corpus checks cleanly must fail once poisoned.
check::CaseSpec first_corpus_case() { return check::generate_case(check::case_seed(1, 0)); }

TEST(CheckMutation, CleanEnginePassesTheSameCase) {
  const check::CaseReport report = check::check_case(first_corpus_case());
  EXPECT_TRUE(report.passed()) << (report.failures.empty() ? "" : report.failures.front());
}

TEST(CheckMutation, InjectedLeakIsCaughtShrunkAndReplayable) {
  const check::CaseSpec spec = first_corpus_case();
  const check::CheckOptions options = injected_options();

  const check::CaseReport report = check::check_case(spec, options);
  ASSERT_FALSE(report.passed()) << "the injected circuit leak went unnoticed";
  EXPECT_EQ(report.seed, spec.seed);

  check::ShrinkStats stats;
  const check::CaseSpec minimal = check::shrink_case(
      spec, [&](const check::CaseSpec& cand) { return !check_case(cand, options).passed(); },
      &stats);
  EXPECT_GT(stats.accepted, 0) << "nothing shrank off a generated case";
  // The leak needs only one call on one facility to show.
  EXPECT_EQ(minimal.nodes, 2);
  EXPECT_EQ(minimal.facilities.size(), 1u);
  EXPECT_TRUE(minimal.events.empty());

  const check::CaseReport minimal_report = check::check_case(minimal, options);
  ASSERT_FALSE(minimal_report.passed()) << "shrunk case no longer fails";

  // Artifact round-trip: what the bundle stores is the failing case.
  const std::string dir = ::testing::TempDir() + "check_mutation_artifacts";
  check::dump_case_artifacts(dir, minimal, minimal_report.failures);
  const check::CaseSpec replayed = check::load_case(dir + "/case.json");
  EXPECT_EQ(check::case_to_json(replayed), check::case_to_json(minimal));
  EXPECT_FALSE(check::check_case(replayed, options).passed());
  // ...and the case itself is sound: replayed against a CLEAN engine it
  // passes, pinning the failure on the injected fault, not the spec.
  EXPECT_TRUE(check::check_case(replayed).passed());
}

TEST(CheckMutation, EveryOracleFamilyAloneCatchesTheLeak) {
  // The leak surfaces in final occupancy, so the invariant oracle catches
  // it even with every cross-run comparison disabled -- and the resume
  // oracle catches it even with invariants disabled (the checkpoint's
  // stored occupancy disagrees with the re-booked calls).
  const check::CaseSpec spec = first_corpus_case();

  // The occupancy reconstruction needs the whole run traced.
  check::CaseSpec cold = spec;
  cold.warmup = 0.0;
  check::CheckOptions invariants_only = injected_options();
  invariants_only.differential = false;
  invariants_only.threads = false;
  invariants_only.resume = false;
  invariants_only.static_reference = false;
  EXPECT_FALSE(check::check_case(cold, invariants_only).passed());

  check::CheckOptions resume_only = injected_options();
  resume_only.differential = false;
  resume_only.threads = false;
  resume_only.static_reference = false;
  resume_only.invariants = false;
  EXPECT_FALSE(check::check_case(spec, resume_only).passed());
}

}  // namespace
