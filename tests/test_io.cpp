// Network / traffic text serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "netgraph/io.hpp"
#include "netgraph/topologies.hpp"

namespace net = altroute::net;

namespace {

TEST(NetworkIo, RoundTripPreservesEverything) {
  net::Graph original = net::nsfnet_t3();
  original.set_link_enabled(net::LinkId(4), false);
  std::stringstream buffer;
  net::write_network(buffer, original);
  const net::Graph loaded = net::read_network(buffer);
  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.link_count(), original.link_count());
  for (int i = 0; i < original.node_count(); ++i) {
    EXPECT_EQ(loaded.node_name(net::NodeId(i)), original.node_name(net::NodeId(i))) << i;
  }
  for (int k = 0; k < original.link_count(); ++k) {
    const net::Link& a = original.link(net::LinkId(k));
    const net::Link& b = loaded.link(net::LinkId(k));
    EXPECT_EQ(a.src, b.src) << k;
    EXPECT_EQ(a.dst, b.dst) << k;
    EXPECT_EQ(a.capacity, b.capacity) << k;
    EXPECT_EQ(a.enabled, b.enabled) << k;
  }
}

TEST(NetworkIo, NamesWithSpacesSurvive) {
  net::Graph g;
  g.add_node("New York City");
  g.add_node("Salt Lake City");
  g.add_duplex(net::NodeId(0), net::NodeId(1), 7);
  std::stringstream buffer;
  net::write_network(buffer, g);
  const net::Graph loaded = net::read_network(buffer);
  EXPECT_EQ(loaded.node_name(net::NodeId(0)), "New York City");
  EXPECT_EQ(loaded.node_name(net::NodeId(1)), "Salt Lake City");
}

TEST(NetworkIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a network\n"
      "network 1\n"
      "\n"
      "node 0 a\n"
      "node 1 b\n"
      "# the only link\n"
      "link 0 1 5\n");
  const net::Graph g = net::read_network(in);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.link_count(), 1);
}

TEST(NetworkIo, MalformedInputsRejectedWithLineNumbers) {
  const auto expect_fail = [](const std::string& text, const std::string& needle) {
    std::stringstream in(text);
    try {
      (void)net::read_network(in);
      FAIL() << "expected rejection of: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_fail("node 0 a\n", "before network header");
  expect_fail("network 2\n", "unsupported");
  expect_fail("network 1\nnode 1 a\n", "dense");
  expect_fail("network 1\nnode 0 a\nlink 0 5 3\n", "out of range");
  expect_fail("network 1\nnode 0 a\nnode 1 b\nlink 0 1 0\n", "line 4");
  expect_fail("network 1\nbogus\n", "unknown directive");
  expect_fail("network 1\nnode 0 a\nnode 1 b\nlink 0 1 5 sideways\n", "unknown link flag");
  std::stringstream empty("# nothing\n");
  EXPECT_THROW((void)net::read_network(empty), std::invalid_argument);
}

TEST(TrafficIo, RoundTrip) {
  net::TrafficMatrix t(4);
  t.set(net::NodeId(0), net::NodeId(3), 12.5);
  t.set(net::NodeId(2), net::NodeId(1), 0.125);
  std::stringstream buffer;
  net::write_traffic(buffer, t);
  const net::TrafficMatrix loaded = net::read_traffic(buffer);
  ASSERT_EQ(loaded.size(), 4);
  EXPECT_DOUBLE_EQ(loaded.at(net::NodeId(0), net::NodeId(3)), 12.5);
  EXPECT_DOUBLE_EQ(loaded.at(net::NodeId(2), net::NodeId(1)), 0.125);
  EXPECT_EQ(loaded.active_pairs(), 2);
}

TEST(TrafficIo, MalformedInputsRejected) {
  const auto expect_fail = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW((void)net::read_traffic(in), std::invalid_argument) << text;
  };
  expect_fail("nodes 3\n");
  expect_fail("traffic 1\ndemand 0 1 2\n");
  expect_fail("traffic 1\nnodes 2\ndemand 0 5 2\n");
  expect_fail("traffic 1\nnodes 2\ndemand 0 1 -2\n");
  expect_fail("traffic 1\nnodes 2\ndemand 0 0 2\n");
  expect_fail("traffic 9\n");
  expect_fail("traffic 1\n");  // missing nodes
}

TEST(FileIo, SaveLoadRoundTripAndMissingFile) {
  const std::string dir = ::testing::TempDir();
  const std::string net_path = dir + "/altroute_net.txt";
  const std::string traffic_path = dir + "/altroute_traffic.txt";
  const net::Graph g = net::ring(5, 9);
  net::save_network(net_path, g);
  const net::Graph loaded = net::load_network(net_path);
  EXPECT_EQ(loaded.link_count(), g.link_count());
  net::TrafficMatrix t = net::TrafficMatrix::uniform(5, 2.0);
  net::save_traffic(traffic_path, t);
  EXPECT_DOUBLE_EQ(net::load_traffic(traffic_path).total(), t.total());
  std::remove(net_path.c_str());
  std::remove(traffic_path.c_str());
  EXPECT_THROW((void)net::load_network(dir + "/does_not_exist.txt"), std::runtime_error);
  EXPECT_THROW(net::save_network("/no/such/dir/x.txt", g), std::runtime_error);
}

}  // namespace
