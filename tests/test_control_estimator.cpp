// Property tests of the control plane's building blocks: estimator
// convergence and tracking, empty-window decay, and the epoch controller's
// hysteresis / rate-limit discipline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/config.hpp"
#include "control/controller.hpp"
#include "control/estimator.hpp"
#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

using namespace altroute;

namespace {

control::ControlConfig config_of(control::EstimatorKind kind, double window = 1.0,
                                 double weight = 0.3) {
  control::ControlConfig c;
  c.epoch = 1.0;  // enabled; the estimator itself never reads it
  c.estimator = kind;
  c.window = window;
  c.weight = weight;
  return c;
}

void feed(control::LoadEstimator& est, const sim::CallTrace& trace) {
  for (const sim::CallRecord& call : trace.calls) {
    est.observe(call.arrival, static_cast<int>(call.src.index()),
                static_cast<int>(call.dst.index()), call.holding);
  }
  est.roll_to(trace.horizon);
}

// ---------------------------------------------------------------------------
// Convergence: on stationary Poisson traffic the windowed MLE approaches
// the true offered load.  Tolerance measured once and pinned -- at 400
// windows of 5 Erlang the relative error stays well inside 10%.

TEST(LoadEstimator, WindowedMleConvergesOnStationaryTraffic) {
  const int nodes = 4;
  net::TrafficMatrix traffic(nodes);
  traffic.set(net::NodeId(0), net::NodeId(1), 5.0);
  traffic.set(net::NodeId(1), net::NodeId(2), 8.0);
  traffic.set(net::NodeId(3), net::NodeId(0), 2.5);
  const double horizon = 400.0;
  const sim::CallTrace trace = sim::generate_trace(traffic, horizon, /*seed=*/99);

  control::LoadEstimator est(config_of(control::EstimatorKind::kWindowedMle), nodes);
  feed(est, trace);
  EXPECT_EQ(est.windows_done(), 400u);
  EXPECT_EQ(est.observations(), trace.calls.size());

  const std::vector<double>& e = est.estimates();
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      const double truth = traffic.at(net::NodeId(i), net::NodeId(j));
      const double got = e[static_cast<std::size_t>(i * nodes + j)];
      if (truth == 0.0) {
        EXPECT_EQ(got, 0.0) << i << "->" << j;
      } else {
        EXPECT_LT(std::abs(got - truth) / truth, 0.10)
            << i << "->" << j << ": estimated " << got << " vs " << truth;
      }
    }
  }
}

// EWMA is also unbiased on stationary traffic, just noisier: same setup,
// looser pinned tolerance.
TEST(LoadEstimator, EwmaIsUnbiasedOnStationaryTraffic) {
  const int nodes = 3;
  net::TrafficMatrix traffic(nodes);
  traffic.set(net::NodeId(0), net::NodeId(2), 6.0);
  const sim::CallTrace trace = sim::generate_trace(traffic, 400.0, /*seed=*/7);
  control::LoadEstimator est(config_of(control::EstimatorKind::kEwma, 1.0, 0.1), nodes);
  feed(est, trace);
  const double got = est.estimates()[2];
  EXPECT_LT(std::abs(got - 6.0) / 6.0, 0.25) << "estimated " << got;
}

// ---------------------------------------------------------------------------
// Tracking: after a load shift, EWMA locks onto the new level while the
// all-history MLE is still dragging the old one -- the reason kEwma exists.
// Deterministic traffic: one observation per window with holding L * window
// makes every window's observed load exactly L.

TEST(LoadEstimator, EwmaTracksLoadShiftMleAverages) {
  const int nodes = 2;
  const double low = 2.0, high = 10.0;
  control::LoadEstimator mle(config_of(control::EstimatorKind::kWindowedMle), nodes);
  control::LoadEstimator ewma(config_of(control::EstimatorKind::kEwma, 1.0, 0.3), nodes);
  for (int w = 0; w < 100; ++w) {
    const double load = w < 50 ? low : high;
    const double t = w + 0.5;
    mle.observe(t, 0, 1, load);
    ewma.observe(t, 0, 1, load);
  }
  mle.roll_to(100.0);
  ewma.roll_to(100.0);
  const double mle_est = mle.estimates()[1];
  const double ewma_est = ewma.estimates()[1];
  // MLE pools all history: exactly the midpoint.
  EXPECT_NEAR(mle_est, (low + high) / 2.0, 1e-12);
  // EWMA with weight 0.3 after 50 post-shift windows is within 1e-7 of the
  // new level -- and strictly closer to it than the MLE.
  EXPECT_NEAR(ewma_est, high, 1e-6);
  EXPECT_LT(std::abs(ewma_est - high), std::abs(mle_est - high));
}

// Empty windows count: a silenced pair decays toward zero under both
// reductions (EWMA geometrically, MLE as 1/#windows).
TEST(LoadEstimator, SilencedPairDecaysTowardZero) {
  const int nodes = 2;
  control::LoadEstimator mle(config_of(control::EstimatorKind::kWindowedMle), nodes);
  control::LoadEstimator ewma(config_of(control::EstimatorKind::kEwma, 1.0, 0.3), nodes);
  for (int w = 0; w < 10; ++w) {
    mle.observe(w + 0.5, 0, 1, 8.0);
    ewma.observe(w + 0.5, 0, 1, 8.0);
  }
  mle.roll_to(10.0);
  ewma.roll_to(10.0);
  const double ewma_before = ewma.estimates()[1];
  ASSERT_GT(ewma_before, 7.0);
  mle.roll_to(100.0);   // 90 empty windows
  ewma.roll_to(100.0);
  EXPECT_NEAR(mle.estimates()[1], 8.0 * 10.0 / 100.0, 1e-12);
  EXPECT_NEAR(ewma.estimates()[1], ewma_before * std::pow(0.7, 90), 1e-12);
  EXPECT_LT(ewma.estimates()[1], 1e-10);
}

// ---------------------------------------------------------------------------
// Hysteresis: once the controller has accepted a solve, estimates that
// jitter inside the deadband must hold every link -- no r* oscillation.

TEST(EpochController, DeadbandHoldsJitteringEstimatesWithoutOscillation) {
  const net::Graph g = net::ring(4, 20);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 4);
  control::ControlConfig cfg;
  cfg.epoch = 1.0;
  cfg.estimator = control::EstimatorKind::kEwma;
  cfg.window = 1.0;
  cfg.weight = 0.5;
  cfg.deadband = 0.10;
  control::EpochController ctl(cfg, g.node_count(), static_cast<std::size_t>(g.link_count()),
                               std::vector<int>(static_cast<std::size_t>(g.link_count()), 0));

  // Deterministic per-window loads jittering +-4% around 8 Erlangs on
  // every adjacent pair: inside the 10% deadband after the first accept.
  std::vector<int> history;
  for (int w = 0; w < 12; ++w) {
    const double load = 8.0 * (w % 2 == 0 ? 1.04 : 0.96);
    for (int n = 0; n < 4; ++n) {
      ctl.observe(w + 0.5, n, (n + 1) % 4, load);
    }
    const control::EpochController::Outcome out =
        ctl.run_epoch(static_cast<double>(w + 1), g, routes, 4);
    if (w == 0) continue;  // first epoch: the initial accept (ref was -1)
    EXPECT_EQ(out.links_changed, 0) << "epoch " << w + 1;
    EXPECT_EQ(out.links_held, static_cast<int>(g.link_count())) << "epoch " << w + 1;
    history.push_back(out.reservation[0]);
  }
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i], history[0]) << "r* oscillated at epoch " << i;
  }
  EXPECT_EQ(ctl.holds(), static_cast<std::uint64_t>(11 * g.link_count()));
}

// Rate limit: a load step that wants a big r* jump is walked there at most
// max_step circuits per epoch.
TEST(EpochController, MaxStepWalksReservationGradually) {
  const net::Graph g = net::ring(4, 30);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 4);
  control::ControlConfig cfg;
  cfg.epoch = 1.0;
  cfg.estimator = control::EstimatorKind::kEwma;
  cfg.window = 1.0;
  cfg.weight = 1.0;  // each window fully replaces the estimate
  cfg.max_step = 1;
  control::EpochController ctl(cfg, g.node_count(), static_cast<std::size_t>(g.link_count()),
                               std::vector<int>(static_cast<std::size_t>(g.link_count()), 0));

  control::ControlConfig free_cfg = cfg;
  free_cfg.max_step = 0;
  control::EpochController free_ctl(
      free_cfg, g.node_count(), static_cast<std::size_t>(g.link_count()),
      std::vector<int>(static_cast<std::size_t>(g.link_count()), 0));

  std::vector<int> prev(static_cast<std::size_t>(g.link_count()), 0);
  int unlimited_r = 0;
  for (int w = 0; w < 12; ++w) {
    for (int n = 0; n < 4; ++n) {
      ctl.observe(w + 0.5, n, (n + 1) % 4, 20.0);
      free_ctl.observe(w + 0.5, n, (n + 1) % 4, 20.0);
    }
    const control::EpochController::Outcome out =
        ctl.run_epoch(static_cast<double>(w + 1), g, routes, 4);
    const control::EpochController::Outcome free_out =
        free_ctl.run_epoch(static_cast<double>(w + 1), g, routes, 4);
    for (std::size_t k = 0; k < out.reservation.size(); ++k) {
      EXPECT_LE(std::abs(out.reservation[k] - prev[k]), 1) << "epoch " << w + 1;
    }
    prev = out.reservation;
    unlimited_r = free_out.reservation[0];
  }
  // The unlimited controller jumped straight to the Eq.-15 level; the
  // rate-limited one reaches the same fixed point, one circuit at a time.
  ASSERT_GT(unlimited_r, 1);
  EXPECT_EQ(prev[0], unlimited_r);
}

// Memento round-trip: save/load restores the full estimator + controller
// state, so a restored controller continues bit-identically.
TEST(EpochController, MementoRoundTripContinuesIdentically) {
  const net::Graph g = net::ring(4, 20);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 4);
  control::ControlConfig cfg;
  cfg.epoch = 1.0;
  cfg.estimator = control::EstimatorKind::kWindowedMle;
  cfg.window = 1.0;
  cfg.deadband = 0.05;
  const std::vector<int> zero(static_cast<std::size_t>(g.link_count()), 0);
  control::EpochController a(cfg, g.node_count(), static_cast<std::size_t>(g.link_count()),
                             zero);
  for (int w = 0; w < 5; ++w) {
    a.observe(w + 0.37, 0, 1, 7.0);
    a.observe(w + 0.61, 2, 3, 4.0);
    (void)a.run_epoch(static_cast<double>(w + 1), g, routes, 4);
  }
  control::EpochController b(cfg, g.node_count(), static_cast<std::size_t>(g.link_count()),
                             zero);
  b.load(a.save());
  for (int w = 5; w < 9; ++w) {
    a.observe(w + 0.37, 0, 1, 7.0);
    b.observe(w + 0.37, 0, 1, 7.0);
    const control::EpochController::Outcome oa =
        a.run_epoch(static_cast<double>(w + 1), g, routes, 4);
    const control::EpochController::Outcome ob =
        b.run_epoch(static_cast<double>(w + 1), g, routes, 4);
    EXPECT_EQ(oa.reservation, ob.reservation) << "epoch " << w + 1;
    EXPECT_EQ(oa.lambda_eff, ob.lambda_eff) << "epoch " << w + 1;
    EXPECT_EQ(oa.links_changed, ob.links_changed) << "epoch " << w + 1;
    EXPECT_EQ(oa.links_held, ob.links_held) << "epoch " << w + 1;
  }
  EXPECT_EQ(a.epochs_done(), b.epochs_done());
  EXPECT_EQ(a.retargets(), b.retargets());
  EXPECT_EQ(a.holds(), b.holds());
}

}  // namespace
