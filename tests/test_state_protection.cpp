// Eq.-15 state-protection solver: properties, Theorem-1 bound, and the
// strongest available validation -- the paper's own Table 1 and the
// Section 3.2 numeric claims.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "netgraph/topologies.hpp"

namespace e = altroute::erlang;
namespace net = altroute::net;

namespace {

TEST(MinStateProtection, ZeroLoadNeedsNoProtection) {
  EXPECT_EQ(e::min_state_protection(0.0, 100, 6), 0);
}

TEST(MinStateProtection, ResultSatisfiesEqFifteenMinimally) {
  for (const double lambda : {10.0, 40.0, 74.0, 90.0, 99.0}) {
    for (const int h : {2, 6, 11, 120}) {
      const int r = e::min_state_protection(lambda, 100, h);
      if (r < 100) {
        // Satisfiable: the chosen r meets Eq. 15 and r - 1 does not.
        EXPECT_LE(e::theorem1_bound(lambda, 100, r), 1.0 / h + 1e-12)
            << "lambda=" << lambda << " H=" << h;
        if (r > 0) {
          EXPECT_GT(e::theorem1_bound(lambda, 100, r - 1), 1.0 / h)
              << "r not minimal at lambda=" << lambda << " H=" << h;
        }
      } else {
        // r == C: either exactly satisfied at C, or unsatisfiable -- in
        // which case NO r < C may satisfy the inequality (alternates are
        // shut out entirely, which keeps the guarantee vacuously).
        for (int below = 0; below < 100; below += 9) {
          EXPECT_GT(e::theorem1_bound(lambda, 100, below), 1.0 / h)
              << "lambda=" << lambda << " H=" << h << " r=" << below;
        }
      }
    }
  }
}

TEST(MinStateProtection, NondecreasingInH) {
  for (const double lambda : {20.0, 55.0, 80.0, 95.0}) {
    int prev = 0;
    for (const int h : {1, 2, 3, 6, 11, 30, 120, 500, 2000}) {
      const int r = e::min_state_protection(lambda, 100, h);
      EXPECT_GE(r, prev) << "lambda=" << lambda << " H=" << h;
      prev = r;
    }
  }
}

TEST(MinStateProtection, NondecreasingInLoad) {
  for (const int h : {2, 6, 11}) {
    int prev = 0;
    for (double lambda = 1.0; lambda <= 130.0; lambda += 1.0) {
      const int r = e::min_state_protection(lambda, 100, h);
      EXPECT_GE(r, prev) << "lambda=" << lambda << " H=" << h;
      prev = r;
    }
  }
}

TEST(MinStateProtection, HEqualsOneNeedsNoProtection) {
  // 1/H = 1 and B(l,C)/B(l,C) = 1 <= 1: a one-hop alternate can displace at
  // most the one call it carries.
  for (const double lambda : {5.0, 50.0, 150.0}) {
    EXPECT_EQ(e::min_state_protection(lambda, 100, 1), 0) << lambda;
  }
}

TEST(MinStateProtection, OverloadedLinkDisablesAlternates) {
  // Lambda well above C: Eq. 15 unsatisfiable, r = C (Table 1's r = 100
  // rows behave this way).
  EXPECT_EQ(e::min_state_protection(167.0, 100, 6), 100);
  EXPECT_EQ(e::min_state_protection(154.0, 100, 11), 100);
}

TEST(MinStateProtection, Validation) {
  EXPECT_THROW((void)e::min_state_protection(-1.0, 100, 6), std::invalid_argument);
  EXPECT_THROW((void)e::min_state_protection(1.0, 0, 6), std::invalid_argument);
  EXPECT_THROW((void)e::min_state_protection(1.0, 100, 0), std::invalid_argument);
}

TEST(Theorem1Bound, DefinitionAndEdges) {
  EXPECT_NEAR(e::theorem1_bound(50.0, 100, 10),
              e::erlang_b(50.0, 100) / e::erlang_b(50.0, 90), 1e-12);
  EXPECT_DOUBLE_EQ(e::theorem1_bound(50.0, 100, 0), 1.0);
  EXPECT_TRUE(std::isinf(e::theorem1_bound(0.0, 100, 10)));
  EXPECT_THROW((void)e::theorem1_bound(1.0, 100, 101), std::invalid_argument);
}

TEST(Theorem1Bound, DecreasingInReservation) {
  double prev = 1.0 + 1e-12;
  for (int r = 0; r <= 100; ++r) {
    const double bound = e::theorem1_bound(80.0, 100, r);
    EXPECT_LT(bound, prev) << r;
    prev = bound;
  }
}

TEST(StateProtectionLevels, VectorFormMatchesScalar) {
  const std::vector<double> lambda = {10.0, 74.0, 103.0};
  const std::vector<int> capacity = {50, 100, 100};
  const auto r = e::state_protection_levels(lambda, capacity, 6);
  ASSERT_EQ(r.size(), 3u);
  for (std::size_t k = 0; k < r.size(); ++k) {
    EXPECT_EQ(r[k], e::min_state_protection(lambda[k], capacity[k], 6)) << k;
  }
  EXPECT_THROW((void)e::state_protection_levels({1.0}, {1, 2}, 6), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Validation against the paper's printed numbers.

TEST(PaperTable1, HEqualsElevenReproducedExactly) {
  // Re-deriving Table 1's r^k column for H = 11 from the printed Lambda^k
  // matches all 30 rows exactly.
  for (const net::NsfnetTable1Row& row : net::nsfnet_table1()) {
    EXPECT_EQ(e::min_state_protection(row.lambda, row.capacity, 11), row.r_h11)
        << row.src << "->" << row.dst;
  }
}

TEST(PaperTable1, HEqualsSixReproducedUpToPrintRounding) {
  // The printed Lambda^k are rounded to integers; for H = 6 four rows sit
  // close enough to a threshold that the rounding flips r by a little.
  // Require: at least 26/30 exact, and every mismatching row explainable by
  // a true load within +-0.5 of the printed value.
  int exact = 0;
  for (const net::NsfnetTable1Row& row : net::nsfnet_table1()) {
    const int r = e::min_state_protection(row.lambda, row.capacity, 6);
    if (r == row.r_h6) {
      ++exact;
      continue;
    }
    bool explainable = false;
    for (double dl = -0.5; dl <= 0.5; dl += 0.01) {
      if (e::min_state_protection(row.lambda + dl, row.capacity, 6) == row.r_h6) {
        explainable = true;
        break;
      }
    }
    EXPECT_TRUE(explainable) << row.src << "->" << row.dst << " paper r=" << row.r_h6
                             << " computed r=" << r;
  }
  EXPECT_GE(exact, 26);
}

TEST(PaperSection31, LargeHClaimFromTheText) {
  // "We have curves for H in [1000, 2000], for which r in [10, 20] for
  // loads of 50 Erlangs (C = 100)."
  for (const int h : {1000, 1250, 1500, 1750, 2000}) {
    const int r = e::min_state_protection(50.0, 100, h);
    EXPECT_GE(r, 10) << h;
    EXPECT_LE(r, 20) << h;
  }
}

TEST(PaperSection32, ChannelBorrowingLevelsAreSmall) {
  // "the value of r for H = 3 will be quite small for C ~= 50": at
  // moderate cell loads the prescription reserves only a few channels
  // (computed values: r <= 3 up to 30 Erlangs, r = 9 even at 90% load).
  for (double lambda = 5.0; lambda <= 30.0; lambda += 5.0) {
    EXPECT_LE(e::min_state_protection(lambda, 50, 3), 3) << lambda;
  }
  EXPECT_LE(e::min_state_protection(45.0, 50, 3), 9);
}

}  // namespace
