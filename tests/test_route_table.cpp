// Route tables: min-hop programs, Eq.-1 link loads, alternate census.
#include <gtest/gtest.h>

#include <stdexcept>

#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "routing/shortest_paths.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;

namespace {

TEST(RouteTable, MinHopProgramOnQuadrangle) {
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable table = routing::build_min_hop_routes(g, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const routing::RouteSet& set = table.at(net::NodeId(i), net::NodeId(j));
      ASSERT_TRUE(set.reachable()) << i << "->" << j;
      EXPECT_EQ(set.primaries.size(), 1u);
      EXPECT_DOUBLE_EQ(set.primary_probs[0], 1.0);
      EXPECT_EQ(set.primaries[0].hops(), 1);  // direct link
      // All 5 loop-free paths enumerated; the primary appears among them.
      EXPECT_EQ(set.alternates.size(), 5u);
      EXPECT_EQ(set.alternates[0], set.primaries[0]);
    }
  }
}

TEST(RouteTable, UnreachablePairsHaveEmptySets) {
  net::Graph g(3);
  g.add_link(net::NodeId(0), net::NodeId(1), 5);
  g.add_link(net::NodeId(1), net::NodeId(0), 5);
  const routing::RouteTable table = routing::build_min_hop_routes(g, 2);
  EXPECT_TRUE(table.at(net::NodeId(0), net::NodeId(1)).reachable());
  EXPECT_FALSE(table.at(net::NodeId(0), net::NodeId(2)).reachable());
  EXPECT_FALSE(table.at(net::NodeId(2), net::NodeId(1)).reachable());
}

TEST(RouteTable, AlternatesRespectHopCap) {
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable h6 = routing::build_min_hop_routes(g, 6);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      for (const routing::Path& p : h6.at(net::NodeId(i), net::NodeId(j)).alternates) {
        EXPECT_LE(p.hops(), 6);
      }
    }
  }
}

TEST(PrimaryLinkLoads, HandComputedStarExample) {
  // Star with hub 0: every leaf-to-leaf primary is forced through the hub.
  const net::Graph g = net::star(4, 10);
  const routing::RouteTable table = routing::build_min_hop_routes(g, 3);
  net::TrafficMatrix t(4);
  t.set(net::NodeId(1), net::NodeId(2), 3.0);
  t.set(net::NodeId(1), net::NodeId(3), 2.0);
  t.set(net::NodeId(2), net::NodeId(1), 1.0);
  const auto lambda = routing::primary_link_loads(g, table, t);
  const auto l_1_to_0 = g.find_link(net::NodeId(1), net::NodeId(0));
  const auto l_0_to_2 = g.find_link(net::NodeId(0), net::NodeId(2));
  const auto l_0_to_3 = g.find_link(net::NodeId(0), net::NodeId(3));
  const auto l_0_to_1 = g.find_link(net::NodeId(0), net::NodeId(1));
  EXPECT_DOUBLE_EQ(lambda[l_1_to_0->index()], 5.0);  // both flows from 1
  EXPECT_DOUBLE_EQ(lambda[l_0_to_2->index()], 3.0);
  EXPECT_DOUBLE_EQ(lambda[l_0_to_3->index()], 2.0);
  EXPECT_DOUBLE_EQ(lambda[l_0_to_1->index()], 1.0);
}

TEST(PrimaryLinkLoads, BifurcatedPrimariesWeightedByProbability) {
  net::Graph g(4);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 5);
  g.add_duplex(net::NodeId(1), net::NodeId(3), 5);
  g.add_duplex(net::NodeId(2), net::NodeId(3), 5);
  routing::RouteTable table(4);
  routing::RouteSet& set = table.at(net::NodeId(0), net::NodeId(3));
  set.primaries.push_back(routing::make_path(
      g, {net::NodeId(0), net::NodeId(1), net::NodeId(3)}));
  set.primaries.push_back(routing::make_path(
      g, {net::NodeId(0), net::NodeId(2), net::NodeId(3)}));
  set.primary_probs = {0.25, 0.75};
  net::TrafficMatrix t(4);
  t.set(net::NodeId(0), net::NodeId(3), 8.0);
  const auto lambda = routing::primary_link_loads(g, table, t);
  EXPECT_DOUBLE_EQ(lambda[g.find_link(net::NodeId(0), net::NodeId(1))->index()], 2.0);
  EXPECT_DOUBLE_EQ(lambda[g.find_link(net::NodeId(0), net::NodeId(2))->index()], 6.0);
  EXPECT_DOUBLE_EQ(lambda[g.find_link(net::NodeId(1), net::NodeId(3))->index()], 2.0);
}

TEST(PrimaryLinkLoads, Validation) {
  const net::Graph g = net::ring(4, 5);
  const routing::RouteTable table = routing::build_min_hop_routes(g, 3);
  EXPECT_THROW((void)routing::primary_link_loads(g, table, net::TrafficMatrix(5)),
               std::invalid_argument);
}

TEST(Census, QuadrangleHasFourAlternatesPerPair) {
  // 5 loop-free paths minus the 1-hop primary = 4 alternates.
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteCensus c = routing::census(routing::build_min_hop_routes(g, 3));
  EXPECT_EQ(c.pairs, 12);
  EXPECT_EQ(c.min_alternates, 4);
  EXPECT_EQ(c.max_alternates, 4);
  EXPECT_DOUBLE_EQ(c.mean_alternates, 4.0);
}

TEST(Census, NsfnetMatchesPaperSection422) {
  // Paper, H = 11 (unlimited): "on the average each node pair had about 9
  // alternate paths, with a maximum of 15 and a minimum of 5".  Exhaustive
  // loop-free enumeration reproduces that exactly (mean 8.33 ~ "about 9").
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteCensus h11 = routing::census(routing::build_min_hop_routes(g, 11));
  EXPECT_EQ(h11.pairs, 132);
  EXPECT_NEAR(h11.mean_alternates, 8.33, 0.05);
  EXPECT_EQ(h11.max_alternates, 15);
  EXPECT_EQ(h11.min_alternates, 5);
  // For H = 6 the paper reports (mean ~7, max 13, min 5), which a literal
  // <= 6-link cap cannot produce on this topology (exhaustive enumeration
  // yields max 6 alternates); the paper's path-length bookkeeping for the
  // census evidently differed.  We pin down OUR semantics -- every
  // alternate has at most H links -- and record the discrepancy in
  // EXPERIMENTS.md.
  const routing::RouteCensus h6 = routing::census(routing::build_min_hop_routes(g, 6));
  EXPECT_NEAR(h6.mean_alternates, 3.30, 0.05);
  EXPECT_EQ(h6.max_alternates, 6);
  EXPECT_EQ(h6.min_alternates, 1);
}

}  // namespace
