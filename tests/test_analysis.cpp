// Trace analytics layer: loss-less JSONL round-trips, the empirical
// Theorem-1 audit (controlled passes, uncontrolled is flagged), live vs.
// offline determinism, attribution consistency, and config validation.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "obs/analysis/analyzer.hpp"
#include "obs/analysis/render.hpp"
#include "obs/analysis/trace_read.hpp"
#include "obs/trace.hpp"
#include "scenario/parse.hpp"
#include "scenario/scenario.hpp"
#include "study/analysis.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace altroute {
namespace {

using obs::JsonlTraceSink;
using obs::TraceKind;
using obs::TraceRecord;
using obs::analysis::AnalysisConfig;
using obs::analysis::AnalysisReport;
using obs::analysis::LinkAudit;

// ---------------------------------------------------------------- helpers

/// One synthetic record per kind, every kind-relevant field non-default.
std::vector<TraceRecord> records_of_every_kind() {
  std::vector<TraceRecord> records;

  TraceRecord admitted;
  admitted.time = 40.125;
  admitted.kind = TraceKind::kCallAdmitted;
  admitted.src = 2;
  admitted.dst = 3;
  admitted.hops = 2;
  admitted.units = 1;
  admitted.alternate = true;
  admitted.hold = 1.25;
  admitted.links = {4, 9};
  admitted.occ = {97, 100};
  admitted.replication = 3;
  admitted.policy = 1;
  records.push_back(admitted);

  TraceRecord primary;  // no occ array: the field is omitted, not defaulted
  primary.time = 0.001;
  primary.kind = TraceKind::kCallAdmitted;
  primary.src = 0;
  primary.dst = 1;
  primary.hops = 1;
  primary.units = 2;
  primary.hold = 3.5;
  primary.links = {0};
  records.push_back(primary);

  TraceRecord blocked;
  blocked.time = 41.5;
  blocked.kind = TraceKind::kCallBlocked;
  blocked.src = 1;
  blocked.dst = 2;
  blocked.units = 1;
  blocked.link = 7;
  blocked.alt_occupancy = 3;
  blocked.replication = 0;
  blocked.policy = 2;
  records.push_back(blocked);

  TraceRecord unattributed;
  unattributed.time = 42.0;
  unattributed.kind = TraceKind::kCallBlocked;
  unattributed.src = 1;
  unattributed.dst = 2;
  records.push_back(unattributed);

  TraceRecord preempted;
  preempted.time = 43.0;
  preempted.kind = TraceKind::kCallPreempted;
  preempted.link = 5;
  preempted.hops = 3;
  preempted.units = 1;
  records.push_back(preempted);

  TraceRecord killed;
  killed.time = 44.0;
  killed.kind = TraceKind::kCallKilled;
  killed.link = 11;
  killed.hops = 2;
  killed.units = 4;
  records.push_back(killed);

  TraceRecord event;
  event.time = 45.0;
  event.kind = TraceKind::kEventApplied;
  event.detail = "link_fail";
  event.links_changed = 2;
  event.count = 17;
  records.push_back(event);

  TraceRecord resolved;
  resolved.time = 45.0;
  resolved.kind = TraceKind::kProtectionResolved;
  resolved.links_changed = 24;
  records.push_back(resolved);

  TraceRecord reserved;
  reserved.time = 46.75;
  reserved.kind = TraceKind::kReservedRejection;
  reserved.src = 4;
  reserved.dst = 5;
  reserved.link = 13;
  records.push_back(reserved);

  TraceRecord epoch;  // adaptive control plane: r/cap/lam are per-link
  epoch.time = 50.0;
  epoch.kind = TraceKind::kControlEpoch;
  epoch.count = 2;  // 1-based epoch index
  epoch.links_changed = 3;
  epoch.links = {1, 0, 2};
  epoch.occ = {10, 10, 12};
  epoch.detail = "7.25,0.5,12.062500000000002";  // lambda CSV, %.17g exact
  epoch.replication = 1;
  epoch.policy = 1;
  records.push_back(epoch);

  return records;
}

/// Runs a quadrangle sweep with a buffering trace sink and returns the
/// JSONL bytes (the same bytes the live --analyze path consumes).
std::string quadrangle_trace(const std::vector<study::PolicyKind>& policies,
                             const std::vector<double>& loads, int seeds, double measure,
                             int threads = 1) {
  study::SweepOptions options;
  options.load_factors = loads;
  options.seeds = seeds;
  options.measure = measure;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.threads = threads;
  options.erlang_bound = false;
  std::ostringstream buffer;
  JsonlTraceSink sink(buffer);
  options.obs.trace = &sink;
  (void)study::run_sweep(net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, 1.0),
                         policies, options);
  return buffer.str();
}

AnalysisConfig quadrangle_config(const std::vector<study::PolicyKind>& policies,
                                 const std::vector<double>& loads, int seeds,
                                 double measure) {
  return study::analysis_config_for(net::full_mesh(4, 100),
                                    net::TrafficMatrix::uniform(4, 1.0), 3, policies, loads,
                                    seeds, 5.0, measure);
}

// ------------------------------------------------------------ round-trips

TEST(TraceRoundTrip, EveryKindFormatsAndParsesBackLosslessly) {
  for (const TraceRecord& record : records_of_every_kind()) {
    const std::string line = JsonlTraceSink::format(record);
    const TraceRecord parsed = obs::analysis::parse_trace_line(line);
    EXPECT_EQ(JsonlTraceSink::format(parsed), line) << line;
    EXPECT_EQ(parsed.kind, record.kind);
  }
}

TEST(TraceRoundTrip, ParseTraceSplitsLinesAndSkipsBlanks) {
  std::string jsonl;
  const std::vector<TraceRecord> records = records_of_every_kind();
  for (const TraceRecord& record : records) {
    jsonl += JsonlTraceSink::format(record);
    jsonl += "\n\n";  // blank line between records must be ignored
  }
  const std::vector<TraceRecord> parsed = obs::analysis::parse_trace(jsonl);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(JsonlTraceSink::format(parsed[i]), JsonlTraceSink::format(records[i]));
  }
}

TEST(TraceRoundTrip, MalformedLinesThrowWithContext) {
  EXPECT_THROW((void)obs::analysis::parse_trace_line("not json"), std::invalid_argument);
  EXPECT_THROW((void)obs::analysis::parse_trace_line(R"({"t":1})"), std::invalid_argument);
  EXPECT_THROW((void)obs::analysis::parse_trace_line(R"({"t":1,"kind":"bogus"})"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::analysis::parse_trace_line(
                   R"({"t":1,"kind":"call_blocked","mystery":2})"),
               std::invalid_argument);
}

TEST(TraceRoundTrip, RealScenarioTraceSurvivesReformatting) {
  // A failure_recovery-shaped run: kills, applied events, and protection
  // re-solves all land in the trace, and every line must reformat to the
  // exact bytes the sink wrote.
  const scenario::Scenario scen = scenario::scenario_from_json(R"({
    "name": "round-trip",
    "events": [
      {"time": 12, "type": "link_fail",          "a": 2, "b": 3},
      {"time": 12, "type": "resolve_protection"},
      {"time": 18, "type": "link_repair",        "a": 2, "b": 3}
    ]})");
  study::ScenarioSweepOptions options;
  options.seeds = 2;
  options.measure = 20.0;
  options.warmup = 5.0;
  options.max_alt_hops = 11;
  options.time_bins = 10;
  std::ostringstream buffer;
  JsonlTraceSink sink(buffer);
  options.obs.trace = &sink;
  (void)study::run_scenario_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen,
      {study::PolicyKind::kUncontrolledAlternate, study::PolicyKind::kControlledAlternate},
      options);

  const std::string jsonl = buffer.str();
  ASSERT_FALSE(jsonl.empty());
  const std::vector<TraceRecord> parsed = obs::analysis::parse_trace(jsonl);
  std::string reformatted;
  unsigned kinds_seen = 0;
  for (const TraceRecord& record : parsed) {
    reformatted += JsonlTraceSink::format(record);
    reformatted += '\n';
    kinds_seen |= static_cast<unsigned>(record.kind);
  }
  EXPECT_EQ(reformatted, jsonl);
  EXPECT_TRUE(kinds_seen & static_cast<unsigned>(TraceKind::kCallAdmitted));
  EXPECT_TRUE(kinds_seen & static_cast<unsigned>(TraceKind::kCallKilled));
  EXPECT_TRUE(kinds_seen & static_cast<unsigned>(TraceKind::kEventApplied));
  EXPECT_TRUE(kinds_seen & static_cast<unsigned>(TraceKind::kProtectionResolved));
}

// -------------------------------------------------------- Theorem-1 audit

TEST(Theorem1Audit, ControlledQuadranglePassesUnderOverload) {
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kControlledAlternate};
  const std::string jsonl = quadrangle_trace(policies, {95.0}, 3, 25.0);
  const AnalysisReport report =
      obs::analysis::analyze_trace(jsonl, quadrangle_config(policies, {95.0}, 3, 25.0));

  ASSERT_EQ(report.sections.size(), 1u);
  const auto& section = report.sections[0];
  EXPECT_GT(section.audited, 0);
  EXPECT_EQ(section.violations, 0);
  EXPECT_TRUE(report.theorem1_ok());
  // Stronger than the CI verdict: a compliant controlled run admits
  // alternates only at s <= C - r*, so even the POINT estimate cannot
  // exceed the bound.
  for (const LinkAudit& audit : section.links) {
    if (audit.verdict == LinkAudit::Verdict::kNotApplicable) continue;
    EXPECT_LE(audit.l_mean, audit.bound + 1e-12) << "link " << audit.link;
    EXPECT_LE(audit.l_pooled, audit.bound + 1e-12) << "link " << audit.link;
  }
}

TEST(Theorem1Audit, UncontrolledQuadrangleIsFlagged) {
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kUncontrolledAlternate};
  const std::string jsonl = quadrangle_trace(policies, {95.0}, 3, 25.0);
  const AnalysisReport report =
      obs::analysis::analyze_trace(jsonl, quadrangle_config(policies, {95.0}, 3, 25.0));

  ASSERT_EQ(report.sections.size(), 1u);
  EXPECT_FALSE(report.theorem1_ok());
  // Under symmetric overload every link admits alternates deep inside the
  // protected band; expect the audit to flag most of the network, not a
  // lucky link or two.
  EXPECT_GE(report.sections[0].violations, 6);
}

TEST(Theorem1Audit, ControlledNsfnetPasses) {
  study::SweepOptions options;
  options.load_factors = {1.2};
  options.seeds = 2;
  options.measure = 10.0;
  options.warmup = 5.0;
  options.max_alt_hops = 11;
  options.erlang_bound = false;
  std::ostringstream buffer;
  JsonlTraceSink sink(buffer);
  options.obs.trace = &sink;
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kControlledAlternate};
  (void)study::run_sweep(net::nsfnet_t3(), study::nsfnet_nominal_traffic(), policies,
                         options);

  const AnalysisConfig config = study::analysis_config_for(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), 11, policies, {1.2}, 2, 5.0, 10.0);
  const AnalysisReport report = obs::analysis::analyze_trace(buffer.str(), config);
  ASSERT_EQ(report.sections.size(), 1u);
  EXPECT_GT(report.sections[0].audited, 0);
  EXPECT_TRUE(report.theorem1_ok());
}

// ------------------------------------------------------------ determinism

TEST(AnalysisDeterminism, ThreadCountNeverChangesTheReport) {
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kUncontrolledAlternate,
                                                study::PolicyKind::kControlledAlternate};
  const std::vector<double> loads{85.0, 95.0};
  const AnalysisConfig config = quadrangle_config(policies, loads, 2, 10.0);

  const std::string serial = quadrangle_trace(policies, loads, 2, 10.0, /*threads=*/1);
  const std::string pooled = quadrangle_trace(policies, loads, 2, 10.0, /*threads=*/4);
  const std::string all_hw = quadrangle_trace(policies, loads, 2, 10.0, /*threads=*/0);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(serial, all_hw);

  const std::string report_serial =
      obs::analysis::analysis_json(obs::analysis::analyze_trace(serial, config));
  const std::string report_pooled =
      obs::analysis::analysis_json(obs::analysis::analyze_trace(pooled, config));
  EXPECT_EQ(report_serial, report_pooled);

  // Two policies x two load points, in (policy, point) order.
  const AnalysisReport report = obs::analysis::analyze_trace(serial, config);
  ASSERT_EQ(report.sections.size(), 4u);
  EXPECT_EQ(report.sections[0].policy_slot, 0);
  EXPECT_EQ(report.sections[0].load_factor, 85.0);
  EXPECT_EQ(report.sections[1].load_factor, 95.0);
  EXPECT_EQ(report.sections[2].policy_slot, 1);
  EXPECT_EQ(report.sections[3].load_factor, 95.0);
  for (const auto& section : report.sections) EXPECT_EQ(section.replications, 2u);
}

TEST(AnalysisDeterminism, RecordsAndBytesAgree) {
  // analyze_trace is parse + analyze_records; the renderers must not
  // depend on which path produced the report.
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kControlledAlternate};
  const std::string jsonl = quadrangle_trace(policies, {90.0}, 2, 10.0);
  const AnalysisConfig config = quadrangle_config(policies, {90.0}, 2, 10.0);
  const AnalysisReport from_bytes = obs::analysis::analyze_trace(jsonl, config);
  const AnalysisReport from_records =
      obs::analysis::analyze_records(obs::analysis::parse_trace(jsonl), config);
  EXPECT_EQ(obs::analysis::analysis_json(from_bytes),
            obs::analysis::analysis_json(from_records));
  EXPECT_EQ(obs::analysis::analysis_table(from_bytes),
            obs::analysis::analysis_table(from_records));
}

// ------------------------------------------------------------ attribution

TEST(Attribution, SectionTotalsAreInternallyConsistent) {
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kUncontrolledAlternate};
  const std::string jsonl = quadrangle_trace(policies, {95.0}, 2, 15.0);
  const AnalysisReport report =
      obs::analysis::analyze_trace(jsonl, quadrangle_config(policies, {95.0}, 2, 15.0));
  ASSERT_EQ(report.sections.size(), 1u);
  const auto& section = report.sections[0];

  long long pair_primary = 0, pair_alternate = 0, pair_blocked = 0, pair_reserved = 0;
  for (const auto& pair : section.pairs) {
    pair_primary += pair.carried_primary;
    pair_alternate += pair.carried_alternate;
    pair_blocked += pair.blocked;
    pair_reserved += pair.reserved_rejections;
  }
  const auto metric_total = [&](const std::string& name) {
    for (const auto& metric : section.metrics) {
      if (metric.name == name) {
        return metric.mean * static_cast<double>(metric.replications);
      }
    }
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(static_cast<double>(pair_primary), metric_total("carried_primary"));
  EXPECT_DOUBLE_EQ(static_cast<double>(pair_alternate), metric_total("carried_alternate"));
  EXPECT_DOUBLE_EQ(static_cast<double>(pair_blocked), metric_total("blocked"));
  EXPECT_DOUBLE_EQ(static_cast<double>(pair_reserved), metric_total("reserved_rejections"));

  // Every alternate admission rides its booked links: the audit's per-link
  // admission totals and the (pair, link) cells count the same events.
  long long audit_rides = 0, cell_rides = 0;
  for (const LinkAudit& audit : section.links) audit_rides += audit.alternate_admissions;
  for (const auto& cell : section.cells) cell_rides += cell.alternate_carried;
  EXPECT_EQ(audit_rides, cell_rides);
  EXPECT_GT(audit_rides, 0);
}

TEST(Attribution, OccupancySeriesIsPopulatedAndStationary) {
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kControlledAlternate};
  const std::string jsonl = quadrangle_trace(policies, {90.0}, 2, 20.0);
  AnalysisConfig config = quadrangle_config(policies, {90.0}, 2, 20.0);
  config.time_bins = 10;
  const AnalysisReport report = obs::analysis::analyze_trace(jsonl, config);
  ASSERT_EQ(report.sections.size(), 1u);
  const auto& section = report.sections[0];
  ASSERT_EQ(section.bin_occupancy.size(), 10u);
  ASSERT_EQ(section.bin_time.size(), 10u);
  EXPECT_DOUBLE_EQ(section.bin_time[0], 5.0);
  for (const double occupancy : section.bin_occupancy) EXPECT_GT(occupancy, 0.0);
  // A steady overloaded quadrangle hugs full occupancy: the batch-means
  // diagnostic must not flag it.
  EXPECT_TRUE(section.stationary);
}

// ----------------------------------------------------------- validation

TEST(AnalysisConfigValidation, RejectsInconsistentConfigs) {
  const std::vector<TraceRecord> records = {[] {
    TraceRecord r;
    r.kind = TraceKind::kCallAdmitted;
    r.time = 1.0;
    r.src = 0;
    r.dst = 1;
    r.links = {0};
    r.occ = {1};
    return r;
  }()};

  AnalysisConfig good;
  good.node_count = 2;
  good.link_count = 1;
  good.lambda = {1.0};
  good.capacity = {10};
  EXPECT_NO_THROW((void)obs::analysis::analyze_records(records, good));

  AnalysisConfig no_links = good;
  no_links.link_count = 0;
  no_links.lambda.clear();
  no_links.capacity.clear();
  EXPECT_THROW((void)obs::analysis::analyze_records(records, no_links),
               std::invalid_argument);

  AnalysisConfig short_lambda = good;
  short_lambda.lambda.clear();
  EXPECT_THROW((void)obs::analysis::analyze_records(records, short_lambda),
               std::invalid_argument);

  AnalysisConfig no_points = good;
  no_points.load_factors.clear();
  EXPECT_THROW((void)obs::analysis::analyze_records(records, no_points),
               std::invalid_argument);

  AnalysisConfig bad_measure = good;
  bad_measure.measure = 0.0;
  EXPECT_THROW((void)obs::analysis::analyze_records(records, bad_measure),
               std::invalid_argument);

  AnalysisConfig bad_rpp = good;
  bad_rpp.replications_per_point = -1;
  EXPECT_THROW((void)obs::analysis::analyze_records(records, bad_rpp),
               std::invalid_argument);
}

TEST(AnalysisConfigValidation, RejectsRecordsOutsideTheTopology) {
  AnalysisConfig config;
  config.node_count = 2;
  config.link_count = 1;
  config.lambda = {1.0};
  config.capacity = {10};

  TraceRecord rogue_link;
  rogue_link.kind = TraceKind::kCallBlocked;
  rogue_link.src = 0;
  rogue_link.dst = 1;
  rogue_link.link = 5;
  EXPECT_THROW((void)obs::analysis::analyze_records({rogue_link}, config),
               std::invalid_argument);

  TraceRecord rogue_rep;
  rogue_rep.kind = TraceKind::kCallAdmitted;
  rogue_rep.src = 0;
  rogue_rep.dst = 1;
  rogue_rep.replication = 3;
  config.replications_per_point = 1;  // one point only: rep 3 is off the map
  EXPECT_THROW((void)obs::analysis::analyze_records({rogue_rep}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace altroute
