// Golden-file tests pinning the run-manifest render FORMATS byte-for-byte:
// the manifest JSON, the OpenMetrics text exposition, the counter JSON,
// and the --profile phase/task tables.  Live manifests carry wall-clock
// durations, so the fixture pins every field (including the timings) to
// fixed values -- any diff here is a REAL format change.
//
// When a change is intentional, regenerate and commit:
//
//     REGEN_GOLDENS=1 ctest -R ManifestGolden
//
// then review `git diff tests/data/golden`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/prof/counters.hpp"
#include "obs/prof/manifest.hpp"
#include "obs/prof/profiler.hpp"
#include "study/report.hpp"

namespace prof = altroute::obs::prof;
namespace study = altroute::study;

namespace {

void check_or_regen(const std::string& name, const std::string& rendered) {
  const std::string path = std::string(GOLDEN_DIR) + "/" + name;
  if (std::getenv("REGEN_GOLDENS") != nullptr) {
    study::write_file(path, rendered);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- regenerate with REGEN_GOLDENS=1 ctest -R ManifestGolden";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str())
      << "rendered output diverged from " << path
      << "; if intentional: REGEN_GOLDENS=1 ctest -R ManifestGolden";
}

/// Every field pinned; distinctive values so a transposed column shows.
prof::RunManifest fixture_manifest() {
  prof::RunManifest m;
  m.tool = "golden_tool";
  m.git_sha = "0123abcd4567";
  m.config_fingerprint = "sweep-v1|n=4|golden-fixture";
  m.threads = 4;
  m.wall_seconds = 1.25;
  m.cpu_seconds = 4.5;
  m.counters.events_scheduled = 120000;
  m.counters.events_popped = 119000;
  m.counters.peak_queue_depth = 850;
  m.counters.arena_allocations = 310;
  m.counters.arena_reuses = 9000;
  m.counters.peak_arena_occupancy = 310;
  m.counters.calls_killed = 12;
  m.counters.preemptions = 3;
  m.counters.route_rebuilds = 2;
  m.counters.protection_resolves = 2;
  m.counters.calendar_resizes = 7;
  m.counters.memo_hits = 40;
  m.counters.memo_misses = 20;
  m.phases = {
      {"epilogue", 1, 0.001, 0.001},
      {"fanout", 1, 1.2, 4.4},
      {"prologue", 1, 0.002, 0.002},
      {"task", 4, 4.3, 4.3},
      {"task/engine", 8, 3.5, 3.5},
      {"task/trace-gen", 4, 0.75, 0.75},
  };
  m.tasks = {
      {0.9, 1, 1.01},
      {0.9, 2, 1.07},
      {1.1, 1, 1.12},
      {1.1, 2, 1.1},
  };
  return m;
}

TEST(ManifestGolden, Json) { check_or_regen("manifest.json", fixture_manifest().to_json()); }

TEST(ManifestGolden, OpenMetrics) {
  check_or_regen("manifest.om", fixture_manifest().to_openmetrics());
}

TEST(ManifestGolden, CountersJson) {
  check_or_regen("counters.json", fixture_manifest().counters.to_json() + "\n");
}

TEST(ManifestGolden, PhaseTable) {
  check_or_regen("phase_table.txt", prof::phase_table(fixture_manifest().phases));
}

TEST(ManifestGolden, TaskTable) {
  check_or_regen("task_table.txt", prof::task_table(fixture_manifest().tasks));
}

// Structural spot-checks that hold regardless of the snapshot bytes, so a
// bad regeneration cannot silently bless a spec violation.
TEST(ManifestGolden, OpenMetricsSpecInvariants) {
  const std::string om = fixture_manifest().to_openmetrics();
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_NE(om.find("altroute_memo_hits_total"), std::string::npos);
  EXPECT_EQ(om.find("altroute_peak_queue_depth_total"), std::string::npos);
  EXPECT_NE(om.find("phase=\"task/engine\""), std::string::npos);
  EXPECT_NE(om.find("load=\"1.1\",seed=\"2\""), std::string::npos);
}

}  // namespace
