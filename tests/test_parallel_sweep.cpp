// Determinism regression for the parallel sweep harness: `threads=N` must
// produce byte-identical SweepResults to `threads=1` (which bypasses the
// pool entirely).  This is the core correctness claim of the parallel
// execution layer -- replications draw from pre-derived RNG streams and
// write into pre-sized slots, so thread count can never leak into results.
#include <gtest/gtest.h>

#include <vector>

#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/stats.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;
namespace sim = altroute::sim;
namespace study = altroute::study;

namespace {

// Field-by-field exact comparison (EXPECT_EQ on double is bitwise-valued
// equality, not a tolerance check).
void expect_identical(const study::SweepResult& a, const study::SweepResult& b) {
  EXPECT_EQ(a.load_factors, b.load_factors);
  EXPECT_EQ(a.offered_erlangs, b.offered_erlangs);
  EXPECT_EQ(a.erlang_bound, b.erlang_bound);
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t pi = 0; pi < a.curves.size(); ++pi) {
    SCOPED_TRACE(a.curves[pi].name);
    EXPECT_EQ(a.curves[pi].name, b.curves[pi].name);
    EXPECT_EQ(a.curves[pi].mean_blocking, b.curves[pi].mean_blocking);
    EXPECT_EQ(a.curves[pi].ci95, b.curves[pi].ci95);
    EXPECT_EQ(a.curves[pi].alternate_fraction, b.curves[pi].alternate_fraction);
    ASSERT_EQ(a.curves[pi].pair_blocking.size(), b.curves[pi].pair_blocking.size());
    for (std::size_t li = 0; li < a.curves[pi].pair_blocking.size(); ++li) {
      const sim::SampleSummary& sa = a.curves[pi].pair_blocking[li];
      const sim::SampleSummary& sb = b.curves[pi].pair_blocking[li];
      EXPECT_EQ(sa.count, sb.count);
      EXPECT_EQ(sa.mean, sb.mean);
      EXPECT_EQ(sa.stddev, sb.stddev);
      EXPECT_EQ(sa.min, sb.min);
      EXPECT_EQ(sa.max, sb.max);
      EXPECT_EQ(sa.median, sb.median);
      EXPECT_EQ(sa.cv, sb.cv);
      EXPECT_EQ(sa.skewness, sb.skewness);
    }
  }
}

study::SweepResult quadrangle_sweep(int threads) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 26.0);
  study::SweepOptions options;
  options.load_factors = {0.8, 1.0, 1.2};
  options.seeds = 6;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.fairness = true;  // exercises the per-pair slot path too
  options.threads = threads;
  return study::run_sweep(g, nominal,
                          {study::PolicyKind::kSinglePath,
                           study::PolicyKind::kUncontrolledAlternate,
                           study::PolicyKind::kControlledAlternate},
                          options);
}

TEST(ParallelSweep, QuadrangleIdenticalAcrossThreadCounts) {
  const study::SweepResult serial = quadrangle_sweep(1);
  expect_identical(serial, quadrangle_sweep(4));
  // Oversubscribed pool (more workers than tasks per wave) and auto mode.
  expect_identical(serial, quadrangle_sweep(7));
  expect_identical(serial, quadrangle_sweep(0));
}

TEST(ParallelSweep, NsfnetIdenticalAcrossThreadCounts) {
  const net::Graph g = net::nsfnet_t3();
  study::SweepOptions options;
  options.load_factors = {0.9, 1.1};
  options.seeds = 4;
  options.measure = 20.0;
  options.warmup = 5.0;
  options.max_alt_hops = 11;
  options.fairness = true;
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate};
  options.threads = 1;
  const study::SweepResult serial =
      study::run_sweep(g, study::nsfnet_nominal_traffic(), policies, options);
  options.threads = 4;
  const study::SweepResult parallel =
      study::run_sweep(g, study::nsfnet_nominal_traffic(), policies, options);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, SeededPoliciesIdenticalAcrossThreadCounts) {
  // Policies with their own per-replication RNG state (sticky-random) and
  // load-derived construction (Ott-Krishnan) go through the same slots.
  const net::Graph g = net::full_mesh(4, 25);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 22.0);
  study::SweepOptions options;
  options.load_factors = {1.0};
  options.seeds = 5;
  options.measure = 25.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kStickyRandom, study::PolicyKind::kStickyRandomProtected,
      study::PolicyKind::kOttKrishnan, study::PolicyKind::kAdaptiveControlled};
  options.threads = 1;
  const study::SweepResult serial = study::run_sweep(g, nominal, policies, options);
  options.threads = 3;
  const study::SweepResult parallel = study::run_sweep(g, nominal, policies, options);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, WithRoutesIdenticalAcrossThreadCounts) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 24.0);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  study::SweepOptions options;
  options.load_factors = {0.9, 1.1};
  options.seeds = 4;
  options.measure = 20.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.threads = 1;
  const study::SweepResult serial = study::run_sweep_with_routes(
      g, nominal, routes, {study::PolicyKind::kControlledAlternate}, options);
  options.threads = 4;
  const study::SweepResult parallel = study::run_sweep_with_routes(
      g, nominal, routes, {study::PolicyKind::kControlledAlternate}, options);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, RejectsNegativeThreads) {
  const net::Graph g = net::full_mesh(3, 5);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(3, 1.0);
  study::SweepOptions options;
  options.threads = -1;
  EXPECT_THROW((void)study::run_sweep(g, t, {study::PolicyKind::kSinglePath}, options),
               std::invalid_argument);
}

}  // namespace
