// Exact overflow-system analysis: closed-form edges, exact ordering of the
// schemes, and the optimality gap.
#include <gtest/gtest.h>

#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "study/optimal_overflow.hpp"

namespace study = altroute::study;
namespace erlang = altroute::erlang;

namespace {

study::OverflowSystem standard() {
  study::OverflowSystem s;
  s.direct_capacity = 6;
  s.via_a_capacity = 6;
  s.via_b_capacity = 6;
  s.target_rate = 6.0;
  s.background_a_rate = 3.0;
  s.background_b_rate = 3.0;
  return s;
}

TEST(OverflowExact, SinglePathDecomposesIntoErlangSystems) {
  // Without overflow the three links are independent M/M/C/C systems.
  const study::OverflowSystem s = standard();
  const auto r = study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath);
  EXPECT_NEAR(r.target_blocking, erlang::erlang_b(6.0, 6), 1e-9);
  EXPECT_NEAR(r.background_blocking, erlang::erlang_b(3.0, 6), 1e-9);
  const double expected_loss =
      6.0 * erlang::erlang_b(6.0, 6) + 2.0 * 3.0 * erlang::erlang_b(3.0, 6);
  EXPECT_NEAR(r.loss_rate, expected_loss, 1e-8);
  EXPECT_DOUBLE_EQ(r.overflow_fraction, 0.0);
}

TEST(OverflowExact, ZeroBackgroundMakesUncontrolledIdeal) {
  // With idle alternate links, overflowing is pure gain: target blocking
  // must drop well below the single-path value, and no background exists
  // to hurt.
  study::OverflowSystem s = standard();
  s.background_a_rate = 0.0;
  s.background_b_rate = 0.0;
  const auto single = study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath);
  const auto uncontrolled =
      study::evaluate_overflow_policy(s, study::OverflowPolicy::kUncontrolled);
  EXPECT_LT(uncontrolled.target_blocking, 0.25 * single.target_blocking);
  EXPECT_GT(uncontrolled.overflow_fraction, 0.05);
}

TEST(OverflowExact, ExactSchemeOrderingAtHeavyBackground) {
  // Busy alternate links: uncontrolled overflow steals from background
  // primaries and loses MORE calls overall than single-path; controlled
  // sits at or below single-path (the guarantee, in exact arithmetic);
  // optimal is at or below everything.
  study::OverflowSystem s = standard();
  s.target_rate = 8.0;
  s.background_a_rate = 5.5;
  s.background_b_rate = 5.5;
  const auto single = study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath);
  const auto uncontrolled =
      study::evaluate_overflow_policy(s, study::OverflowPolicy::kUncontrolled);
  const auto controlled =
      study::evaluate_overflow_policy(s, study::OverflowPolicy::kControlled);
  const auto optimal = study::evaluate_overflow_policy(s, study::OverflowPolicy::kOptimal);
  EXPECT_GT(uncontrolled.loss_rate, single.loss_rate);
  EXPECT_LE(controlled.loss_rate, single.loss_rate + 1e-9);
  EXPECT_LE(optimal.loss_rate, controlled.loss_rate + 1e-9);
  EXPECT_LE(optimal.loss_rate, uncontrolled.loss_rate + 1e-9);
  // Background suffers under uncontrolled overflow specifically.
  EXPECT_GT(uncontrolled.background_blocking, single.background_blocking);
}

TEST(OverflowExact, ControlledGuaranteeHoldsAcrossLoads) {
  for (double target = 2.0; target <= 10.0; target += 2.0) {
    for (double background = 1.0; background <= 5.0; background += 2.0) {
      study::OverflowSystem s = standard();
      s.target_rate = target;
      s.background_a_rate = background;
      s.background_b_rate = background;
      const auto single =
          study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath);
      const auto controlled =
          study::evaluate_overflow_policy(s, study::OverflowPolicy::kControlled);
      EXPECT_LE(controlled.loss_rate, single.loss_rate + 1e-9)
          << "target=" << target << " background=" << background;
    }
  }
}

TEST(OverflowExact, OptimalNeverWorseThanAnyFixedRule) {
  for (double target = 3.0; target <= 9.0; target += 3.0) {
    study::OverflowSystem s = standard();
    s.target_rate = target;
    const auto optimal = study::evaluate_overflow_policy(s, study::OverflowPolicy::kOptimal);
    for (const auto policy : {study::OverflowPolicy::kSinglePath,
                              study::OverflowPolicy::kUncontrolled,
                              study::OverflowPolicy::kControlled}) {
      const auto fixed = study::evaluate_overflow_policy(s, policy);
      EXPECT_LE(optimal.loss_rate, fixed.loss_rate + 1e-9) << "target=" << target;
    }
  }
}

TEST(OverflowExact, ControlledReservationsComeFromEqFifteen) {
  const study::OverflowSystem s = standard();
  const auto r = study::evaluate_overflow_policy(s, study::OverflowPolicy::kControlled);
  EXPECT_EQ(r.reservation_a, erlang::min_state_protection(3.0, 6, 2));
  EXPECT_EQ(r.reservation_b, erlang::min_state_protection(3.0, 6, 2));
}

TEST(OverflowExact, Validation) {
  study::OverflowSystem s = standard();
  s.direct_capacity = 0;
  EXPECT_THROW((void)study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath),
               std::invalid_argument);
  s = standard();
  s.target_rate = -1.0;
  EXPECT_THROW((void)study::evaluate_overflow_policy(s, study::OverflowPolicy::kSinglePath),
               std::invalid_argument);
}

}  // namespace
