// Scenario subsystem: JSON parsing (and its rejection paths), the event
// model's validation, and the runner's in-flight-call semantics -- kills on
// failure, newest-first preemption on capacity shrink (occupancy never
// exceeds capacity), route-table rebuilds, and Eq. 15 re-solves.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/protection.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "scenario/json.hpp"
#include "scenario/parse.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/load_profile.hpp"

namespace core = altroute::core;
namespace loss = altroute::loss;
namespace net = altroute::net;
namespace routing = altroute::routing;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;

namespace {

// ---------------------------------------------------------------------------
// JSON parser

TEST(ScenarioJson, ParsesEveryValueKind) {
  const scenario::JsonValue v = scenario::parse_json(
      R"({"s": "a\"b\né", "n": -1.5e2, "t": true, "f": false, "z": null,
          "arr": [1, 2, 3], "obj": {"k": 7}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->string, "a\"b\n\xC3\xA9");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -150.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_EQ(v.find("z")->kind, scenario::JsonValue::Kind::kNull);
  ASSERT_EQ(v.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("arr")->array[2].number, 3.0);
  EXPECT_DOUBLE_EQ(v.find("obj")->find("k")->number, 7.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ScenarioJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)scenario::parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("01e"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("truth"), std::invalid_argument);
  EXPECT_THROW((void)scenario::parse_json("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenario parsing

TEST(ScenarioParse, ParsesAllEventKinds) {
  const scenario::Scenario s = scenario::scenario_from_json(R"({
    "name": "kitchen-sink",
    "events": [
      {"time": 5,  "type": "traffic_scale", "factor": 1.5},
      {"time": 10, "type": "link_fail", "a": 2, "b": 3},
      {"time": 10, "type": "resolve_protection"},
      {"time": 12, "type": "capacity_set", "a": 0, "b": 1, "capacity": 30},
      {"time": 14, "type": "capacity_scale", "a": 0, "b": 1, "factor": 0.5},
      {"time": 20, "type": "link_repair", "a": 2, "b": 3}
    ]})");
  EXPECT_EQ(s.name, "kitchen-sink");
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.events[0].kind, scenario::EventKind::kTrafficScale);
  EXPECT_DOUBLE_EQ(s.events[0].factor, 1.5);
  EXPECT_EQ(s.events[1].kind, scenario::EventKind::kLinkFail);
  EXPECT_EQ(s.events[1].node_a, 2);
  EXPECT_EQ(s.events[1].node_b, 3);
  EXPECT_EQ(s.events[2].kind, scenario::EventKind::kResolveProtection);
  EXPECT_EQ(s.events[3].kind, scenario::EventKind::kCapacitySet);
  EXPECT_EQ(s.events[3].capacity, 30);
  EXPECT_EQ(s.events[4].kind, scenario::EventKind::kCapacityScale);
  EXPECT_DOUBLE_EQ(s.events[4].factor, 0.5);
  EXPECT_EQ(s.events[5].kind, scenario::EventKind::kLinkRepair);
}

TEST(ScenarioParse, RejectsInvalidScenarios) {
  const auto reject = [](const char* json) {
    EXPECT_THROW((void)scenario::scenario_from_json(json), std::invalid_argument) << json;
  };
  reject("[]");                             // top level must be an object
  reject("{}");                             // events required
  reject(R"({"events": 3})");               // events must be an array
  reject(R"({"events": [], "bogus": 1})");  // unknown top-level field
  reject(R"({"events": [{"time": 1, "type": "melt_down"}]})");   // unknown type
  reject(R"({"events": [{"time": 1, "type": "link_fail"}]})");   // missing a/b
  reject(R"({"events": [{"time": 1, "type": "link_fail", "a": 0.5, "b": 1}]})");
  reject(R"({"events": [{"time": 1, "type": "link_fail", "a": 0, "b": 1, "x": 2}]})");
  reject(R"({"events": [{"time": -1, "type": "resolve_protection"}]})");  // negative time
  reject(R"({"events": [{"time": 9, "type": "resolve_protection"},
                        {"time": 5, "type": "resolve_protection"}]})");   // out of order
  reject(R"({"events": [{"time": 1, "type": "link_fail", "a": 2, "b": 2}]})");  // self-pair
  reject(R"({"events": [{"time": 1, "type": "capacity_set", "a": 0, "b": 1,
                         "capacity": 0}]})");                             // capacity < 1
  reject(R"({"events": [{"time": 1, "type": "capacity_scale", "a": 0, "b": 1,
                         "factor": 0}]})");                               // factor <= 0
  reject(R"({"events": [{"time": 1, "type": "traffic_scale", "factor": -2}]})");
}

TEST(ScenarioParse, ValidateCatchesHandBuiltMistakes) {
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::link_fail(10.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::link_repair(5.0, 0, 1));  // out of order
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.events.clear();
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(-3.0, 1.0));  // negative time
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Traffic profile and trace shaping

TEST(ScenarioTraffic, ProfileFollowsTrafficScaleEvents) {
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::link_fail(10.0, 0, 1));  // ignored by profile
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(30.0, 2.0));
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(30.0, 2.5));  // same time: last wins
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(60.0, 1.0));
  const sim::LoadProfile profile = s.traffic_profile();
  EXPECT_DOUBLE_EQ(profile.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.factor_at(29.9), 1.0);
  EXPECT_DOUBLE_EQ(profile.factor_at(30.0), 2.5);
  EXPECT_DOUBLE_EQ(profile.factor_at(59.9), 2.5);
  EXPECT_DOUBLE_EQ(profile.factor_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.max_factor(), 2.5);
}

TEST(ScenarioTraffic, TraceRespondsToTrafficScaleOnly) {
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(3, 5.0);
  scenario::Scenario surge;
  surge.events.push_back(scenario::ScenarioEvent::traffic_scale(50.0, 3.0));
  const sim::CallTrace base = scenario::make_scenario_trace(nominal, {}, 100.0, 7);
  const sim::CallTrace surged = scenario::make_scenario_trace(nominal, surge, 100.0, 7);
  const auto count_in = [](const sim::CallTrace& trace, double lo, double hi) {
    long long count = 0;
    for (const sim::CallRecord& c : trace.calls) {
      if (c.arrival >= lo && c.arrival < hi) ++count;
    }
    return count;
  };
  // Roughly 3x the arrivals after the surge, unchanged count statistics
  // before it (the thinning envelope differs, so not call-for-call equal).
  EXPECT_NEAR(static_cast<double>(count_in(surged, 50, 100)),
              3.0 * static_cast<double>(count_in(base, 50, 100)),
              0.35 * static_cast<double>(count_in(surged, 50, 100)));
  // Failure/repair events never perturb the trace: common random numbers
  // between a failure scenario and the intact run.
  scenario::Scenario failure;
  failure.events.push_back(scenario::ScenarioEvent::link_fail(40.0, 0, 1));
  const sim::CallTrace failed = scenario::make_scenario_trace(nominal, failure, 100.0, 7);
  ASSERT_EQ(failed.size(), base.size());
  for (std::size_t i = 0; i < failed.size(); ++i) {
    EXPECT_EQ(failed.calls[i].arrival, base.calls[i].arrival);
    EXPECT_EQ(failed.calls[i].src, base.calls[i].src);
    EXPECT_EQ(failed.calls[i].dst, base.calls[i].dst);
  }
}

// ---------------------------------------------------------------------------
// Runner semantics

sim::CallTrace hand_trace(std::vector<sim::CallRecord> calls, double horizon) {
  sim::CallTrace trace;
  trace.calls = std::move(calls);
  trace.horizon = horizon;
  return trace;
}

TEST(ScenarioRunner, LinkFailKillsInFlightCallsAndBlocksUntilRepair) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(2, 1.0);
  // One long call in flight when the facility fails; one call during the
  // outage (unreachable); one after repair.
  const sim::CallTrace trace = hand_trace(
      {
          {1.0, 50.0, net::NodeId(0), net::NodeId(1), 1},
          {6.0, 1.0, net::NodeId(0), net::NodeId(1), 1},
          {12.0, 1.0, net::NodeId(0), net::NodeId(1), 1},
      },
      20.0);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::link_fail(5.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::link_repair(10.0, 0, 1));
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 2;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(g, traffic, policy, trace, s, options);

  EXPECT_EQ(r.run.offered, 3);
  EXPECT_EQ(r.run.blocked, 1);          // the call during the outage
  EXPECT_EQ(r.run.carried_primary, 2);  // before failure + after repair
  EXPECT_EQ(r.dropped, 1);              // the long call was killed at t = 5
  ASSERT_EQ(r.applied.size(), 2u);
  EXPECT_EQ(r.applied[0].kind, scenario::EventKind::kLinkFail);
  EXPECT_EQ(r.applied[0].links_changed, 2);
  EXPECT_EQ(r.applied[0].calls_killed, 1);
  EXPECT_EQ(r.applied[1].kind, scenario::EventKind::kLinkRepair);
  EXPECT_EQ(r.applied[1].links_changed, 2);
  EXPECT_EQ(r.applied[1].calls_killed, 0);
  // The killed call's circuits were released: final occupancy counts only
  // the t = 12 call (ends at 13) -- none at the horizon.
  for (const scenario::FinalLinkState& link : r.final_links) {
    EXPECT_EQ(link.occupancy, 0);
    EXPECT_TRUE(link.enabled);
  }
}

TEST(ScenarioRunner, CapacityShrinkPreemptsNewestFirstAndCapsAdmission) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(2, 1.0);
  std::vector<sim::CallRecord> calls;
  // Eight long calls fill the forward link to 8 of 10...
  for (int i = 0; i < 8; ++i) {
    calls.push_back({1.0 + 0.1 * i, 100.0, net::NodeId(0), net::NodeId(1), 1});
  }
  // ...then the link shrinks to 5 at t = 5 (kills the 3 newest), a probe at
  // t = 6 finds it full, and after growth back to 7 a probe at t = 8 fits.
  calls.push_back({6.0, 1.0, net::NodeId(0), net::NodeId(1), 1});
  calls.push_back({8.0, 1.0, net::NodeId(0), net::NodeId(1), 1});
  const sim::CallTrace trace = hand_trace(std::move(calls), 20.0);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::capacity_set(5.0, 0, 1, 5));
  s.events.push_back(scenario::ScenarioEvent::capacity_set(7.0, 0, 1, 7));
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 2;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(g, traffic, policy, trace, s, options);

  EXPECT_EQ(r.run.offered, 10);
  EXPECT_EQ(r.run.blocked, 1);  // only the t = 6 probe
  EXPECT_EQ(r.dropped, 3);
  ASSERT_EQ(r.applied.size(), 2u);
  EXPECT_EQ(r.applied[0].calls_killed, 3);
  EXPECT_EQ(r.applied[1].calls_killed, 0);
  // Occupancy never exceeds capacity, including at the horizon: 5 original
  // survivors plus the t = 8 call departed by then?  The survivors hold for
  // 100 units, so they are still up: occupancy 5+1=6 <= capacity 7.
  EXPECT_EQ(r.final_links[0].capacity, 7);
  EXPECT_EQ(r.final_links[0].occupancy, 5);  // t = 8 call ended at t = 9
  EXPECT_LE(r.final_links[0].occupancy, r.final_links[0].capacity);
}

TEST(ScenarioRunner, CapacityScaleRoundsAndNeverDropsBelowOneCircuit) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 9);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(2, 1.0);
  const sim::CallTrace trace = hand_trace({{1.0, 1.0, net::NodeId(0), net::NodeId(1), 1}}, 10.0);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(3.0, 0, 1, 0.5));   // 9 -> 5 (round)
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(4.0, 0, 1, 0.01));  // floor at 1
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 2;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(g, traffic, policy, trace, s, options);
  EXPECT_EQ(r.final_links[0].capacity, 1);
  ASSERT_EQ(r.applied.size(), 2u);
  EXPECT_EQ(r.applied[0].links_changed, 2);
}

TEST(ScenarioRunner, RouteTableRebuildsAcrossFailAndRepair) {
  // On the quadrangle every primary is the 1-hop direct link.  While 0<->1
  // is down, min-hop primaries for that pair become 2-hop; after repair
  // they return to 1-hop.  The hop census exposes exactly that.
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, 1.0);
  const sim::CallTrace trace = hand_trace(
      {
          {2.0, 1.0, net::NodeId(0), net::NodeId(1), 1},
          {15.0, 1.0, net::NodeId(0), net::NodeId(1), 1},
          {35.0, 1.0, net::NodeId(0), net::NodeId(1), 1},
      },
      40.0);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::link_fail(10.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::link_repair(30.0, 0, 1));
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 3;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(g, traffic, policy, trace, s, options);
  EXPECT_EQ(r.run.blocked, 0);
  ASSERT_GE(r.run.carried_by_hops.size(), 3u);
  EXPECT_EQ(r.run.carried_by_hops[1], 2);  // before failure + after repair
  EXPECT_EQ(r.run.carried_by_hops[2], 1);  // rerouted during the outage
}

TEST(ScenarioRunner, ResolveProtectionInstallsEq15Levels) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, 20.0);
  const sim::CallTrace trace = hand_trace({{1.0, 1.0, net::NodeId(0), net::NodeId(1), 1}}, 10.0);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(5.0, 1.5));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(5.0));
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 3;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(g, traffic, policy, trace, s, options);
  // The installed levels must be exactly Eq. 15 on the scaled matrix.
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const std::vector<int> expected = core::protection_levels(g, routes, traffic.scaled(1.5), 3);
  ASSERT_EQ(r.final_links.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(r.final_links[k].reservation, expected[k]) << "link " << k;
  }
}

TEST(ScenarioRunner, RejectsBadInputs) {
  const net::Graph g = net::full_mesh(3, 10);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(3, 1.0);
  const sim::CallTrace trace = hand_trace({{1.0, 1.0, net::NodeId(0), net::NodeId(1), 1}}, 5.0);
  loss::SinglePathPolicy policy;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  // Node index outside the graph.
  scenario::Scenario bad_node;
  bad_node.events.push_back(scenario::ScenarioEvent::link_fail(1.0, 0, 7));
  EXPECT_THROW((void)scenario::run_scenario(g, traffic, policy, trace, bad_node, options),
               std::invalid_argument);
  // Valid nodes, but no such duplex facility on a graph missing the edge.
  net::Graph path(3);
  path.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  path.add_duplex(net::NodeId(1), net::NodeId(2), 10);
  scenario::Scenario bad_pair;
  bad_pair.events.push_back(scenario::ScenarioEvent::link_fail(1.0, 0, 2));
  EXPECT_THROW((void)scenario::run_scenario(path, traffic, policy, trace, bad_pair, options),
               std::invalid_argument);
  // Warmup outside [0, horizon).
  scenario::ScenarioEngineOptions bad_warmup;
  bad_warmup.warmup = 5.0;
  EXPECT_THROW((void)scenario::run_scenario(g, traffic, policy, trace, {}, bad_warmup),
               std::invalid_argument);
}

}  // namespace
