// Randomized differential test: legacy binary-heap engine vs the calendar
// -queue engine, and memoized vs direct Eq.-15 resolves, over a corpus of
// random small meshes and loads.
//
// Every (graph, traffic, trace, policy) case is replayed through each
// engine configuration and the results must be BIT-identical: every
// counter, every per-pair cell, every mean-occupancy double, the rendered
// metrics JSON, and every structured trace record.  This is the acceptance
// gate for the hot-path overhaul -- the optimizations must be invisible to
// every observable output at any thread count (the sweep layers replay
// these same engines), not merely statistically equivalent.
//
// Seeds come from tests/data/diff_seeds/seeds.txt; append a seed when a
// differential failure is found and fixed, and it becomes a regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "routing/route_table.hpp"
#include "scenario/runner.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace obs = altroute::obs;
namespace routing = altroute::routing;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;

namespace {

std::vector<std::uint64_t> load_seed_corpus() {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(std::string(DIFF_SEEDS_DIR) + "/seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    seeds.push_back(std::stoull(line.substr(start)));
  }
  return seeds;
}

/// The random case a seed expands into: a strongly-connected small mesh
/// under uniform load heavy enough to block, plus trace/routing knobs.
struct DiffCase {
  net::Graph graph;
  net::TrafficMatrix traffic;
  sim::CallTrace trace;
  routing::RouteTable routes;
  int max_alt_hops;
  std::vector<int> reservations;
};

DiffCase make_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int n = 4 + static_cast<int>(rng() % 4);                 // 4..7 nodes
  const double p = 0.25 + 0.5 * std::uniform_real_distribution<double>()(rng);
  const int capacity = 4 + static_cast<int>(rng() % 12);         // 4..15 circuits
  const double load = (0.6 + 0.7 * std::uniform_real_distribution<double>()(rng)) *
                      static_cast<double>(capacity);             // per-pair Erlangs
  const int max_alt_hops = 2 + static_cast<int>(rng() % 3);      // 2..4

  DiffCase c{net::erdos_renyi(n, p, capacity, rng()),
             net::TrafficMatrix::uniform(n, load),
             {},
             {},
             max_alt_hops,
             {}};
  c.trace = sim::generate_trace(c.traffic, 30.0, rng());
  c.routes = routing::build_min_hop_routes(c.graph, max_alt_hops);
  c.reservations = core::protection_levels(c.graph, c.routes, c.traffic, max_alt_hops);
  return c;
}

/// Full bit-level equality of two run results.  operator== on the vectors
/// is exact (doubles compare with ==), which is the point: the engines
/// must agree to the last bit, not to a tolerance.
void expect_identical(const loss::RunResult& a, const loss::RunResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.carried_primary, b.carried_primary);
  EXPECT_EQ(a.carried_alternate, b.carried_alternate);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t i = 0; i < a.per_class.size(); ++i) {
    EXPECT_EQ(a.per_class[i].bandwidth, b.per_class[i].bandwidth);
    EXPECT_EQ(a.per_class[i].offered, b.per_class[i].offered);
    EXPECT_EQ(a.per_class[i].blocked, b.per_class[i].blocked);
  }
  ASSERT_EQ(a.per_pair.size(), b.per_pair.size());
  for (std::size_t i = 0; i < a.per_pair.size(); ++i) {
    EXPECT_EQ(a.per_pair[i].offered, b.per_pair[i].offered);
    EXPECT_EQ(a.per_pair[i].blocked, b.per_pair[i].blocked);
    EXPECT_EQ(a.per_pair[i].carried_primary, b.per_pair[i].carried_primary);
    EXPECT_EQ(a.per_pair[i].carried_alternate, b.per_pair[i].carried_alternate);
  }
  EXPECT_EQ(a.primary_losses_at_link, b.primary_losses_at_link);
  EXPECT_EQ(a.mean_link_occupancy, b.mean_link_occupancy);
  EXPECT_EQ(a.bin_offered, b.bin_offered);
  EXPECT_EQ(a.bin_blocked, b.bin_blocked);
  EXPECT_EQ(a.carried_by_hops, b.carried_by_hops);
  EXPECT_EQ(a.node_count, b.node_count);
}

/// Renders every buffered trace record to its canonical JSONL line.
std::vector<std::string> render(const obs::VectorTraceSink& sink) {
  std::vector<std::string> lines;
  lines.reserve(sink.records.size());
  for (const obs::TraceRecord& r : sink.records) {
    lines.push_back(obs::JsonlTraceSink::format(r));
  }
  return lines;
}

/// One instrumented static-engine run under the given queue flag.
struct ObservedRun {
  loss::RunResult result;
  std::string metrics_json;
  std::vector<std::string> trace_lines;
};

ObservedRun run_static(const DiffCase& c, loss::RoutingPolicy& policy, bool legacy_queue) {
  obs::MetricRegistry metrics;
  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  obs::Probe probe(&metrics, &sink);
  loss::EngineOptions options;
  options.warmup = 5.0;
  options.link_stats = true;
  options.time_bins = 8;
  options.reservations = c.reservations;
  options.legacy_event_queue = legacy_queue;
  options.probe = &probe;
  ObservedRun run;
  run.result = loss::run_trace(c.graph, c.routes, policy, c.trace, options);
  run.metrics_json = metrics.to_json();
  run.trace_lines = render(sink);
  return run;
}

/// A small scenario exercising every event kind against the case's mesh.
/// erdos_renyi rings a RANDOM node permutation, so which duplex facilities
/// exist depends on the seed; pick the first two real ones.
scenario::Scenario make_scenario(const net::Graph& g) {
  std::vector<std::pair<int, int>> facilities;
  for (const net::Link& l : g.links()) {
    const int a = static_cast<int>(l.src.index());
    const int b = static_cast<int>(l.dst.index());
    if (a < b && (facilities.empty() || facilities.back() != std::make_pair(a, b))) {
      facilities.emplace_back(a, b);
    }
    if (facilities.size() == 2) break;
  }
  const auto [s0, d0] = facilities.at(0);
  const auto [s1, d1] = facilities.at(1);
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(8.0, s0, d0, 0.5));
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(12.0, 1.4));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(12.0));
  s.events.push_back(scenario::ScenarioEvent::link_fail(16.0, s1, d1));
  s.events.push_back(scenario::ScenarioEvent::link_repair(22.0, s1, d1));
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(25.0, s0, d0, 2.0));
  return s;
}

struct ObservedScenarioRun {
  scenario::ScenarioRunResult result;
  std::string metrics_json;
  std::vector<std::string> trace_lines;
};

ObservedScenarioRun run_dynamic(const DiffCase& c, loss::RoutingPolicy& policy,
                                bool legacy_queue, bool memoize) {
  obs::MetricRegistry metrics;
  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  obs::Probe probe(&metrics, &sink);
  scenario::ScenarioEngineOptions options;
  options.warmup = 5.0;
  options.max_alt_hops = c.max_alt_hops;
  options.reservations = c.reservations;
  options.auto_resolve_protection = true;
  options.legacy_event_queue = legacy_queue;
  options.memoize_protection = memoize;
  options.probe = &probe;
  ObservedScenarioRun run;
  run.result =
      scenario::run_scenario(c.graph, c.traffic, policy, c.trace, make_scenario(c.graph), options);
  run.metrics_json = metrics.to_json();
  run.trace_lines = render(sink);
  return run;
}

void expect_identical(const ObservedScenarioRun& a, const ObservedScenarioRun& b) {
  expect_identical(a.result.run, b.result.run);
  EXPECT_EQ(a.result.dropped, b.result.dropped);
  ASSERT_EQ(a.result.applied.size(), b.result.applied.size());
  for (std::size_t i = 0; i < a.result.applied.size(); ++i) {
    EXPECT_EQ(a.result.applied[i].time, b.result.applied[i].time);
    EXPECT_EQ(a.result.applied[i].kind, b.result.applied[i].kind);
    EXPECT_EQ(a.result.applied[i].links_changed, b.result.applied[i].links_changed);
    EXPECT_EQ(a.result.applied[i].calls_killed, b.result.applied[i].calls_killed);
  }
  ASSERT_EQ(a.result.final_links.size(), b.result.final_links.size());
  for (std::size_t i = 0; i < a.result.final_links.size(); ++i) {
    EXPECT_EQ(a.result.final_links[i].capacity, b.result.final_links[i].capacity);
    EXPECT_EQ(a.result.final_links[i].reservation, b.result.final_links[i].reservation);
    EXPECT_EQ(a.result.final_links[i].occupancy, b.result.final_links[i].occupancy);
    EXPECT_EQ(a.result.final_links[i].enabled, b.result.final_links[i].enabled);
  }
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_lines, b.trace_lines);
}

}  // namespace

TEST(EngineDifferential, SeedCorpusLoads) {
  const std::vector<std::uint64_t> seeds = load_seed_corpus();
  ASSERT_GE(seeds.size(), 10u) << "diff_seeds corpus missing or truncated";
}

// Static engine: heap vs calendar queue, three policies per seed.
TEST(EngineDifferential, StaticEngineQueueDifferential) {
  for (const std::uint64_t seed : load_seed_corpus()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const DiffCase c = make_case(seed);

    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    loss::RoutingPolicy* const policies[] = {&single, &uncontrolled, &controlled};
    for (loss::RoutingPolicy* policy : policies) {
      SCOPED_TRACE(std::string("policy=") + std::string(policy->name()));
      const ObservedRun legacy = run_static(c, *policy, /*legacy_queue=*/true);
      const ObservedRun calendar = run_static(c, *policy, /*legacy_queue=*/false);
      expect_identical(legacy.result, calendar.result);
      EXPECT_EQ(legacy.metrics_json, calendar.metrics_json);
      EXPECT_EQ(legacy.trace_lines, calendar.trace_lines);
      // The runs must actually exercise the system: calls offered, and at
      // these loads some blocking, otherwise the differential is vacuous.
      EXPECT_GT(legacy.result.offered, 0);
    }
  }
}

// Scenario engine: {heap, calendar} x {memo, direct} -- all four
// configurations must agree bit for bit, through failures, repairs,
// capacity changes, preemption, and Eq.-15 re-solves.
TEST(EngineDifferential, ScenarioEngineQueueAndMemoDifferential) {
  for (const std::uint64_t seed : load_seed_corpus()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const DiffCase c = make_case(seed);
    core::ControlledAlternatePolicy controlled;

    const ObservedScenarioRun baseline =
        run_dynamic(c, controlled, /*legacy_queue=*/true, /*memoize=*/false);
    const ObservedScenarioRun calendar_direct =
        run_dynamic(c, controlled, /*legacy_queue=*/false, /*memoize=*/false);
    const ObservedScenarioRun heap_memo =
        run_dynamic(c, controlled, /*legacy_queue=*/true, /*memoize=*/true);
    const ObservedScenarioRun calendar_memo =
        run_dynamic(c, controlled, /*legacy_queue=*/false, /*memoize=*/true);
    expect_identical(baseline, calendar_direct);
    expect_identical(baseline, heap_memo);
    expect_identical(baseline, calendar_memo);
    EXPECT_GT(baseline.result.run.offered, 0);
  }
}

// The blocked-call path matters too: a mesh under crushing load where most
// calls block stresses first-blocking-link attribution and the
// reserved-rejection diagnosis identically through both engines.
TEST(EngineDifferential, OverloadedMeshDifferential) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{17}, std::uint64_t{99}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const int n = 4;
    const int capacity = 3;
    DiffCase c{net::erdos_renyi(n, 0.5, capacity, rng()),
               net::TrafficMatrix::uniform(n, 3.0 * capacity),
               {},
               {},
               3,
               {}};
    c.trace = sim::generate_trace(c.traffic, 25.0, rng());
    c.routes = routing::build_min_hop_routes(c.graph, c.max_alt_hops);
    c.reservations = core::protection_levels(c.graph, c.routes, c.traffic, c.max_alt_hops);

    core::ControlledAlternatePolicy controlled;
    const ObservedRun legacy = run_static(c, controlled, /*legacy_queue=*/true);
    const ObservedRun calendar = run_static(c, controlled, /*legacy_queue=*/false);
    expect_identical(legacy.result, calendar.result);
    EXPECT_EQ(legacy.metrics_json, calendar.metrics_json);
    EXPECT_EQ(legacy.trace_lines, calendar.trace_lines);
    EXPECT_GT(legacy.result.blocked, 0);
  }
}
