// Observability layer: registry semantics, trace formatting, probe hooks,
// engine integration, and the ISSUE's counted-event acceptance scenario.
//
// The expensive tests at the bottom replay the NSFNet failure-recovery
// scenario with instrumentation on and assert EXACT counted events: every
// kill happens at t = 40, the kill total equals the intact run's occupancy
// on the failed facility at the failure instant (common random numbers),
// and the controlled policy never admits an alternate into the protected
// band.  Merged metrics and the trace stream must be bit-identical at any
// thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controlled_policy.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "routing/route_table.hpp"
#include "scenario/scenario.hpp"
#include "sim/call_trace.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/report.hpp"

namespace core = altroute::core;
namespace loss = altroute::loss;
namespace net = altroute::net;
namespace obs = altroute::obs;
namespace routing = altroute::routing;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;
namespace study = altroute::study;

namespace {

// ---------------------------------------------------------------------------
// MetricRegistry.

TEST(MetricRegistry, CountersGaugesHistogramsRoundTrip) {
  obs::MetricRegistry reg;
  const obs::MetricId c = reg.counter("calls");
  EXPECT_EQ(reg.counter("calls"), c);  // registration is idempotent
  reg.add(c);
  reg.add(c, 4);
  EXPECT_EQ(reg.counter_value("calls"), 5);

  const obs::MetricId g = reg.gauge("level");
  reg.add_gauge(g, 1.5);
  reg.add_gauge(g, -0.25);
  EXPECT_DOUBLE_EQ(reg.gauge_value("level"), 1.25);

  const obs::MetricId h = reg.histogram("hops", {1.0, 2.0, 4.0});
  reg.observe(h, 1.0);   // bucket 0 (<= 1)
  reg.observe(h, 2.0);   // bucket 1
  reg.observe(h, 3.0);   // bucket 2 (<= 4)
  reg.observe(h, 99.0);  // overflow bucket
  EXPECT_EQ(reg.histogram_counts("hops"), (std::vector<long long>{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(reg.histogram_sum("hops"), 105.0);

  EXPECT_THROW((void)reg.counter_value("nope"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram_counts("nope"), std::invalid_argument);
}

TEST(MetricRegistry, HistogramSchemaIsEnforced) {
  obs::MetricRegistry reg;
  const obs::MetricId h = reg.histogram("hops", {1.0, 2.0});
  EXPECT_EQ(reg.histogram("hops", {1.0, 2.0}), h);  // same bounds: same id
  EXPECT_THROW((void)reg.histogram("hops", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("bad", {2.0, 1.0}), std::invalid_argument);
}

TEST(MetricRegistry, LinkCountersAndOccupancyGrid) {
  obs::MetricRegistry reg;
  reg.set_occupancy_grid(10.0, 2.0, 3);
  reg.set_link_count(2);
  const obs::MetricId k = reg.link_counter("kills");
  reg.add_link(k, 0);
  reg.add_link(k, 1, 3);
  EXPECT_EQ(reg.link_counter_values("kills"), (std::vector<long long>{1, 3}));
  EXPECT_EQ(reg.link_counter_total("kills"), 4);

  reg.record_occupancy(0, 0, 7);
  reg.record_occupancy(2, 1, 5);
  EXPECT_EQ(reg.occupancy_samples(), 3);
  EXPECT_DOUBLE_EQ(reg.occupancy_grid_t0(), 10.0);
  EXPECT_DOUBLE_EQ(reg.occupancy_grid_dt(), 2.0);
  EXPECT_EQ(reg.occupancy_at(0, 0), 7);
  EXPECT_EQ(reg.occupancy_at(0, 1), 0);
  EXPECT_EQ(reg.occupancy_at(2, 1), 5);

  EXPECT_THROW(reg.set_link_count(3), std::invalid_argument);       // size is fixed
  EXPECT_THROW(reg.set_occupancy_grid(0, 1, 2), std::invalid_argument);  // grid is fixed
}

TEST(MetricRegistry, MergeAdoptsSumsAndChecksSchema) {
  obs::MetricRegistry a;
  a.set_link_count(2);
  a.add(a.counter("calls"), 2);
  a.observe(a.histogram("hops", {1.0, 2.0}), 2.0);
  a.add_link(a.link_counter("kills"), 1, 5);

  obs::MetricRegistry merged;
  EXPECT_TRUE(merged.empty());
  merged.merge(a);  // empty registry adopts the incoming schema + values
  merged.merge(a);  // second merge sums element-wise
  EXPECT_EQ(merged.counter_value("calls"), 4);
  EXPECT_EQ(merged.histogram_counts("hops"), (std::vector<long long>{0, 2, 0}));
  EXPECT_DOUBLE_EQ(merged.histogram_sum("hops"), 4.0);
  EXPECT_EQ(merged.link_counter_values("kills"), (std::vector<long long>{0, 10}));

  obs::MetricRegistry other;
  other.add(other.counter("something_else"));
  EXPECT_THROW(merged.merge(other), std::invalid_argument);
}

TEST(MetricRegistry, ToJsonIsDeterministicAndStructured) {
  const auto build = [] {
    obs::MetricRegistry reg;
    reg.set_occupancy_grid(0.0, 1.0, 2);
    reg.set_link_count(2);
    reg.add(reg.counter("calls"), 3);
    reg.add_gauge(reg.gauge("load"), 0.5);
    reg.observe(reg.histogram("hops", {1.0, 2.0}), 2.0);
    reg.add_link(reg.link_counter("kills"), 0, 1);
    reg.record_occupancy(1, 1, 9);
    return reg.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  EXPECT_EQ(json,
            "{\"counters\":{\"calls\":3},\"gauges\":{\"load\":0.5},"
            "\"histograms\":{\"hops\":{\"bounds\":[1,2],\"counts\":[0,1,0],\"sum\":2}},"
            "\"link_counters\":{\"kills\":[1,0]},"
            "\"occupancy_grid\":{\"t0\":0,\"dt\":1,\"samples\":[[0,0],[0,9]]}}");
}

// ---------------------------------------------------------------------------
// Trace filter and JSONL formatting.

TEST(Trace, ParseTraceFilter) {
  EXPECT_EQ(obs::parse_trace_filter(""), obs::kAllTraceKinds);
  EXPECT_EQ(obs::parse_trace_filter("all"), obs::kAllTraceKinds);
  EXPECT_EQ(obs::parse_trace_filter("call_killed"),
            static_cast<unsigned>(obs::TraceKind::kCallKilled));
  EXPECT_EQ(obs::parse_trace_filter("call_killed,event_applied"),
            static_cast<unsigned>(obs::TraceKind::kCallKilled) |
                static_cast<unsigned>(obs::TraceKind::kEventApplied));
  try {
    (void)obs::parse_trace_filter("call_killed,bogus_kind");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus_kind"), std::string::npos);
    // The error enumerates every valid kind so the user never has to guess.
    for (const obs::TraceKind kind : obs::all_trace_kinds()) {
      EXPECT_NE(what.find(std::string(obs::trace_kind_name(kind))), std::string::npos)
          << what;
    }
  }
  EXPECT_THROW((void)obs::parse_trace_filter(","), std::invalid_argument);
}

TEST(Trace, KindListEnumeratesEveryKind) {
  // all_trace_kinds() and kAllTraceKinds must agree: or-ing every listed
  // kind reconstructs the full mask, and each name parses back to its bit.
  unsigned mask = 0;
  for (const obs::TraceKind kind : obs::all_trace_kinds()) {
    mask |= static_cast<unsigned>(kind);
    EXPECT_EQ(obs::parse_trace_filter(obs::trace_kind_name(kind)),
              static_cast<unsigned>(kind));
  }
  EXPECT_EQ(mask, obs::kAllTraceKinds);
  // The printable list contains each token exactly once, space-separated.
  const std::string list = obs::trace_kind_list();
  for (const obs::TraceKind kind : obs::all_trace_kinds()) {
    EXPECT_NE(list.find(std::string(obs::trace_kind_name(kind))), std::string::npos) << list;
  }
}

TEST(Trace, JsonlFormatPerKind) {
  obs::TraceRecord r;
  r.time = 40.0;
  r.kind = obs::TraceKind::kCallAdmitted;
  r.src = 2;
  r.dst = 3;
  r.hops = 2;
  r.units = 1;
  r.alternate = true;
  r.hold = 1.25;
  r.links = {4, 9};
  EXPECT_EQ(obs::JsonlTraceSink::format(r),
            "{\"t\":40,\"kind\":\"call_admitted\",\"src\":2,\"dst\":3,"
            "\"hops\":2,\"units\":1,\"hold\":1.25,\"class\":\"alternate\",\"links\":[4,9]}");

  r.kind = obs::TraceKind::kCallBlocked;
  r.link = 7;
  r.alt_occupancy = 3;
  r.replication = 1;
  r.policy = 2;
  EXPECT_EQ(obs::JsonlTraceSink::format(r),
            "{\"t\":40,\"kind\":\"call_blocked\",\"rep\":1,\"policy\":2,"
            "\"src\":2,\"dst\":3,\"units\":1,\"link\":7,\"alt_occ\":3}");

  obs::TraceRecord u;  // unattributable block: no link, no alt_occ fields
  u.time = 40.0;
  u.kind = obs::TraceKind::kCallBlocked;
  u.src = 2;
  u.dst = 3;
  EXPECT_EQ(obs::JsonlTraceSink::format(u),
            "{\"t\":40,\"kind\":\"call_blocked\",\"src\":2,\"dst\":3,\"units\":1}");

  obs::TraceRecord rr;
  rr.time = 40.0;
  rr.kind = obs::TraceKind::kReservedRejection;
  rr.src = 2;
  rr.dst = 3;
  rr.link = 11;
  EXPECT_EQ(obs::JsonlTraceSink::format(rr),
            "{\"t\":40,\"kind\":\"reserved_rejection\",\"src\":2,\"dst\":3,\"link\":11}");

  obs::TraceRecord k;
  k.time = 40.123456789;
  k.kind = obs::TraceKind::kCallKilled;
  k.link = 5;
  k.hops = 3;
  k.units = 1;
  EXPECT_EQ(obs::JsonlTraceSink::format(k),
            "{\"t\":40.1234568,\"kind\":\"call_killed\",\"link\":5,\"hops\":3,\"units\":1}");

  obs::TraceRecord e;
  e.time = 70.0;
  e.kind = obs::TraceKind::kEventApplied;
  e.detail = "link_repair";
  e.links_changed = 2;
  e.count = 0;
  EXPECT_EQ(obs::JsonlTraceSink::format(e),
            "{\"t\":70,\"kind\":\"event_applied\",\"event\":\"link_repair\","
            "\"links_changed\":2,\"killed\":0}");

  obs::TraceRecord p;
  p.time = 70.0;
  p.kind = obs::TraceKind::kProtectionResolved;
  p.links_changed = 28;
  EXPECT_EQ(obs::JsonlTraceSink::format(p),
            "{\"t\":70,\"kind\":\"protection_resolved\",\"links\":28}");
}

TEST(Trace, ProbeFiltersAtTheSource) {
  const net::Graph g = net::full_mesh(2, 10);
  const routing::Path path = routing::make_path(g, {net::NodeId(0), net::NodeId(1)});
  obs::VectorTraceSink sink(static_cast<unsigned>(obs::TraceKind::kCallKilled));
  obs::Probe probe(nullptr, &sink);
  probe.bind(g.link_count());
  probe.on_admitted(1.0, 0, 1, path, false, 1, 0, 2.5);
  probe.on_killed(2.0, path, 0, 1);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].kind, obs::TraceKind::kCallKilled);
  EXPECT_DOUBLE_EQ(sink.records[0].time, 2.0);
}

// Buffered records must own their strings: the caller's `detail` may be a
// temporary that dies right after the hook returns, and the sweep harness
// moves record buffers out of their sink (and across threads) before
// rendering them -- a borrowed string_view would dangle at both points
// (regression test for the string_view lifetime bug class).
TEST(Trace, BufferedRecordsOwnDetailStrings) {
  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  std::vector<obs::TraceRecord> moved_out;
  {
    obs::Probe probe(nullptr, &sink);
    probe.bind(1);
    {
      std::string transient = "link_fail";
      probe.on_event_applied(40.0, transient, 2, 5);
      // Clobber the caller's buffer before reading the record back.
      transient.assign(transient.size(), 'X');
    }
    {
      std::string other = std::string("traffic_") + "scale";  // heap temporary
      probe.on_event_applied(41.0, other, 0, 0);
    }
    // The harness pattern: records outlive the sink that buffered them.
    moved_out = std::move(sink.records);
  }
  ASSERT_EQ(moved_out.size(), 2u);
  EXPECT_EQ(moved_out[0].detail, "link_fail");
  EXPECT_EQ(moved_out[1].detail, "traffic_scale");
  EXPECT_EQ(obs::JsonlTraceSink::format(moved_out[0]),
            "{\"t\":40,\"kind\":\"event_applied\",\"event\":\"link_fail\","
            "\"links_changed\":2,\"killed\":5}");
}

// ---------------------------------------------------------------------------
// Engine integration: the occupancy grid contract on a hand-built trace.
//
// full_mesh(2, 10): one duplex facility.  Two calls 0 -> 1 at t = 1 (holds
// 4) and t = 2 (holds 1); the 0 -> 1 link's occupancy trajectory is
//   t: [0,1) = 0, [1,2) = 1, [2,3) = 2, [3,5) = 1, [5,..) = 0
// and grid point g must hold the occupancy AFTER every item with time <= g.

TEST(ObsEngine, OccupancyGridExactValues) {
  const net::Graph g = net::full_mesh(2, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  sim::CallTrace trace;
  trace.calls.push_back({1.0, 4.0, net::NodeId(0), net::NodeId(1), 1});
  trace.calls.push_back({2.0, 1.0, net::NodeId(0), net::NodeId(1), 1});
  trace.horizon = 8.0;

  obs::MetricRegistry reg;
  obs::Probe probe(&reg, nullptr);
  probe.grid(0.0, 1.0, 8);
  loss::EngineOptions options;
  options.warmup = 0.0;
  options.probe = &probe;
  loss::SinglePathPolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);
  EXPECT_EQ(run.offered, 2);
  EXPECT_EQ(run.carried_primary, 2);

  const auto links = static_cast<std::size_t>(g.link_count());
  std::size_t forward = links;  // the 0 -> 1 directed link
  for (std::size_t k = 0; k < links; ++k) {
    const net::Link& link = g.link(net::LinkId(static_cast<std::int32_t>(k)));
    if (link.src == net::NodeId(0) && link.dst == net::NodeId(1)) forward = k;
  }
  ASSERT_LT(forward, links);
  const std::vector<long long> expected{0, 1, 2, 1, 1, 0, 0, 0};
  for (std::size_t s = 0; s < expected.size(); ++s) {
    EXPECT_EQ(reg.occupancy_at(s, forward), expected[s]) << "grid point " << s;
  }
  for (std::size_t k = 0; k < links; ++k) {
    if (k == forward) continue;
    for (std::size_t s = 0; s < expected.size(); ++s) EXPECT_EQ(reg.occupancy_at(s, k), 0);
  }
}

// Probe counters must agree exactly with the engine's own RunResult on a
// real random trace, and the trace stream must carry one record per
// admitted/blocked call.
TEST(ObsEngine, CountersMatchRunResult) {
  const net::Graph g = net::full_mesh(4, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 8.0), 110.0, 7);

  obs::MetricRegistry reg;
  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  obs::Probe probe(&reg, &sink);
  loss::EngineOptions options;
  options.probe = &probe;
  loss::UncontrolledAlternatePolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);

  EXPECT_GT(run.blocked, 0);  // the load is high enough to exercise blocking
  EXPECT_GT(run.carried_alternate, 0);
  EXPECT_EQ(reg.counter_value("calls_offered"), run.offered);
  EXPECT_EQ(reg.counter_value("calls_blocked"), run.blocked);
  EXPECT_EQ(reg.counter_value("calls_admitted_primary"), run.carried_primary);
  EXPECT_EQ(reg.counter_value("calls_admitted_alternate"), run.carried_alternate);
  EXPECT_EQ(reg.counter_value("calls_killed_failure"), 0);
  EXPECT_EQ(reg.counter_value("calls_preempted"), 0);

  // carried_hops is the same census as RunResult::carried_by_hops.
  long long census_calls = 0, census_hops = 0;
  for (std::size_t h = 0; h < run.carried_by_hops.size(); ++h) {
    census_calls += run.carried_by_hops[h];
    census_hops += run.carried_by_hops[h] * static_cast<long long>(h);
  }
  long long histo_calls = 0;
  for (const long long c : reg.histogram_counts("carried_hops")) histo_calls += c;
  EXPECT_EQ(histo_calls, census_calls);
  EXPECT_DOUBLE_EQ(reg.histogram_sum("carried_hops"), static_cast<double>(census_hops));

  // One trace record per measured admission/block; alternate_admits counts
  // each link of each alternate path.
  long long admitted = 0, blocked = 0, alt_link_seizures = 0;
  for (const obs::TraceRecord& r : sink.records) {
    if (r.kind == obs::TraceKind::kCallAdmitted) {
      ++admitted;
      if (r.alternate) alt_link_seizures += r.hops;
    } else if (r.kind == obs::TraceKind::kCallBlocked) {
      ++blocked;
    }
  }
  EXPECT_EQ(admitted, run.carried_primary + run.carried_alternate);
  EXPECT_EQ(blocked, run.blocked);
  EXPECT_EQ(reg.link_counter_total("alternate_admits"), alt_link_seizures);
}

// Reserved-state rejection attribution, pinned call by call.
//
// full_mesh(3, 2) with r = 1 everywhere, H = 2.  The 0 -> 1 pair's only
// alternate is 0 -> 2 -> 1.  Calls (all long-held): 0 -> 2 at t = 0.5,
// 2 -> 1 at t = 0.6, then two 0 -> 1 calls fill the direct link.  The
// fifth call (0 -> 1, t = 0.9) finds its primary full and its alternate's
// first link 0 -> 2 at occupancy 1: the link would admit a PRIMARY
// (1 + 1 <= 2) but refuses the ALTERNATE class (1 + 1 > 2 - 1) -- a pure
// state-protection rejection, attributed to exactly that link.
TEST(ObsEngine, ReservedRejectionAttribution) {
  const net::Graph g = net::full_mesh(3, 2);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  sim::CallTrace trace;
  trace.calls.push_back({0.5, 50.0, net::NodeId(0), net::NodeId(2), 1});
  trace.calls.push_back({0.6, 50.0, net::NodeId(2), net::NodeId(1), 1});
  trace.calls.push_back({0.7, 50.0, net::NodeId(0), net::NodeId(1), 1});
  trace.calls.push_back({0.8, 50.0, net::NodeId(0), net::NodeId(1), 1});
  trace.calls.push_back({0.9, 50.0, net::NodeId(0), net::NodeId(1), 1});
  trace.horizon = 5.0;

  obs::MetricRegistry reg;
  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  obs::Probe probe(&reg, &sink);
  loss::EngineOptions options;
  options.warmup = 0.0;
  options.probe = &probe;
  options.reservations.assign(g.link_count(), 1);
  core::ControlledAlternatePolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);

  EXPECT_EQ(run.offered, 5);
  EXPECT_EQ(run.blocked, 1);
  EXPECT_EQ(reg.counter_value("calls_blocked"), 1);
  EXPECT_EQ(reg.link_counter_total("reserved_rejections"), 1);

  const auto links = static_cast<std::size_t>(g.link_count());
  std::size_t via = links;     // the 0 -> 2 directed link
  std::size_t direct = links;  // the 0 -> 1 directed link
  for (std::size_t k = 0; k < links; ++k) {
    const net::Link& link = g.link(net::LinkId(static_cast<std::int32_t>(k)));
    if (link.src == net::NodeId(0) && link.dst == net::NodeId(2)) via = k;
    if (link.src == net::NodeId(0) && link.dst == net::NodeId(1)) direct = k;
  }
  ASSERT_LT(via, links);
  EXPECT_EQ(reg.link_counter_values("reserved_rejections")[via], 1);

  // The block record attributes the loss to the full direct link.
  bool found_block = false;
  for (const obs::TraceRecord& r : sink.records) {
    if (r.kind != obs::TraceKind::kCallBlocked) continue;
    found_block = true;
    EXPECT_DOUBLE_EQ(r.time, 0.9);
    EXPECT_EQ(r.link, static_cast<int>(direct));
  }
  EXPECT_TRUE(found_block);
}

// ---------------------------------------------------------------------------
// The ISSUE acceptance scenario, instrumented: NSFNet, fail 2<->3 at
// t = 40, repair at t = 70, exact counted events.

scenario::Scenario nsfnet_failure_recovery() {
  scenario::Scenario s;
  s.name = "nsfnet-failure-recovery";
  s.events.push_back(scenario::ScenarioEvent::link_fail(40.0, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(40.0));
  s.events.push_back(scenario::ScenarioEvent::link_repair(70.0, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(70.0));
  return s;
}

study::ScenarioSweepOptions nsfnet_obs_options(int threads, obs::TraceSink* sink) {
  study::ScenarioSweepOptions options;
  options.seeds = 3;
  options.measure = 100.0;
  options.warmup = 10.0;
  options.max_alt_hops = 11;
  options.time_bins = 10;
  options.threads = threads;
  options.obs.metrics = true;
  options.obs.occupancy_samples = 100;  // grid t = 10 + s * 1.0: t = 40 is s = 30
  options.obs.trace = sink;
  return options;
}

TEST(ObsScenario, NsfnetFailureRecoveryCountedEvents) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = study::nsfnet_nominal_traffic();
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kUncontrolledAlternate, study::PolicyKind::kControlledAlternate};

  obs::VectorTraceSink sink(obs::kAllTraceKinds);
  const study::ScenarioSweepResult failure = study::run_scenario_sweep(
      g, nominal, nsfnet_failure_recovery(), policies, nsfnet_obs_options(1, &sink));
  const study::ScenarioSweepResult intact = study::run_scenario_sweep(
      g, nominal, {}, policies, nsfnet_obs_options(1, nullptr));
  ASSERT_EQ(failure.metrics.size(), 2u);
  ASSERT_EQ(intact.metrics.size(), 2u);

  const std::vector<net::LinkId> facility = g.duplex_links(net::NodeId(2), net::NodeId(3));
  ASSERT_EQ(facility.size(), 2u);

  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    SCOPED_TRACE(failure.curves[pi].name);
    const obs::MetricRegistry& reg = failure.metrics[pi];

    // Kill accounting is consistent across every ledger: the sweep's
    // dropped counter, the probe counter, the per-link kill family (all
    // attributed to the failed facility), and the trace records.
    const long long dropped = failure.curves[pi].dropped;
    EXPECT_GT(dropped, 0);
    EXPECT_EQ(reg.counter_value("calls_killed_failure"), dropped);
    EXPECT_EQ(reg.link_counter_total("kills_on_failure"), dropped);
    long long on_facility = 0;
    for (const net::LinkId id : facility) {
      on_facility += reg.link_counter_values("kills_on_failure")[id.index()];
    }
    EXPECT_EQ(on_facility, dropped);

    long long killed_records = 0;
    for (const obs::TraceRecord& r : sink.records) {
      if (r.policy != static_cast<int>(pi)) continue;
      if (r.kind != obs::TraceKind::kCallKilled) continue;
      ++killed_records;
      EXPECT_DOUBLE_EQ(r.time, 40.0);  // the one failure of the scenario
    }
    EXPECT_EQ(killed_records, dropped);

    // The kill count equals the calls in flight on the facility at the
    // failure instant.  The failure run's own grid point at t = 40 is
    // post-kill by the sampling contract, so the INTACT run -- identical
    // up to t = 40 under common random numbers -- supplies the pre-kill
    // occupancy, and the failure run's point must read zero.
    const std::size_t s40 = 30;  // t0 = 10, dt = 1
    long long in_flight = 0, post_kill = 0;
    for (const net::LinkId id : facility) {
      in_flight += intact.metrics[pi].occupancy_at(s40, id.index());
      post_kill += reg.occupancy_at(s40, id.index());
    }
    EXPECT_EQ(in_flight, dropped);
    EXPECT_EQ(post_kill, 0);

    // Event records: 4 applied events per replication, at 40 and 70.
    EXPECT_EQ(reg.counter_value("events_applied"), 4 * 3);
    EXPECT_EQ(reg.counter_value("protection_resolves"), 2 * 3);
  }

  // Common random numbers: every policy sees the same offered calls.
  EXPECT_EQ(failure.metrics[0].counter_value("calls_offered"),
            failure.metrics[1].counter_value("calls_offered"));

  // The protected band: the controlled policy NEVER admits an alternate
  // into a link's reserved band; the uncontrolled policy does constantly
  // (that is the instability the paper's Eq. 15 rule removes).
  EXPECT_GT(failure.metrics[0].counter_value("protected_band_alternate_admits"), 0);
  EXPECT_EQ(failure.metrics[1].counter_value("protected_band_alternate_admits"), 0);
  EXPECT_EQ(intact.metrics[1].counter_value("protected_band_alternate_admits"), 0);
}

// Merged metrics and the trace stream are bit-identical at any thread
// count (the ISSUE's determinism acceptance criterion, tsan-labeled).
TEST(ObsScenario, NsfnetObsBitIdenticalAcrossThreads) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = study::nsfnet_nominal_traffic();
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kControlledAlternate};

  const auto run = [&](int threads) {
    std::ostringstream jsonl;
    obs::JsonlTraceSink sink(jsonl, obs::kAllTraceKinds);
    const study::ScenarioSweepResult result = study::run_scenario_sweep(
        g, nominal, nsfnet_failure_recovery(), policies, nsfnet_obs_options(threads, &sink));
    std::vector<std::string> names;
    for (const study::ScenarioCurve& curve : result.curves) names.push_back(curve.name);
    return std::pair<std::string, std::string>(study::metrics_json(result.metrics, names),
                                               jsonl.str());
  };
  const auto serial = run(1);
  EXPECT_FALSE(serial.second.empty());
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(0));  // auto thread count
}

// ---------------------------------------------------------------------------
// Load-sweep observability: merged registries per policy, stamped records,
// thread-count invariance, and the report renderers.

TEST(ObsSweep, LoadSweepMergedMetricsAndRenderers) {
  const net::Graph g = net::full_mesh(4, 10);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 6.0);
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kSinglePath,
                                                   study::PolicyKind::kControlledAlternate};
  const auto run = [&](int threads) {
    std::ostringstream jsonl;
    obs::JsonlTraceSink sink(jsonl, obs::kAllTraceKinds);
    study::SweepOptions options;
    options.load_factors = {0.8, 1.0};
    options.seeds = 2;
    options.max_alt_hops = 3;
    options.threads = threads;
    options.erlang_bound = false;
    options.obs.metrics = true;
    options.obs.occupancy_samples = 10;
    options.obs.trace = &sink;
    study::SweepResult result = study::run_sweep(g, nominal, policies, options);
    return std::pair<study::SweepResult, std::string>(std::move(result), jsonl.str());
  };
  const auto serial = run(1);
  const auto threaded = run(2);
  ASSERT_EQ(serial.first.metrics.size(), 2u);

  std::vector<std::string> names;
  for (const study::PolicyCurve& curve : serial.first.curves) names.push_back(curve.name);
  EXPECT_EQ(study::metrics_json(serial.first.metrics, names),
            study::metrics_json(threaded.first.metrics, names));
  EXPECT_EQ(serial.second, threaded.second);

  // Same traces for every policy; each (load point, seed) replication
  // contributes, so offered = sum over 2 x 2 runs.
  EXPECT_EQ(serial.first.metrics[0].counter_value("calls_offered"),
            serial.first.metrics[1].counter_value("calls_offered"));
  EXPECT_GT(serial.first.metrics[0].counter_value("calls_offered"), 0);

  // Every record is stamped with its replication and policy slot.
  std::istringstream lines(serial.second);
  std::string line;
  int records = 0;
  while (std::getline(lines, line)) {
    ++records;
    EXPECT_NE(line.find("\"rep\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"policy\":"), std::string::npos) << line;
  }
  EXPECT_GT(records, 0);

  // The renderers: one metrics row per instrument, one column per policy.
  const std::string table = study::metrics_table(serial.first).str();
  EXPECT_NE(table.find("calls_offered"), std::string::npos);
  EXPECT_NE(table.find("carried_hops (mean)"), std::string::npos);
  EXPECT_NE(table.find("reserved_rejections (total)"), std::string::npos);
  for (const std::string& name : names) EXPECT_NE(table.find(name), std::string::npos);
  EXPECT_THROW((void)study::metrics_table({}, {}), std::invalid_argument);
  EXPECT_THROW((void)study::metrics_json(serial.first.metrics, {"just-one"}),
               std::invalid_argument);
}

}  // namespace
