// Topology builders, including the NSFNet T3 model transcribed from the
// paper's Table 1 / Figure 5.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "netgraph/topologies.hpp"

namespace net = altroute::net;

namespace {

TEST(FullMesh, EveryOrderedPairLinked) {
  const net::Graph g = net::full_mesh(4, 100);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.link_count(), 12);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const auto link = g.find_link(net::NodeId(i), net::NodeId(j));
      ASSERT_TRUE(link.has_value()) << i << "->" << j;
      EXPECT_EQ(g.link(*link).capacity, 100);
    }
  }
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_THROW((void)net::full_mesh(1, 10), std::invalid_argument);
}

TEST(Ring, DegreeTwoEverywhere) {
  const net::Graph g = net::ring(6, 30);
  EXPECT_EQ(g.link_count(), 12);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(g.neighbors(net::NodeId(i)).size(), 2u) << i;
  }
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_THROW((void)net::ring(2, 10), std::invalid_argument);
}

TEST(Star, HubTouchesEveryLeaf) {
  const net::Graph g = net::star(5, 10);
  EXPECT_EQ(g.link_count(), 8);
  EXPECT_EQ(g.neighbors(net::NodeId(0)).size(), 4u);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(g.neighbors(net::NodeId(i)).size(), 1u) << i;
  }
  EXPECT_TRUE(g.strongly_connected());
}

TEST(GridTopology, LinkCountAndConnectivity) {
  const net::Graph g = net::grid(3, 4, 8);
  EXPECT_EQ(g.node_count(), 12);
  // Duplex edges: horizontal 3*3, vertical 2*4 -> 17 duplex = 34 directed.
  EXPECT_EQ(g.link_count(), 34);
  EXPECT_TRUE(g.strongly_connected());
}

TEST(ErdosRenyi, DeterministicAndConnected) {
  const net::Graph a = net::erdos_renyi(12, 0.3, 20, 42);
  const net::Graph b = net::erdos_renyi(12, 0.3, 20, 42);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (int k = 0; k < a.link_count(); ++k) {
    EXPECT_EQ(a.link(net::LinkId(k)).src, b.link(net::LinkId(k)).src) << k;
    EXPECT_EQ(a.link(net::LinkId(k)).dst, b.link(net::LinkId(k)).dst) << k;
  }
  EXPECT_TRUE(a.strongly_connected());
  const net::Graph c = net::erdos_renyi(12, 0.3, 20, 43);
  // Different seeds virtually surely differ in some link.
  bool differs = c.link_count() != a.link_count();
  for (int k = 0; !differs && k < std::min(a.link_count(), c.link_count()); ++k) {
    differs = a.link(net::LinkId(k)).src != c.link(net::LinkId(k)).src ||
              a.link(net::LinkId(k)).dst != c.link(net::LinkId(k)).dst;
  }
  EXPECT_TRUE(differs);
}

TEST(ErdosRenyi, DensityExtremes) {
  // p = 0: just the connectivity ring (n duplex links).
  const net::Graph sparse = net::erdos_renyi(8, 0.0, 5, 7);
  EXPECT_EQ(sparse.link_count(), 16);
  // p = 1: complete graph, n(n-1) directed links.
  const net::Graph dense = net::erdos_renyi(8, 1.0, 5, 7);
  EXPECT_EQ(dense.link_count(), 56);
}

TEST(NsfnetTable1, ThirtyDirectedLinksAllCapacity100) {
  const auto& rows = net::nsfnet_table1();
  ASSERT_EQ(rows.size(), 30u);
  std::set<std::pair<int, int>> seen;
  for (const auto& row : rows) {
    EXPECT_EQ(row.capacity, 100);
    EXPECT_TRUE(seen.emplace(row.src, row.dst).second)
        << "duplicate " << row.src << "->" << row.dst;
    // Every directed link has its reverse in the table (duplex facilities).
  }
  for (const auto& row : rows) {
    EXPECT_TRUE(seen.count({row.dst, row.src}) == 1)
        << "missing reverse of " << row.src << "->" << row.dst;
  }
}

TEST(NsfnetTable1, ProtectionLevelsGrowWithH) {
  for (const auto& row : net::nsfnet_table1()) {
    EXPECT_LE(row.r_h6, row.r_h11) << row.src << "->" << row.dst;
  }
}

TEST(NsfnetT3, MatchesTable1RowOrder) {
  const net::Graph g = net::nsfnet_t3();
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.link_count(), 30);
  const auto& rows = net::nsfnet_table1();
  for (int k = 0; k < 30; ++k) {
    const net::Link& l = g.link(net::LinkId(k));
    EXPECT_EQ(l.src.value, rows[static_cast<std::size_t>(k)].src) << k;
    EXPECT_EQ(l.dst.value, rows[static_cast<std::size_t>(k)].dst) << k;
    EXPECT_EQ(l.capacity, 100) << k;
  }
  EXPECT_TRUE(g.strongly_connected());
}

TEST(NsfnetT3, SparseDegrees) {
  // Figure 5's map: degrees range between 2 (e.g. San Diego) and 3.
  const net::Graph g = net::nsfnet_t3();
  for (int i = 0; i < 12; ++i) {
    const auto degree = g.neighbors(net::NodeId(i)).size();
    EXPECT_GE(degree, 2u) << i;
    EXPECT_LE(degree, 3u) << i;
  }
}

}  // namespace
