// Closed-loop control plane acceptance (src/control):
//
//  (a) the pinned NSFNet failure experiment -- fail the 2<->3 facility at
//      t = 40, repair it at t = 70, and compare protection levels FROZEN
//      for the intact network against the adaptive controller re-solving
//      Eq. 15 from estimated loads every epoch: adaptive must block fewer
//      calls inside the failure window (the ISSUE's acceptance oracle);
//  (b) adaptive runs are bit-identical across both event-queue engines and
//      both Eq.-15 solvers, and scenario sweeps with control (and DAR) in
//      force are bit-identical at any thread count;
//  (c) a checkpoint captured MID-EPOCH resumes bit-identically -- result
//      counters, control summary, metrics JSON, and every rendered trace
//      record (kControlEpoch lines included).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "control/config.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "netgraph/topologies.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "routing/route_table.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/checkpoint.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

using namespace altroute;

namespace {

// The canonical transient: NSFNet T3, nominal load, 2<->3 fails at t = 40
// with calls in flight and comes back at t = 70.  No resolve_protection
// events -- the static scheme runs the whole outage on levels engineered
// for the intact network, which is exactly the operating mode the adaptive
// controller exists to fix.
struct Transient {
  net::Graph graph = net::nsfnet_t3();
  net::TrafficMatrix traffic = study::nsfnet_nominal_traffic();
  scenario::Scenario scen;
  double horizon{110.0};
  int hops{11};
  std::vector<int> intact_reservations;
  sim::CallTrace trace;

  explicit Transient(std::uint64_t seed = 17) {
    scen.name = "fail 2<->3 at 40, repair at 70";
    scen.events.push_back(scenario::ScenarioEvent::link_fail(40.0, 2, 3));
    scen.events.push_back(scenario::ScenarioEvent::link_repair(70.0, 2, 3));
    const routing::RouteTable routes = routing::build_min_hop_routes(graph, hops);
    intact_reservations = core::protection_levels(graph, routes, traffic, hops);
    trace = scenario::make_scenario_trace(traffic, scen, horizon, seed);
  }
};

control::ControlConfig ewma_control(double epoch = 5.0) {
  control::ControlConfig c;
  c.epoch = epoch;
  c.estimator = control::EstimatorKind::kEwma;
  c.window = 5.0;
  c.weight = 0.3;
  return c;
}

scenario::ScenarioEngineOptions base_engine(const Transient& t) {
  scenario::ScenarioEngineOptions engine;
  engine.warmup = 10.0;
  engine.policy_seed = 7;
  engine.time_bins = 10;  // bin k covers [10 + 10k, 20 + 10k)
  engine.max_alt_hops = t.hops;
  engine.reservations = t.intact_reservations;
  return engine;
}

scenario::ScenarioRunResult run_transient(const Transient& t,
                                          const control::ControlConfig* control,
                                          scenario::ScenarioEngineOptions engine) {
  engine.control = control;
  core::ControlledAlternatePolicy policy;
  return scenario::run_scenario(t.graph, t.traffic, policy, t.trace, t.scen, engine);
}

long long blocked_in_window(const loss::RunResult& run, int first_bin, int last_bin) {
  long long blocked = 0;
  for (int b = first_bin; b <= last_bin; ++b) {
    blocked += run.bin_blocked[static_cast<std::size_t>(b)];
  }
  return blocked;
}

// ---------------------------------------------------------------------------
// (a) The pinned oracle: adaptive r* beats the frozen-static levels while
// the topology disagrees with what those levels were engineered for.

TEST(ControlPlane, AdaptiveBeatsFrozenStaticInsideTheFailureWindow) {
  // Summed over three seeds so one lucky trace cannot flip the verdict;
  // every run replays the same per-seed trace (common random numbers).
  long long static_blocked = 0, adaptive_blocked = 0;
  long long static_total = 0, adaptive_total = 0;
  const control::ControlConfig adaptive = ewma_control();
  for (const std::uint64_t seed : {17u, 18u, 19u}) {
    const Transient t(seed);
    const scenario::ScenarioRunResult frozen = run_transient(t, nullptr, base_engine(t));
    const scenario::ScenarioRunResult controlled =
        run_transient(t, &adaptive, base_engine(t));
    ASSERT_GT(controlled.control_epochs, 0u);
    // Failure window [40, 70) = bins 3..5.
    static_blocked += blocked_in_window(frozen.run, 3, 5);
    adaptive_blocked += blocked_in_window(controlled.run, 3, 5);
    static_total += frozen.run.blocked;
    adaptive_total += controlled.run.blocked;
  }
  // The oracle: fewer blocked calls under adaptive control while the
  // frozen levels are wrong for the degraded topology.
  EXPECT_LT(adaptive_blocked, static_blocked)
      << "failure-window blocked: adaptive " << adaptive_blocked << " vs static "
      << static_blocked;
  // Honest margin, measured then pinned: the adaptive controller saves a
  // bit over 1% of the window's blocked calls (10231 vs 10353 at these
  // seeds -- small but systematic, and the runs are fully deterministic,
  // so regressions that erase the control loop trip this hard).
  EXPECT_LE(adaptive_blocked * 100, static_blocked * 99)
      << "failure-window blocked: adaptive " << adaptive_blocked << " vs static "
      << static_blocked << " (whole-run: " << adaptive_total << " vs " << static_total
      << ")";
}

TEST(ControlPlane, ControlOffMatchesThePreControlEngineBitForBit) {
  // A null config and a disabled config are both "off", and off means OFF:
  // identical counters, bins, and final state to a run with no control
  // member at all (the zero-cost-when-off acceptance criterion).
  const Transient t;
  control::ControlConfig disabled;  // epoch = 0
  const scenario::ScenarioRunResult off = run_transient(t, nullptr, base_engine(t));
  const scenario::ScenarioRunResult off2 = run_transient(t, &disabled, base_engine(t));
  EXPECT_EQ(off.run.offered, off2.run.offered);
  EXPECT_EQ(off.run.blocked, off2.run.blocked);
  EXPECT_EQ(off.run.carried_primary, off2.run.carried_primary);
  EXPECT_EQ(off.run.carried_alternate, off2.run.carried_alternate);
  EXPECT_EQ(off.run.bin_blocked, off2.run.bin_blocked);
  EXPECT_EQ(off2.control_epochs, 0u);
  EXPECT_EQ(off2.control_retargets, 0u);
  EXPECT_EQ(off2.control_holds, 0u);
}

// ---------------------------------------------------------------------------
// (b) Determinism: engines, solvers, threads.

void expect_same_result(const scenario::ScenarioRunResult& a,
                        const scenario::ScenarioRunResult& b, const char* what) {
  EXPECT_EQ(a.run.offered, b.run.offered) << what;
  EXPECT_EQ(a.run.blocked, b.run.blocked) << what;
  EXPECT_EQ(a.run.carried_primary, b.run.carried_primary) << what;
  EXPECT_EQ(a.run.carried_alternate, b.run.carried_alternate) << what;
  EXPECT_EQ(a.run.bin_offered, b.run.bin_offered) << what;
  EXPECT_EQ(a.run.bin_blocked, b.run.bin_blocked) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.control_epochs, b.control_epochs) << what;
  EXPECT_EQ(a.control_retargets, b.control_retargets) << what;
  EXPECT_EQ(a.control_holds, b.control_holds) << what;
  ASSERT_EQ(a.final_links.size(), b.final_links.size()) << what;
  for (std::size_t k = 0; k < a.final_links.size(); ++k) {
    EXPECT_EQ(a.final_links[k].reservation, b.final_links[k].reservation)
        << what << " link " << k;
    EXPECT_EQ(a.final_links[k].occupancy, b.final_links[k].occupancy)
        << what << " link " << k;
  }
}

TEST(ControlPlane, AdaptiveRunsAreBitIdenticalAcrossEnginesAndSolvers) {
  const Transient t;
  const control::ControlConfig adaptive = ewma_control();
  scenario::ScenarioEngineOptions reference = base_engine(t);
  reference.legacy_event_queue = true;
  reference.memoize_protection = false;
  const scenario::ScenarioRunResult ref = run_transient(t, &adaptive, reference);
  ASSERT_GT(ref.control_epochs, 0u);
  for (const bool legacy : {false, true}) {
    for (const bool memo : {false, true}) {
      if (legacy && !memo) continue;  // the reference itself
      scenario::ScenarioEngineOptions engine = base_engine(t);
      engine.legacy_event_queue = legacy;
      engine.memoize_protection = memo;
      const scenario::ScenarioRunResult got = run_transient(t, &adaptive, engine);
      expect_same_result(ref, got,
                         legacy ? (memo ? "heap+memo" : "heap+direct")
                                : (memo ? "calendar+memo" : "calendar+direct"));
    }
  }
}

TEST(ControlPlane, SweepWithControlAndDarIsThreadCountInvariant) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = study::nsfnet_nominal_traffic();
  scenario::Scenario scen;
  scen.events.push_back(scenario::ScenarioEvent::link_fail(25.0, 2, 3));
  scen.events.push_back(scenario::ScenarioEvent::link_repair(40.0, 2, 3));
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kControlledAlternate,
                                                   study::PolicyKind::kDar};
  const auto sweep_at = [&](int threads) {
    study::ScenarioSweepOptions options;
    options.seeds = 4;
    options.measure = 40.0;
    options.warmup = 10.0;
    options.max_alt_hops = 11;
    options.threads = threads;
    options.time_bins = 5;
    options.control = ewma_control(4.0);
    options.dar_trunk = 2;
    options.obs.metrics = true;
    return study::run_scenario_sweep(g, nominal, scen, policies, options);
  };
  const study::ScenarioSweepResult serial = sweep_at(1);
  const study::ScenarioSweepResult pooled = sweep_at(4);
  ASSERT_EQ(serial.curves.size(), pooled.curves.size());
  for (std::size_t pi = 0; pi < serial.curves.size(); ++pi) {
    EXPECT_EQ(serial.curves[pi].name, pooled.curves[pi].name);
    EXPECT_EQ(serial.curves[pi].mean_blocking, pooled.curves[pi].mean_blocking)
        << serial.curves[pi].name;
    EXPECT_EQ(serial.curves[pi].bin_offered, pooled.curves[pi].bin_offered);
    EXPECT_EQ(serial.curves[pi].bin_blocked, pooled.curves[pi].bin_blocked);
  }
  ASSERT_EQ(serial.metrics.size(), pooled.metrics.size());
  for (std::size_t pi = 0; pi < serial.metrics.size(); ++pi) {
    EXPECT_EQ(serial.metrics[pi].to_json(), pooled.metrics[pi].to_json())
        << serial.curves[pi].name;
  }
  // The controlled curve actually controlled: its merged registry carries
  // fired epochs.
  EXPECT_GT(serial.metrics[0].counter_value("control_epochs"), 0u);
}

// ---------------------------------------------------------------------------
// (c) Mid-epoch checkpoint/resume bit-identity.

struct CapturingSink final : snapshot::CheckpointSink {
  obs::VectorTraceSink* collector{nullptr};
  std::vector<snapshot::ScenarioCheckpoint> captured;
  std::vector<std::vector<obs::TraceRecord>> prefixes;

  void on_checkpoint(const snapshot::ScenarioCheckpoint& ck) override {
    captured.push_back(ck);
    prefixes.push_back(collector != nullptr ? collector->records
                                            : std::vector<obs::TraceRecord>{});
  }
};

std::vector<std::string> render(const std::vector<obs::TraceRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const obs::TraceRecord& r : records) lines.push_back(obs::JsonlTraceSink::format(r));
  return lines;
}

TEST(ControlPlane, MidEpochCheckpointResumesBitIdentically) {
  const Transient t;
  const control::ControlConfig adaptive = ewma_control();  // epochs at 5, 10, ...

  // Straight run with full observability.
  scenario::ScenarioRunResult straight;
  std::string straight_metrics;
  std::vector<std::string> straight_lines;
  {
    obs::MetricRegistry registry;
    obs::VectorTraceSink collector;
    obs::Probe probe(&registry, &collector);
    scenario::ScenarioEngineOptions engine = base_engine(t);
    engine.probe = &probe;
    straight = run_transient(t, &adaptive, engine);
    straight_metrics = registry.to_json();
    straight_lines = render(collector.records);
  }
  ASSERT_GT(straight.control_epochs, 0u);

  // Capture between two epochs (estimator has an OPEN window and the
  // controller a live lambda reference -- the CTRL section must carry
  // both), then mid-outage at t = 53.
  for (const double capture_at : {12.5, 53.0}) {
    CapturingSink sink;
    obs::VectorTraceSink capture_collector;
    {
      obs::MetricRegistry registry;
      obs::Probe probe(&registry, &capture_collector);
      sink.collector = &capture_collector;
      scenario::ScenarioEngineOptions engine = base_engine(t);
      engine.probe = &probe;
      engine.checkpoint_at = capture_at;
      engine.checkpoints = &sink;
      (void)run_transient(t, &adaptive, engine);
    }
    ASSERT_EQ(sink.captured.size(), 1u) << "capture_at=" << capture_at;

    scenario::ScenarioRunResult resumed;
    std::string resumed_metrics;
    std::vector<std::string> resumed_lines;
    {
      obs::MetricRegistry registry;
      obs::VectorTraceSink collector;
      collector.records = sink.prefixes.front();
      obs::Probe probe(&registry, &collector);
      scenario::ScenarioEngineOptions engine = base_engine(t);
      engine.probe = &probe;
      engine.resume = &sink.captured.front();
      resumed = run_transient(t, &adaptive, engine);
      resumed_metrics = registry.to_json();
      resumed_lines = render(collector.records);
    }
    expect_same_result(straight, resumed, "mid-epoch resume");
    EXPECT_EQ(straight_metrics, resumed_metrics) << "capture_at=" << capture_at;
    ASSERT_EQ(straight_lines.size(), resumed_lines.size()) << "capture_at=" << capture_at;
    for (std::size_t i = 0; i < straight_lines.size(); ++i) {
      ASSERT_EQ(straight_lines[i], resumed_lines[i])
          << "capture_at=" << capture_at << " trace line " << i;
    }
  }
}

TEST(ControlPlane, ControlOffCheckpointsCarryNoControlStateAndStillLoad) {
  // A capture from a control-off run must round-trip through the codec
  // with an absent/empty CTRL payload -- the format old checkpoints used,
  // so this is the backward-compatibility guarantee in executable form.
  const Transient t;
  CapturingSink sink;
  scenario::ScenarioEngineOptions engine = base_engine(t);
  engine.checkpoint_at = 30.0;
  engine.checkpoints = &sink;
  (void)run_transient(t, nullptr, engine);
  ASSERT_EQ(sink.captured.size(), 1u);
  EXPECT_EQ(sink.captured.front().control.epochs_done, 0u);
  EXPECT_TRUE(sink.captured.front().control.reservation.empty());

  const std::vector<snapshot::Section> sections =
      snapshot::encode_checkpoint(sink.captured.front());
  const snapshot::ScenarioCheckpoint back =
      snapshot::decode_checkpoint(sections, "control-off checkpoint");
  EXPECT_EQ(back.control.present, 0);
  EXPECT_EQ(back.control.epochs_done, 0u);
  EXPECT_TRUE(back.control.reservation.empty());

  // And it resumes: the continued run matches the straight one.
  const scenario::ScenarioRunResult straight = run_transient(t, nullptr, base_engine(t));
  scenario::ScenarioEngineOptions resume_engine = base_engine(t);
  resume_engine.resume = &back;
  const scenario::ScenarioRunResult resumed = run_transient(t, nullptr, resume_engine);
  expect_same_result(straight, resumed, "control-off resume");
}

}  // namespace
