// Malformed-checkpoint corpus: every file under tests/data/ckpt_bad is a
// way a checkpoint file can arrive broken -- wrong magic, an unsupported
// format version, a payload cut short, a flipped bit, bytes past the last
// section.  Each must be REJECTED before a single payload byte reaches a
// decoder, with one pointed message naming the file and the defect
// (mirroring the tests/data/scenario_bad suite for the JSON parser).
//
// To add a case: drop a new .ckpt file in the corpus directory and add a
// (filename, expected-substring) row below.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"

namespace snapshot = altroute::snapshot;

namespace {

struct BadCase {
  const char* file;      // relative to tests/data/ckpt_bad
  const char* expected;  // substring the rejection message must contain
};

class CkptBadCorpus : public ::testing::TestWithParam<BadCase> {};

TEST_P(CkptBadCorpus, IsRejectedWithAPointedMessage) {
  const BadCase& c = GetParam();
  const std::string path = std::string(CKPT_BAD_DIR) + "/" + c.file;
  // The corpus file must exist -- a typo here must not pass as "rejected".
  ASSERT_TRUE(std::ifstream(path).good()) << "missing corpus file " << path;
  try {
    (void)snapshot::read_container_file(path);
    FAIL() << c.file << " was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(c.expected), std::string::npos)
        << c.file << " rejected, but the message was: " << message;
    // Every rejection names the offending file.
    EXPECT_NE(message.find(c.file), std::string::npos)
        << c.file << " rejected without naming the file: " << message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CkptBadCorpus,
    ::testing::Values(
        BadCase{"bad_magic.ckpt", "bad magic (not an altroute checkpoint)"},
        BadCase{"wrong_version.ckpt", "unsupported format version 99"},
        BadCase{"truncated_section.ckpt", "section 'CONF' overruns the file"},
        BadCase{"crc_flip.ckpt", "section 'CONF' CRC mismatch"},
        BadCase{"trailing_bytes.ckpt", "4 trailing bytes after the last section"},
        // Adaptive-control state travels in the optional CTRL section;
        // a flipped bit there is caught by the container CRC like any
        // other section (the file was captured from a control-on run).
        BadCase{"ctrl_crc_flip.ckpt", "section 'CTRL' CRC mismatch"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// Found by the seeded fuzzer (tests/test_parser_fuzz.cpp): this file is a
// VALID container whose GRPH section advertises 2^60 elements.  The
// container layer accepts it, so the corpus harness above cannot cover it;
// the checkpoint DECODER must reject the hostile count before a single
// byte is allocated (not die in operator new).
TEST(CkptBadCorpus, HostileElementCountIsRejectedByTheDecoder) {
  const std::string path = std::string(CKPT_BAD_DIR) + "/huge_count.ckpt";
  ASSERT_TRUE(std::ifstream(path).good()) << "missing corpus file " << path;
  try {
    (void)snapshot::load_checkpoint(path);
    FAIL() << "huge_count.ckpt was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("overruns the section"), std::string::npos) << message;
    EXPECT_NE(message.find("GRPH"), std::string::npos) << message;
  }
}

// A VALID container whose CTRL payload was cut short mid-vector: the
// container layer accepts it (CRC matches the short payload), so the
// CHECKPOINT decoder must reject the truncation at the field level
// instead of resuming a control-on run with half its estimator state.
TEST(CkptBadCorpus, TruncatedControlSectionIsRejectedByTheDecoder) {
  const std::string path = std::string(CKPT_BAD_DIR) + "/ctrl_truncated.ckpt";
  ASSERT_TRUE(std::ifstream(path).good()) << "missing corpus file " << path;
  try {
    (void)snapshot::load_checkpoint(path);
    FAIL() << "ctrl_truncated.ckpt was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("section 'CTRL'"), std::string::npos) << message;
    EXPECT_NE(message.find("overruns the section"), std::string::npos) << message;
  }
}

// Sanity anchors: the defects above are what the reader rejects, not an
// inability to read anything at all.

TEST(CkptBadCorpus, MissingFileNamesThePath) {
  try {
    (void)snapshot::read_container_file("/nonexistent/nowhere.ckpt");
    FAIL() << "missing file was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nowhere.ckpt"), std::string::npos)
        << e.what();
  }
}

TEST(CkptBadCorpus, WellFormedContainerRoundTrips) {
  const std::vector<snapshot::Section> sections = {
      {"META", {1, 2, 3}},
      {"CONF", {}},  // empty payloads are legal
  };
  const std::vector<std::uint8_t> image = snapshot::render_container(sections);
  const std::vector<snapshot::Section> back = snapshot::parse_container(image, "in-memory");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].tag, "META");
  EXPECT_EQ(back[0].bytes, sections[0].bytes);
  EXPECT_EQ(back[1].tag, "CONF");
  EXPECT_TRUE(back[1].bytes.empty());
}

}  // namespace
