// Cellular channel borrowing (Section 3.2 application).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cellular/borrowing_sim.hpp"
#include "cellular/cell_grid.hpp"
#include "erlang/erlang_b.hpp"
#include "sim/stats.hpp"

namespace cellular = altroute::cellular;
namespace sim = altroute::sim;

namespace {

TEST(CellGrid, SixDistinctNeighborsOnTorus) {
  const cellular::CellGrid grid(6, 6);
  EXPECT_EQ(grid.cell_count(), 36);
  for (int c = 0; c < grid.cell_count(); ++c) {
    auto nb = grid.neighbors(c);
    std::sort(nb.begin(), nb.end());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_NE(nb[i], c);
      if (i > 0) {
        EXPECT_NE(nb[i], nb[i - 1]);
      }
      EXPECT_GE(nb[i], 0);
      EXPECT_LT(nb[i], grid.cell_count());
    }
  }
}

TEST(CellGrid, AdjacencyIsSymmetric) {
  const cellular::CellGrid grid(6, 8);
  for (int a = 0; a < grid.cell_count(); ++a) {
    for (const cellular::CellId b : grid.neighbors(a)) {
      EXPECT_TRUE(grid.adjacent(b, a)) << a << " " << b;
    }
  }
}

TEST(CellGrid, BorrowLockSetHasLenderPlusTwoCommonNeighbors) {
  const cellular::CellGrid grid(6, 6);
  for (int o = 0; o < grid.cell_count(); ++o) {
    for (const cellular::CellId lender : grid.neighbors(o)) {
      const auto locked = grid.borrow_lock_set(o, lender);
      EXPECT_EQ(locked[0], lender);
      for (const cellular::CellId c : locked) {
        EXPECT_NE(c, o);  // borrower not in its own lock set
        EXPECT_TRUE(grid.adjacent(o, c)) << "lock set must surround the borrower";
      }
      EXPECT_NE(locked[1], locked[2]);
      EXPECT_TRUE(grid.adjacent(lender, locked[1]));
      EXPECT_TRUE(grid.adjacent(lender, locked[2]));
    }
  }
}

TEST(CellGrid, Validation) {
  EXPECT_THROW((void)cellular::CellGrid(3, 6), std::invalid_argument);  // odd rows
  EXPECT_THROW((void)cellular::CellGrid(4, 3), std::invalid_argument);
  const cellular::CellGrid grid(4, 4);
  // Cell 10 = (2, 2) is not hex-adjacent to cell 0 = (0, 0) on a 4x4 torus.
  ASSERT_FALSE(grid.adjacent(0, 10));
  EXPECT_THROW((void)grid.borrow_lock_set(0, 10), std::invalid_argument);
}

TEST(Borrowing, NoBorrowingMatchesErlangB) {
  // Every cell is an isolated M/M/C/C system under kNone.
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.channels_per_cell = 20;
  config.offered = {16.0};
  config.measure = 200.0;
  config.mode = cellular::BorrowingMode::kNone;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    blocking.add(cellular::run_borrowing(grid, config, seed).blocking());
  }
  EXPECT_NEAR(blocking.mean(), altroute::erlang::erlang_b(16.0, 20),
              3.0 * blocking.stderr_mean() + 0.01);
}

TEST(Borrowing, CommonRandomNumbersAcrossModes) {
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.channels_per_cell = 10;
  config.offered = {9.0};
  config.measure = 50.0;
  config.mode = cellular::BorrowingMode::kNone;
  const auto a = cellular::run_borrowing(grid, config, 3);
  config.mode = cellular::BorrowingMode::kControlled;
  const auto b = cellular::run_borrowing(grid, config, 3);
  EXPECT_EQ(a.offered_calls, b.offered_calls);  // identical arrivals
  EXPECT_EQ(a.borrowed_calls, 0);
  EXPECT_FALSE(b.reservations.empty());
}

TEST(Borrowing, ControlledImprovesOnNoBorrowingAtModerateLoad) {
  // The paper's Section 3.2 guarantee, checked per seed at a load where
  // borrowing matters but hot spots are absent (symmetric load).
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.channels_per_cell = 50;
  config.offered = {45.0};
  config.measure = 100.0;
  // The guarantee is in expectation, so compare totals over the seeds
  // (common random numbers make the comparison sharp).
  long long blocked_none = 0;
  long long blocked_controlled = 0;
  long long borrowed = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    config.mode = cellular::BorrowingMode::kNone;
    blocked_none += cellular::run_borrowing(grid, config, seed).blocked_calls;
    config.mode = cellular::BorrowingMode::kControlled;
    const auto controlled = cellular::run_borrowing(grid, config, seed);
    blocked_controlled += controlled.blocked_calls;
    borrowed += controlled.borrowed_calls;
  }
  EXPECT_LE(blocked_controlled, blocked_none);
  EXPECT_GT(borrowed, 0);
}

TEST(Borrowing, HotSpotReliefFlowsFromIdleNeighbors) {
  // One overloaded cell amid idle neighbors: borrowing should cut the hot
  // cell's blocking dramatically under either borrowing mode.
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.channels_per_cell = 20;
  config.offered.assign(16, 2.0);
  config.offered[5] = 30.0;  // hot spot
  config.measure = 100.0;
  config.mode = cellular::BorrowingMode::kNone;
  const auto none = cellular::run_borrowing(grid, config, 11);
  config.mode = cellular::BorrowingMode::kControlled;
  const auto controlled = cellular::run_borrowing(grid, config, 11);
  EXPECT_LT(controlled.per_cell_blocking[5], none.per_cell_blocking[5] * 0.5);
}

TEST(Borrowing, UncontrolledBorrowsAtLeastAsMuch) {
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.channels_per_cell = 30;
  config.offered = {29.0};
  config.measure = 100.0;
  config.mode = cellular::BorrowingMode::kUncontrolled;
  const auto uncontrolled = cellular::run_borrowing(grid, config, 5);
  config.mode = cellular::BorrowingMode::kControlled;
  const auto controlled = cellular::run_borrowing(grid, config, 5);
  EXPECT_GE(uncontrolled.borrowed_calls, controlled.borrowed_calls);
}

TEST(Borrowing, Validation) {
  const cellular::CellGrid grid(4, 4);
  cellular::BorrowingConfig config;
  config.offered = {1.0, 2.0};  // neither 1 nor 16 entries
  EXPECT_THROW((void)cellular::run_borrowing(grid, config, 1), std::invalid_argument);
  config.offered = {1.0};
  config.channels_per_cell = 0;
  EXPECT_THROW((void)cellular::run_borrowing(grid, config, 1), std::invalid_argument);
}

}  // namespace
