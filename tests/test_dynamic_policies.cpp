// Least-busy-alternative and sticky-random (DAR) comparison policies.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "loss/dynamic_policies.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace routing = altroute::routing;
namespace sim = altroute::sim;

namespace {

class DynamicPolicyTest : public ::testing::Test {
 protected:
  DynamicPolicyTest()
      : graph_(net::full_mesh(4, 10)),
        routes_(routing::build_min_hop_routes(graph_, 2)),
        state_(graph_) {}

  loss::RoutingContext ctx(int src, int dst) {
    return loss::RoutingContext{graph_,
                                state_,
                                net::NodeId(src),
                                net::NodeId(dst),
                                routes_.at(net::NodeId(src), net::NodeId(dst)),
                                0.0,
                                0.0,
                                1};
  }

  void fill_link(int src, int dst, int calls) {
    const routing::Path p =
        routing::make_path(graph_, {net::NodeId(src), net::NodeId(dst)});
    for (int i = 0; i < calls; ++i) state_.book(p);
  }

  net::Graph graph_;
  routing::RouteTable routes_;
  loss::NetworkState state_;
};

TEST_F(DynamicPolicyTest, LeastBusyPicksTheWidestBottleneck) {
  loss::LeastBusyAlternatePolicy policy(false);
  fill_link(0, 1, 10);  // primary 0->1 blocked
  // Alternates 0-2-1 and 0-3-1: load the 2-route harder.
  fill_link(0, 2, 7);
  fill_link(0, 3, 2);
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
  ASSERT_EQ(d.path->nodes.size(), 3u);
  EXPECT_EQ(d.path->nodes[1], net::NodeId(3));  // the less busy detour
}

TEST_F(DynamicPolicyTest, LeastBusyTiesPreferShorterThenFirst) {
  loss::LeastBusyAlternatePolicy policy(false);
  fill_link(0, 1, 10);
  // Both 2-hop alternates equally free: route-table order (via node 2)
  // wins among equal-length, equal-bottleneck candidates.
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.path->hops(), 2);
  EXPECT_EQ(d.path->nodes[1], net::NodeId(2));
}

TEST_F(DynamicPolicyTest, LeastBusyProtectedHonorsReservations) {
  loss::LeastBusyAlternatePolicy unprotected(false);
  loss::LeastBusyAlternatePolicy protected_policy(true);
  std::vector<int> r(static_cast<std::size_t>(graph_.link_count()), 10);
  state_.set_reservations(r);
  fill_link(0, 1, 10);
  EXPECT_TRUE(unprotected.route(ctx(0, 1)).accepted());
  EXPECT_FALSE(protected_policy.route(ctx(0, 1)).accepted());
}

TEST_F(DynamicPolicyTest, StickyRandomTriesExactlyOneAlternate) {
  loss::StickyRandomPolicy policy(4, 7, false);
  fill_link(0, 1, 10);
  const auto d = policy.route(ctx(0, 1));
  EXPECT_EQ(d.alternates_probed, 1);
  ASSERT_TRUE(d.accepted());
  const std::size_t remembered = policy.current_alternate(net::NodeId(0), net::NodeId(1));
  // Success sticks: the same alternate is used again.
  const auto d2 = policy.route(ctx(0, 1));
  ASSERT_TRUE(d2.accepted());
  EXPECT_EQ(policy.current_alternate(net::NodeId(0), net::NodeId(1)), remembered);
  EXPECT_EQ(d.path, d2.path);
}

TEST_F(DynamicPolicyTest, StickyRandomResetsOnFailure) {
  loss::StickyRandomPolicy policy(4, 7, false);
  fill_link(0, 1, 10);
  // Prime the memory.
  (void)policy.route(ctx(0, 1));
  // Saturate the whole network: the sticky attempt must fail and reset.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j && !(i == 0 && j == 1)) fill_link(i, j, 10);
    }
  }
  bool saw_reset = false;
  std::size_t before = policy.current_alternate(net::NodeId(0), net::NodeId(1));
  // The reset draws a random candidate; iterate a few calls so the draw
  // differs from `before` at least once (5 candidates on K4 at H=2... 2
  // two-hop alternates: draw space is small but resets re-randomize).
  for (int i = 0; i < 16; ++i) {
    const auto d = policy.route(ctx(0, 1));
    EXPECT_FALSE(d.accepted());
    const std::size_t now = policy.current_alternate(net::NodeId(0), net::NodeId(1));
    if (now != before) saw_reset = true;
    before = now;
  }
  EXPECT_TRUE(saw_reset);
}

TEST_F(DynamicPolicyTest, StickyRandomUnsetForPairsNeverOverflowed) {
  const loss::StickyRandomPolicy policy(4, 7, false);
  EXPECT_EQ(policy.current_alternate(net::NodeId(2), net::NodeId(3)),
            std::numeric_limits<std::size_t>::max());
}

TEST(DynamicPolicies, EndToEndComparisonIsSane) {
  // Below the critical load every alternate scheme beats single-path, and
  // the least-busy rule (more information) does at least as well as
  // first-fit uncontrolled routing.  (42 E/pair on C = 50 would already be
  // past the uncontrolled crossover -- 38 E is safely below it.)
  const net::Graph g = net::full_mesh(4, 50);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 38.0);

  loss::SinglePathPolicy single;
  loss::UncontrolledAlternatePolicy first_fit;
  loss::LeastBusyAlternatePolicy least_busy(false);
  double b_single = 0.0;
  double b_first = 0.0;
  double b_least = 0.0;
  const int seeds = 5;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(t, 70.0, seed);
    b_single += loss::run_trace(g, routes, single, trace, {}).blocking() / seeds;
    b_first += loss::run_trace(g, routes, first_fit, trace, {}).blocking() / seeds;
    loss::StickyRandomPolicy sticky(4, seed, false);
    b_least += loss::run_trace(g, routes, least_busy, trace, {}).blocking() / seeds;
    (void)loss::run_trace(g, routes, sticky, trace, {});  // smoke: must not throw
  }
  EXPECT_LT(b_first, b_single);
  EXPECT_LT(b_least, b_single);
  EXPECT_LE(b_least, b_first + 0.01);
}

TEST(DynamicPolicies, Validation) {
  EXPECT_THROW((void)loss::StickyRandomPolicy(0, 1, false), std::invalid_argument);
}

}  // namespace
