// Protection variants: per-link H^k and per-call-length thresholds.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "core/variants.hpp"
#include "erlang/state_protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace core = altroute::core;
namespace loss = altroute::loss;
namespace routing = altroute::routing;
namespace sim = altroute::sim;
namespace erlang = altroute::erlang;
namespace study = altroute::study;

namespace {

TEST(PerLinkH, QuadrangleAllLinksSeeThreeHopAlternates) {
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const auto h = core::per_link_max_alt_hops(g, routes);
  // Every link appears on some 3-hop loop-free alternate of K4.
  for (const int value : h) EXPECT_EQ(value, 3);
}

TEST(PerLinkH, NeverExceedsGlobalHAndLevelsNeverBigger) {
  const net::Graph g = net::nsfnet_t3();
  const int global_h = 11;
  const routing::RouteTable routes = routing::build_min_hop_routes(g, global_h);
  const auto h = core::per_link_max_alt_hops(g, routes);
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  const auto r_global = core::protection_levels(g, routes, t, global_h);
  const auto r_local = core::protection_levels_per_link_h(g, routes, t);
  for (std::size_t k = 0; k < h.size(); ++k) {
    EXPECT_GE(h[k], 1) << k;
    EXPECT_LE(h[k], global_h) << k;
    EXPECT_LE(r_local[k], r_global[k]) << k;
  }
  // On NSFNet at H = 11 every link lies on some maximal alternate, so the
  // variant is a no-op there (h[k] == 11 for all k, itself a documented
  // fact worth pinning).
  for (const int value : h) EXPECT_EQ(value, 11);
}

TEST(PerLinkH, AdaptsToTopologyWhenGlobalHIsSloppy) {
  // A ring's longest loop-free path has N-1 links; configuring a larger
  // global H just inflates r, and the per-link variant recovers the slack
  // automatically.
  const net::Graph g = net::ring(4, 100);
  const int sloppy_h = 10;
  const routing::RouteTable routes = routing::build_min_hop_routes(g, sloppy_h);
  const auto h = core::per_link_max_alt_hops(g, routes);
  for (const int value : h) EXPECT_EQ(value, 3);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 30.0);
  const auto r_global = core::protection_levels(g, routes, t, sloppy_h);
  const auto r_local = core::protection_levels_per_link_h(g, routes, t);
  for (std::size_t k = 0; k < h.size(); ++k) {
    EXPECT_LT(r_local[k], r_global[k]) << k;
  }
}

TEST(PerLinkH, LinksWithNoAlternatesGetNoProtection) {
  // Star topology: every loop-free path is the unique primary; no
  // alternates exist at all.
  const net::Graph g = net::star(5, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 4);
  const auto h = core::per_link_max_alt_hops(g, routes);
  for (const int value : h) EXPECT_EQ(value, 1);
  const auto r = core::protection_levels_per_link_h(
      g, routes, net::TrafficMatrix::uniform(5, 3.0));
  for (const int value : r) EXPECT_EQ(value, 0);
}

TEST(PerLengthPolicy, TablesMatchScalarSolver) {
  const net::Graph g = net::full_mesh(4, 100);
  const std::vector<double> lambda(static_cast<std::size_t>(g.link_count()), 74.0);
  const core::PerLengthControlledPolicy policy(g, lambda, 6);
  for (int h = 1; h <= 6; ++h) {
    EXPECT_EQ(policy.reservation(net::LinkId(0), h),
              erlang::min_state_protection(74.0, 100, h))
        << h;
  }
}

TEST(PerLengthPolicy, ShortAlternatesAdmittedMoreFreely) {
  // Two-hop alternates face r(H=2) while three-hop alternates face the
  // larger r(H=3): construct a state where exactly the 2-hop one passes.
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const std::vector<double> lambda(static_cast<std::size_t>(g.link_count()), 90.0);
  const int r2 = erlang::min_state_protection(90.0, 100, 2);
  const int r3 = erlang::min_state_protection(90.0, 100, 3);
  ASSERT_LT(r2, r3);

  loss::NetworkState state(g);
  // Block the direct 0->1 link, and park every other link exactly at
  // occupancy C - r3 (too busy for 3-hop alternates, fine for 2-hop ones).
  const routing::Path direct = routing::make_path(g, {net::NodeId(0), net::NodeId(1)});
  for (int i = 0; i < 100; ++i) state.book(direct);
  for (int k = 0; k < g.link_count(); ++k) {
    const net::Link& l = g.link(net::LinkId(k));
    if (l.src == net::NodeId(0) && l.dst == net::NodeId(1)) continue;
    const routing::Path hop = routing::make_path(g, {l.src, l.dst});
    for (int i = 0; i < 100 - r3; ++i) state.book(hop);
  }

  core::PerLengthControlledPolicy per_length(g, lambda, 3);
  const loss::RoutingContext ctx{g,
                                 state,
                                 net::NodeId(0),
                                 net::NodeId(1),
                                 routes.at(net::NodeId(0), net::NodeId(1)),
                                 0.0,
                                 0.0,
                                 1};
  const loss::RouteDecision d = per_length.route(ctx);
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
  EXPECT_EQ(d.path->hops(), 2);

  // The baseline global-H policy refuses the same call: every alternate's
  // links sit at the H = 3 threshold.
  core::ControlledAlternatePolicy global;
  loss::NetworkState state2(g);
  std::vector<int> r(static_cast<std::size_t>(g.link_count()), r3);
  state2.set_reservations(r);
  for (int i = 0; i < 100; ++i) state2.book(direct);
  for (int k = 0; k < g.link_count(); ++k) {
    const net::Link& l = g.link(net::LinkId(k));
    if (l.src == net::NodeId(0) && l.dst == net::NodeId(1)) continue;
    const routing::Path hop = routing::make_path(g, {l.src, l.dst});
    for (int i = 0; i < 100 - r3; ++i) state2.book(hop);
  }
  const loss::RoutingContext ctx2{g,
                                  state2,
                                  net::NodeId(0),
                                  net::NodeId(1),
                                  routes.at(net::NodeId(0), net::NodeId(1)),
                                  0.0,
                                  0.0,
                                  1};
  EXPECT_FALSE(global.route(ctx2).accepted());
}

TEST(PerLengthPolicy, NeverWorseThanSinglePathOnQuadrangleOverload) {
  // The safety argument (each link's bound below 1/h for an h-hop call)
  // must show up empirically: per-length control stays at or below
  // single-path blocking even at overload, like the baseline control.
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 105.0);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const auto lambda = routing::primary_link_loads(g, routes, t);

  loss::SinglePathPolicy single;
  core::PerLengthControlledPolicy per_length(g, lambda, 3);
  sim::RunningStats diff;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(t, 60.0, seed);
    const double b_single = loss::run_trace(g, routes, single, trace, {}).blocking();
    const double b_perlen = loss::run_trace(g, routes, per_length, trace, {}).blocking();
    diff.add(b_single - b_perlen);
  }
  EXPECT_GE(diff.mean(), -0.004);
}

TEST(PerLengthPolicy, Validation) {
  const net::Graph g = net::full_mesh(3, 10);
  EXPECT_THROW((void)core::PerLengthControlledPolicy(g, {1.0}, 3), std::invalid_argument);
  const std::vector<double> lambda(static_cast<std::size_t>(g.link_count()), 1.0);
  EXPECT_THROW((void)core::PerLengthControlledPolicy(g, lambda, 0), std::invalid_argument);
}

}  // namespace
