// MSER warm-up detection and the carried-hops metric.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/controlled_policy.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/mser.hpp"
#include "sim/rng.hpp"

namespace sim = altroute::sim;
namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;

namespace {

TEST(Mser, ConstantSeriesNeedsNoTruncation) {
  const std::vector<double> series(50, 3.0);
  const sim::MserResult r = sim::mser_truncation(series, 5);
  EXPECT_EQ(r.truncation_batches, 0u);
  EXPECT_EQ(r.batches, 10u);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
}

TEST(Mser, DetectsAnObviousTransient) {
  // 20 observations of a high transient, then 180 of stationary noise.
  sim::Rng rng(5, 0);
  std::vector<double> series;
  for (int i = 0; i < 20; ++i) series.push_back(10.0 - 0.4 * i + 0.1 * rng.uniform01());
  for (int i = 0; i < 180; ++i) series.push_back(2.0 + 0.1 * rng.uniform01());
  const sim::MserResult r = sim::mser_truncation(series, 5);
  // The transient spans batches 0..3 (observations 0..19).
  EXPECT_GE(r.truncation_batches, 3u);
  EXPECT_LE(r.truncation_batches, 6u);
}

TEST(Mser, TruncationCappedAtHalfTheSeries) {
  // Monotone drift throughout: the guard must stop at n/2 batches.
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(static_cast<double>(-i));
  const sim::MserResult r = sim::mser_truncation(series, 5);
  EXPECT_LE(r.truncation_batches, 10u);
}

TEST(Mser, PartialTrailingBatchIsDropped) {
  const std::vector<double> series(53, 1.0);  // 10 full batches + 3 leftovers
  EXPECT_EQ(sim::mser_truncation(series, 5).batches, 10u);
}

TEST(Mser, Validation) {
  EXPECT_THROW((void)sim::mser_truncation({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)sim::mser_truncation({1.0, 2.0, 3.0}, 5), std::invalid_argument);
  EXPECT_NO_THROW((void)sim::mser_truncation({1.0, 2.0}, 1));
}

TEST(CarriedHops, SinglePathCarriesOnlyPrimaryLengths) {
  const net::Graph g = net::full_mesh(4, 50);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 30.0);
  const sim::CallTrace trace = sim::generate_trace(t, 50.0, 3);
  loss::SinglePathPolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, {});
  // Full-mesh primaries are all 1 hop.
  ASSERT_EQ(run.carried_by_hops.size(), 2u);
  EXPECT_EQ(run.carried_by_hops[1], run.carried_primary);
  EXPECT_DOUBLE_EQ(run.mean_carried_hops(), 1.0);
}

TEST(CarriedHops, AlternateRoutingRaisesTheMean) {
  const net::Graph g = net::full_mesh(4, 50);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 45.0);
  const sim::CallTrace trace = sim::generate_trace(t, 60.0, 7);
  loss::SinglePathPolicy single;
  loss::UncontrolledAlternatePolicy uncontrolled;
  const loss::RunResult a = loss::run_trace(g, routes, single, trace, {});
  const loss::RunResult b = loss::run_trace(g, routes, uncontrolled, trace, {});
  EXPECT_GT(b.mean_carried_hops(), a.mean_carried_hops());
  // Hop buckets reconcile with the carried totals.
  long long carried = 0;
  for (const long long count : b.carried_by_hops) carried += count;
  EXPECT_EQ(carried, b.carried_primary + b.carried_alternate);
}

}  // namespace
