// Malformed --control / --policy corpus: every file under
// tests/data/control_bad is a way a command-line control-plane spec can go
// wrong -- non-numeric values, missing or unknown keys, out-of-range
// knobs, stray commas.  Each must be REJECTED with one pointed message
// naming the offending token, mirroring tests/data/scenario_bad.
//
// File format: line 1 names the flag ("control" or "policy"), line 2 is
// the spec string passed verbatim (possibly empty).  To add a case, drop a
// .spec file in the corpus directory and add a row below.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "control/config.hpp"

namespace control = altroute::control;

namespace {

struct BadSpec {
  const char* file;      // relative to tests/data/control_bad
  const char* expected;  // substring the rejection message must contain
};

class ControlBadCorpus : public ::testing::TestWithParam<BadSpec> {};

TEST_P(ControlBadCorpus, IsRejectedWithAPointedMessage) {
  const BadSpec& c = GetParam();
  const std::string path = std::string(CONTROL_BAD_DIR) + "/" + c.file;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing corpus file " << path;
  std::string flag, spec;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, flag))) << path;
  std::getline(in, spec);  // may legitimately be empty
  ASSERT_TRUE(flag == "control" || flag == "policy") << path << ": bad flag " << flag;
  try {
    if (flag == "control") {
      (void)control::parse_control_spec(spec);
    } else {
      (void)control::parse_dar_spec(spec);
    }
    FAIL() << c.file << " (--" << flag << " '" << spec << "') was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(c.expected), std::string::npos)
        << c.file << " rejected, but the message was: " << e.what();
    // Every rejection identifies which flag's grammar was violated.
    const std::string prefix = flag == "control" ? "control" : "policy";
    EXPECT_EQ(std::string(e.what()).find(prefix), 0u) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ControlBadCorpus,
    ::testing::Values(
        BadSpec{"empty_spec.spec", "empty spec"},
        BadSpec{"epoch_not_number.spec", "value 'bogus' of 'epoch' is not a number"},
        BadSpec{"missing_epoch.spec", "missing required key 'epoch'"},
        BadSpec{"epoch_zero.spec", "epoch must be > 0"},
        BadSpec{"unknown_key.spec", "unknown key 'foo'"},
        BadSpec{"unknown_estimator.spec", "unknown estimator 'kalman' (known: mle ewma)"},
        BadSpec{"weight_out_of_range.spec", "weight must lie in (0, 1]"},
        BadSpec{"window_negative.spec", "window must be > 0"},
        BadSpec{"double_comma.spec", "empty key=value token"},
        BadSpec{"no_equals.spec", "token 'deadband' is not of the form key=value"},
        BadSpec{"max_step_fraction.spec", "value '1.5' of 'max-step' is not an integer"},
        BadSpec{"policy_unknown.spec", "unknown policy 'nope' (known: dar)"},
        BadSpec{"policy_trailing_comma.spec", "trailing comma after 'dar'"},
        BadSpec{"policy_unknown_key.spec", "unknown key 'reserve' (known: trunk)"},
        BadSpec{"policy_trunk_not_integer.spec", "value 'two' of 'trunk' is not an integer"},
        BadSpec{"policy_trunk_negative.spec", "trunk must be >= 0"}),
    [](const ::testing::TestParamInfo<BadSpec>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// Sanity anchors: the well-formed siblings parse, so the rejections above
// are about the defects, not the harness.
TEST(ControlBadCorpus, WellFormedSiblingsParse) {
  const control::ControlConfig c = control::parse_control_spec(
      "epoch=5,estimator=ewma,window=2,weight=0.25,deadband=0.1,max-step=2");
  EXPECT_DOUBLE_EQ(c.epoch, 5.0);
  EXPECT_EQ(c.estimator, control::EstimatorKind::kEwma);
  EXPECT_DOUBLE_EQ(c.window, 2.0);
  EXPECT_DOUBLE_EQ(c.weight, 0.25);
  EXPECT_DOUBLE_EQ(c.deadband, 0.1);
  EXPECT_EQ(c.max_step, 2);
  EXPECT_TRUE(c.enabled());

  EXPECT_EQ(control::parse_dar_spec("dar").trunk, 1);
  EXPECT_EQ(control::parse_dar_spec("dar,trunk=3").trunk, 3);
}

}  // namespace
