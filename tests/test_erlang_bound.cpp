// Cut-set Erlang Bound (Section 4's lower-bound reference curve).
#include <gtest/gtest.h>

#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/erlang_bound.hpp"
#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"

namespace e = altroute::erlang;
namespace net = altroute::net;

namespace {

TEST(ErlangBound, TwoNodeDuplexIsExactErlangB) {
  // One duplex facility, symmetric traffic: the only cut isolates node 0,
  // and each direction is an independent Erlang-B system.
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 8.0);
  t.set(net::NodeId(1), net::NodeId(0), 8.0);
  const auto bound = e::erlang_bound(g, t);
  EXPECT_NEAR(bound.bound, e::erlang_b(8.0, 10), 1e-12);
  EXPECT_EQ(bound.forward_capacity, 10);
  EXPECT_EQ(bound.reverse_capacity, 10);
}

TEST(ErlangBound, AsymmetricDirectionsWeightedByTraffic) {
  net::Graph g(2);
  g.add_link(net::NodeId(0), net::NodeId(1), 10);
  g.add_link(net::NodeId(1), net::NodeId(0), 5);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 9.0);
  t.set(net::NodeId(1), net::NodeId(0), 3.0);
  const auto bound = e::erlang_bound(g, t);
  const double expected =
      (9.0 / 12.0) * e::erlang_b(9.0, 10) + (3.0 / 12.0) * e::erlang_b(3.0, 5);
  EXPECT_NEAR(bound.bound, expected, 1e-12);
}

TEST(ErlangBound, ZeroTrafficGivesZero) {
  net::Graph g = net::full_mesh(4, 10);
  const auto bound = e::erlang_bound(g, net::TrafficMatrix(4));
  EXPECT_DOUBLE_EQ(bound.bound, 0.0);
}

TEST(ErlangBound, SymmetricQuadrangleUsesSingleNodeCut) {
  // Fully-connected 4-node with uniform traffic: by symmetry the binding
  // cut isolates one node (3 links out, 3 links in).
  net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 90.0);
  const auto bound = e::erlang_bound(g, t);
  // Cut {i}: forward traffic 3 * 90 = 270 over capacity 300 in each
  // direction; weight 270 / 1080 per direction.
  const double expected = 2.0 * (270.0 / 1080.0) * e::erlang_b(270.0, 300);
  EXPECT_NEAR(bound.bound, expected, 1e-12);
}

TEST(ErlangBound, GrowsWithLoad) {
  net::Graph g = net::full_mesh(4, 100);
  double prev = 0.0;
  for (double load = 60.0; load <= 140.0; load += 10.0) {
    const double b = e::erlang_bound(g, net::TrafficMatrix::uniform(4, load)).bound;
    EXPECT_GE(b, prev) << load;
    prev = b;
  }
}

TEST(ErlangBound, DisabledLinksShrinkCutCapacity) {
  net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 90.0);
  const double before = e::erlang_bound(g, t).bound;
  g.fail_duplex(net::NodeId(0), net::NodeId(1));
  const double after = e::erlang_bound(g, t).bound;
  EXPECT_GT(after, before);
}

TEST(ErlangBound, NsfnetNominalIsSmallButPositive) {
  // At the nominal load the network is engineered: the bound should be a
  // small probability, and link 10<->11's overload (167 and 154 Erlangs
  // over 100 circuits in opposite directions) makes it clearly non-zero.
  const net::Graph g = net::nsfnet_t3();
  net::TrafficMatrix t(12);
  t.set(net::NodeId(10), net::NodeId(11), 167.0);
  t.set(net::NodeId(11), net::NodeId(10), 154.0);
  const auto bound = e::erlang_bound(g, t);
  EXPECT_GT(bound.bound, 0.0);
  EXPECT_LT(bound.bound, 1.0);
}

TEST(ErlangBound, BoundIsBelowSingleLinkBlockingOfBindingCut) {
  // The weighted sum of two terms, each below its Erlang-B value, cannot
  // exceed the larger term.
  net::Graph g = net::full_mesh(4, 50);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 70.0);
  const auto bound = e::erlang_bound(g, t);
  EXPECT_LE(bound.bound,
            std::max(e::erlang_b(bound.forward_traffic, bound.forward_capacity),
                     e::erlang_b(bound.reverse_traffic, bound.reverse_capacity)) +
                1e-12);
}

TEST(ErlangBound, Validation) {
  net::Graph g(1);
  EXPECT_THROW((void)e::erlang_bound(g, net::TrafficMatrix(1)), std::invalid_argument);
  net::Graph g2 = net::full_mesh(3, 5);
  EXPECT_THROW((void)e::erlang_bound(g2, net::TrafficMatrix(4)), std::invalid_argument);
}

}  // namespace
