// Flight recorder end-to-end: when the checker's oracles trip (here via
// the injected release-leak fault), the reference run's last-N trace
// records must come out the other side -- in CaseReport::flight_dump, and
// as flight.jsonl inside the failing-case artifact bundle.  A passing case
// must NOT carry a dump (the ring is diagnostic payload for failures, not
// a tax on healthy runs), and the compared trace streams must be
// unaffected by the tee (a clean case passes the byte-level differential
// with the recorder attached).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "check/case.hpp"
#include "check/oracle.hpp"

using namespace altroute;

namespace {

constexpr int kRingCapacity = 16;

check::CaseSpec first_corpus_case() { return check::generate_case(check::case_seed(1, 0)); }

check::CheckOptions recorder_options(bool inject) {
  check::CheckOptions options;
  options.inject_release_leak = inject;
  options.flight_recorder = kRingCapacity;
  options.thread_count = 2;
  return options;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  return lines;
}

TEST(FlightRecorderFault, CleanCaseStillPassesWithRecorderAttached) {
  // The tee must not perturb any compared observable: same case, same
  // oracles, recorder on -- still green.
  const check::CaseReport report =
      check::check_case(first_corpus_case(), recorder_options(/*inject=*/false));
  EXPECT_TRUE(report.passed()) << (report.failures.empty() ? "" : report.failures.front());
  EXPECT_TRUE(report.flight_dump.empty()) << "passing case carried a flight dump";
}

TEST(FlightRecorderFault, InjectedFaultProducesBoundedDump) {
  const check::CaseSpec spec = first_corpus_case();
  const check::CaseReport report = check::check_case(spec, recorder_options(/*inject=*/true));
  ASSERT_FALSE(report.passed()) << "the injected circuit leak went unnoticed";
  ASSERT_FALSE(report.flight_dump.empty()) << "failing case carried no flight dump";

  // Header line names the reference configuration and the ring geometry.
  std::istringstream lines(report.flight_dump);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("# flight recorder"), std::string::npos);
  EXPECT_NE(header.find("case " + std::to_string(spec.seed)), std::string::npos);
  EXPECT_NE(header.find("heap+direct"), std::string::npos);
  EXPECT_NE(header.find("last " + std::to_string(kRingCapacity)), std::string::npos);

  // Last-N semantics: at most capacity record lines, every one a JSONL
  // object carrying a record kind.
  std::size_t records = 0;
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_NE(line.find("\"kind\""), std::string::npos) << line;
    ++records;
  }
  EXPECT_GT(records, 0u);
  EXPECT_LE(records, static_cast<std::size_t>(kRingCapacity));
  EXPECT_EQ(count_lines(report.flight_dump), records + 1);  // header + records
}

TEST(FlightRecorderFault, DumpLandsInTheArtifactBundle) {
  const check::CaseSpec spec = first_corpus_case();
  const check::CheckOptions options = recorder_options(/*inject=*/true);
  const check::CaseReport report = check::check_case(spec, options);
  ASSERT_FALSE(report.passed());
  ASSERT_FALSE(report.flight_dump.empty());

  const std::string dir = ::testing::TempDir() + "flight_recorder_artifacts";
  check::dump_case_artifacts(dir, spec, report.failures, report.flight_dump);

  std::ifstream in(dir + "/flight.jsonl", std::ios::binary);
  ASSERT_TRUE(in.good()) << "artifact bundle has no flight.jsonl";
  std::ostringstream written;
  written << in.rdbuf();
  EXPECT_EQ(written.str(), report.flight_dump);

  // repro.txt points the reader at the dump.
  std::ifstream repro_in(dir + "/repro.txt", std::ios::binary);
  ASSERT_TRUE(repro_in.good());
  std::ostringstream repro;
  repro << repro_in.rdbuf();
  EXPECT_NE(repro.str().find("flight.jsonl"), std::string::npos);
}

TEST(FlightRecorderFault, NoRecorderMeansNoDumpEvenOnFailure) {
  check::CheckOptions options = recorder_options(/*inject=*/true);
  options.flight_recorder = 0;
  const check::CaseReport report = check::check_case(first_corpus_case(), options);
  ASSERT_FALSE(report.passed());
  EXPECT_TRUE(report.flight_dump.empty());

  // And the artifact writer skips the file entirely for an empty dump.
  const std::string dir = ::testing::TempDir() + "flight_recorder_no_dump";
  check::dump_case_artifacts(dir, first_corpus_case(), report.failures, report.flight_dump);
  std::ifstream in(dir + "/flight.jsonl");
  EXPECT_FALSE(in.good());
}

}  // namespace
