// Unit tests for snapshot::fork_runs: K continuations branched from ONE
// mid-run checkpoint share an identical realized past (byte-identical
// trace prefix) and diverge only in their scripted futures; each branch
// reproduces exactly what a hand-wired resume of the same checkpoint
// produces; branch order, labels, and thread count never change results;
// and the argument validation is pointed.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controlled_policy.hpp"
#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/call_trace.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/fork.hpp"

using namespace altroute;

namespace {

constexpr double kCaptureAt = 30.0;

struct Model {
  net::Graph graph = net::full_mesh(4, 40);
  net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, 35.0);
  scenario::Scenario scen;
  double horizon = 60.0;

  Model() {
    scen.name = "fork base";
    scen.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
    scen.events.push_back(scenario::ScenarioEvent::link_fail(20.0, 0, 1));
    scen.events.push_back(scenario::ScenarioEvent::resolve_protection(20.0));
    scen.events.push_back(scenario::ScenarioEvent::link_repair(28.0, 0, 1));
  }
};

scenario::ScenarioEngineOptions base_engine(const Model&) {
  scenario::ScenarioEngineOptions engine;
  engine.warmup = 5.0;
  engine.policy_seed = 13;
  engine.time_bins = 6;
  engine.max_alt_hops = 3;
  return engine;
}

// The three futures every test forks into: the original script, an extra
// failure after the capture point, and a capacity cut after it.
std::vector<scenario::Scenario> branch_scenarios(const Model& m) {
  scenario::Scenario extra_failure = m.scen;
  extra_failure.events.push_back(scenario::ScenarioEvent::link_fail(45.0, 1, 2));
  scenario::Scenario capacity_cut = m.scen;
  capacity_cut.events.push_back(scenario::ScenarioEvent::capacity_scale(40.0, 2, 3, 0.25));
  capacity_cut.events.push_back(scenario::ScenarioEvent::resolve_protection(40.0));
  return {m.scen, extra_failure, capacity_cut};
}

// Captures the checkpoint at kCaptureAt plus the trace-record prefix.
struct CapturingSink final : snapshot::CheckpointSink {
  obs::VectorTraceSink* collector{nullptr};
  std::vector<snapshot::ScenarioCheckpoint> captured;
  std::vector<std::vector<obs::TraceRecord>> prefixes;

  void on_checkpoint(const snapshot::ScenarioCheckpoint& ck) override {
    captured.push_back(ck);
    prefixes.push_back(collector != nullptr ? collector->records
                                            : std::vector<obs::TraceRecord>{});
  }
};

struct Capture {
  snapshot::ScenarioCheckpoint ckpt;
  std::vector<obs::TraceRecord> prefix;
};

// fork_runs forbids a probe (K branches cannot share one registry), and a
// checkpoint captured WITH a probe carries obs state a probe-less resume
// rejects -- so the fork tests capture without observability, and the
// trace-sharing test captures with it.
Capture capture_at_30(const Model& m, const sim::CallTrace& trace, bool with_probe) {
  CapturingSink sink;
  obs::MetricRegistry registry;
  obs::VectorTraceSink collector;
  obs::Probe probe(&registry, &collector);
  sink.collector = &collector;
  scenario::ScenarioEngineOptions engine = base_engine(m);
  if (with_probe) engine.probe = &probe;
  engine.checkpoint_at = kCaptureAt;
  engine.checkpoints = &sink;
  core::ControlledAlternatePolicy policy;
  (void)scenario::run_scenario(m.graph, m.traffic, policy, trace, m.scen, engine);
  EXPECT_EQ(sink.captured.size(), 1u);
  return {sink.captured.front(), sink.prefixes.front()};
}

// A hand-wired resume of one branch; observability mirrors the capture run
// (the checkpoint and the resume must agree on whether a probe exists).
struct BranchRun {
  scenario::ScenarioRunResult result;
  std::vector<std::string> lines;
};

BranchRun resume_by_hand(const Model& m, const sim::CallTrace& trace, const Capture& cap,
                         const scenario::Scenario& branch, bool with_probe) {
  obs::MetricRegistry registry;
  obs::VectorTraceSink collector;
  collector.records = cap.prefix;
  obs::Probe probe(&registry, &collector);
  scenario::ScenarioEngineOptions engine = base_engine(m);
  if (with_probe) engine.probe = &probe;
  engine.resume = &cap.ckpt;
  core::ControlledAlternatePolicy policy;
  BranchRun run;
  run.result = scenario::run_scenario(m.graph, m.traffic, policy, trace, branch, engine);
  run.lines.reserve(collector.records.size());
  for (const obs::TraceRecord& r : collector.records) {
    run.lines.push_back(obs::JsonlTraceSink::format(r));
  }
  return run;
}

void expect_same_result(const scenario::ScenarioRunResult& a,
                        const scenario::ScenarioRunResult& b, const std::string& label) {
  EXPECT_EQ(a.run.offered, b.run.offered) << label;
  EXPECT_EQ(a.run.blocked, b.run.blocked) << label;
  EXPECT_EQ(a.run.carried_primary, b.run.carried_primary) << label;
  EXPECT_EQ(a.run.carried_alternate, b.run.carried_alternate) << label;
  EXPECT_EQ(a.run.carried_by_hops, b.run.carried_by_hops) << label;
  EXPECT_EQ(a.run.bin_offered, b.run.bin_offered) << label;
  EXPECT_EQ(a.run.bin_blocked, b.run.bin_blocked) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  ASSERT_EQ(a.applied.size(), b.applied.size()) << label;
  for (std::size_t i = 0; i < a.applied.size(); ++i) {
    EXPECT_EQ(a.applied[i].time, b.applied[i].time) << label << " applied " << i;
    EXPECT_EQ(a.applied[i].calls_killed, b.applied[i].calls_killed) << label << " applied " << i;
  }
  ASSERT_EQ(a.final_links.size(), b.final_links.size()) << label;
  for (std::size_t k = 0; k < a.final_links.size(); ++k) {
    EXPECT_EQ(a.final_links[k].occupancy, b.final_links[k].occupancy) << label << " link " << k;
    EXPECT_EQ(a.final_links[k].capacity, b.final_links[k].capacity) << label << " link " << k;
  }
}

TEST(Fork, ThreeWayForkMatchesHandWiredResumes) {
  const Model m;
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 17);
  const Capture cap = capture_at_30(m, trace, /*with_probe=*/false);
  const std::vector<scenario::Scenario> branches = branch_scenarios(m);

  core::ControlledAlternatePolicy p0, p1, p2;
  snapshot::ForkOptions options;
  options.engine = base_engine(m);
  const std::vector<snapshot::ForkOutcome> outcomes =
      snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                          {{"baseline", branches[0], &p0},
                           {"extra-failure", branches[1], &p1},
                           {"capacity-cut", branches[2], &p2}},
                          options);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].name, "baseline");
  EXPECT_EQ(outcomes[1].name, "extra-failure");
  EXPECT_EQ(outcomes[2].name, "capacity-cut");

  for (std::size_t k = 0; k < 3; ++k) {
    const BranchRun manual = resume_by_hand(m, trace, cap, branches[k], /*with_probe=*/false);
    expect_same_result(outcomes[k].result, manual.result, outcomes[k].name);
  }
  // The futures genuinely diverge: the extra failure kills calls the
  // baseline kept, the capacity cut forces preemptions.
  EXPECT_GT(outcomes[1].result.dropped, outcomes[0].result.dropped);
  EXPECT_GT(outcomes[2].result.dropped, outcomes[0].result.dropped);
  EXPECT_EQ(outcomes[0].result.run.offered, outcomes[1].result.run.offered);
  EXPECT_EQ(outcomes[0].result.run.offered, outcomes[2].result.run.offered);
}

TEST(Fork, BranchesShareTheRealizedPastByteForByte) {
  const Model m;
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 17);
  const Capture cap = capture_at_30(m, trace, /*with_probe=*/true);
  const std::vector<scenario::Scenario> branches = branch_scenarios(m);
  ASSERT_FALSE(cap.prefix.empty());

  std::vector<BranchRun> runs;
  runs.reserve(branches.size());
  for (const scenario::Scenario& b : branches) {
    runs.push_back(resume_by_hand(m, trace, cap, b, /*with_probe=*/true));
  }
  // Every branch's stream starts with the SAME realized past...
  for (std::size_t k = 1; k < runs.size(); ++k) {
    ASSERT_GE(runs[k].lines.size(), cap.prefix.size());
    for (std::size_t i = 0; i < cap.prefix.size(); ++i) {
      ASSERT_EQ(runs[k].lines[i], runs[0].lines[i])
          << "branch " << k << " diverges INSIDE the shared past at record " << i;
    }
  }
  // ...and any divergence between futures happens after the capture point.
  bool diverged = false;
  for (std::size_t i = cap.prefix.size(); i < runs[0].lines.size() && !diverged; ++i) {
    diverged = i >= runs[1].lines.size() || runs[0].lines[i] != runs[1].lines[i];
  }
  EXPECT_TRUE(diverged || runs[0].lines.size() != runs[1].lines.size())
      << "the extra-failure branch never diverged from the baseline";
}

TEST(Fork, ThreadCountDoesNotChangeOutcomes) {
  const Model m;
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 17);
  const Capture cap = capture_at_30(m, trace, /*with_probe=*/false);
  const std::vector<scenario::Scenario> branches = branch_scenarios(m);

  const auto fork_with = [&](int threads) {
    core::ControlledAlternatePolicy p0, p1, p2;
    snapshot::ForkOptions options;
    options.engine = base_engine(m);
    options.threads = threads;
    return snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                               {{"baseline", branches[0], &p0},
                                {"extra-failure", branches[1], &p1},
                                {"capacity-cut", branches[2], &p2}},
                               options);
  };
  const std::vector<snapshot::ForkOutcome> serial = fork_with(1);
  const std::vector<snapshot::ForkOutcome> threaded = fork_with(3);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].name, threaded[k].name);
    expect_same_result(serial[k].result, threaded[k].result, "threads=" + serial[k].name);
  }
}

TEST(Fork, ValidationIsPointed) {
  const Model m;
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 17);
  const Capture cap = capture_at_30(m, trace, /*with_probe=*/false);
  snapshot::ForkOptions options;
  options.engine = base_engine(m);

  // A variant without a policy.
  EXPECT_THROW((void)snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                                         {{"no-policy", m.scen, nullptr}}, options),
               std::invalid_argument);

  core::ControlledAlternatePolicy policy;
  // threads < 1.
  snapshot::ForkOptions zero_threads = options;
  zero_threads.threads = 0;
  EXPECT_THROW((void)snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                                         {{"baseline", m.scen, &policy}}, zero_threads),
               std::invalid_argument);

  // A shared probe across branches is rejected outright.
  obs::MetricRegistry registry;
  obs::Probe probe(&registry, nullptr);
  snapshot::ForkOptions with_probe = options;
  with_probe.engine.probe = &probe;
  EXPECT_THROW((void)snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                                         {{"baseline", m.scen, &policy}}, with_probe),
               std::invalid_argument);

  // A branch whose scenario diverges BEFORE the capture point.
  scenario::Scenario early = m.scen;
  early.events.insert(early.events.begin() + 1,
                      scenario::ScenarioEvent::capacity_scale(5.0, 2, 3, 0.9));
  EXPECT_THROW((void)snapshot::fork_runs(m.graph, m.traffic, trace, cap.ckpt,
                                         {{"early-divergence", early, &policy}}, options),
               std::invalid_argument);
}

}  // namespace
