// Unit tests for the run-health primitives (src/obs/prof): the phase
// profiler's path composition and deterministic merge, the engine-counter
// merge/equality/JSON contract, the flight recorder's ring + tee
// semantics, and the manifest renderers' structural invariants.  The
// end-to-end determinism guarantees live in test_prof_counters.cpp; the
// byte-exact render formats in test_manifest_golden.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/prof/counters.hpp"
#include "obs/prof/flight_recorder.hpp"
#include "obs/prof/manifest.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/trace.hpp"
#include "study/prof_capture.hpp"

namespace obs = altroute::obs;
namespace prof = altroute::obs::prof;

namespace {

// --- profiler --------------------------------------------------------------

TEST(Profiler, ScopesComposePaths) {
  prof::PhaseAccumulator acc;
  {
    prof::ScopedPhase outer(&acc, "sweep");
    {
      prof::ScopedPhase inner(&acc, "task");
      prof::ScopedPhase innermost(&acc, "engine");
    }
    { prof::ScopedPhase again(&acc, "task"); }
  }
  const std::vector<prof::PhaseStats> rows = acc.phases();
  ASSERT_EQ(rows.size(), 3u);  // sorted by path
  EXPECT_EQ(rows[0].path, "sweep");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[1].path, "sweep/task");
  EXPECT_EQ(rows[1].calls, 2u);
  EXPECT_EQ(rows[2].path, "sweep/task/engine");
  EXPECT_EQ(rows[2].calls, 1u);
  for (const prof::PhaseStats& r : rows) EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(Profiler, NullAccumulatorIsNoOp) {
  prof::ScopedPhase scope(nullptr, "nothing");  // must not crash
  prof::PhaseAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.phases().empty());
}

TEST(Profiler, MergeIsOrderInsensitiveOnStructure) {
  prof::PhaseAccumulator a;
  a.add("task", 2, 0.5, 0.4);
  a.add("task/engine", 2, 0.3, 0.25);
  prof::PhaseAccumulator b;
  b.add("task/trace-gen", 1, 0.1, 0.1);
  b.add("task", 1, 0.2, 0.2);

  prof::PhaseAccumulator ab;
  ab.merge(a);
  ab.merge(b);
  prof::PhaseAccumulator ba;
  ba.merge(b);
  ba.merge(a);

  const auto rows_ab = ab.phases();
  const auto rows_ba = ba.phases();
  ASSERT_EQ(rows_ab.size(), rows_ba.size());
  for (std::size_t i = 0; i < rows_ab.size(); ++i) {
    EXPECT_EQ(rows_ab[i].path, rows_ba[i].path);
    EXPECT_EQ(rows_ab[i].calls, rows_ba[i].calls);
    EXPECT_DOUBLE_EQ(rows_ab[i].wall_seconds, rows_ba[i].wall_seconds);
  }
  ASSERT_EQ(rows_ab.size(), 3u);
  EXPECT_EQ(rows_ab[0].path, "task");
  EXPECT_EQ(rows_ab[0].calls, 3u);
  EXPECT_DOUBLE_EQ(rows_ab[0].wall_seconds, 0.7);
}

TEST(Profiler, MergeWhileScopeOpenDoesNotInheritLiveStack) {
  // The sweep epilogue merges per-task accumulators while its own
  // "epilogue" scope is open; merged rows must keep their own paths.
  prof::PhaseAccumulator main_acc;
  prof::PhaseAccumulator task_acc;
  task_acc.add("task", 1, 0.1, 0.1);
  {
    prof::ScopedPhase epilogue(&main_acc, "epilogue");
    main_acc.merge(task_acc);
  }
  const auto rows = main_acc.phases();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].path, "epilogue");
  EXPECT_EQ(rows[1].path, "task");
}

TEST(Profiler, ClocksAdvance) {
  const std::uint64_t w0 = prof::wall_now_ns();
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i) * 1e-9;
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(prof::wall_now_ns(), w0);
  EXPECT_GE(prof::process_cpu_now_ns(), 0u);
}

// --- counters ---------------------------------------------------------------

TEST(Counters, MergeAddsTalliesAndMaxesPeaks) {
  prof::EngineCounters a;
  a.events_scheduled = 10;
  a.events_popped = 8;
  a.peak_queue_depth = 5;
  a.memo_hits = 2;
  prof::EngineCounters b;
  b.events_scheduled = 1;
  b.peak_queue_depth = 3;
  b.peak_arena_occupancy = 7;
  a.merge(b);
  EXPECT_EQ(a.events_scheduled, 11u);
  EXPECT_EQ(a.events_popped, 8u);
  EXPECT_EQ(a.peak_queue_depth, 5u);  // max, not 8
  EXPECT_EQ(a.peak_arena_occupancy, 7u);
  EXPECT_EQ(a.memo_hits, 2u);
}

TEST(Counters, FieldTableCoversEveryField) {
  std::size_t count = 0;
  const prof::CounterField* fields = prof::counter_fields(&count);
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(count, 17u);  // update together with EngineCounters
  // Setting each field through the table must reach a distinct member.
  prof::EngineCounters c;
  for (std::size_t i = 0; i < count; ++i) c.*fields[i].member = i + 1;
  EXPECT_EQ(c.events_scheduled, 1u);
  EXPECT_EQ(c.estimator_updates, count);
  // The JSON rendering names every field from the same table.
  const std::string json = c.to_json();
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_NE(json.find("\"" + std::string(fields[i].name) + "\""), std::string::npos)
        << fields[i].name;
  }
}

TEST(Counters, EqualityIsFieldwise) {
  prof::EngineCounters a, b;
  EXPECT_EQ(a, b);
  b.calendar_resizes = 1;
  EXPECT_NE(a, b);
  a.calendar_resizes = 1;
  EXPECT_EQ(a, b);
}

// --- flight recorder --------------------------------------------------------

obs::TraceRecord record_at(double t, obs::TraceKind kind = obs::TraceKind::kCallBlocked) {
  obs::TraceRecord r;
  r.time = t;
  r.kind = kind;
  return r;
}

TEST(FlightRecorder, KeepsOnlyTheLastN) {
  prof::FlightRecorder ring(3);
  for (int i = 0; i < 10; ++i) ring.write(record_at(i));
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_written(), 10u);
  const std::vector<obs::TraceRecord> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].time, 7.0);  // oldest first
  EXPECT_DOUBLE_EQ(kept[2].time, 9.0);
}

TEST(FlightRecorder, TeeForwardsEverythingDownstreamWantsUnchanged) {
  // Downstream only wants blocks; the ring keeps everything.  The bytes
  // the downstream sink sees must be identical to a direct connection.
  obs::VectorTraceSink direct(static_cast<unsigned>(obs::TraceKind::kCallBlocked));
  obs::VectorTraceSink teed(static_cast<unsigned>(obs::TraceKind::kCallBlocked));
  prof::FlightRecorder ring(2, obs::kAllTraceKinds, &teed);
  for (int i = 0; i < 5; ++i) {
    const obs::TraceRecord blocked = record_at(i, obs::TraceKind::kCallBlocked);
    const obs::TraceRecord admitted = record_at(i + 0.5, obs::TraceKind::kCallAdmitted);
    // The probe consults the sink's mask before calling write; emulate it.
    if (direct.wants(blocked.kind)) direct.write(blocked);
    if (ring.wants(blocked.kind)) ring.write(blocked);
    if (direct.wants(admitted.kind)) direct.write(admitted);
    if (ring.wants(admitted.kind)) ring.write(admitted);
  }
  ASSERT_EQ(teed.records.size(), direct.records.size());
  for (std::size_t i = 0; i < teed.records.size(); ++i) {
    EXPECT_EQ(obs::JsonlTraceSink::format(teed.records[i]),
              obs::JsonlTraceSink::format(direct.records[i]));
  }
  // Meanwhile the ring retained the last 2 of all 10 records.
  EXPECT_EQ(ring.total_written(), 10u);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(FlightRecorder, DumpRendersHeaderAndJsonlLines) {
  prof::FlightRecorder ring(4);
  ring.write(record_at(1.25));
  ring.write(record_at(2.5, obs::TraceKind::kCallAdmitted));
  const std::string dump = ring.dump_string("unit-test");
  EXPECT_NE(dump.find("# flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("unit-test"), std::string::npos);
  std::istringstream lines(dump);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("#", 0), 0u);  // header first
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, obs::JsonlTraceSink::format(record_at(1.25)));
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, obs::JsonlTraceSink::format(record_at(2.5, obs::TraceKind::kCallAdmitted)));
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(FlightRecorder, CrashDumpScopeRegistersAndUnregisters) {
  // dump_registered_recorders() writes to stderr; capture it to assert the
  // registered ring appears exactly while its scope lives.
  prof::FlightRecorder ring(2);
  ring.write(record_at(3.0));
  testing::internal::CaptureStderr();
  {
    prof::CrashDumpScope scope(&ring, "scoped-ring");
    prof::dump_registered_recorders();
  }
  prof::dump_registered_recorders();  // after unregistration: no output
  const std::string err = testing::internal::GetCapturedStderr();
  const std::size_t first = err.find("scoped-ring");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(err.find("scoped-ring", first + 1), std::string::npos);
}

// --- manifest helpers -------------------------------------------------------

TEST(Manifest, OpenMetricsEndsWithEofAndSuffixesCounters) {
  prof::RunManifest m;
  m.tool = "unit";
  m.git_sha = "abc";
  m.config_fingerprint = "fp";
  m.threads = 2;
  m.counters.events_popped = 42;
  const std::string om = m.to_openmetrics();
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_NE(om.find("altroute_events_popped_total{tool=\"unit\"} 42"), std::string::npos);
  // Peaks are gauges: no _total suffix.
  EXPECT_NE(om.find("altroute_peak_queue_depth{tool=\"unit\"} 0"), std::string::npos);
  EXPECT_EQ(om.find("altroute_peak_queue_depth_total"), std::string::npos);
}

TEST(Manifest, TaskTableFlagsTheSlowest) {
  std::vector<prof::TaskTiming> tasks{{1.0, 1, 0.010}, {1.0, 2, 0.030}, {1.1, 1, 0.020}};
  const std::string table = prof::task_table(tasks);
  const std::size_t flagged = table.find("<- slowest");
  ASSERT_NE(flagged, std::string::npos);
  // The flag sits on the 0.030 row (seed 2) and appears exactly once.
  EXPECT_NE(table.find("2"), std::string::npos);
  EXPECT_EQ(table.find("<- slowest", flagged + 1), std::string::npos);
}

TEST(Manifest, PathExtensionSelectsOpenMetrics) {
  EXPECT_TRUE(altroute::study::manifest_path_is_openmetrics("run.om"));
  EXPECT_TRUE(altroute::study::manifest_path_is_openmetrics("/a/b/run.prom"));
  EXPECT_FALSE(altroute::study::manifest_path_is_openmetrics("run.json"));
  EXPECT_FALSE(altroute::study::manifest_path_is_openmetrics("om"));
}

}  // namespace
