// Property test: FIFO tie-breaking at equal timestamps, heap vs calendar.
//
// The simulation's determinism contract hangs on tie-breaks: departures
// scheduled at the same instant must pop in schedule order on every run,
// or occupancy updates (and therefore admission decisions) reorder.  The
// legacy EventQueue guarantees FIFO via a monotone sequence number; these
// cases pin the calendar queue to the same behaviour -- equal times hash
// to the same bucket, so the tie-break must never cross buckets, survive
// resizes, or be disturbed by interleaved pops.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"

namespace sim = altroute::sim;

namespace {

void expect_identical_drain(sim::EventQueue<std::uint64_t>& heap,
                            sim::CalendarQueue<std::uint64_t>& cal) {
  ASSERT_EQ(heap.size(), cal.size());
  while (!heap.empty()) {
    const auto [ht, hv] = heap.pop();
    const auto [ct, cv] = cal.pop();
    ASSERT_EQ(ht, ct);
    ASSERT_EQ(hv, cv);
  }
  EXPECT_TRUE(cal.empty());
}

}  // namespace

// A single timestamp carrying many events pops strictly in schedule order.
TEST(PropertyEventQueueTies, AllEventsAtOneInstantPopFifo) {
  sim::CalendarQueue<std::uint64_t> cal;
  for (std::uint64_t id = 0; id < 500; ++id) cal.schedule(42.0, id);
  for (std::uint64_t id = 0; id < 500; ++id) {
    const auto [t, v] = cal.pop();
    EXPECT_EQ(t, 42.0);
    EXPECT_EQ(v, id);
  }
  EXPECT_TRUE(cal.empty());
}

// Random schedules drawn from a tiny set of distinct times: almost every
// event ties with many others, at several timestamps simultaneously.
TEST(PropertyEventQueueTies, FewDistinctTimesManyTies) {
  std::mt19937_64 rng(0x7135u);
  const std::vector<double> times = {1.0, 2.5, 2.5 + 1e-9, 7.0, 100.0};
  std::uniform_int_distribution<std::size_t> pick(0, times.size() - 1);
  std::uniform_int_distribution<int> burst(0, 8);
  for (int trial = 0; trial < 50; ++trial) {
    sim::EventQueue<std::uint64_t> heap;
    sim::CalendarQueue<std::uint64_t> cal;
    std::uint64_t id = 0;
    for (int step = 0; step < 200; ++step) {
      for (int i = burst(rng); i > 0; --i, ++id) {
        const double t = times[pick(rng)];
        heap.schedule(t, id);
        cal.schedule(t, id);
      }
      for (int i = burst(rng); i > 0 && !heap.empty(); --i) {
        const auto [ht, hv] = heap.pop();
        const auto [ct, cv] = cal.pop();
        ASSERT_EQ(ht, ct);
        ASSERT_EQ(hv, cv);
      }
    }
    expect_identical_drain(heap, cal);
  }
}

// Ties laid down across resize boundaries: groups of tied events are
// scheduled while the bucket array grows (and later shrinks during the
// drain); reinsertion during resize must preserve the FIFO order.
TEST(PropertyEventQueueTies, TiesSurviveResize) {
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  std::uint64_t id = 0;
  // 64 tie groups of 32 events each: 2048 events force several doublings.
  for (int group = 0; group < 64; ++group) {
    const double t = static_cast<double>(group) * 0.125;
    for (int i = 0; i < 32; ++i, ++id) {
      heap.schedule(t, id);
      cal.schedule(t, id);
    }
  }
  expect_identical_drain(heap, cal);
}

// Ties at the exact current minimum, scheduled after pops began: the new
// event must pop after the already-queued events with the same time, never
// before (insertion order is global, not per-bucket-epoch).
TEST(PropertyEventQueueTies, LateTieWithCurrentMinimumPopsLast) {
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  std::uint64_t id = 0;
  for (int i = 0; i < 10; ++i, ++id) {
    heap.schedule(5.0, id);
    cal.schedule(5.0, id);
  }
  // Pop a few, then add more events at the same (still-minimum) time.
  for (int i = 0; i < 3; ++i) {
    const auto [ht, hv] = heap.pop();
    const auto [ct, cv] = cal.pop();
    ASSERT_EQ(ht, ct);
    ASSERT_EQ(hv, cv);
  }
  for (int i = 0; i < 10; ++i, ++id) {
    heap.schedule(5.0, id);
    cal.schedule(5.0, id);
  }
  expect_identical_drain(heap, cal);
}

// Zero-holding departures: an event scheduled exactly at the current time
// while earlier same-time events are still queued (the engine's
// zero-length call corner).
TEST(PropertyEventQueueTies, ZeroGapChainsPopFifo) {
  std::mt19937_64 rng(0x2E20u);
  std::uniform_int_distribution<int> chain(1, 6);
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  double now = 0.0;
  std::uint64_t id = 0;
  for (int step = 0; step < 300; ++step) {
    now += 0.25;
    for (int i = chain(rng); i > 0; --i, ++id) {
      heap.schedule(now, id);  // every event in the chain ties at `now`
      cal.schedule(now, id);
    }
    if (step % 3 != 0) {
      while (!heap.empty() && heap.next_time() <= now) {
        const auto [ht, hv] = heap.pop();
        const auto [ct, cv] = cal.pop();
        ASSERT_EQ(ht, ct);
        ASSERT_EQ(hv, cv);
      }
    }
  }
  expect_identical_drain(heap, cal);
}
