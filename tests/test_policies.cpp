// Routing policies on hand-built states: single-path, uncontrolled,
// controlled, Ott-Krishnan.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "erlang/shadow_price.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;

namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : graph_(net::full_mesh(3, 2)),
        routes_(routing::build_min_hop_routes(graph_, 2)),
        state_(graph_) {}

  loss::RoutingContext ctx(int src, int dst, double pick = 0.0) {
    return loss::RoutingContext{graph_,
                                state_,
                                net::NodeId(src),
                                net::NodeId(dst),
                                routes_.at(net::NodeId(src), net::NodeId(dst)),
                                pick,
                                0.0};
  }

  void fill_link(int src, int dst, int calls) {
    const routing::Path p =
        routing::make_path(graph_, {net::NodeId(src), net::NodeId(dst)});
    for (int i = 0; i < calls; ++i) state_.book(p);
  }

  net::Graph graph_;
  routing::RouteTable routes_;
  loss::NetworkState state_;
};

TEST_F(PolicyTest, PickPrimarySamplesByProbability) {
  routing::RouteSet set;
  set.primaries.resize(3);
  set.primary_probs = {0.2, 0.5, 0.3};
  EXPECT_EQ(loss::pick_primary(set, 0.0), 0u);
  EXPECT_EQ(loss::pick_primary(set, 0.19), 0u);
  EXPECT_EQ(loss::pick_primary(set, 0.21), 1u);
  EXPECT_EQ(loss::pick_primary(set, 0.69), 1u);
  EXPECT_EQ(loss::pick_primary(set, 0.71), 2u);
  EXPECT_EQ(loss::pick_primary(set, 0.999999), 2u);
  const routing::RouteSet empty;
  EXPECT_EQ(loss::pick_primary(empty, 0.5), std::numeric_limits<std::size_t>::max());
}

TEST_F(PolicyTest, SinglePathUsesPrimaryOnly) {
  loss::SinglePathPolicy policy;
  auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kPrimary);
  EXPECT_EQ(d.path->hops(), 1);
  // Fill the direct link: the call must be blocked even though 0-2-1 is free.
  fill_link(0, 1, 2);
  d = policy.route(ctx(0, 1));
  EXPECT_FALSE(d.accepted());
  EXPECT_EQ(d.alternates_probed, 0);
}

TEST_F(PolicyTest, UncontrolledOverflowsToFirstFreeAlternate) {
  loss::UncontrolledAlternatePolicy policy;
  fill_link(0, 1, 2);
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
  EXPECT_EQ(d.path->hops(), 2);  // 0-2-1
  EXPECT_EQ(d.alternates_probed, 1);
}

TEST_F(PolicyTest, UncontrolledIgnoresReservations) {
  // Reservation on the alternate's links should NOT stop the uncontrolled
  // scheme -- it predates/ignores the control.
  std::vector<int> r(static_cast<std::size_t>(graph_.link_count()), 2);
  state_.set_reservations(r);
  loss::UncontrolledAlternatePolicy policy;
  fill_link(0, 1, 2);
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
}

TEST_F(PolicyTest, UncontrolledBlocksWhenEverythingFull) {
  loss::UncontrolledAlternatePolicy policy;
  fill_link(0, 1, 2);
  fill_link(0, 2, 2);
  const auto d = policy.route(ctx(0, 1));
  EXPECT_FALSE(d.accepted());
  EXPECT_EQ(d.alternates_probed, 1);  // only 0-2-1 exists with H = 2
}

TEST_F(PolicyTest, ControlledHonorsStateProtection) {
  core::ControlledAlternatePolicy policy;
  fill_link(0, 1, 2);  // primary blocked
  // Alternate 0-2-1 free: admitted when r = 0...
  auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
  // ...but refused once the alternate's first link is protected and at the
  // threshold.
  const auto alt_first = graph_.find_link(net::NodeId(0), net::NodeId(2));
  state_.set_reservation(*alt_first, 1);
  fill_link(0, 2, 1);  // occupancy 1 = C - r
  d = policy.route(ctx(0, 1));
  EXPECT_FALSE(d.accepted());
}

TEST_F(PolicyTest, ControlledPrimaryUnaffectedByReservation) {
  core::ControlledAlternatePolicy policy;
  std::vector<int> r(static_cast<std::size_t>(graph_.link_count()), 2);
  state_.set_reservations(r);
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kPrimary);
}

TEST_F(PolicyTest, OttKrishnanPrefersCheapestFeasiblePath) {
  // For an M/M/2/2 link with load a, d(1) > 2 d(0) exactly when a < 1: at
  // light loads a nearly-full direct link is pricier than two idle links,
  // so OK must divert the call to the 2-hop alternate.
  const std::vector<double> lambda(static_cast<std::size_t>(graph_.link_count()), 0.5);
  loss::OttKrishnanPolicy policy(lambda, core::link_capacities(graph_));
  fill_link(0, 1, 1);  // direct at occupancy 1 of 2
  const auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kAlternate);
  EXPECT_EQ(d.path->hops(), 2);
}

TEST_F(PolicyTest, OttKrishnanBlocksUnprofitableCalls) {
  // All links at occupancy C-1 with heavy loads: every feasible path costs
  // more than the unit revenue, so the call should be REJECTED even though
  // capacity exists -- the distinguishing feature of shadow-price routing.
  const std::vector<double> lambda(static_cast<std::size_t>(graph_.link_count()), 10.0);
  loss::OttKrishnanPolicy policy(lambda, core::link_capacities(graph_));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) fill_link(i, j, 1);
    }
  }
  // price(occupancy 1) for a = 10, C = 2 is ~0.83 each; the 2-hop path
  // costs ~1.66 > 1 and the direct path ~0.83 < 1: direct must win.
  auto d = policy.route(ctx(0, 1));
  ASSERT_TRUE(d.accepted());
  EXPECT_EQ(d.call_class, loss::CallClass::kPrimary);
  // Fill the direct link completely: only the expensive alternate is left,
  // and it exceeds the revenue -> block despite free circuits.
  fill_link(0, 1, 1);
  d = policy.route(ctx(0, 1));
  EXPECT_FALSE(d.accepted());
}

TEST_F(PolicyTest, OttKrishnanPriceTableAccessor) {
  const std::vector<double> lambda(static_cast<std::size_t>(graph_.link_count()), 1.5);
  loss::OttKrishnanPolicy policy(lambda, core::link_capacities(graph_));
  const auto expected = altroute::erlang::link_shadow_prices(1.5, 2);
  EXPECT_DOUBLE_EQ(policy.price(net::LinkId(0), 0), expected[0]);
  EXPECT_DOUBLE_EQ(policy.price(net::LinkId(0), 1), expected[1]);
}

TEST_F(PolicyTest, EmptyRouteSetBlocksEveryPolicy) {
  routing::RouteTable empty_routes(3);
  const loss::RoutingContext c{graph_, state_,
                               net::NodeId(0), net::NodeId(1),
                               empty_routes.at(net::NodeId(0), net::NodeId(1)), 0.5, 0.0};
  loss::SinglePathPolicy single;
  loss::UncontrolledAlternatePolicy uncontrolled;
  core::ControlledAlternatePolicy controlled;
  EXPECT_FALSE(single.route(c).accepted());
  EXPECT_FALSE(uncontrolled.route(c).accepted());
  EXPECT_FALSE(controlled.route(c).accepted());
}

}  // namespace
