// The stateful invariant oracle must (a) accept what a real engine run
// produced and (b) reject tampered evidence: a fudged counter, a doctored
// occupancy vector, a dropped or reordered trace record, a misreported
// event, a wrong final link state.  Each tamper is one thing a buggy
// engine could plausibly get wrong; if the oracle shrugs at it, the
// checker is vacuous no matter how many cases it runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "check/case.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "obs/probe.hpp"
#include "scenario/runner.hpp"

using namespace altroute;

namespace {

// A hand-held case: warmup 0 (so the occupancy reconstruction runs), a
// controlled policy with protection, and events that cross every piece of
// the state model (failure, repair, a capacity cut, re-solves).
check::CaseSpec tracked_case() {
  check::CaseSpec spec;
  spec.seed = 77;
  spec.nodes = 4;
  spec.facilities = {{0, 1, 4}, {1, 2, 4}, {2, 3, 4}, {3, 0, 4}, {0, 2, 3}};
  // Asymmetric load: the 0<->1 facility saturates (blocking, overflow onto
  // alternates), while the rest of the mesh keeps headroom to carry them.
  spec.demands.assign(16, 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) spec.demands[static_cast<std::size_t>(i) * 4 + j] = 0.5;
    }
  }
  spec.demands[0 * 4 + 1] = 8.0;
  spec.demands[1 * 4 + 0] = 8.0;
  spec.horizon = 30.0;
  spec.warmup = 0.0;
  spec.time_bins = 4;
  spec.max_alt_hops = 3;
  spec.policy = check::PolicyChoice::kControlled;
  spec.protect = true;
  spec.auto_resolve = false;
  spec.trace_seed = 7;
  spec.policy_seed = 9;
  spec.resume_at = -1.0;
  spec.events.push_back(scenario::ScenarioEvent::link_fail(10.0, 0, 1));
  spec.events.push_back(scenario::ScenarioEvent::resolve_protection(10.0));
  spec.events.push_back(scenario::ScenarioEvent::link_repair(20.0, 0, 1));
  spec.events.push_back(scenario::ScenarioEvent::resolve_protection(20.0));
  spec.events.push_back(scenario::ScenarioEvent::capacity_scale(25.0, 2, 3, 0.5));
  spec.validate();
  return spec;
}

// One reference-configuration run with full observability -- the evidence
// bundle the oracle judges (mirrors the oracle's own reference run).
check::ObservedRun observe_reference(const check::CaseSpec& spec) {
  check::ObservedRun out;
  obs::VectorTraceSink collector;
  obs::Probe probe(&out.metrics, &collector);
  probe.grid(0.0, spec.horizon / 16.0, 16);

  scenario::ScenarioEngineOptions engine;
  engine.warmup = spec.warmup;
  engine.policy_seed = spec.policy_seed;
  engine.time_bins = spec.time_bins;
  engine.max_alt_hops = spec.max_alt_hops;
  engine.reservations = spec.reservations();
  engine.auto_resolve_protection = spec.auto_resolve;
  engine.legacy_event_queue = true;  // the reference engine
  engine.memoize_protection = false;
  engine.probe = &probe;
  const control::ControlConfig control = spec.control_config();
  if (spec.control_on()) engine.control = &control;

  const std::unique_ptr<loss::RoutingPolicy> policy = spec.make_policy();
  out.result = scenario::run_scenario(spec.graph(), spec.traffic(), *policy, spec.trace(),
                                      spec.scenario(), engine);
  out.metrics_json = out.metrics.to_json();
  out.records = std::move(collector.records);
  out.trace_lines.reserve(out.records.size());
  for (const obs::TraceRecord& r : out.records) {
    out.trace_lines.push_back(obs::JsonlTraceSink::format(r));
  }
  return out;
}

void expect_flagged(const check::CaseSpec& spec, const check::ObservedRun& run,
                    const char* tamper) {
  const std::vector<std::string> failures = check::check_invariants(spec, run);
  EXPECT_FALSE(failures.empty()) << "tamper not flagged: " << tamper;
  for (const std::string& f : failures) {
    EXPECT_EQ(f.rfind("invariant: ", 0), 0u) << "unprefixed message: " << f;
  }
}

class CheckInvariants : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new check::CaseSpec(tracked_case());
    clean_ = new check::ObservedRun(observe_reference(*spec_));
  }
  static void TearDownTestSuite() {
    delete clean_;
    delete spec_;
    clean_ = nullptr;
    spec_ = nullptr;
  }

  static check::CaseSpec* spec_;
  static check::ObservedRun* clean_;
};

check::CaseSpec* CheckInvariants::spec_ = nullptr;
check::ObservedRun* CheckInvariants::clean_ = nullptr;

TEST_F(CheckInvariants, AcceptsARealRun) {
  // The run must be interesting enough to exercise the model...
  ASSERT_GT(clean_->result.run.offered, 0);
  ASSERT_GT(clean_->result.run.carried_alternate, 0);
  ASSERT_GT(clean_->result.dropped, 0) << "the failure event should kill in-flight calls";
  ASSERT_EQ(clean_->result.applied.size(), spec_->events.size());
  // ...and the oracle must accept every bit of it.
  EXPECT_EQ(check::check_invariants(*spec_, *clean_), std::vector<std::string>{});
}

TEST_F(CheckInvariants, FlagsAFudgedCounter) {
  check::ObservedRun run = *clean_;
  run.result.run.offered += 1;  // breaks conservation AND the obs twin
  expect_flagged(*spec_, run, "offered += 1");
}

TEST_F(CheckInvariants, FlagsADoctoredOccupancyVector) {
  check::ObservedRun run = *clean_;
  auto it = std::find_if(run.records.begin(), run.records.end(), [](const obs::TraceRecord& r) {
    return r.kind == obs::TraceKind::kCallAdmitted && !r.occ.empty();
  });
  ASSERT_NE(it, run.records.end());
  it->occ[0] += 1;  // claims one more circuit than the booking took
  expect_flagged(*spec_, run, "admitted occ[0] += 1");
}

TEST_F(CheckInvariants, FlagsAPhantomBooking) {
  check::ObservedRun run = *clean_;
  auto it = std::find_if(run.records.begin(), run.records.end(), [](const obs::TraceRecord& r) {
    return r.kind == obs::TraceKind::kCallAdmitted && !r.links.empty();
  });
  ASSERT_NE(it, run.records.end());
  // Re-route the record onto a link its occupancy vector never booked.
  it->links[0] = (it->links[0] + 2) % (2 * static_cast<int>(spec_->facilities.size()));
  expect_flagged(*spec_, run, "admitted links[0] rerouted");
}

TEST_F(CheckInvariants, FlagsADroppedTraceRecord) {
  check::ObservedRun run = *clean_;
  ASSERT_FALSE(run.records.empty());
  run.records.pop_back();  // trace_lines now disagree, counters too
  expect_flagged(*spec_, run, "last record dropped");
}

TEST_F(CheckInvariants, FlagsAReorderedTraceStream) {
  check::ObservedRun run = *clean_;
  // Find two records with strictly increasing times and swap the times.
  std::size_t at = 0;
  for (std::size_t i = 1; i < run.records.size(); ++i) {
    if (run.records[i].time > run.records[i - 1].time) {
      at = i;
      break;
    }
  }
  ASSERT_GT(at, 0u);
  std::swap(run.records[at - 1].time, run.records[at].time);
  expect_flagged(*spec_, run, "record times swapped");
}

TEST_F(CheckInvariants, FlagsAMisreportedEvent) {
  check::ObservedRun run = *clean_;
  ASSERT_FALSE(run.result.applied.empty());
  run.result.applied.front().links_changed += 1;
  expect_flagged(*spec_, run, "applied links_changed += 1");
}

TEST_F(CheckInvariants, FlagsAWrongFinalLinkState) {
  check::ObservedRun run = *clean_;
  ASSERT_FALSE(run.result.final_links.empty());
  run.result.final_links[0].occupancy += 1;  // a leaked circuit at the end
  expect_flagged(*spec_, run, "final occupancy += 1");
}

TEST(CheckInvariantsWarmup, WarmedRunsStillPassTheAccountingChecks) {
  // With warmup > 0 the occupancy reconstruction is off by design (early
  // admissions are untraced), but conservation/counter/event checks run.
  check::CaseSpec spec = tracked_case();
  spec.warmup = 6.0;
  spec.validate();
  const check::ObservedRun run = observe_reference(spec);
  EXPECT_EQ(check::check_invariants(spec, run), std::vector<std::string>{});
}

TEST(CheckInvariantsGenerated, AcceptsGeneratedReferenceRuns) {
  for (int i = 0; i < 8; ++i) {
    const check::CaseSpec spec =
        check::generate_case(check::case_seed(11, static_cast<std::uint64_t>(i)));
    const check::ObservedRun run = observe_reference(spec);
    EXPECT_EQ(check::check_invariants(spec, run), std::vector<std::string>{})
        << "seed " << spec.seed;
  }
}

}  // namespace
