// Per-link admission: the trunk-reservation rule at the heart of the
// control scheme.
#include <gtest/gtest.h>

#include <stdexcept>

#include "loss/link_state.hpp"

namespace loss = altroute::loss;

namespace {

TEST(LinkState, FreshLinkAdmitsBothClasses) {
  const loss::LinkState link(10, 2);
  EXPECT_EQ(link.capacity(), 10);
  EXPECT_EQ(link.occupancy(), 0);
  EXPECT_EQ(link.reservation(), 2);
  EXPECT_EQ(link.free_circuits(), 10);
  EXPECT_TRUE(link.admits(loss::CallClass::kPrimary));
  EXPECT_TRUE(link.admits(loss::CallClass::kAlternate));
}

TEST(LinkState, AlternateRefusedInTopRPlusOneStates) {
  // C = 5, r = 2: alternates admitted in states 0..2, refused in 3, 4 (and
  // 5, where even primaries are refused) -- exactly r + 1 = 3 refusing
  // states, the paper's definition.
  loss::LinkState link(5, 2);
  for (int s = 0; s < 5; ++s) {
    const bool expect_alternate = s < 3;
    EXPECT_EQ(link.admits(loss::CallClass::kAlternate), expect_alternate) << "state " << s;
    EXPECT_TRUE(link.admits(loss::CallClass::kPrimary)) << "state " << s;
    link.seize();
  }
  EXPECT_FALSE(link.admits(loss::CallClass::kPrimary));
  EXPECT_FALSE(link.admits(loss::CallClass::kAlternate));
}

TEST(LinkState, ZeroReservationTreatsClassesEqually) {
  loss::LinkState link(3, 0);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(link.admits(loss::CallClass::kPrimary),
              link.admits(loss::CallClass::kAlternate))
        << s;
    link.seize();
  }
}

TEST(LinkState, FullReservationShutsOutAlternatesEntirely) {
  loss::LinkState link(4, 4);
  EXPECT_FALSE(link.admits(loss::CallClass::kAlternate));
  EXPECT_TRUE(link.admits(loss::CallClass::kPrimary));
}

TEST(LinkState, SeizeReleaseRoundTrip) {
  loss::LinkState link(2, 0);
  link.seize();
  link.seize();
  EXPECT_EQ(link.occupancy(), 2);
  EXPECT_EQ(link.free_circuits(), 0);
  EXPECT_THROW(link.seize(), std::logic_error);
  link.release();
  EXPECT_EQ(link.occupancy(), 1);
  link.release();
  EXPECT_THROW(link.release(), std::logic_error);
}

TEST(LinkState, ReservationUpdateValidated) {
  loss::LinkState link(5, 0);
  link.set_reservation(5);
  EXPECT_EQ(link.reservation(), 5);
  EXPECT_THROW(link.set_reservation(6), std::invalid_argument);
  EXPECT_THROW(link.set_reservation(-1), std::invalid_argument);
  EXPECT_THROW((void)loss::LinkState(-1, 0), std::invalid_argument);
  EXPECT_THROW((void)loss::LinkState(3, 4), std::invalid_argument);
}

}  // namespace
