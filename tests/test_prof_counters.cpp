// Counter-determinism suite: ctest enforcement of the identity classes
// pinned in obs/prof/counters.hpp.
//
// ENGINE-INDEPENDENT counters must be bit-identical across the full
// {heap,calendar} x {memo,direct} configuration matrix and across every
// worker thread count; ENGINE-SPECIFIC counters (calendar_resizes,
// memo_hits/memo_misses) must be zero off their axis, identical along the
// orthogonal axis, and thread-count invariant like everything else.  The
// sweep-level tests additionally pin the harness contract: merged
// counters, the phase-tree STRUCTURE (paths + call counts), and the
// per-task timing table's (load, seed) spine are identical at any
// SweepOptions::threads value.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/controlled_policy.hpp"
#include "netgraph/topologies.hpp"
#include "obs/prof/counters.hpp"
#include "obs/prof/manifest.hpp"
#include "obs/prof/profiler.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/parallel_for.hpp"
#include "sim/thread_pool.hpp"
#include "study/experiment.hpp"

namespace core = altroute::core;
namespace net = altroute::net;
namespace prof = altroute::obs::prof;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;
namespace study = altroute::study;

namespace {

constexpr int kSeeds = 3;
constexpr double kHorizon = 50.0;

// Fail/repair + re-solve events: kills, route rebuilds, protection
// re-solves (the memo-relevant operation), all in one fixture.
scenario::Scenario fixture_scenario() {
  scenario::Scenario scen;
  scen.name = "prof-counter-fixture";
  scen.events.push_back(scenario::ScenarioEvent::link_fail(15.0, 0, 1));
  scen.events.push_back(scenario::ScenarioEvent::resolve_protection(15.0));
  scen.events.push_back(scenario::ScenarioEvent::link_repair(30.0, 0, 1));
  scen.events.push_back(scenario::ScenarioEvent::resolve_protection(30.0));
  return scen;
}

/// Runs kSeeds replications of the fixture under one engine configuration
/// with `threads` workers and merges the per-seed counters in slot order
/// -- the exact discipline the sweep harness uses.
prof::EngineCounters run_matrix_cell(bool legacy_queue, bool memoize, int threads) {
  const net::Graph g = net::full_mesh(4, 20);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, 12.0);
  const scenario::Scenario scen = fixture_scenario();
  std::vector<prof::EngineCounters> slots(kSeeds);
  std::unique_ptr<sim::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<sim::ThreadPool>(threads);
  sim::parallel_for(pool.get(), slots.size(), [&](std::size_t s) {
    const sim::CallTrace trace =
        scenario::make_scenario_trace(traffic, scen, kHorizon, s + 1);
    scenario::ScenarioEngineOptions options;
    options.warmup = 5.0;
    options.time_bins = 8;
    options.max_alt_hops = 3;
    options.legacy_event_queue = legacy_queue;
    options.memoize_protection = memoize;
    options.counters = &slots[s];
    core::ControlledAlternatePolicy policy;
    (void)scenario::run_scenario(g, traffic, policy, trace, scen, options);
  });
  prof::EngineCounters total;
  for (const prof::EngineCounters& c : slots) total.merge(c);
  return total;
}

struct Cell {
  const char* name;
  bool legacy_queue;
  bool memoize;
};
constexpr Cell kCells[] = {
    {"heap+direct", true, false},
    {"heap+memo", true, true},
    {"calendar+direct", false, false},
    {"calendar+memo", false, true},
};

constexpr std::uint64_t prof::EngineCounters::* kEngineIndependent[] = {
    &prof::EngineCounters::events_scheduled,
    &prof::EngineCounters::events_popped,
    &prof::EngineCounters::peak_queue_depth,
    &prof::EngineCounters::arena_allocations,
    &prof::EngineCounters::arena_reuses,
    &prof::EngineCounters::peak_arena_occupancy,
    &prof::EngineCounters::calls_killed,
    &prof::EngineCounters::preemptions,
    &prof::EngineCounters::route_rebuilds,
    &prof::EngineCounters::protection_resolves,
};

TEST(ProfCounters, EngineIndependentClassIsIdenticalAcrossTheMatrix) {
  prof::EngineCounters matrix[4];
  for (int c = 0; c < 4; ++c) {
    matrix[c] = run_matrix_cell(kCells[c].legacy_queue, kCells[c].memoize, /*threads=*/1);
  }
  // Non-vacuity: the fixture must actually exercise the counted paths.
  EXPECT_GT(matrix[0].events_popped, 0u);
  EXPECT_GT(matrix[0].peak_queue_depth, 0u);
  EXPECT_GT(matrix[0].calls_killed, 0u);
  EXPECT_EQ(matrix[0].route_rebuilds, 2u * kSeeds);        // fail + repair per seed
  EXPECT_EQ(matrix[0].protection_resolves, 2u * kSeeds);   // two resolve events per seed
  for (int c = 1; c < 4; ++c) {
    for (const auto member : kEngineIndependent) {
      EXPECT_EQ(matrix[c].*member, matrix[0].*member)
          << kCells[c].name << " diverges from " << kCells[0].name;
    }
  }
}

TEST(ProfCounters, CalendarResizesAreZeroUnderHeapAndMemoInvariant) {
  const prof::EngineCounters heap_direct = run_matrix_cell(true, false, 1);
  const prof::EngineCounters heap_memo = run_matrix_cell(true, true, 1);
  const prof::EngineCounters cal_direct = run_matrix_cell(false, false, 1);
  const prof::EngineCounters cal_memo = run_matrix_cell(false, true, 1);
  EXPECT_EQ(heap_direct.calendar_resizes, 0u);
  EXPECT_EQ(heap_memo.calendar_resizes, 0u);
  EXPECT_EQ(cal_direct.calendar_resizes, cal_memo.calendar_resizes);
}

TEST(ProfCounters, MemoCountersAreZeroUnderDirectAndQueueInvariant) {
  const prof::EngineCounters heap_direct = run_matrix_cell(true, false, 1);
  const prof::EngineCounters heap_memo = run_matrix_cell(true, true, 1);
  const prof::EngineCounters cal_direct = run_matrix_cell(false, false, 1);
  const prof::EngineCounters cal_memo = run_matrix_cell(false, true, 1);
  EXPECT_EQ(heap_direct.memo_hits, 0u);
  EXPECT_EQ(heap_direct.memo_misses, 0u);
  EXPECT_EQ(cal_direct.memo_hits, 0u);
  EXPECT_EQ(cal_direct.memo_misses, 0u);
  EXPECT_EQ(heap_memo.memo_hits, cal_memo.memo_hits);
  EXPECT_EQ(heap_memo.memo_misses, cal_memo.memo_misses);
  // Non-vacuous: the re-solve events must actually consult the memo.
  EXPECT_GT(heap_memo.memo_hits + heap_memo.memo_misses, 0u);
}

TEST(ProfCounters, EveryCellIsThreadCountInvariant) {
  for (const Cell& cell : kCells) {
    const prof::EngineCounters serial = run_matrix_cell(cell.legacy_queue, cell.memoize, 1);
    for (const int threads : {2, 4}) {
      const prof::EngineCounters parallel =
          run_matrix_cell(cell.legacy_queue, cell.memoize, threads);
      EXPECT_EQ(parallel, serial) << cell.name << " at " << threads << " threads: "
                                  << parallel.to_json() << " vs " << serial.to_json();
    }
  }
}

// --- sweep harness ----------------------------------------------------------

struct SweepProf {
  prof::EngineCounters counters;
  prof::PhaseAccumulator phases;
  std::vector<prof::TaskTiming> tasks;
};

SweepProf run_load_sweep(int threads) {
  SweepProf out;
  study::SweepOptions options;
  options.load_factors = {0.9, 1.1};
  options.seeds = 2;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.erlang_bound = false;
  options.threads = threads;
  options.prof.counters = &out.counters;
  options.prof.profile = &out.phases;
  options.prof.task_timings = &out.tasks;
  (void)study::run_sweep(net::full_mesh(4, 20), net::TrafficMatrix::uniform(4, 12.0),
                         {study::PolicyKind::kSinglePath,
                          study::PolicyKind::kControlledAlternate},
                         options);
  return out;
}

SweepProf run_scenario_sweep(int threads) {
  SweepProf out;
  study::ScenarioSweepOptions options;
  options.seeds = 3;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.time_bins = 8;
  options.threads = threads;
  options.prof.counters = &out.counters;
  options.prof.profile = &out.phases;
  options.prof.task_timings = &out.tasks;
  (void)study::run_scenario_sweep(net::full_mesh(4, 20), net::TrafficMatrix::uniform(4, 12.0),
                                  fixture_scenario(),
                                  {study::PolicyKind::kControlledAlternate}, options);
  return out;
}

void expect_same_structure(const SweepProf& a, const SweepProf& ref, int threads) {
  EXPECT_EQ(a.counters, ref.counters)
      << "counters diverge at " << threads << " threads: " << a.counters.to_json() << " vs "
      << ref.counters.to_json();
  // Phase STRUCTURE (paths + call counts) is deterministic; durations are
  // wall clock and legitimately differ.
  const auto pa = a.phases.phases();
  const auto pr = ref.phases.phases();
  ASSERT_EQ(pa.size(), pr.size()) << "phase-tree shape diverges at " << threads << " threads";
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].path, pr[i].path);
    EXPECT_EQ(pa[i].calls, pr[i].calls) << pa[i].path;
  }
  // Task table spine: same (load, seed) rows in the same slot order.
  ASSERT_EQ(a.tasks.size(), ref.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].load_factor, ref.tasks[i].load_factor);
    EXPECT_EQ(a.tasks[i].seed, ref.tasks[i].seed);
    EXPECT_GE(a.tasks[i].wall_seconds, 0.0);
  }
}

TEST(ProfCounters, LoadSweepProfIsThreadCountInvariant) {
  const SweepProf serial = run_load_sweep(1);
  EXPECT_GT(serial.counters.events_popped, 0u);
  EXPECT_EQ(serial.tasks.size(), 4u);  // 2 loads x 2 seeds
  for (const int threads : {2, 4}) {
    expect_same_structure(run_load_sweep(threads), serial, threads);
  }
}

TEST(ProfCounters, ScenarioSweepProfIsThreadCountInvariant) {
  const SweepProf serial = run_scenario_sweep(1);
  EXPECT_GT(serial.counters.calls_killed, 0u);
  EXPECT_EQ(serial.tasks.size(), 3u);  // one task per seed
  for (const int threads : {2, 4}) {
    expect_same_structure(run_scenario_sweep(threads), serial, threads);
  }
}

TEST(ProfCounters, SweepPhaseTreeHasTheDocumentedShape) {
  const SweepProf serial = run_load_sweep(1);
  const auto rows = serial.phases.phases();
  std::vector<std::string> paths;
  for (const auto& r : rows) paths.push_back(r.path);
  EXPECT_EQ(paths, (std::vector<std::string>{"epilogue", "fanout", "prologue", "task",
                                             "task/engine", "task/trace-gen"}));
}

}  // namespace
