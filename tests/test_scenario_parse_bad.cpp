// Malformed-scenario corpus: every file under tests/data/scenario_bad is a
// way a hand-written scenario can go wrong -- truncated JSON, duplicate
// keys, non-finite numbers, wrong argument types, out-of-order times.  Each
// must be REJECTED (never silently coerced), and the error message must
// point at the problem: the offending key, field, or rule.
//
// To add a case: drop a new .json file in the corpus directory and add a
// (filename, expected-substring) row below.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "scenario/parse.hpp"

namespace scenario = altroute::scenario;

namespace {

struct BadCase {
  const char* file;      // relative to tests/data/scenario_bad
  const char* expected;  // substring the rejection message must contain
};

class ScenarioBadCorpus : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioBadCorpus, IsRejectedWithAPointedMessage) {
  const BadCase& c = GetParam();
  const std::string path = std::string(SCENARIO_BAD_DIR) + "/" + c.file;
  // The corpus file must exist -- a typo here must not pass as "rejected".
  ASSERT_TRUE(std::ifstream(path).good()) << "missing corpus file " << path;
  try {
    (void)scenario::load_scenario_file(path);
    FAIL() << c.file << " was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(c.expected), std::string::npos)
        << c.file << " rejected, but the message was: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ScenarioBadCorpus,
    ::testing::Values(
        BadCase{"truncated.json", "unexpected end of input"},
        BadCase{"duplicate_keys.json", "duplicate object key 'time'"},
        BadCase{"nan_time.json", "invalid number"},  // NaN is not JSON
        BadCase{"huge_number.json", "negative or non-finite time"},  // 1e400 -> inf
        BadCase{"wrong_arg_type.json", "needs a numeric 'a' field"},
        BadCase{"fractional_node.json", "field 'a' must be an integer"},
        BadCase{"unknown_field.json", "has unknown field 'extra'"},
        BadCase{"out_of_order.json", "out of order"},
        // Found by the seeded fuzzer (tests/test_parser_fuzz.cpp): 300
        // unclosed arrays used to recurse the parser off the stack.
        BadCase{"deep_nesting.json", "nested too deeply"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// A sanity anchor: the well-formed sibling of the corpus parses, so the
// rejections above are about the defects, not the harness.
TEST(ScenarioBadCorpus, WellFormedSiblingParses) {
  const scenario::Scenario s = scenario::scenario_from_json(
      R"({"events": [{"time": 5, "type": "link_fail", "a": 0, "b": 1},
                     {"time": 10, "type": "link_repair", "a": 0, "b": 1}]})");
  EXPECT_EQ(s.events.size(), 2u);
}

}  // namespace
