// Call-trace generation: determinism, statistics, substream stability.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace sim = altroute::sim;

namespace {

net::TrafficMatrix two_pair_matrix(double a, double b) {
  net::TrafficMatrix t(3);
  t.set(net::NodeId(0), net::NodeId(1), a);
  t.set(net::NodeId(2), net::NodeId(0), b);
  return t;
}

TEST(CallTrace, DeterministicForSameSeed) {
  const net::TrafficMatrix t = two_pair_matrix(5.0, 2.0);
  const sim::CallTrace a = sim::generate_trace(t, 50.0, 17);
  const sim::CallTrace b = sim::generate_trace(t, 50.0, 17);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.calls[i].arrival, b.calls[i].arrival);
    EXPECT_DOUBLE_EQ(a.calls[i].holding, b.calls[i].holding);
    EXPECT_EQ(a.calls[i].src, b.calls[i].src);
    EXPECT_EQ(a.calls[i].dst, b.calls[i].dst);
  }
}

TEST(CallTrace, DifferentSeedsDiffer) {
  const net::TrafficMatrix t = two_pair_matrix(5.0, 2.0);
  const sim::CallTrace a = sim::generate_trace(t, 50.0, 17);
  const sim::CallTrace b = sim::generate_trace(t, 50.0, 18);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.calls[i].arrival != b.calls[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(CallTrace, SortedByArrivalWithinHorizon) {
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 3.0), 80.0, 5);
  double prev = 0.0;
  for (const sim::CallRecord& c : trace.calls) {
    EXPECT_GE(c.arrival, prev);
    EXPECT_LT(c.arrival, 80.0);
    EXPECT_GT(c.holding, 0.0);
    EXPECT_NE(c.src, c.dst);
    prev = c.arrival;
  }
}

TEST(CallTrace, CallCountMatchesOfferedLoad) {
  // Expected calls = total rate * horizon; a long horizon keeps the
  // relative Poisson noise ~ 1/sqrt(count) well under the 5% tolerance.
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 2.0);  // 24 E total
  const sim::CallTrace trace = sim::generate_trace(t, 400.0, 3);
  const double expected = 24.0 * 400.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 0.05 * expected);
}

TEST(CallTrace, HoldingTimesAreUnitMean) {
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 4.0), 300.0, 9);
  double sum = 0.0;
  for (const sim::CallRecord& c : trace.calls) sum += c.holding;
  EXPECT_NEAR(sum / static_cast<double>(trace.size()), 1.0, 0.03);
}

TEST(CallTrace, PairSubstreamsAreIndependentOfOtherEntries) {
  // Changing one pair's demand must not disturb another pair's arrivals
  // (variance reduction across load points documented in the header).
  net::TrafficMatrix t1 = two_pair_matrix(5.0, 2.0);
  net::TrafficMatrix t2 = two_pair_matrix(5.0, 9.0);
  const sim::CallTrace a = sim::generate_trace(t1, 60.0, 11);
  const sim::CallTrace b = sim::generate_trace(t2, 60.0, 11);
  std::vector<double> arrivals_a;
  for (const auto& c : a.calls) {
    if (c.src == net::NodeId(0)) arrivals_a.push_back(c.arrival);
  }
  std::vector<double> arrivals_b;
  for (const auto& c : b.calls) {
    if (c.src == net::NodeId(0)) arrivals_b.push_back(c.arrival);
  }
  ASSERT_EQ(arrivals_a.size(), arrivals_b.size());
  for (std::size_t i = 0; i < arrivals_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals_a[i], arrivals_b[i]) << i;
  }
}

TEST(CallTrace, EmptyMatrixAndValidation) {
  const sim::CallTrace trace = sim::generate_trace(net::TrafficMatrix(4), 10.0, 1);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_DOUBLE_EQ(trace.horizon, 10.0);
  EXPECT_THROW((void)sim::generate_trace(net::TrafficMatrix(4), 0.0, 1),
               std::invalid_argument);
}

}  // namespace
