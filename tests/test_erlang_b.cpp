// Erlang-B function: exact small cases, recursion identities, analytic
// derivative, monotonicity/convexity properties, continuous extension.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "erlang/erlang_b.hpp"

namespace e = altroute::erlang;

namespace {

// Direct evaluation from the defining sum, usable for small c only:
// B = (a^c / c!) / sum_{k=0..c} a^k / k!
double erlang_b_direct(double a, int c) {
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= c; ++k) {
    term *= a / k;
    sum += term;
  }
  return term / sum;
}

TEST(ErlangB, ZeroCapacityBlocksEverything) {
  EXPECT_DOUBLE_EQ(e::erlang_b(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(e::erlang_b(5.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(e::erlang_b(1000.0, 0), 1.0);
}

TEST(ErlangB, ZeroLoadNeverBlocks) {
  EXPECT_DOUBLE_EQ(e::erlang_b(0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(e::erlang_b(0.0, 100), 0.0);
}

TEST(ErlangB, SingleServerClosedForm) {
  // B(a, 1) = a / (1 + a).
  for (const double a : {0.1, 0.5, 1.0, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(e::erlang_b(a, 1), a / (1.0 + a), 1e-12) << "a=" << a;
  }
}

TEST(ErlangB, TwoServerClosedForm) {
  // B(a, 2) = a^2 / (2 + 2a + a^2).
  for (const double a : {0.1, 1.0, 3.0, 12.0}) {
    EXPECT_NEAR(e::erlang_b(a, 2), a * a / (2.0 + 2.0 * a + a * a), 1e-12) << "a=" << a;
  }
}

TEST(ErlangB, MatchesDirectSummationForModerateSizes) {
  for (int c = 1; c <= 30; ++c) {
    for (const double a : {0.5, 2.0, 7.5, 20.0, 40.0}) {
      EXPECT_NEAR(e::erlang_b(a, c), erlang_b_direct(a, c), 1e-10)
          << "a=" << a << " c=" << c;
    }
  }
}

TEST(ErlangB, EngineeringTableInverseLookups) {
  // Classic dimensioning facts: the offered load sustaining 1% blocking on
  // 10 (resp. 20) circuits is ~4.46 (resp. ~12.0) Erlangs.  Invert B by
  // bisection and check the known windows.
  const auto load_for = [](int c, double target) {
    double lo = 0.0;
    double hi = 3.0 * c;
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      (e::erlang_b(mid, c) < target ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  EXPECT_NEAR(load_for(10, 0.01), 4.46, 0.02);
  EXPECT_NEAR(load_for(20, 0.01), 12.03, 0.05);
  // Heavy-traffic sanity: B(a, c) -> 1 - c/a for a >> c.
  EXPECT_NEAR(e::erlang_b(1000.0, 100), 1.0 - 100.0 / 1000.0, 2e-2);
}

TEST(ErlangB, RejectsNegativeArguments) {
  EXPECT_THROW((void)e::erlang_b(-1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)e::erlang_b(1.0, -1), std::invalid_argument);
  EXPECT_THROW((void)e::erlang_b(std::numeric_limits<double>::quiet_NaN(), 5),
               std::invalid_argument);
}

TEST(ErlangB, TinyLoadUnderflowsToZeroNotNan) {
  const double b = e::erlang_b(1e-12, 400);
  EXPECT_GE(b, 0.0);
  EXPECT_LT(b, 1e-30);
  EXPECT_FALSE(std::isnan(b));
}

class ErlangBMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ErlangBMonotone, DecreasingInCapacity) {
  const double a = GetParam();
  double prev = e::erlang_b(a, 0);
  for (int c = 1; c <= 150; ++c) {
    const double b = e::erlang_b(a, c);
    if (prev > 0.0) {
      EXPECT_LT(b, prev) << "a=" << a << " c=" << c;
    } else {
      // Once blocking underflows to exactly zero it stays there.
      EXPECT_DOUBLE_EQ(b, 0.0) << "a=" << a << " c=" << c;
    }
    prev = b;
  }
}

TEST_P(ErlangBMonotone, IncreasingInLoad) {
  const double a = GetParam();
  for (const int c : {1, 5, 20, 100}) {
    EXPECT_LT(e::erlang_b(a, c), e::erlang_b(a * 1.1 + 0.01, c)) << "a=" << a << " c=" << c;
  }
}

TEST_P(ErlangBMonotone, InUnitInterval) {
  const double a = GetParam();
  for (const int c : {0, 1, 7, 60, 200}) {
    const double b = e::erlang_b(a, c);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, ErlangBMonotone,
                         ::testing::Values(0.25, 1.0, 5.0, 20.0, 75.0, 120.0, 400.0));

TEST(InverseErlangSequence, MatchesPointwiseEvaluations) {
  const double a = 37.5;
  const auto y = e::inverse_erlang_sequence(a, 60);
  ASSERT_EQ(y.size(), 61u);
  for (int x = 0; x <= 60; ++x) {
    EXPECT_NEAR(1.0 / y[static_cast<std::size_t>(x)], e::erlang_b(a, x), 1e-12) << x;
  }
}

TEST(InverseErlangSequence, SatisfiesJagermanRecursion) {
  // y_x = 1 + (x/a) y_{x-1}, the paper's Eq. 12.
  const double a = 11.0;
  const auto y = e::inverse_erlang_sequence(a, 40);
  for (int x = 1; x <= 40; ++x) {
    EXPECT_NEAR(y[static_cast<std::size_t>(x)],
                1.0 + (x / a) * y[static_cast<std::size_t>(x - 1)], 1e-9)
        << x;
  }
}

TEST(InverseErlangSequence, ZeroLoadIsInfiniteAboveZero) {
  const auto y = e::inverse_erlang_sequence(0.0, 5);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  for (std::size_t x = 1; x < y.size(); ++x) EXPECT_TRUE(std::isinf(y[x]));
}

TEST(ErlangBDerivative, MatchesFiniteDifference) {
  for (const double a : {0.5, 3.0, 20.0, 80.0, 115.0}) {
    for (const int c : {1, 2, 10, 50, 100}) {
      const double h = 1e-6 * std::max(1.0, a);
      const double fd = (e::erlang_b(a + h, c) - e::erlang_b(a - h, c)) / (2.0 * h);
      EXPECT_NEAR(e::erlang_b_dload(a, c), fd, 1e-5 * std::max(1.0, std::abs(fd)))
          << "a=" << a << " c=" << c;
    }
  }
}

TEST(ErlangBDerivative, ZeroLoadLimits) {
  EXPECT_DOUBLE_EQ(e::erlang_b_dload(0.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(e::erlang_b_dload(0.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(e::erlang_b_dload(0.0, 0), 0.0);
}

TEST(CarriedLoad, NeverExceedsCapacityOrOffered) {
  for (const double a : {1.0, 10.0, 100.0, 1000.0}) {
    for (const int c : {1, 10, 100}) {
      const double carried = e::carried_load(a, c);
      EXPECT_LE(carried, static_cast<double>(c) + 1e-9);
      EXPECT_LE(carried, a + 1e-9);
      EXPECT_GE(carried, 0.0);
    }
  }
}

TEST(LossRate, ConvexInLoad) {
  // Krishnan's convexity property underpinning the min-loss optimizer:
  // check the discrete second difference is nonnegative over a dense grid.
  for (const int c : {1, 5, 20, 100}) {
    for (double a = 0.5; a < 200.0; a += 0.5) {
      const double h = 0.25;
      const double second_difference =
          e::loss_rate(a + h, c) - 2.0 * e::loss_rate(a, c) + e::loss_rate(a - h, c);
      EXPECT_GE(second_difference, -1e-9) << "a=" << a << " c=" << c;
    }
  }
}

TEST(LossRateDerivative, MatchesFiniteDifference) {
  for (const double a : {2.0, 30.0, 95.0}) {
    for (const int c : {1, 10, 100}) {
      const double h = 1e-6 * std::max(1.0, a);
      const double fd = (e::loss_rate(a + h, c) - e::loss_rate(a - h, c)) / (2.0 * h);
      EXPECT_NEAR(e::loss_rate_dload(a, c), fd, 1e-5 * std::max(1.0, std::abs(fd)));
    }
  }
}

TEST(ErlangBContinuous, AgreesWithIntegerCapacity) {
  for (const double a : {1.0, 8.0, 40.0, 90.0}) {
    for (const int c : {1, 5, 25, 100}) {
      EXPECT_NEAR(e::erlang_b_continuous(a, static_cast<double>(c)), e::erlang_b(a, c),
                  1e-8 * std::max(1e-6, e::erlang_b(a, c)))
          << "a=" << a << " c=" << c;
    }
  }
}

TEST(ErlangBContinuous, InterpolatesMonotonically) {
  const double a = 20.0;
  double prev = e::erlang_b_continuous(a, 10.0);
  for (double x = 10.25; x <= 30.0; x += 0.25) {
    const double b = e::erlang_b_continuous(a, x);
    EXPECT_LT(b, prev) << "x=" << x;
    prev = b;
  }
}

TEST(ErlangBContinuous, EdgeCases) {
  EXPECT_DOUBLE_EQ(e::erlang_b_continuous(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(e::erlang_b_continuous(0.0, 3.5), 0.0);
  EXPECT_THROW((void)e::erlang_b_continuous(-1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)e::erlang_b_continuous(1.0, -2.0), std::invalid_argument);
}

}  // namespace
