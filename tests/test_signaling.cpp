// Signaling engine: per-hop latency, races, crankback, and exact
// zero-delay equivalence with the atomic engine.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "loss/policies.hpp"
#include "loss/signaling.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;
namespace sim = altroute::sim;

namespace {

struct Scenario {
  net::Graph graph = net::full_mesh(4, 30);
  routing::RouteTable routes = routing::build_min_hop_routes(graph, 3);
  net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, 30.0);
  sim::CallTrace trace = sim::generate_trace(traffic, 70.0, 13);
  std::vector<int> reservations =
      std::vector<int>(static_cast<std::size_t>(graph.link_count()), 3);
};

TEST(Signaling, ZeroDelayMatchesAtomicEngineSinglePath) {
  Scenario s;
  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kSinglePath;
  const loss::SignalingResult sig = loss::run_signaling(s.graph, s.routes, s.trace, options);
  loss::SinglePathPolicy policy;
  const loss::RunResult atomic = loss::run_trace(s.graph, s.routes, policy, s.trace, {});
  EXPECT_EQ(sig.offered, atomic.offered);
  EXPECT_EQ(sig.blocked, atomic.blocked);
  EXPECT_EQ(sig.carried_primary, atomic.carried_primary);
  EXPECT_EQ(sig.booking_races, 0);
  EXPECT_DOUBLE_EQ(sig.mean_setup_delay, 0.0);
}

TEST(Signaling, ZeroDelayMatchesAtomicEngineUncontrolled) {
  Scenario s;
  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kUncontrolled;
  const loss::SignalingResult sig = loss::run_signaling(s.graph, s.routes, s.trace, options);
  loss::UncontrolledAlternatePolicy policy;
  const loss::RunResult atomic = loss::run_trace(s.graph, s.routes, policy, s.trace, {});
  EXPECT_EQ(sig.blocked, atomic.blocked);
  EXPECT_EQ(sig.carried_primary, atomic.carried_primary);
  EXPECT_EQ(sig.carried_alternate, atomic.carried_alternate);
}

TEST(Signaling, ZeroDelayMatchesAtomicEngineControlled) {
  Scenario s;
  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kControlled;
  options.reservations = s.reservations;
  const loss::SignalingResult sig = loss::run_signaling(s.graph, s.routes, s.trace, options);
  core::ControlledAlternatePolicy policy;
  loss::EngineOptions engine;
  engine.reservations = s.reservations;
  const loss::RunResult atomic = loss::run_trace(s.graph, s.routes, policy, s.trace, engine);
  EXPECT_EQ(sig.blocked, atomic.blocked);
  EXPECT_EQ(sig.carried_primary, atomic.carried_primary);
  EXPECT_EQ(sig.carried_alternate, atomic.carried_alternate);
}

TEST(Signaling, SetupDelayFollowsTheProtocolTimelineAtLightLoad) {
  // At negligible load every call completes on its h-hop primary with
  // latency exactly (2h - 1) d: h - 1 forward inter-node hops, the turn at
  // the destination, and h - 1 hops back (link 0 is booked by the origin).
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 50);
  g.add_duplex(net::NodeId(1), net::NodeId(2), 50);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  net::TrafficMatrix t(3);
  t.set(net::NodeId(0), net::NodeId(2), 0.5);  // 2-hop primary only
  const sim::CallTrace trace = sim::generate_trace(t, 120.0, 7);
  loss::SignalingOptions options;
  options.hop_delay = 0.01;
  const loss::SignalingResult sig = loss::run_signaling(g, routes, trace, options);
  EXPECT_EQ(sig.blocked, 0);
  EXPECT_NEAR(sig.mean_setup_delay, (2 * 2 - 1) * 0.01, 1e-12);
}

TEST(Signaling, RacesAppearWithDelayAndLoad) {
  Scenario s;
  s.traffic = net::TrafficMatrix::uniform(4, 33.0);
  s.trace = sim::generate_trace(s.traffic, 70.0, 3);
  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kUncontrolled;
  options.hop_delay = 0.05;  // 5% of a holding time per hop: very sluggish
  const loss::SignalingResult sig = loss::run_signaling(s.graph, s.routes, s.trace, options);
  EXPECT_GT(sig.booking_races, 0);
  // Conservation still holds exactly.
  EXPECT_EQ(sig.offered, sig.blocked + sig.carried_primary + sig.carried_alternate);
}

TEST(Signaling, DelayDegradesBlockingGracefully) {
  Scenario s;
  s.traffic = net::TrafficMatrix::uniform(4, 33.0);
  s.trace = sim::generate_trace(s.traffic, 70.0, 5);
  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kControlled;
  options.reservations = s.reservations;
  options.hop_delay = 0.0;
  const double b0 = loss::run_signaling(s.graph, s.routes, s.trace, options).blocking();
  options.hop_delay = 0.001;
  const double b1 = loss::run_signaling(s.graph, s.routes, s.trace, options).blocking();
  // A millisecond-scale delay (holding time ~ minutes) must not move
  // blocking more than marginally.
  EXPECT_NEAR(b0, b1, 0.01);
}

TEST(Signaling, AttemptsCountedPerPathTried) {
  // Single call, empty network: exactly one attempt.
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 0.2);
  const sim::CallTrace trace = sim::generate_trace(t, 60.0, 1);
  loss::SignalingOptions options;
  const loss::SignalingResult sig = loss::run_signaling(g, routes, trace, options);
  EXPECT_EQ(sig.attempts, static_cast<long long>(trace.size()));
}

TEST(Signaling, Validation) {
  Scenario s;
  loss::SignalingOptions options;
  options.hop_delay = -1.0;
  EXPECT_THROW((void)loss::run_signaling(s.graph, s.routes, s.trace, options),
               std::invalid_argument);
  options.hop_delay = 0.0;
  options.warmup = s.trace.horizon;
  EXPECT_THROW((void)loss::run_signaling(s.graph, s.routes, s.trace, options),
               std::invalid_argument);
}

}  // namespace
