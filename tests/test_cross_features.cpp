// Interaction tests: features that were added independently must compose.
#include <gtest/gtest.h>

#include <sstream>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "core/variants.hpp"
#include "loss/dynamic_policies.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "loss/signaling.hpp"
#include "netgraph/io.hpp"
#include "netgraph/topologies.hpp"
#include "routing/fixed_point.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/load_profile.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;
namespace sim = altroute::sim;
namespace study = altroute::study;

namespace {

TEST(CrossFeatures, MultirateThroughTheSignalingEngine) {
  // Wide calls must book/crankback their full width per hop.
  const net::Graph g = net::full_mesh(4, 40);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  std::vector<sim::TrafficClass> classes(2);
  classes[0].offered = net::TrafficMatrix::uniform(4, 20.0);
  classes[0].bandwidth = 1;
  classes[1].offered = net::TrafficMatrix::uniform(4, 4.0);
  classes[1].bandwidth = 4;
  const sim::CallTrace trace = sim::generate_multirate_trace(classes, 60.0, 11);

  loss::SignalingOptions options;
  options.mode = loss::SignalingMode::kUncontrolled;
  options.hop_delay = 0.01;
  const loss::SignalingResult with_delay = loss::run_signaling(g, routes, trace, options);
  EXPECT_EQ(with_delay.offered,
            with_delay.blocked + with_delay.carried_primary + with_delay.carried_alternate);

  // Zero delay must again equal the atomic engine, multirate included.
  options.hop_delay = 0.0;
  const loss::SignalingResult atomic_like = loss::run_signaling(g, routes, trace, options);
  loss::UncontrolledAlternatePolicy policy;
  const loss::RunResult atomic = loss::run_trace(g, routes, policy, trace, {});
  EXPECT_EQ(atomic_like.blocked, atomic.blocked);
  EXPECT_EQ(atomic_like.carried_alternate, atomic.carried_alternate);
}

TEST(CrossFeatures, NsfnetSurvivesIoRoundTripIdentically) {
  // Serialize graph + reconstructed traffic, reload, and verify the
  // controller derives byte-identical protection levels and an identical
  // simulation outcome.
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  std::stringstream net_buffer;
  std::stringstream traffic_buffer;
  net::write_network(net_buffer, g);
  net::write_traffic(traffic_buffer, t);
  const net::Graph g2 = net::read_network(net_buffer);
  const net::TrafficMatrix t2 = net::read_traffic(traffic_buffer);

  const core::Controller a(g, t, core::ControllerConfig{6});
  const core::Controller b(g2, t2, core::ControllerConfig{6});
  EXPECT_EQ(a.reservations(), b.reservations());

  core::ControlledAlternatePolicy policy;
  const sim::CallTrace trace = sim::generate_trace(t, 40.0, 5);
  const sim::CallTrace trace2 = sim::generate_trace(t2, 40.0, 5);
  ASSERT_EQ(trace.size(), trace2.size());
  EXPECT_EQ(a.run(policy, trace).blocked, b.run(policy, trace2).blocked);
}

TEST(CrossFeatures, FixedPointTracksLinkFailures) {
  // Disabling a facility must reroute the analytic loads too (routes are
  // rebuilt on the failed graph).
  net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  const routing::RouteTable before = routing::build_min_hop_routes(g, 6);
  const double b_before = routing::erlang_fixed_point(g, before, t).network_blocking;
  g.fail_duplex(net::NodeId(7), net::NodeId(9));
  const routing::RouteTable after = routing::build_min_hop_routes(g, 6);
  const double b_after = routing::erlang_fixed_point(g, after, t).network_blocking;
  EXPECT_GT(b_after, b_before);
}

TEST(CrossFeatures, ProfiledTraceThroughSignaling) {
  const net::Graph g = net::full_mesh(4, 60);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  const sim::LoadProfile profile = sim::LoadProfile::diurnal(40.0, 30.0, 60.0);
  const sim::CallTrace trace = sim::generate_profiled_trace(
      net::TrafficMatrix::uniform(4, 1.0), profile, 80.0, 3);
  loss::SignalingOptions options;
  options.hop_delay = 0.005;
  options.mode = loss::SignalingMode::kControlled;
  options.reservations.assign(static_cast<std::size_t>(g.link_count()), 4);
  const loss::SignalingResult r = loss::run_signaling(g, routes, trace, options);
  EXPECT_EQ(r.offered, r.blocked + r.carried_primary + r.carried_alternate);
  EXPECT_GT(r.offered, 0);
}

TEST(CrossFeatures, SweepRunsEveryPolicyKindTogether) {
  const net::Graph g = net::full_mesh(4, 25);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 24.0);
  study::SweepOptions options;
  options.load_factors = {1.0};
  options.seeds = 2;
  options.measure = 15.0;
  options.warmup = 5.0;
  options.max_alt_hops = 2;
  options.erlang_bound = false;
  const std::vector<study::PolicyKind> all = {
      study::PolicyKind::kSinglePath,
      study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate,
      study::PolicyKind::kOttKrishnan,
      study::PolicyKind::kAdaptiveControlled,
      study::PolicyKind::kPerLengthControlled,
      study::PolicyKind::kLeastBusy,
      study::PolicyKind::kLeastBusyProtected,
      study::PolicyKind::kStickyRandom,
      study::PolicyKind::kStickyRandomProtected,
  };
  const study::SweepResult r = study::run_sweep(g, nominal, all, options);
  ASSERT_EQ(r.curves.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(r.curves[i].name, study::policy_name(all[i])) << i;
    EXPECT_GE(r.curves[i].mean_blocking[0], 0.0) << i;
    EXPECT_LE(r.curves[i].mean_blocking[0], 1.0) << i;
  }
}

TEST(CrossFeatures, MultirateControlledOnNsfnet) {
  // The full stack at once: NSFNet topology, reconstructed matrix split
  // into two bandwidth classes, Eq.-15 thresholds from circuit demand,
  // controlled policy.  Invariants must hold and per-class accounting must
  // reconcile.
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const net::TrafficMatrix& nominal = study::nsfnet_nominal_traffic();
  std::vector<sim::TrafficClass> classes(2);
  classes[0].offered = nominal.scaled(0.6);
  classes[0].bandwidth = 1;
  classes[1].offered = nominal.scaled(0.08);
  classes[1].bandwidth = 5;
  // Circuit demand: 0.6 + 5 * 0.08 = 1.0 x nominal.
  const auto lambda = routing::primary_link_loads(g, routes, nominal);
  const auto reservations = core::protection_levels_from_lambda(g, lambda, 6);

  const sim::CallTrace trace = sim::generate_multirate_trace(classes, 40.0, 21);
  core::ControlledAlternatePolicy policy;
  loss::EngineOptions options;
  options.reservations = reservations;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);
  EXPECT_EQ(run.offered, run.blocked + run.carried_primary + run.carried_alternate);
  ASSERT_EQ(run.per_class.size(), 2u);
  EXPECT_EQ(run.per_class[0].offered + run.per_class[1].offered, run.offered);
  // Wide calls block more than narrow ones under identical conditions.
  EXPECT_GE(run.per_class[1].blocking(), run.per_class[0].blocking());
}

TEST(CrossFeatures, LeastBusyRespectsMultirateWidths) {
  const net::Graph g = net::full_mesh(3, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  loss::NetworkState state(g);
  const routing::Path direct = routing::make_path(g, {net::NodeId(0), net::NodeId(1)});
  for (int i = 0; i < 10; ++i) state.book(direct);
  // Alternate links have 3 free circuits each.
  for (const net::Link& l : g.links()) {
    if (l.src == net::NodeId(0) && l.dst == net::NodeId(1)) continue;
    const routing::Path hop = routing::make_path(g, {l.src, l.dst});
    for (int i = 0; i < 7; ++i) state.book(hop);
  }
  loss::LeastBusyAlternatePolicy policy(false);
  const routing::RouteSet& set = routes.at(net::NodeId(0), net::NodeId(1));
  const loss::RoutingContext narrow{g, state, net::NodeId(0), net::NodeId(1), set, 0.0, 0.0, 3};
  const loss::RoutingContext wide{g, state, net::NodeId(0), net::NodeId(1), set, 0.0, 0.0, 4};
  EXPECT_TRUE(policy.route(narrow).accepted());   // 3 units fit
  EXPECT_FALSE(policy.route(wide).accepted());    // 4 do not
}

}  // namespace
