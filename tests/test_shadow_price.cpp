// Ott-Krishnan link shadow prices: closed-form identities and a brute-force
// policy-evaluation cross-check.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "erlang/erlang_b.hpp"
#include "erlang/shadow_price.hpp"

namespace e = altroute::erlang;

namespace {

TEST(ShadowPrices, FirstEntryIsBlockingProbability) {
  // d(0) = g / a = B(a, C): adding a call to an empty link costs exactly
  // the long-run blocking probability per displaced-arrival opportunity.
  for (const double a : {1.0, 10.0, 60.0}) {
    for (const int c : {1, 10, 100}) {
      const auto d = e::link_shadow_prices(a, c);
      EXPECT_NEAR(d[0], e::erlang_b(a, c), 1e-12) << "a=" << a << " c=" << c;
    }
  }
}

TEST(ShadowPrices, ConsistencyIdentityAtTheTop) {
  // The relative-value equations close with d(C-1) = a (1 - B) / C; the
  // recursion must land exactly there.
  for (const double a : {2.0, 20.0, 95.0, 130.0}) {
    const int c = 100;
    const auto d = e::link_shadow_prices(a, c);
    const double b = e::erlang_b(a, c);
    EXPECT_NEAR(d[static_cast<std::size_t>(c - 1)], a * (1.0 - b) / c,
                1e-9 * std::max(1.0, a)) << "a=" << a;
  }
}

TEST(ShadowPrices, IncreasingInOccupancyAndWithinUnitInterval) {
  for (const double a : {0.5, 8.0, 45.0, 120.0}) {
    const auto d = e::link_shadow_prices(a, 50);
    for (std::size_t j = 0; j < d.size(); ++j) {
      EXPECT_GE(d[j], 0.0) << j;
      EXPECT_LE(d[j], 1.0 + 1e-12) << j;
      if (j > 0) {
        EXPECT_GE(d[j], d[j - 1]) << j;
      }
    }
  }
}

TEST(ShadowPrices, ZeroLoadCostsNothing) {
  const auto d = e::link_shadow_prices(0.0, 10);
  for (const double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ShadowPrices, MatchesValueIterationOnSmallLink) {
  // Independent check: evaluate the average-cost relative values V(j) of
  // the M/M/C/C chain (cost = rate a of losing calls in state C) by
  // uniformized relative value iteration, then compare d(j) = V(j+1)-V(j).
  const double a = 3.0;
  const int c = 5;
  const double uniformization = a + c + 1.0;
  std::vector<double> v(static_cast<std::size_t>(c) + 1, 0.0);
  for (int iter = 0; iter < 200000; ++iter) {
    std::vector<double> next(v.size());
    for (int j = 0; j <= c; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      double value = 0.0;
      if (j < c) {
        value += a * v[ju + 1];
      } else {
        value += a * (1.0 + v[ju]);  // arrival lost in state C
      }
      value += j * v[ju - (j > 0 ? 1 : 0)];
      value += (uniformization - a - j) * v[ju];
      next[ju] = value / uniformization;
    }
    // Renormalize against state 0 to keep relative values bounded.
    const double base = next[0];
    for (double& x : next) x -= base;
    double delta = 0.0;
    for (std::size_t j = 0; j < v.size(); ++j) delta = std::max(delta, std::abs(next[j] - v[j]));
    v = next;
    if (delta < 1e-14) break;
  }
  // The uniformized discrete chain solves the same Poisson equation as the
  // CTMC (per-step costs are scaled by the same 1/uniformization as the
  // transition rates), so the relative-value differences match d directly.
  const auto d = e::link_shadow_prices(a, c);
  for (int j = 0; j + 1 <= c; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    EXPECT_NEAR(v[ju + 1] - v[ju], d[ju], 1e-6) << j;
  }
}

TEST(ShadowPrices, Validation) {
  EXPECT_THROW((void)e::link_shadow_prices(-1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)e::link_shadow_prices(1.0, 0), std::invalid_argument);
}

}  // namespace
