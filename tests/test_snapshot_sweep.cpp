// Crash-tolerant sweeps: a sweep killed mid-flight and rerun with the same
// checkpoint_dir must produce results, merged metrics, and a forwarded
// trace stream BIT-IDENTICAL to a sweep that never died -- at any thread
// count, whether the crash fell between tasks (completion-granular .res
// carries) or mid-replication (periodic .ckpt files).  A carry directory
// written under a different configuration must be rejected, never mixed.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "netgraph/topologies.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "study/experiment.hpp"

using namespace altroute;

namespace {

net::Graph quad() { return net::full_mesh(4, 40); }
net::TrafficMatrix quad_traffic() { return net::TrafficMatrix::uniform(4, 35.0); }

scenario::Scenario transient() {
  scenario::Scenario s;
  s.name = "sweep transient";
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
  s.events.push_back(scenario::ScenarioEvent::link_fail(20.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(20.0));
  s.events.push_back(scenario::ScenarioEvent::link_repair(32.0, 0, 1));
  return s;
}

const std::vector<study::PolicyKind> kPolicies = {study::PolicyKind::kSinglePath,
                                                  study::PolicyKind::kControlledAlternate};

study::ScenarioSweepOptions scenario_options(int threads) {
  study::ScenarioSweepOptions options;
  options.seeds = 4;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.threads = threads;
  options.time_bins = 6;
  options.obs.metrics = true;
  options.obs.occupancy_samples = 10;
  return options;
}

// A scratch carry directory, wiped on construction and destruction.
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(std::filesystem::path(path)); }
};

void expect_equal(const study::ScenarioSweepResult& a, const study::ScenarioSweepResult& b,
                  const std::vector<obs::TraceRecord>& trace_a,
                  const std::vector<obs::TraceRecord>& trace_b) {
  EXPECT_EQ(a.bin_start, b.bin_start);
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    EXPECT_EQ(a.curves[i].name, b.curves[i].name);
    EXPECT_EQ(a.curves[i].mean_blocking, b.curves[i].mean_blocking) << a.curves[i].name;
    EXPECT_EQ(a.curves[i].ci95, b.curves[i].ci95) << a.curves[i].name;
    EXPECT_EQ(a.curves[i].dropped, b.curves[i].dropped) << a.curves[i].name;
    EXPECT_EQ(a.curves[i].bin_offered, b.curves[i].bin_offered) << a.curves[i].name;
    EXPECT_EQ(a.curves[i].bin_blocked, b.curves[i].bin_blocked) << a.curves[i].name;
  }
  ASSERT_EQ(a.applied.size(), b.applied.size());
  for (std::size_t i = 0; i < a.applied.size(); ++i) {
    EXPECT_EQ(a.applied[i].time, b.applied[i].time);
    EXPECT_EQ(a.applied[i].kind, b.applied[i].kind);
    EXPECT_EQ(a.applied[i].calls_killed, b.applied[i].calls_killed);
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].to_json(), b.metrics[i].to_json()) << "policy " << i;
  }
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    ASSERT_EQ(obs::JsonlTraceSink::format(trace_a[i]), obs::JsonlTraceSink::format(trace_b[i]))
        << "trace record " << i;
  }
}

// The driver: one uninterrupted reference, then crash + resume with the
// given knobs; everything must match.
void expect_crash_resume_identical(int threads, double checkpoint_every, long long crash_after,
                                   const char* dirname) {
  const net::Graph g = quad();
  const net::TrafficMatrix traffic = quad_traffic();
  const scenario::Scenario scen = transient();

  obs::VectorTraceSink reference_trace;
  study::ScenarioSweepOptions reference = scenario_options(threads);
  reference.obs.trace = &reference_trace;
  const study::ScenarioSweepResult expected =
      study::run_scenario_sweep(g, traffic, scen, kPolicies, reference);

  ScratchDir dir(dirname);
  study::ScenarioSweepOptions crashed = scenario_options(threads);
  crashed.checkpoint_dir = dir.path;
  crashed.checkpoint_every = checkpoint_every;
  crashed.crash_after = crash_after;
  obs::VectorTraceSink crashed_trace;
  crashed.obs.trace = &crashed_trace;
  EXPECT_THROW((void)study::run_scenario_sweep(g, traffic, scen, kPolicies, crashed),
               std::runtime_error);

  // The tasks before the crash left .res files behind; a mid-run crash
  // additionally left the dying task's periodic checkpoint.
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/task-0.res"));
  if (checkpoint_every > 0.0) {
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/task-" + std::to_string(crash_after) +
                                        "-p0.ckpt"));
  }

  obs::VectorTraceSink resumed_trace;
  study::ScenarioSweepOptions resumed = scenario_options(threads);
  resumed.checkpoint_dir = dir.path;
  resumed.checkpoint_every = checkpoint_every;
  resumed.obs.trace = &resumed_trace;
  const study::ScenarioSweepResult actual =
      study::run_scenario_sweep(g, traffic, scen, kPolicies, resumed);

  expect_equal(expected, actual, reference_trace.records, resumed_trace.records);
  // Completion cleans up the dying task's mid-run checkpoints.
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/task-" + std::to_string(crash_after) +
                                       "-p0.ckpt"));
}

TEST(SnapshotSweep, CompletionGranularCrashResumeIsIdentical) {
  expect_crash_resume_identical(/*threads=*/1, /*checkpoint_every=*/0.0, /*crash_after=*/2,
                                "altroute_sweep_completion");
}

TEST(SnapshotSweep, MidRunCrashResumeIsIdentical) {
  expect_crash_resume_identical(/*threads=*/1, /*checkpoint_every=*/7.0, /*crash_after=*/1,
                                "altroute_sweep_midrun");
}

TEST(SnapshotSweep, ThreadedCrashResumeIsIdentical) {
  expect_crash_resume_identical(/*threads=*/3, /*checkpoint_every=*/5.0, /*crash_after=*/2,
                                "altroute_sweep_threaded");
}

TEST(SnapshotSweep, WarmDirectoryShortCircuitsACleanRerun) {
  // A complete carry directory turns the rerun into pure file loads; the
  // results still match an uninterrupted sweep exactly.
  const net::Graph g = quad();
  const net::TrafficMatrix traffic = quad_traffic();
  const scenario::Scenario scen = transient();

  const study::ScenarioSweepResult expected =
      study::run_scenario_sweep(g, traffic, scen, kPolicies, scenario_options(1));

  ScratchDir dir("altroute_sweep_warm");
  study::ScenarioSweepOptions first = scenario_options(1);
  first.checkpoint_dir = dir.path;
  (void)study::run_scenario_sweep(g, traffic, scen, kPolicies, first);
  const study::ScenarioSweepResult reloaded =
      study::run_scenario_sweep(g, traffic, scen, kPolicies, first);
  expect_equal(expected, reloaded, {}, {});
}

TEST(SnapshotSweep, ChangedConfigurationIsRejected) {
  const net::Graph g = quad();
  const net::TrafficMatrix traffic = quad_traffic();
  const scenario::Scenario scen = transient();

  ScratchDir dir("altroute_sweep_mismatch");
  study::ScenarioSweepOptions options = scenario_options(1);
  options.checkpoint_dir = dir.path;
  (void)study::run_scenario_sweep(g, traffic, scen, kPolicies, options);

  options.base_seed += 1;  // any fingerprinted knob
  try {
    (void)study::run_scenario_sweep(g, traffic, scen, kPolicies, options);
    FAIL() << "stale carry directory was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sweep configuration changed"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotSweep, CheckpointEveryWithoutDirIsRejected) {
  study::ScenarioSweepOptions options = scenario_options(1);
  options.checkpoint_every = 5.0;
  EXPECT_THROW(
      (void)study::run_scenario_sweep(quad(), quad_traffic(), transient(), kPolicies, options),
      std::invalid_argument);
}

// --- load sweeps (run_sweep): completion-granular carries -------------------

study::SweepOptions load_options(int threads) {
  study::SweepOptions options;
  options.load_factors = {0.9, 1.1};
  options.seeds = 3;
  options.measure = 30.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.threads = threads;
  options.erlang_bound = false;
  options.obs.metrics = true;
  return options;
}

void expect_equal(const study::SweepResult& a, const study::SweepResult& b) {
  EXPECT_EQ(a.load_factors, b.load_factors);
  EXPECT_EQ(a.offered_erlangs, b.offered_erlangs);
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    EXPECT_EQ(a.curves[i].name, b.curves[i].name);
    EXPECT_EQ(a.curves[i].mean_blocking, b.curves[i].mean_blocking);
    EXPECT_EQ(a.curves[i].ci95, b.curves[i].ci95);
    EXPECT_EQ(a.curves[i].alternate_fraction, b.curves[i].alternate_fraction);
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].to_json(), b.metrics[i].to_json());
  }
}

TEST(SnapshotSweep, LoadSweepCrashResumeIsIdentical) {
  const net::Graph g = quad();
  const net::TrafficMatrix traffic = quad_traffic();

  const study::SweepResult expected = study::run_sweep(g, traffic, kPolicies, load_options(2));

  ScratchDir dir("altroute_load_sweep");
  study::SweepOptions crashed = load_options(2);
  crashed.checkpoint_dir = dir.path;
  crashed.crash_after = 3;  // 2 load points x 3 seeds = 6 tasks; die mid-way
  EXPECT_THROW((void)study::run_sweep(g, traffic, kPolicies, crashed), std::runtime_error);
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/task-0.res"));

  study::SweepOptions resumed = load_options(2);
  resumed.checkpoint_dir = dir.path;
  expect_equal(expected, study::run_sweep(g, traffic, kPolicies, resumed));
}

}  // namespace
