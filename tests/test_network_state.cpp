// Network-wide admission state: path probes, booking, release.
#include <gtest/gtest.h>

#include <stdexcept>

#include "loss/network_state.hpp"
#include "netgraph/topologies.hpp"
#include "routing/path.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace routing = altroute::routing;

namespace {

class NetworkStateTest : public ::testing::Test {
 protected:
  NetworkStateTest() : graph_(net::full_mesh(4, 2)), state_(graph_) {}

  routing::Path path(std::initializer_list<int> nodes) {
    std::vector<net::NodeId> seq;
    for (const int v : nodes) seq.emplace_back(v);
    return routing::make_path(graph_, seq);
  }

  net::Graph graph_;
  loss::NetworkState state_;
};

TEST_F(NetworkStateTest, InitializedFromGraphCapacities) {
  EXPECT_EQ(state_.link_count(), 12);
  for (int k = 0; k < 12; ++k) {
    EXPECT_EQ(state_.link(net::LinkId(k)).capacity(), 2);
    EXPECT_EQ(state_.link(net::LinkId(k)).occupancy(), 0);
    EXPECT_EQ(state_.link(net::LinkId(k)).reservation(), 0);
  }
}

TEST_F(NetworkStateTest, BookAndReleaseAdjustEveryHop) {
  const routing::Path p = path({0, 1, 2});
  EXPECT_TRUE(state_.path_admissible(p, loss::CallClass::kPrimary));
  state_.book(p);
  EXPECT_EQ(state_.link(p.links[0]).occupancy(), 1);
  EXPECT_EQ(state_.link(p.links[1]).occupancy(), 1);
  EXPECT_EQ(state_.total_occupancy(), 2);
  state_.release(p);
  EXPECT_EQ(state_.total_occupancy(), 0);
}

TEST_F(NetworkStateTest, FirstBlockingLinkIdentified) {
  const routing::Path p = path({0, 1, 2});
  // Fill link 1->2 (capacity 2).
  state_.book(path({1, 2}));
  state_.book(path({1, 2}));
  EXPECT_EQ(state_.first_blocking_link(p, loss::CallClass::kPrimary), 1);
  EXPECT_FALSE(state_.path_admissible(p, loss::CallClass::kPrimary));
  // Now also fill 0->1: the FIRST blocking link along the path wins.
  state_.book(path({0, 1}));
  state_.book(path({0, 1}));
  EXPECT_EQ(state_.first_blocking_link(p, loss::CallClass::kPrimary), 0);
}

TEST_F(NetworkStateTest, AlternateClassSeesReservations) {
  const routing::Path p = path({0, 1});
  state_.set_reservation(p.links[0], 1);
  state_.book(p);  // occupancy 1 = C - r: alternates refused, primaries ok
  EXPECT_TRUE(state_.path_admissible(p, loss::CallClass::kPrimary));
  EXPECT_FALSE(state_.path_admissible(p, loss::CallClass::kAlternate));
  EXPECT_EQ(state_.first_blocking_link(p, loss::CallClass::kAlternate), 0);
}

TEST_F(NetworkStateTest, SetReservationsVector) {
  std::vector<int> r(12, 1);
  state_.set_reservations(r);
  for (int k = 0; k < 12; ++k) {
    EXPECT_EQ(state_.link(net::LinkId(k)).reservation(), 1);
  }
  EXPECT_THROW(state_.set_reservations(std::vector<int>(5, 0)), std::invalid_argument);
}

TEST_F(NetworkStateTest, BookingPastCapacityThrows) {
  const routing::Path p = path({0, 1});
  state_.book(p);
  state_.book(p);
  EXPECT_THROW(state_.book(p), std::logic_error);
  EXPECT_EQ(state_.link(p.links[0]).occupancy(), 2);
}

}  // namespace
