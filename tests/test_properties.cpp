// Cross-topology property sweeps (parameterized): the central guarantee
// and the engine's calibration, exercised over a family of networks and
// loads rather than single examples.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "erlang/birth_death.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace net = altroute::net;
namespace core = altroute::core;
namespace loss = altroute::loss;
namespace sim = altroute::sim;
namespace erlang = altroute::erlang;
namespace routing = altroute::routing;

namespace {

// ---------------------------------------------------------------------------
// Guarantee sweep: controlled alternate routing never loses more calls than
// single-path routing, on meshes of very different shape and at loads from
// comfortable to deep overload.

struct GuaranteeCase {
  std::string name;
  net::Graph graph;
  double utilization;  // offered per pair chosen to hit this link load level
  int max_alt_hops;
};

GuaranteeCase make_case(const std::string& kind, double utilization) {
  if (kind == "quadrangle") {
    return {kind, net::full_mesh(4, 60), utilization, 3};
  }
  if (kind == "ring6") {
    return {kind, net::ring(6, 60), utilization, 5};
  }
  if (kind == "grid23") {
    return {kind, net::grid(2, 3, 60), utilization, 5};
  }
  return {kind, net::erdos_renyi(8, 0.3, 60, 99), utilization, 6};
}

class GuaranteeSweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(GuaranteeSweep, ControlledNeverWorseThanSinglePath) {
  const auto [kind, utilization] = GetParam();
  GuaranteeCase test_case = make_case(kind, utilization);
  const net::Graph& g = test_case.graph;
  // Normalize offered load so the BUSIEST link's primary demand sits at
  // the requested utilization of its capacity.
  net::TrafficMatrix probe = net::TrafficMatrix::uniform(g.node_count(), 1.0);
  core::Controller scout(g, probe, core::ControllerConfig{test_case.max_alt_hops});
  double peak = 0.0;
  for (const double lambda : scout.primary_loads()) peak = std::max(peak, lambda);
  ASSERT_GT(peak, 0.0);
  const double per_pair = utilization * 60.0 / peak;
  const net::TrafficMatrix traffic =
      net::TrafficMatrix::uniform(g.node_count(), per_pair);

  core::Controller controller(g, traffic, core::ControllerConfig{test_case.max_alt_hops});
  loss::SinglePathPolicy single;
  core::ControlledAlternatePolicy controlled;
  long long blocked_single = 0;
  long long blocked_controlled = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(traffic, 60.0, seed);
    blocked_single += controller.run(single, trace).blocked;
    blocked_controlled += controller.run(controlled, trace).blocked;
  }
  // Expectation-level guarantee, measured with common random numbers over
  // 4 seeds; allow a whisker of sampling noise on the comparison.
  EXPECT_LE(blocked_controlled,
            blocked_single + std::max<long long>(8, blocked_single / 50))
      << "graph " << test_case.name << " utilization " << utilization;
}

INSTANTIATE_TEST_SUITE_P(
    MeshesAndLoads, GuaranteeSweep,
    ::testing::Combine(::testing::Values("quadrangle", "ring6", "grid23", "random8"),
                       ::testing::Values(0.8, 1.0, 1.2)),
    [](const ::testing::TestParamInfo<GuaranteeSweep::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_u" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Engine calibration sweep: an isolated link must reproduce Erlang-B across
// capacities and utilizations.

class ErlangCalibration
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ErlangCalibration, IsolatedLinkMatchesAnalyticBlocking) {
  const auto [capacity, utilization] = GetParam();
  const double offered = utilization * capacity;
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), capacity);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), offered);
  loss::SinglePathPolicy policy;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(t, 160.0, seed);
    blocking.add(loss::run_trace(g, routes, policy, trace, {}).blocking());
  }
  const double analytic = erlang::erlang_b(offered, capacity);
  EXPECT_NEAR(blocking.mean(), analytic, 4.0 * blocking.stderr_mean() + 0.006)
      << "C=" << capacity << " u=" << utilization;
}

INSTANTIATE_TEST_SUITE_P(Grid, ErlangCalibration,
                         ::testing::Combine(::testing::Values(5, 20, 60),
                                            ::testing::Values(0.7, 0.9, 1.1, 1.5)),
                         [](const ::testing::TestParamInfo<ErlangCalibration::ParamType>& info) {
                           return "C" + std::to_string(std::get<0>(info.param)) + "_u" +
                                  std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
                         });

// ---------------------------------------------------------------------------
// Eq.-15 minimality sweep over a (lambda, C, H) grid against brute force.

class EqFifteenSweep
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(EqFifteenSweep, SolverMatchesBruteForceMinimum) {
  const auto [utilization, capacity, hops] = GetParam();
  const double lambda = utilization * capacity;
  const int solver = erlang::min_state_protection(lambda, capacity, hops);
  int brute = capacity;
  for (int r = 0; r <= capacity; ++r) {
    if (erlang::erlang_b(lambda, capacity) <=
        erlang::erlang_b(lambda, capacity - r) / hops) {
      brute = r;
      break;
    }
  }
  EXPECT_EQ(solver, brute) << "lambda=" << lambda << " C=" << capacity << " H=" << hops;
}

INSTANTIATE_TEST_SUITE_P(Grid, EqFifteenSweep,
                         ::testing::Combine(::testing::Values(0.2, 0.5, 0.74, 0.9, 1.05),
                                            ::testing::Values(10, 50, 100, 480),
                                            ::testing::Values(2, 6, 11, 120)));

// ---------------------------------------------------------------------------
// Analytic cross-checks on a randomized (lambda, C) grid: the closed-form
// Erlang-B recursion and the birth-death stationary distribution are two
// independent derivations of the same chain and must agree to numerical
// precision, not simulation tolerance.

TEST(AnalyticCrossCheck, ErlangBMatchesBirthDeathStationary) {
  sim::Rng rng(20260806, 0);
  for (int trial = 0; trial < 60; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.below(120));
    const double utilization = 0.1 + 1.5 * rng.uniform01();
    const double lambda = utilization * capacity;
    const double closed_form = erlang::erlang_b(lambda, capacity);

    // The same link as an explicit chain: birth lambda in every state,
    // death s in state s; blocking = pi[C] (PASTA).
    std::vector<double> birth(static_cast<std::size_t>(capacity), lambda);
    std::vector<double> death(static_cast<std::size_t>(capacity));
    for (int s = 1; s <= capacity; ++s) death[static_cast<std::size_t>(s - 1)] = s;
    const std::vector<double> pi = erlang::stationary_distribution(birth, death);
    EXPECT_NEAR(pi.back(), closed_form, 1e-10)
        << "lambda=" << lambda << " C=" << capacity;
    EXPECT_NEAR(erlang::generalized_erlang_b(birth), closed_form, 1e-10)
        << "lambda=" << lambda << " C=" << capacity;
  }
}

// Eq. 15's protection level is monotone in both arguments: more alternate
// hops to protect against, or more primary load, can never call for LESS
// reservation.
TEST(AnalyticCrossCheck, ProtectionMonotoneInLoadAndHops) {
  sim::Rng rng(4094, 0);
  for (int trial = 0; trial < 40; ++trial) {
    const int capacity = 2 + static_cast<int>(rng.below(200));
    const double base = (0.05 + 1.2 * rng.uniform01()) * capacity;

    // Ascending H at fixed (lambda, C).
    int prev_r = 0;
    for (const int hops : {2, 3, 5, 8, 13, 40, 120}) {
      const int r = erlang::min_state_protection(base, capacity, hops);
      EXPECT_GE(r, prev_r) << "lambda=" << base << " C=" << capacity << " H=" << hops;
      prev_r = r;
    }

    // Ascending lambda at fixed (C, H).
    prev_r = 0;
    for (int step = 0; step < 12; ++step) {
      const double lambda = base * (0.2 + 0.15 * step);
      const int r = erlang::min_state_protection(lambda, capacity, 6);
      EXPECT_GE(r, prev_r) << "lambda=" << lambda << " C=" << capacity;
      prev_r = r;
    }
  }
}

}  // namespace
