// Shrink determinism: for a deterministic predicate, shrink_case must
// reach the SAME local minimum every time, and for a predicate with a
// known structural trigger the minimum must be the obvious smallest case
// -- two nodes, one facility, zero demand, one t=0 event, horizon 1, every
// knob simplified away.  That exactness is what makes a dumped shrunk
// artifact trustworthy as a bug report.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/case.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"

using namespace altroute;

namespace {

// A mid-sized start: four nodes ringed, warmed, binned, auto-resolving,
// resumable, protected -- everything the shrinker should strip away.  The
// FIRST event is node-independent (resolve_protection), so the synthetic
// predicate below pins exactly one survivor.
check::CaseSpec synthetic_start() {
  check::CaseSpec spec;
  spec.seed = 4242;
  spec.nodes = 4;
  spec.facilities = {{0, 1, 5}, {1, 2, 5}, {2, 3, 5}, {3, 0, 5}};
  spec.demands.assign(16, 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) spec.demands[static_cast<std::size_t>(i) * 4 + j] = 2.0;
    }
  }
  spec.horizon = 16.0;
  spec.warmup = 4.0;
  spec.time_bins = 6;
  spec.max_alt_hops = 3;
  spec.policy = check::PolicyChoice::kControlled;
  spec.protect = true;
  spec.auto_resolve = true;
  spec.trace_seed = 5;
  spec.policy_seed = 6;
  spec.resume_at = 8.0;
  spec.events.push_back(scenario::ScenarioEvent::resolve_protection(3.0));
  spec.events.push_back(scenario::ScenarioEvent::link_fail(5.0, 1, 2));
  spec.events.push_back(scenario::ScenarioEvent::traffic_scale(7.0, 1.5));
  spec.validate();
  return spec;
}

// "The bug reproduces whenever any scenario event exists" -- a pure
// structural predicate, so the expected minimum is computable by hand.
bool has_any_event(const check::CaseSpec& spec) { return !spec.events.empty(); }

TEST(CheckShrink, ReachesTheExactStructuralMinimum) {
  check::ShrinkStats stats;
  const check::CaseSpec minimal = check::shrink_case(synthetic_start(), has_any_event, &stats);

  EXPECT_EQ(minimal.nodes, 2);
  ASSERT_EQ(minimal.facilities.size(), 1u);
  EXPECT_EQ(minimal.facilities[0].a, 0);
  EXPECT_EQ(minimal.facilities[0].b, 1);
  EXPECT_EQ(minimal.demands, std::vector<double>(4, 0.0));
  ASSERT_EQ(minimal.events.size(), 1u);
  EXPECT_EQ(minimal.events[0].kind, scenario::EventKind::kResolveProtection);
  EXPECT_EQ(minimal.events[0].time, 0.0);
  EXPECT_EQ(minimal.horizon, 1.0);
  EXPECT_EQ(minimal.warmup, 0.0);
  EXPECT_EQ(minimal.time_bins, 0);
  EXPECT_FALSE(minimal.auto_resolve);
  EXPECT_FALSE(minimal.protect);
  EXPECT_LT(minimal.resume_at, 0.0);
  EXPECT_NO_THROW(minimal.validate());

  EXPECT_GE(stats.rounds, 2);  // at least one productive round + the fixpoint round
  EXPECT_GT(stats.accepted, 0);
  EXPECT_LE(stats.accepted, stats.attempted);
}

TEST(CheckShrink, IsDeterministic) {
  const check::CaseSpec a = check::shrink_case(synthetic_start(), has_any_event);
  const check::CaseSpec b = check::shrink_case(synthetic_start(), has_any_event);
  EXPECT_EQ(check::case_to_json(a), check::case_to_json(b));
}

TEST(CheckShrink, ReturnsTheStartWhenItDoesNotFail) {
  const check::CaseSpec start = synthetic_start();
  check::ShrinkStats stats;
  const check::CaseSpec out =
      check::shrink_case(start, [](const check::CaseSpec&) { return false; }, &stats);
  EXPECT_EQ(check::case_to_json(out), check::case_to_json(start));
  EXPECT_EQ(stats.rounds, 0);
  EXPECT_EQ(stats.accepted, 0);
}

TEST(CheckShrink, AThrowingPredicateNeverSmugglesInACandidate) {
  // The predicate holds the start but throws on anything smaller; the
  // shrinker must treat the throws as "does not fail" and return the start.
  const check::CaseSpec start = synthetic_start();
  const std::string start_json = check::case_to_json(start);
  const check::CaseSpec out = check::shrink_case(start, [&](const check::CaseSpec& cand) {
    if (check::case_to_json(cand) != start_json) throw std::runtime_error("flaky predicate");
    return true;
  });
  EXPECT_EQ(check::case_to_json(out), start_json);
}

// Does the spec still carry an event no node/facility pass can remove?
bool has_node_independent_event(const check::CaseSpec& spec) {
  for (const scenario::ScenarioEvent& e : spec.events) {
    if (e.kind == scenario::EventKind::kResolveProtection ||
        e.kind == scenario::EventKind::kTrafficScale) {
      return true;
    }
  }
  return false;
}

TEST(CheckShrink, ShrinksAGeneratedCaseUnderAStructuralPredicate) {
  // Generated cases carry extra structure (chords, uneven demands); a
  // structural predicate must still strip them to the same minimum shape.
  check::CaseSpec start;
  bool found = false;
  for (int i = 0; i < 64 && !found; ++i) {
    start = check::generate_case(check::case_seed(3, static_cast<std::uint64_t>(i)));
    found = has_node_independent_event(start);
  }
  ASSERT_TRUE(found) << "corpus never generated a node-independent event";
  const check::CaseSpec minimal = check::shrink_case(start, has_node_independent_event);
  EXPECT_EQ(minimal.nodes, 2);
  EXPECT_EQ(minimal.facilities.size(), 1u);
  EXPECT_EQ(minimal.events.size(), 1u);
  EXPECT_EQ(minimal.horizon, 1.0);
  const check::CaseSpec again = check::shrink_case(start, has_node_independent_event);
  EXPECT_EQ(check::case_to_json(again), check::case_to_json(minimal));
}

}  // namespace
