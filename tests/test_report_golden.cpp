// Golden-file tests for the report renderers: sweep_table, scenario_table,
// and metrics_table are rendered from a small fixed experiment and compared
// byte-for-byte against checked-in snapshots under tests/data/golden.
//
// The fixtures are fully deterministic (fixed seeds, serial merge order),
// so any diff is a REAL rendering or simulation change.  When a change is
// intentional, regenerate every snapshot with ONE command from the build
// directory and commit the diff:
//
//     REGEN_GOLDENS=1 ctest -R ReportGolden
//
// (or run the test binary directly with REGEN_GOLDENS=1 in the
// environment), then review `git diff tests/data/golden`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "netgraph/topologies.hpp"
#include "scenario/scenario.hpp"
#include "study/experiment.hpp"
#include "study/report.hpp"

namespace net = altroute::net;
namespace scenario = altroute::scenario;
namespace study = altroute::study;

namespace {

void check_or_regen(const std::string& name, const std::string& rendered) {
  const std::string path = std::string(GOLDEN_DIR) + "/" + name;
  if (std::getenv("REGEN_GOLDENS") != nullptr) {
    study::write_file(path, rendered);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- regenerate with REGEN_GOLDENS=1 ctest -R ReportGolden";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str())
      << "rendered output diverged from " << path
      << "; if intentional: REGEN_GOLDENS=1 ctest -R ReportGolden";
}

// One small instrumented load sweep shared by the sweep/metrics snapshots.
const study::SweepResult& sweep_fixture() {
  static const study::SweepResult result = [] {
    study::SweepOptions options;
    options.load_factors = {0.9, 1.1};
    options.seeds = 2;
    options.measure = 40.0;
    options.warmup = 5.0;
    options.max_alt_hops = 3;
    options.obs.metrics = true;
    options.obs.occupancy_samples = 4;
    return study::run_sweep(net::full_mesh(4, 20), net::TrafficMatrix::uniform(4, 12.0),
                            {study::PolicyKind::kSinglePath,
                             study::PolicyKind::kUncontrolledAlternate,
                             study::PolicyKind::kControlledAlternate},
                            options);
  }();
  return result;
}

TEST(ReportGolden, SweepTable) {
  check_or_regen("sweep_table.txt", study::sweep_table(sweep_fixture()).str());
}

TEST(ReportGolden, SweepTableScientificCsv) {
  check_or_regen("sweep_table_sci.csv", study::sweep_table(sweep_fixture(), true).csv());
}

TEST(ReportGolden, MetricsTable) {
  check_or_regen("metrics_table.txt", study::metrics_table(sweep_fixture()).str());
}

TEST(ReportGolden, ScenarioTable) {
  scenario::Scenario scen;
  scen.name = "golden-outage";
  scen.events.push_back(scenario::ScenarioEvent::link_fail(15.0, 0, 1));
  scen.events.push_back(scenario::ScenarioEvent::resolve_protection(15.0));
  scen.events.push_back(scenario::ScenarioEvent::link_repair(30.0, 0, 1));
  scen.events.push_back(scenario::ScenarioEvent::resolve_protection(30.0));
  study::ScenarioSweepOptions options;
  options.seeds = 2;
  options.measure = 40.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  options.time_bins = 8;
  const study::ScenarioSweepResult result = study::run_scenario_sweep(
      net::full_mesh(4, 20), net::TrafficMatrix::uniform(4, 12.0), scen,
      {study::PolicyKind::kSinglePath, study::PolicyKind::kControlledAlternate}, options);
  check_or_regen("scenario_table.txt", study::scenario_table(result).str());
}

}  // namespace
