// Future event list: ordering, FIFO tie-break, stress against std::sort --
// plus the simulation-level tie rule (departures <= t first, then scenario
// events, then arrivals) asserted behaviorally on the scenario runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/call_trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace loss = altroute::loss;
namespace net = altroute::net;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;

namespace {

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue<int> q;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().second, 1);
  EXPECT_EQ(q.pop().second, 2);
  EXPECT_EQ(q.pop().second, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsPopFifo) {
  sim::EventQueue<std::string> q;
  q.schedule(5.0, "first");
  q.schedule(5.0, "second");
  q.schedule(5.0, "third");
  EXPECT_EQ(q.pop().second, "first");
  EXPECT_EQ(q.pop().second, "second");
  EXPECT_EQ(q.pop().second, "third");
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  sim::EventQueue<int> q;
  q.schedule(10.0, 10);
  q.schedule(1.0, 1);
  EXPECT_EQ(q.pop().second, 1);
  q.schedule(5.0, 5);
  q.schedule(0.5, 0);  // may schedule "in the past" of popped events
  EXPECT_EQ(q.pop().second, 0);
  EXPECT_EQ(q.pop().second, 5);
  EXPECT_EQ(q.pop().second, 10);
}

TEST(EventQueue, RejectsBadTimesAndEmptyPop) {
  sim::EventQueue<int> q;
  EXPECT_THROW(q.schedule(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::nan(""), 0), std::invalid_argument);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  sim::EventQueue<int> q;
  q.schedule(1.0, 1);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, StressMatchesStableSort) {
  sim::Rng rng(99, 0);
  sim::EventQueue<int> q;
  struct Ev {
    double time;
    int id;
  };
  std::vector<Ev> reference;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // Coarse times force many ties, exercising the FIFO rule.
    const double t = static_cast<double>(rng.below(500));
    q.schedule(t, i);
    reference.push_back(Ev{t, i});
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ev& a, const Ev& b) { return a.time < b.time; });
  for (const Ev& expected : reference) {
    const auto [t, id] = q.pop();
    ASSERT_DOUBLE_EQ(t, expected.time);
    ASSERT_EQ(id, expected.id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MovesPayloadsNotCopies) {
  sim::EventQueue<std::unique_ptr<int>> q;
  q.schedule(1.0, std::make_unique<int>(42));
  auto [t, payload] = q.pop();
  ASSERT_TRUE(payload);
  EXPECT_EQ(*payload, 42);
}

// Equal timestamps with MIXED payload kinds still pop in insertion order:
// the queue has no notion of kind, so the simulation's departure/event/
// arrival priority must come from insertion order alone.
TEST(EventQueue, MixedKindsAtOneTimestampStayFifo) {
  enum Kind { kDeparture, kEvent, kArrival };
  sim::EventQueue<Kind> q;
  q.schedule(7.0, kArrival);  // scheduled first, pops first
  q.schedule(7.0, kDeparture);
  q.schedule(7.0, kEvent);
  q.schedule(7.0, kArrival);
  EXPECT_EQ(q.pop().second, kArrival);
  EXPECT_EQ(q.pop().second, kDeparture);
  EXPECT_EQ(q.pop().second, kEvent);
  EXPECT_EQ(q.pop().second, kArrival);
}

// ---------------------------------------------------------------------------
// The scenario runner's documented tie rule, asserted behaviorally.

// A call departing at EXACTLY the timestamp of a capacity shrink is drained
// before the event applies: two calls hold the 2-circuit link, one departs
// at t = 5, and the shrink to 1 circuit at t = 5 finds occupancy 1 -- no
// preemption.  Move the shrink a half unit earlier and it finds occupancy 2
// and must preempt the newest call.
TEST(ScenarioTieBreak, DepartureAtEventTimeDrainsFirst) {
  const net::Graph g = net::full_mesh(2, 2);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(2, 1.0);
  sim::CallTrace trace;
  trace.calls.push_back({1.0, 4.0, net::NodeId(0), net::NodeId(1), 1});   // departs at 5.0
  trace.calls.push_back({2.0, 10.0, net::NodeId(0), net::NodeId(1), 1});  // departs at 12.0
  trace.horizon = 15.0;
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 1;

  for (const double event_time : {5.0, 4.5}) {
    SCOPED_TRACE(event_time);
    scenario::Scenario scen;
    scen.name = "shrink";
    scen.events.push_back(scenario::ScenarioEvent::capacity_set(event_time, 0, 1, 1));
    loss::SinglePathPolicy policy;
    const scenario::ScenarioRunResult result =
        scenario::run_scenario(g, traffic, policy, trace, scen, options);
    ASSERT_EQ(result.applied.size(), 1u);
    EXPECT_EQ(result.run.offered, 2);
    EXPECT_EQ(result.run.carried_primary, 2);
    if (event_time == 5.0) {
      // Departure first: the shrink sees one call in flight, within the
      // new capacity.
      EXPECT_EQ(result.applied[0].calls_killed, 0);
      EXPECT_EQ(result.dropped, 0);
    } else {
      // Both calls still in flight: the NEWEST one is preempted.
      EXPECT_EQ(result.applied[0].calls_killed, 1);
      EXPECT_EQ(result.dropped, 1);
    }
  }
}

// An arrival at EXACTLY the timestamp of a failure is routed after the
// event applies: the only facility is already down, so the call is blocked
// (and the call in flight was killed by the failure).
TEST(ScenarioTieBreak, ArrivalAtEventTimeSeesTheFailure) {
  const net::Graph g = net::full_mesh(2, 2);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(2, 1.0);
  sim::CallTrace trace;
  trace.calls.push_back({1.0, 10.0, net::NodeId(0), net::NodeId(1), 1});  // killed at 3.0
  trace.calls.push_back({3.0, 1.0, net::NodeId(0), net::NodeId(1), 1});   // arrives AT 3.0
  trace.horizon = 6.0;
  scenario::Scenario scen;
  scen.name = "fail";
  scen.events.push_back(scenario::ScenarioEvent::link_fail(3.0, 0, 1));
  scenario::ScenarioEngineOptions options;
  options.warmup = 0.0;
  options.max_alt_hops = 1;
  loss::SinglePathPolicy policy;
  const scenario::ScenarioRunResult result =
      scenario::run_scenario(g, traffic, policy, trace, scen, options);
  EXPECT_EQ(result.run.offered, 2);
  EXPECT_EQ(result.run.carried_primary, 1);  // the first call, later killed
  EXPECT_EQ(result.run.blocked, 1);          // the t = 3.0 arrival
  EXPECT_EQ(result.dropped, 1);
  ASSERT_EQ(result.applied.size(), 1u);
  EXPECT_EQ(result.applied[0].calls_killed, 1);
}

}  // namespace
