// Future event list: ordering, FIFO tie-break, stress against std::sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace sim = altroute::sim;

namespace {

TEST(EventQueue, PopsInTimeOrder) {
  sim::EventQueue<int> q;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().second, 1);
  EXPECT_EQ(q.pop().second, 2);
  EXPECT_EQ(q.pop().second, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsPopFifo) {
  sim::EventQueue<std::string> q;
  q.schedule(5.0, "first");
  q.schedule(5.0, "second");
  q.schedule(5.0, "third");
  EXPECT_EQ(q.pop().second, "first");
  EXPECT_EQ(q.pop().second, "second");
  EXPECT_EQ(q.pop().second, "third");
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  sim::EventQueue<int> q;
  q.schedule(10.0, 10);
  q.schedule(1.0, 1);
  EXPECT_EQ(q.pop().second, 1);
  q.schedule(5.0, 5);
  q.schedule(0.5, 0);  // may schedule "in the past" of popped events
  EXPECT_EQ(q.pop().second, 0);
  EXPECT_EQ(q.pop().second, 5);
  EXPECT_EQ(q.pop().second, 10);
}

TEST(EventQueue, RejectsBadTimesAndEmptyPop) {
  sim::EventQueue<int> q;
  EXPECT_THROW(q.schedule(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::nan(""), 0), std::invalid_argument);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  sim::EventQueue<int> q;
  q.schedule(1.0, 1);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, StressMatchesStableSort) {
  sim::Rng rng(99, 0);
  sim::EventQueue<int> q;
  struct Ev {
    double time;
    int id;
  };
  std::vector<Ev> reference;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // Coarse times force many ties, exercising the FIFO rule.
    const double t = static_cast<double>(rng.below(500));
    q.schedule(t, i);
    reference.push_back(Ev{t, i});
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ev& a, const Ev& b) { return a.time < b.time; });
  for (const Ev& expected : reference) {
    const auto [t, id] = q.pop();
    ASSERT_DOUBLE_EQ(t, expected.time);
    ASSERT_EQ(id, expected.id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MovesPayloadsNotCopies) {
  sim::EventQueue<std::unique_ptr<int>> q;
  q.schedule(1.0, std::make_unique<int>(42));
  auto [t, payload] = q.pop();
  ASSERT_TRUE(payload);
  EXPECT_EQ(*payload, 42);
}

}  // namespace
