// Sweep harness: shapes, determinism, CLI, table rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "netgraph/topologies.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"
#include "study/report.hpp"

namespace net = altroute::net;
namespace study = altroute::study;

namespace {

study::SweepOptions small_sweep() {
  study::SweepOptions options;
  options.load_factors = {0.5, 1.0};
  options.seeds = 2;
  options.measure = 20.0;
  options.warmup = 5.0;
  options.max_alt_hops = 3;
  return options;
}

TEST(RunSweep, ShapesAreConsistent) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 30.0);
  const std::vector<study::PolicyKind> policies = {
      study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
      study::PolicyKind::kControlledAlternate};
  const study::SweepResult r = study::run_sweep(g, nominal, policies, small_sweep());
  ASSERT_EQ(r.curves.size(), 3u);
  ASSERT_EQ(r.load_factors.size(), 2u);
  EXPECT_EQ(r.offered_erlangs.size(), 2u);
  EXPECT_DOUBLE_EQ(r.offered_erlangs[1], 360.0);
  EXPECT_EQ(r.erlang_bound.size(), 2u);
  for (const study::PolicyCurve& curve : r.curves) {
    ASSERT_EQ(curve.mean_blocking.size(), 2u);
    ASSERT_EQ(curve.ci95.size(), 2u);
    ASSERT_EQ(curve.alternate_fraction.size(), 2u);
    for (const double b : curve.mean_blocking) {
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0);
    }
  }
  EXPECT_EQ(r.curves[0].name, "single-path");
  // Single-path routes nothing on alternates, ever.
  EXPECT_DOUBLE_EQ(r.curves[0].alternate_fraction[0], 0.0);
  EXPECT_DOUBLE_EQ(r.curves[0].alternate_fraction[1], 0.0);
}

TEST(RunSweep, DeterministicAcrossCalls) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 28.0);
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kControlledAlternate};
  const study::SweepResult a = study::run_sweep(g, nominal, policies, small_sweep());
  const study::SweepResult b = study::run_sweep(g, nominal, policies, small_sweep());
  EXPECT_EQ(a.curves[0].mean_blocking, b.curves[0].mean_blocking);
  EXPECT_EQ(a.erlang_bound, b.erlang_bound);
}

TEST(RunSweep, FairnessSummariesWhenRequested) {
  const net::Graph g = net::full_mesh(4, 20);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 24.0);
  study::SweepOptions options = small_sweep();
  options.fairness = true;
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kSinglePath};
  const study::SweepResult r = study::run_sweep(g, nominal, policies, options);
  ASSERT_EQ(r.curves[0].pair_blocking.size(), 2u);
  EXPECT_EQ(r.curves[0].pair_blocking[1].count, 12u);  // all ordered pairs
}

TEST(RunSweep, OttKrishnanAndAdaptiveRun) {
  const net::Graph g = net::full_mesh(4, 20);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 18.0);
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kOttKrishnan,
                                                   study::PolicyKind::kAdaptiveControlled};
  study::SweepOptions options = small_sweep();
  options.load_factors = {1.0};
  const study::SweepResult r = study::run_sweep(g, nominal, policies, options);
  EXPECT_EQ(r.curves[0].name, "ott-krishnan");
  EXPECT_EQ(r.curves[1].name, "adaptive-controlled-alt");
}

TEST(RunSweep, Validation) {
  const net::Graph g = net::full_mesh(3, 5);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(3, 1.0);
  EXPECT_THROW((void)study::run_sweep(g, t, {}, small_sweep()), std::invalid_argument);
  study::SweepOptions bad = small_sweep();
  bad.seeds = 0;
  EXPECT_THROW(
      (void)study::run_sweep(g, t, {study::PolicyKind::kSinglePath}, bad),
      std::invalid_argument);
}

TEST(TextTable, AlignedRenderAndCsv) {
  study::TextTable table({"a", "long_header"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string text = table.str();
  EXPECT_NE(text.find("a    long_header"), std::string::npos);
  EXPECT_NE(text.find("333  4"), std::string::npos);
  EXPECT_EQ(table.csv(), "a,long_header\n1,2\n333,4\n");
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Formatting, FixedAndScientific) {
  EXPECT_EQ(study::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(study::fmt(2.0, 0), "2");
  EXPECT_EQ(study::fmt_sci(0.0), "0");
  EXPECT_EQ(study::fmt_sci(0.000231), "2.31e-04");
}

TEST(SweepTable, OneRowPerLoadPoint) {
  const net::Graph g = net::full_mesh(4, 20);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 20.0);
  const study::SweepResult r =
      study::run_sweep(g, nominal, {study::PolicyKind::kSinglePath}, small_sweep());
  const std::string text = study::sweep_table(r).str();
  EXPECT_NE(text.find("single-path"), std::string::npos);
  EXPECT_NE(text.find("erlang_bound"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
}

TEST(Cli, ParsesAllFlags) {
  const char* argv[] = {"prog",  "--seeds", "4",          "--measure", "33",
                        "--warmup", "2",   "--loads",     "0.5,1,1.5", "--hops",
                        "7",     "--threads", "8",        "--csv",     "/tmp/x.csv",
                        "--fast"};
  const study::CliOptions cli =
      study::parse_cli(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_EQ(*cli.seeds, 4);
  EXPECT_DOUBLE_EQ(*cli.measure, 33.0);
  EXPECT_DOUBLE_EQ(*cli.warmup, 2.0);
  ASSERT_EQ(cli.loads->size(), 3u);
  EXPECT_DOUBLE_EQ((*cli.loads)[2], 1.5);
  EXPECT_EQ(*cli.hops, 7);
  EXPECT_EQ(*cli.threads, 8);
  EXPECT_EQ(*cli.csv, "/tmp/x.csv");
  EXPECT_TRUE(cli.fast);
}

TEST(Cli, RejectsBadInput) {
  const char* unknown[] = {"prog", "--bogus"};
  EXPECT_THROW((void)study::parse_cli(2, const_cast<char**>(unknown)), std::invalid_argument);
  const char* missing[] = {"prog", "--seeds"};
  EXPECT_THROW((void)study::parse_cli(2, const_cast<char**>(missing)), std::invalid_argument);
  const char* junk[] = {"prog", "--measure", "12abc"};
  EXPECT_THROW((void)study::parse_cli(3, const_cast<char**>(junk)), std::invalid_argument);
  const char* zero[] = {"prog", "--seeds", "0"};
  EXPECT_THROW((void)study::parse_cli(3, const_cast<char**>(zero)), std::invalid_argument);
  const char* negative_threads[] = {"prog", "--threads", "-2"};
  EXPECT_THROW((void)study::parse_cli(3, const_cast<char**>(negative_threads)),
               std::invalid_argument);
  // Unknown trace kinds are rejected at parse time (even without --trace),
  // and the error enumerates the valid kind names.
  const char* bad_kind[] = {"prog", "--trace-filter", "bogus_kind"};
  try {
    (void)study::parse_cli(3, const_cast<char**>(bad_kind));
    FAIL() << "expected invalid_argument for unknown trace kind";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus_kind"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("call_killed"), std::string::npos);
  }
}

TEST(Cli, TraceFilterListFlag) {
  const char* list_argv[] = {"prog", "--trace-filter", "list"};
  EXPECT_TRUE(study::parse_cli(3, const_cast<char**>(list_argv)).trace_filter_list);
  const char* help_argv[] = {"prog", "--trace-filter", "help"};
  EXPECT_TRUE(study::parse_cli(3, const_cast<char**>(help_argv)).trace_filter_list);
  const char* kinds_argv[] = {"prog", "--trace-filter", "call_killed,event_applied"};
  const study::CliOptions cli = study::parse_cli(3, const_cast<char**>(kinds_argv));
  EXPECT_FALSE(cli.trace_filter_list);
  EXPECT_EQ(cli.trace_filter, "call_killed,event_applied");
}

TEST(Cli, ShapeDefaultsAndFastMode) {
  study::CliOptions cli;
  study::RunShape shape = study::shape_from_cli(cli);
  EXPECT_EQ(shape.seeds, 10);
  EXPECT_DOUBLE_EQ(shape.measure, 100.0);
  EXPECT_DOUBLE_EQ(shape.warmup, 10.0);
  cli.fast = true;
  shape = study::shape_from_cli(cli);
  EXPECT_EQ(shape.seeds, 2);
  EXPECT_DOUBLE_EQ(shape.measure, 50.0);
  // Explicit flags override --fast shrinking.
  cli.seeds = 7;
  shape = study::shape_from_cli(cli);
  EXPECT_EQ(shape.seeds, 7);
  // --threads defaults to serial and passes through; --fast leaves it alone.
  EXPECT_EQ(shape.threads, 1);
  cli.threads = 4;
  shape = study::shape_from_cli(cli);
  EXPECT_EQ(shape.threads, 4);
}

TEST(WriteFile, RoundTripsAndValidates) {
  const std::string path = ::testing::TempDir() + "/altroute_report_test.txt";
  study::write_file(path, "hello\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::remove(path.c_str());
  EXPECT_THROW(study::write_file("/nonexistent-dir/x/y.txt", "x"), std::runtime_error);
}

}  // namespace
