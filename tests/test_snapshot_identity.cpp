// The golden checkpoint invariant: running to the horizon in one piece and
// running save-at-T / restore / continue must be BIT-IDENTICAL -- every
// counter, the metrics JSON, and every rendered trace line -- for both
// event-queue engines (including a checkpoint captured under one engine
// and resumed under the other), for stateless and stateful policies, on
// the quadrangle and NSFNet models.
//
// This is the property that makes resumable sweeps and what-if forks
// trustworthy: a checkpoint is not "approximately the state", it IS the
// state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/controlled_policy.hpp"
#include "loss/dynamic_policies.hpp"
#include "loss/policy.hpp"
#include "netgraph/topologies.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/fork.hpp"
#include "study/nsfnet_traffic.hpp"

using namespace altroute;

namespace {

// One model the matrix runs on: topology + traffic + a scenario with a
// failure, a capacity cut, and protection re-solves (so the checkpoint
// crosses event machinery, not just arrivals).
struct Model {
  const char* name;
  net::Graph graph;
  net::TrafficMatrix traffic;
  scenario::Scenario scen;
  double horizon;
  int hops;
};

Model quadrangle_model() {
  Model m{"quadrangle", net::full_mesh(4, 40), net::TrafficMatrix::uniform(4, 35.0), {}, 60.0,
          3};
  m.scen.name = "quad transient";
  m.scen.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
  m.scen.events.push_back(scenario::ScenarioEvent::link_fail(25.0, 0, 1));
  m.scen.events.push_back(scenario::ScenarioEvent::resolve_protection(25.0));
  m.scen.events.push_back(scenario::ScenarioEvent::capacity_scale(35.0, 2, 3, 0.7));
  m.scen.events.push_back(scenario::ScenarioEvent::link_repair(45.0, 0, 1));
  m.scen.events.push_back(scenario::ScenarioEvent::resolve_protection(45.0));
  return m;
}

Model nsfnet_model() {
  Model m{"nsfnet", net::nsfnet_t3(), study::nsfnet_nominal_traffic(), {}, 40.0, 11};
  m.scen.name = "nsfnet transient";
  m.scen.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
  m.scen.events.push_back(scenario::ScenarioEvent::link_fail(20.0, 2, 3));
  m.scen.events.push_back(scenario::ScenarioEvent::resolve_protection(20.0));
  m.scen.events.push_back(scenario::ScenarioEvent::link_repair(32.0, 2, 3));
  return m;
}

std::unique_ptr<loss::RoutingPolicy> fresh_policy(const std::string& kind, int nodes) {
  if (kind == "controlled-alt") return std::make_unique<core::ControlledAlternatePolicy>();
  return std::make_unique<loss::StickyRandomPolicy>(nodes, 99, false);
}

// Everything one run produces, rendered to comparable form.
struct RunFingerprint {
  scenario::ScenarioRunResult result;
  std::string metrics_json;
  std::vector<std::string> trace_lines;
};

void expect_identical(const RunFingerprint& straight, const RunFingerprint& resumed) {
  const loss::RunResult& a = straight.result.run;
  const loss::RunResult& b = resumed.result.run;
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.carried_primary, b.carried_primary);
  EXPECT_EQ(a.carried_alternate, b.carried_alternate);
  EXPECT_EQ(a.bin_offered, b.bin_offered);
  EXPECT_EQ(a.bin_blocked, b.bin_blocked);
  EXPECT_EQ(a.carried_by_hops, b.carried_by_hops);
  ASSERT_EQ(a.per_pair.size(), b.per_pair.size());
  for (std::size_t i = 0; i < a.per_pair.size(); ++i) {
    EXPECT_EQ(a.per_pair[i].offered, b.per_pair[i].offered) << "pair " << i;
    EXPECT_EQ(a.per_pair[i].blocked, b.per_pair[i].blocked) << "pair " << i;
    EXPECT_EQ(a.per_pair[i].carried_primary, b.per_pair[i].carried_primary) << "pair " << i;
    EXPECT_EQ(a.per_pair[i].carried_alternate, b.per_pair[i].carried_alternate)
        << "pair " << i;
  }
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t i = 0; i < a.per_class.size(); ++i) {
    EXPECT_EQ(a.per_class[i].bandwidth, b.per_class[i].bandwidth);
    EXPECT_EQ(a.per_class[i].offered, b.per_class[i].offered);
    EXPECT_EQ(a.per_class[i].blocked, b.per_class[i].blocked);
  }
  EXPECT_EQ(straight.result.dropped, resumed.result.dropped);
  ASSERT_EQ(straight.result.applied.size(), resumed.result.applied.size());
  for (std::size_t i = 0; i < straight.result.applied.size(); ++i) {
    EXPECT_EQ(straight.result.applied[i].time, resumed.result.applied[i].time);
    EXPECT_EQ(straight.result.applied[i].kind, resumed.result.applied[i].kind);
    EXPECT_EQ(straight.result.applied[i].links_changed, resumed.result.applied[i].links_changed);
    EXPECT_EQ(straight.result.applied[i].calls_killed, resumed.result.applied[i].calls_killed);
  }
  ASSERT_EQ(straight.result.final_links.size(), resumed.result.final_links.size());
  for (std::size_t k = 0; k < straight.result.final_links.size(); ++k) {
    EXPECT_EQ(straight.result.final_links[k].capacity, resumed.result.final_links[k].capacity);
    EXPECT_EQ(straight.result.final_links[k].reservation,
              resumed.result.final_links[k].reservation);
    EXPECT_EQ(straight.result.final_links[k].occupancy,
              resumed.result.final_links[k].occupancy);
    EXPECT_EQ(straight.result.final_links[k].enabled, resumed.result.final_links[k].enabled);
  }
  EXPECT_EQ(straight.metrics_json, resumed.metrics_json);
  ASSERT_EQ(straight.trace_lines.size(), resumed.trace_lines.size());
  for (std::size_t i = 0; i < straight.trace_lines.size(); ++i) {
    ASSERT_EQ(straight.trace_lines[i], resumed.trace_lines[i]) << "trace line " << i;
  }
}

// Captures the checkpoint AND the trace records buffered up to it, the way
// the sweep harness does -- so the resumed stream can be prefixed.
struct CapturingSink final : snapshot::CheckpointSink {
  obs::VectorTraceSink* collector{nullptr};
  std::vector<snapshot::ScenarioCheckpoint> captured;
  std::vector<std::vector<obs::TraceRecord>> prefixes;

  void on_checkpoint(const snapshot::ScenarioCheckpoint& ck) override {
    captured.push_back(ck);
    prefixes.push_back(collector != nullptr ? collector->records
                                            : std::vector<obs::TraceRecord>{});
  }
};

scenario::ScenarioEngineOptions base_engine(const Model& m, bool legacy) {
  scenario::ScenarioEngineOptions engine;
  engine.warmup = 10.0;
  engine.policy_seed = 7;
  engine.time_bins = 8;
  engine.max_alt_hops = m.hops;
  engine.legacy_event_queue = legacy;
  return engine;
}

std::vector<std::string> render(const std::vector<obs::TraceRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const obs::TraceRecord& r : records) lines.push_back(obs::JsonlTraceSink::format(r));
  return lines;
}

// The driver: straight run vs capture-at-T / restore / continue, with full
// observability on both sides.  `capture_legacy` / `resume_legacy` choose
// each phase's queue engine independently.
void expect_golden_invariant(const Model& m, const std::string& policy_kind, double capture_at,
                             bool capture_legacy, bool resume_legacy) {
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 11);
  const int nodes = m.graph.node_count();

  // Straight run (under the RESUME engine, the one whose output the
  // stitched run must reproduce -- engines are bit-identical anyway).
  RunFingerprint straight;
  {
    obs::MetricRegistry registry;
    obs::VectorTraceSink collector;
    obs::Probe probe(&registry, &collector);
    probe.grid(10.0, 1.0, 20);
    scenario::ScenarioEngineOptions engine = base_engine(m, resume_legacy);
    engine.probe = &probe;
    const std::unique_ptr<loss::RoutingPolicy> policy = fresh_policy(policy_kind, nodes);
    straight.result = scenario::run_scenario(m.graph, m.traffic, *policy, trace, m.scen, engine);
    straight.metrics_json = registry.to_json();
    straight.trace_lines = render(collector.records);
  }

  // Capture run: same inputs, a sink at `capture_at`.
  CapturingSink sink;
  obs::VectorTraceSink capture_collector;
  {
    obs::MetricRegistry registry;
    obs::Probe probe(&registry, &capture_collector);
    probe.grid(10.0, 1.0, 20);
    sink.collector = &capture_collector;
    scenario::ScenarioEngineOptions engine = base_engine(m, capture_legacy);
    engine.probe = &probe;
    engine.checkpoint_at = capture_at;
    engine.checkpoints = &sink;
    const std::unique_ptr<loss::RoutingPolicy> policy = fresh_policy(policy_kind, nodes);
    (void)scenario::run_scenario(m.graph, m.traffic, *policy, trace, m.scen, engine);
  }
  ASSERT_EQ(sink.captured.size(), 1u) << m.name << " capture_at=" << capture_at;

  // Resumed run: a FRESH policy (its learning state comes from the blob),
  // fresh obs seeded with the prefix records.
  RunFingerprint resumed;
  {
    obs::MetricRegistry registry;
    obs::VectorTraceSink collector;
    collector.records = sink.prefixes.front();
    obs::Probe probe(&registry, &collector);
    probe.grid(10.0, 1.0, 20);
    scenario::ScenarioEngineOptions engine = base_engine(m, resume_legacy);
    engine.probe = &probe;
    engine.resume = &sink.captured.front();
    const std::unique_ptr<loss::RoutingPolicy> policy = fresh_policy(policy_kind, nodes);
    resumed.result = scenario::run_scenario(m.graph, m.traffic, *policy, trace, m.scen, engine);
    resumed.metrics_json = registry.to_json();
    resumed.trace_lines = render(collector.records);
  }
  expect_identical(straight, resumed);
}

TEST(SnapshotIdentity, QuadrangleControlledBothEngines) {
  const Model m = quadrangle_model();
  for (const bool legacy : {false, true}) {
    expect_golden_invariant(m, "controlled-alt", 30.0, legacy, legacy);
  }
}

TEST(SnapshotIdentity, QuadrangleCrossEngineCaptureAndResume) {
  // Saved under the calendar queue, resumed under the heap -- and the
  // reverse.  The logical (time, seq) multiset is the whole contract.
  const Model m = quadrangle_model();
  expect_golden_invariant(m, "controlled-alt", 30.0, /*capture=*/false, /*resume=*/true);
  expect_golden_invariant(m, "controlled-alt", 30.0, /*capture=*/true, /*resume=*/false);
}

TEST(SnapshotIdentity, QuadrangleStatefulPolicyBlobRestores) {
  // Sticky-random learns per-pair state and owns an RNG; both live in the
  // policy blob, so the stitched run must still match exactly.
  const Model m = quadrangle_model();
  expect_golden_invariant(m, "sticky-random", 30.0, false, false);
  expect_golden_invariant(m, "sticky-random", 30.0, true, true);
}

TEST(SnapshotIdentity, CaptureBoundariesIncludingEventTimes) {
  // Capture right before, exactly at, and right after a scenario event,
  // at the warm-up edge, and past the last arrival (the post-loop path).
  const Model m = quadrangle_model();
  for (const double at : {10.0, 24.9, 25.0, 25.1, 59.9}) {
    expect_golden_invariant(m, "controlled-alt", at, false, false);
  }
}

TEST(SnapshotIdentity, NsfnetControlledBothEnginesAndSticky) {
  const Model m = nsfnet_model();
  expect_golden_invariant(m, "controlled-alt", 22.0, false, false);
  expect_golden_invariant(m, "controlled-alt", 22.0, true, true);
  expect_golden_invariant(m, "sticky-random", 22.0, false, true);
}

TEST(SnapshotIdentity, ForkedBaselineMatchesStraightRun) {
  // fork_runs with the original scenario is exactly "restore and continue":
  // the baseline branch must reproduce the uninterrupted result.
  const Model m = quadrangle_model();
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 11);

  core::ControlledAlternatePolicy straight_policy;
  const scenario::ScenarioRunResult straight = scenario::run_scenario(
      m.graph, m.traffic, straight_policy, trace, m.scen, base_engine(m, false));

  snapshot::BufferCheckpointSink sink;
  scenario::ScenarioEngineOptions capture = base_engine(m, false);
  capture.checkpoint_at = 30.0;
  capture.checkpoints = &sink;
  core::ControlledAlternatePolicy capture_policy;
  (void)scenario::run_scenario(m.graph, m.traffic, capture_policy, trace, m.scen, capture);

  // Two branches: the original future, and a divergent one (extra failure
  // after the capture point) -- the divergent branch must be accepted and
  // must differ, the baseline must match.
  scenario::Scenario divergent = m.scen;
  divergent.events.push_back(scenario::ScenarioEvent::link_fail(50.0, 1, 2));
  core::ControlledAlternatePolicy baseline_policy;
  core::ControlledAlternatePolicy divergent_policy;
  snapshot::ForkOptions options;
  options.engine = base_engine(m, false);
  options.threads = 2;
  const std::vector<snapshot::ForkOutcome> outcomes =
      snapshot::fork_runs(m.graph, m.traffic, trace, sink.captured.front(),
                          {{"baseline", m.scen, &baseline_policy},
                           {"extra-failure", divergent, &divergent_policy}},
                          options);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].result.run.offered, straight.run.offered);
  EXPECT_EQ(outcomes[0].result.run.blocked, straight.run.blocked);
  EXPECT_EQ(outcomes[0].result.run.carried_alternate, straight.run.carried_alternate);
  EXPECT_EQ(outcomes[0].result.dropped, straight.dropped);
  // The extra failure kills in-flight calls the baseline kept.
  EXPECT_EQ(outcomes[1].result.run.offered, straight.run.offered);
  EXPECT_GT(outcomes[1].result.applied.size(), straight.applied.size());
}

TEST(SnapshotIdentity, ResumeValidationIsPointed) {
  const Model m = quadrangle_model();
  const sim::CallTrace trace = scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 11);
  snapshot::BufferCheckpointSink sink;
  scenario::ScenarioEngineOptions capture = base_engine(m, false);
  capture.checkpoint_at = 30.0;
  capture.checkpoints = &sink;
  core::ControlledAlternatePolicy policy;
  (void)scenario::run_scenario(m.graph, m.traffic, policy, trace, m.scen, capture);
  const snapshot::ScenarioCheckpoint& ckpt = sink.captured.front();

  const auto expect_rejects = [&](const net::Graph& graph, const sim::CallTrace& t,
                                  const scenario::Scenario& s,
                                  const scenario::ScenarioEngineOptions& engine,
                                  const char* expected) {
    core::ControlledAlternatePolicy p;
    try {
      (void)scenario::run_scenario(graph, m.traffic, p, t, s, engine);
      FAIL() << "expected rejection: " << expected;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos) << e.what();
    }
  };

  scenario::ScenarioEngineOptions resume = base_engine(m, false);
  resume.resume = &ckpt;

  // Wrong topology (node count).
  expect_rejects(net::full_mesh(5, 40), trace, m.scen, resume, "node count");
  // Wrong trace (different seed -> different length).
  expect_rejects(m.graph, scenario::make_scenario_trace(m.traffic, m.scen, m.horizon, 12),
                 m.scen, resume, "resume checkpoint");
  // A scenario whose PREFIX diverges (an extra event before the capture:
  // the count of already-due events no longer matches what was applied).
  scenario::Scenario early = m.scen;
  early.events.insert(early.events.begin() + 1,
                      scenario::ScenarioEvent::capacity_scale(5.0, 2, 3, 0.9));
  expect_rejects(m.graph, trace, early, resume, "diverges before the checkpoint");
}

}  // namespace
