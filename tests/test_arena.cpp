// Lifetime tests for sim::SlabArena, the scenario runner's call-record
// store.  Run under the sanitizer matrix (ctest label `arena` is wired
// into the address+undefined CI job): handle recycling, generation-stale
// detection, the intrusive order list, and teardown with calls still in
// flight must all be clean under ASan/UBSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "sim/slab_arena.hpp"

namespace sim = altroute::sim;

namespace {

/// A payload with a heap allocation, so leaks and use-after-free surface
/// under ASan rather than going unnoticed in a trivially-copyable int.
struct Call {
  std::vector<int> path;
  std::string tag;
};

using Arena = sim::SlabArena<Call>;

}  // namespace

TEST(SlabArena, AcquireValueReleaseRoundTrip) {
  Arena arena;
  const Arena::Handle h = arena.acquire();
  ASSERT_NE(h, Arena::kInvalid);
  EXPECT_TRUE(arena.alive(h));
  arena.value(h).path = {1, 2, 3};
  arena.value(h).tag = "call-0";
  EXPECT_EQ(arena.size(), 1u);
  arena.release(h);
  EXPECT_FALSE(arena.alive(h));
  EXPECT_EQ(arena.size(), 0u);
}

// The free list recycles slots; a recycled slot gets a NEW generation, so
// the old handle goes permanently stale instead of dangling into the new
// occupant's payload.
TEST(SlabArena, RecycledSlotInvalidatesOldHandle) {
  Arena arena;
  const Arena::Handle first = arena.acquire();
  arena.value(first).tag = "first";
  arena.release(first);

  const Arena::Handle second = arena.acquire();  // reuses the slot
  arena.value(second).tag = "second";
  EXPECT_FALSE(arena.alive(first));
  EXPECT_TRUE(arena.alive(second));
  EXPECT_NE(first, second);  // generations differ even if the index matches
  EXPECT_EQ(arena.value(second).tag, "second");
  arena.release(second);
}

// Releasing through a stale handle must throw, never touch the slot.
TEST(SlabArena, StaleAndDoubleReleaseThrow) {
  Arena arena;
  const Arena::Handle h = arena.acquire();
  arena.release(h);
  EXPECT_THROW(arena.release(h), std::logic_error);  // double release
  const Arena::Handle reuse = arena.acquire();
  EXPECT_THROW(arena.release(h), std::logic_error);  // stale after reuse
  EXPECT_TRUE(arena.alive(reuse));
  arena.release(reuse);
}

// The intrusive order list: oldest()/next() walks in admission order,
// newest()/prev() in reverse, and released elements unlink cleanly from
// the middle of the list.
TEST(SlabArena, OrderListTracksAdmissionOrderAcrossReleases) {
  Arena arena;
  std::vector<Arena::Handle> handles;
  for (int i = 0; i < 8; ++i) {
    const Arena::Handle h = arena.acquire();
    arena.value(h).tag = std::to_string(i);
    handles.push_back(h);
  }
  arena.release(handles[3]);  // middle
  arena.release(handles[0]);  // head
  arena.release(handles[7]);  // tail

  std::vector<std::string> forward;
  for (Arena::Handle h = arena.oldest(); h != Arena::kInvalid; h = arena.next(h)) {
    forward.push_back(arena.value(h).tag);
  }
  EXPECT_EQ(forward, (std::vector<std::string>{"1", "2", "4", "5", "6"}));

  std::vector<std::string> backward;
  for (Arena::Handle h = arena.newest(); h != Arena::kInvalid; h = arena.prev(h)) {
    backward.push_back(arena.value(h).tag);
  }
  EXPECT_EQ(backward, (std::vector<std::string>{"6", "5", "4", "2", "1"}));

  // A re-acquired slot joins at the TAIL (it is the newest admission),
  // regardless of which physical slot it recycled.
  const Arena::Handle reborn = arena.acquire();
  arena.value(reborn).tag = "8";
  EXPECT_EQ(arena.value(arena.newest()).tag, "8");
}

// Steady-state churn at a bounded population never grows the slab: every
// release feeds the free list, every acquire drains it.
TEST(SlabArena, ChurnReusesSlotsWithoutGrowth) {
  Arena arena;
  std::mt19937_64 rng(0xA12E7Au);
  std::vector<Arena::Handle> live;
  for (int i = 0; i < 64; ++i) live.push_back(arena.acquire());
  const std::size_t slots_after_rampup = arena.capacity();
  for (int step = 0; step < 20000; ++step) {
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    const std::size_t victim = pick(rng);
    arena.release(live[victim]);
    live[victim] = arena.acquire();
    arena.value(live[victim]).path.assign(6, step);  // exercise the payload
  }
  EXPECT_EQ(arena.capacity(), slots_after_rampup);
  EXPECT_EQ(arena.size(), 64u);
  for (const Arena::Handle h : live) arena.release(h);
  EXPECT_EQ(arena.size(), 0u);
}

// Teardown with live entries: the arena owns the payloads, so destroying
// it with calls still in flight (the scenario runner's end-of-horizon
// state) must free every vector/string.  ASan's leak checker is the
// assertion here.
TEST(SlabArena, TeardownWithLiveEntriesLeaksNothing) {
  {
    Arena arena;
    for (int i = 0; i < 100; ++i) {
      const Arena::Handle h = arena.acquire();
      arena.value(h).path.assign(16, i);
      arena.value(h).tag = "in-flight-" + std::to_string(i);
      if (i % 3 == 0) arena.release(h);  // mix of live and recycled slots
    }
  }  // arena destroyed with ~66 live entries
  SUCCEED();
}

// clear() releases everything at once and restarts generations safely:
// handles from before the clear are stale, and the arena is reusable.
TEST(SlabArena, ClearInvalidatesAllHandles) {
  Arena arena;
  std::vector<Arena::Handle> old;
  for (int i = 0; i < 10; ++i) old.push_back(arena.acquire());
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.oldest(), Arena::kInvalid);
  for (const Arena::Handle h : old) EXPECT_FALSE(arena.alive(h));
  const Arena::Handle fresh = arena.acquire();
  EXPECT_TRUE(arena.alive(fresh));
  arena.release(fresh);
}

// Handles are unique among the live set at all times, even under heavy
// recycling -- a duplicated handle would let two departures release the
// same call.
TEST(SlabArena, LiveHandlesAlwaysDistinct) {
  Arena arena;
  std::mt19937_64 rng(0x5EEDu);
  std::set<Arena::Handle> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || (rng() & 1)) {
      const Arena::Handle h = arena.acquire();
      EXPECT_TRUE(live.insert(h).second) << "duplicate live handle";
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      arena.release(*it);
      live.erase(it);
    }
  }
  for (const Arena::Handle h : live) arena.release(h);
}
