// Seeded fuzz regression for the two hand-written-input front doors: the
// scenario JSON parser and the checkpoint container/decoder.  Mutated
// inputs must either parse or be rejected with std::invalid_argument --
// never crash, never throw bad_alloc off a hostile length field, never
// leak any other exception type.  The corpus crashers these mutations
// found live on as tests/data/scenario_bad/deep_nesting.json and
// tests/data/ckpt_bad/huge_count.ckpt.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controlled_policy.hpp"
#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "scenario/parse.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"

using namespace altroute;

namespace {

constexpr int kJsonRounds = 600;
constexpr int kSectionRounds = 400;
constexpr int kContainerRounds = 400;

// Applies 1..4 random byte edits (overwrite / insert / erase / truncate).
void mutate(std::string& bytes, sim::Rng& rng) {
  const int edits = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < edits && !bytes.empty(); ++e) {
    const std::size_t at = rng.below(bytes.size());
    switch (rng.below(4)) {
      case 0:
        bytes[at] = static_cast<char>(rng.below(256));
        break;
      case 1:
        bytes.insert(at, 1, static_cast<char>(rng.below(256)));
        break;
      case 2:
        bytes.erase(at, 1);
        break;
      default:
        bytes.resize(at);
        break;
    }
  }
}

scenario::Scenario sample_scenario() {
  scenario::Scenario s;
  s.name = "fuzz base";
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
  s.events.push_back(scenario::ScenarioEvent::link_fail(4.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::capacity_set(5.0, 1, 2, 7));
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(6.0, 0, 2, 0.5));
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(7.0, 1.25));
  s.events.push_back(scenario::ScenarioEvent::link_repair(8.0, 0, 1));
  return s;
}

TEST(ParserFuzz, MutatedScenarioJsonNeverEscapesTheContract) {
  const std::string base = scenario::scenario_to_json(sample_scenario());
  // The unmutated form round-trips -- the fuzz starts from valid input.
  ASSERT_EQ(scenario::scenario_from_json(base).events.size(), 6u);

  sim::Rng rng(20260808, 1);
  int rejected = 0, accepted = 0;
  for (int round = 0; round < kJsonRounds; ++round) {
    std::string mutated = base;
    mutate(mutated, rng);
    try {
      (void)scenario::scenario_from_json(mutated);
      ++accepted;
    } catch (const std::invalid_argument&) {
      ++rejected;  // the ONLY sanctioned failure mode
    }
    // Any other exception type (bad_alloc, length_error, ...) propagates
    // out of the try and fails the test with its own message.
  }
  // Single-byte edits of valid JSON must actually trip the parser.
  EXPECT_GT(rejected, kJsonRounds / 4) << "mutations were not reaching the parser";
  EXPECT_GT(accepted, 0) << "even benign edits (e.g. inside the name) were rejected";
}

TEST(ParserFuzz, DeeplyNestedJsonIsRejectedNotOverflowed) {
  // The in-memory twin of tests/data/scenario_bad/deep_nesting.json: 300
  // unclosed arrays used to recurse the parser off the stack.
  const std::string bomb(300, '[');
  try {
    (void)scenario::scenario_from_json(bomb);
    FAIL() << "nesting bomb was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nested too deeply"), std::string::npos) << e.what();
  }
}

// A real checkpoint captured from a small run -- the fuzz mutates ITS
// serialized form, so every section decoder sees near-valid input.
snapshot::ScenarioCheckpoint sample_checkpoint() {
  const net::Graph graph = net::full_mesh(3, 10);
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(3, 8.0);
  scenario::Scenario scen;
  scen.events.push_back(scenario::ScenarioEvent::link_fail(4.0, 0, 1));
  const sim::CallTrace trace = scenario::make_scenario_trace(traffic, scen, 10.0, 5);
  snapshot::BufferCheckpointSink sink;
  scenario::ScenarioEngineOptions engine;
  engine.warmup = 0.0;
  engine.max_alt_hops = 2;
  engine.checkpoint_at = 6.0;
  engine.checkpoints = &sink;
  core::ControlledAlternatePolicy policy;
  (void)scenario::run_scenario(graph, traffic, policy, trace, scen, engine);
  EXPECT_EQ(sink.captured.size(), 1u);
  return sink.captured.front();
}

TEST(ParserFuzz, MutatedCheckpointSectionsNeverEscapeTheContract) {
  const std::vector<snapshot::Section> sections =
      snapshot::encode_checkpoint(sample_checkpoint());
  // The unmutated sections decode -- the fuzz starts from a valid image.
  ASSERT_NO_THROW((void)snapshot::decode_checkpoint(sections, "fuzz-base"));

  sim::Rng rng(20260808, 2);
  int rejected = 0;
  for (int round = 0; round < kSectionRounds; ++round) {
    std::vector<snapshot::Section> mutated = sections;
    snapshot::Section& target = mutated[rng.below(mutated.size())];
    // Overwrite, truncate, or extend the payload: hostile length fields
    // and truncated arrays are exactly what the count guards exist for.
    if (!target.bytes.empty() && rng.below(2) == 0) {
      const std::size_t at = rng.below(target.bytes.size());
      target.bytes[at] = static_cast<std::uint8_t>(rng.below(256));
    } else if (rng.below(2) == 0) {
      target.bytes.resize(rng.below(target.bytes.size() + 1));
    } else {
      target.bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    try {
      (void)snapshot::decode_checkpoint(mutated, "fuzz");
    } catch (const std::invalid_argument&) {
      ++rejected;  // the ONLY sanctioned failure mode
    }
  }
  EXPECT_GT(rejected, kSectionRounds / 8) << "mutations were not reaching the decoders";
}

TEST(ParserFuzz, MutatedContainerBytesNeverEscapeTheContract) {
  const std::vector<snapshot::Section> sections =
      snapshot::encode_checkpoint(sample_checkpoint());
  const std::vector<std::uint8_t> image = snapshot::render_container(sections);

  sim::Rng rng(20260808, 3);
  int rejected = 0;
  for (int round = 0; round < kContainerRounds; ++round) {
    std::string bytes(image.begin(), image.end());
    mutate(bytes, rng);
    const std::vector<std::uint8_t> mutated(bytes.begin(), bytes.end());
    try {
      const std::vector<snapshot::Section> parsed =
          snapshot::parse_container(mutated, "fuzz-container");
      (void)snapshot::decode_checkpoint(parsed, "fuzz-container");
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  // The CRC table makes nearly every byte edit detectable.
  EXPECT_GT(rejected, kContainerRounds / 2) << "mutations were not reaching the reader";
}

TEST(ParserFuzz, HostileSectionCountIsRejectedNotAllocated) {
  // The in-memory twin of tests/data/ckpt_bad/huge_count.ckpt: a GRPH
  // element count of 2^60 must hit the count guard, not operator new.
  std::vector<snapshot::Section> sections = snapshot::encode_checkpoint(sample_checkpoint());
  for (snapshot::Section& s : sections) {
    if (s.tag != "GRPH") continue;
    ASSERT_GE(s.bytes.size(), 8u);
    const std::uint64_t huge = std::uint64_t{1} << 60;
    for (int b = 0; b < 8; ++b) {
      s.bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((huge >> (8 * b)) & 0xff);
    }
    s.bytes.resize(8);  // the count now promises ~10^18 elements
  }
  try {
    (void)snapshot::decode_checkpoint(sections, "huge");
    FAIL() << "hostile count was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overruns the section"), std::string::npos)
        << e.what();
  }
}

}  // namespace
