// Trace concatenation and the bistability/hysteresis phenomenon the
// paper's control is built to prevent (its refs [1]/[10]/[25]).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace sim = altroute::sim;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;

namespace {

TEST(ConcatenateTraces, ShiftsAndPreservesOrder) {
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 5.0);
  const sim::CallTrace a = sim::generate_trace(t, 20.0, 1);
  const sim::CallTrace b = sim::generate_trace(t, 30.0, 2);
  const sim::CallTrace joined = sim::concatenate_traces(a, b);
  EXPECT_DOUBLE_EQ(joined.horizon, 50.0);
  ASSERT_EQ(joined.size(), a.size() + b.size());
  double prev = 0.0;
  for (const sim::CallRecord& c : joined.calls) {
    EXPECT_GE(c.arrival, prev);
    prev = c.arrival;
  }
  // The b-portion is exactly b shifted by 20.
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(joined.calls[a.size() + i].arrival, b.calls[i].arrival + 20.0);
    EXPECT_DOUBLE_EQ(joined.calls[a.size() + i].holding, b.calls[i].holding);
  }
}

TEST(ConcatenateTraces, Validation) {
  sim::CallTrace empty;
  sim::CallTrace ok;
  ok.horizon = 1.0;
  EXPECT_THROW((void)sim::concatenate_traces(empty, ok), std::invalid_argument);
  EXPECT_THROW((void)sim::concatenate_traces(ok, empty), std::invalid_argument);
}

TEST(Bistability, HotStartTrapsUncontrolledButNotControlled) {
  // Just below the uncontrolled critical load of a 10-node full mesh
  // (C = 120, H = 2), a cold-started network blocks essentially nothing
  // while a network kicked into the overflow regime by a 30-unit overload
  // burst stays stuck there -- the bistability of the paper's refs [10]
  // and [1].  The Eq.-15 control must show no such memory.
  const int n = 10;
  const net::Graph g = net::full_mesh(n, 120);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  const double load = 96.0;
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(n, load);
  const auto reservations = core::protection_levels_from_lambda(
      g, routing::primary_link_loads(g, routes, traffic), 2);

  loss::UncontrolledAlternatePolicy uncontrolled;
  core::ControlledAlternatePolicy controlled;
  double unc_cold = 0.0;
  double unc_hot = 0.0;
  double ctl_cold = 0.0;
  double ctl_hot = 0.0;
  const int seeds = 2;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const sim::CallTrace steady = sim::generate_trace(traffic, 40.0, seed);
    const sim::CallTrace cold = sim::concatenate_traces(
        sim::generate_trace(traffic, 30.0, seed + 2000), steady);
    const sim::CallTrace hot = sim::concatenate_traces(
        sim::generate_trace(traffic.scaled(1.4), 30.0, seed + 1000), steady);
    loss::EngineOptions options;
    options.warmup = 30.0;
    options.link_stats = false;
    unc_cold += loss::run_trace(g, routes, uncontrolled, cold, options).blocking() / seeds;
    unc_hot += loss::run_trace(g, routes, uncontrolled, hot, options).blocking() / seeds;
    options.reservations = reservations;
    ctl_cold += loss::run_trace(g, routes, controlled, cold, options).blocking() / seeds;
    ctl_hot += loss::run_trace(g, routes, controlled, hot, options).blocking() / seeds;
  }
  EXPECT_LT(unc_cold, 0.01);                 // cold: the good regime
  EXPECT_GT(unc_hot, unc_cold + 0.03);       // hot: trapped high -- hysteresis
  EXPECT_LT(ctl_hot - ctl_cold, 0.005);      // control: no memory of the burst
  EXPECT_LT(ctl_hot, 0.01);
}

}  // namespace
