// RNG: determinism, stream independence, distributional sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace sim = altroute::sim;

namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  sim::Rng a(123, 4);
  sim::Rng b(123, 4);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDiffer) {
  sim::Rng a(123, 0);
  sim::Rng b(123, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SeedsDiffer) {
  sim::Rng a(1, 0);
  sim::Rng b(2, 0);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, Uniform01InRangeAndCentered) {
  sim::Rng rng(7, 0);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, Uniform01BucketsAreFlat) {
  sim::Rng rng(11, 0);
  const int buckets = 20;
  const int n = 200000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < n; ++i) {
    ++count[static_cast<std::size_t>(rng.uniform01() * buckets)];
  }
  // Chi-square with 19 df: 99.9th percentile ~= 43.8.
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / buckets;
  for (const int c : count) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 43.8);
}

TEST(Rng, OpenLowNeverReturnsZero) {
  sim::Rng rng(3, 9);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01_open_low();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanAndVariance) {
  sim::Rng rng(21, 0);
  const double rate = 2.5;
  const int n = 400000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0 / rate, 0.005);
  EXPECT_NEAR(variance, 1.0 / (rate * rate), 0.01);
}

TEST(Rng, ExponentialRejectsBadRate) {
  sim::Rng rng(1, 0);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BelowIsUnbiased) {
  sim::Rng rng(5, 2);
  const std::uint64_t n = 7;
  std::vector<int> count(n, 0);
  const int draws = 140000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.below(n);
    ASSERT_LT(v, n);
    ++count[v];
  }
  for (const int c : count) {
    EXPECT_NEAR(static_cast<double>(c), draws / static_cast<double>(n), 600.0);
  }
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

}  // namespace
