// Birth-death machinery: stationary distributions, the generalized Erlang
// blocking function, and the first-passage quantities behind Theorem 1.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "erlang/birth_death.hpp"
#include "erlang/erlang_b.hpp"

namespace e = altroute::erlang;

namespace {

TEST(StationaryDistribution, TwoStateChain) {
  // birth 2, death 3: pi = (3/5, 2/5).
  const auto pi = e::stationary_distribution({2.0}, {3.0});
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(StationaryDistribution, SumsToOneAndNonNegative) {
  const std::vector<double> birth = {3.0, 2.5, 2.0, 1.5, 1.0};
  const std::vector<double> death = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto pi = e::stationary_distribution(birth, death);
  ASSERT_EQ(pi.size(), 6u);
  double total = 0.0;
  for (const double p : pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StationaryDistribution, DetailedBalanceHolds) {
  const std::vector<double> birth = {4.0, 3.0, 5.0, 1.0};
  const std::vector<double> death = {2.0, 2.0, 6.0, 3.0};
  const auto pi = e::stationary_distribution(birth, death);
  for (std::size_t s = 0; s < birth.size(); ++s) {
    EXPECT_NEAR(pi[s] * birth[s], pi[s + 1] * death[s], 1e-12) << s;
  }
}

TEST(StationaryDistribution, SurvivesHugeStateSpacesWithoutOverflow) {
  // M/M/c/c with a = 50, c = 2000: unnormalized weights overflow a double
  // without rescaling.
  std::vector<double> birth(2000, 50.0);
  std::vector<double> death(2000);
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  const auto pi = e::stationary_distribution(birth, death);
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Mode of the Poisson-shaped distribution sits near a = 50.
  EXPECT_GT(pi[50], pi[100]);
  EXPECT_GT(pi[50], pi[10]);
}

TEST(StationaryDistribution, InputValidation) {
  EXPECT_THROW((void)e::stationary_distribution({}, {}), std::invalid_argument);
  EXPECT_THROW((void)e::stationary_distribution({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)e::stationary_distribution({-1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)e::stationary_distribution({1.0}, {0.0}), std::invalid_argument);
}

class GeneralizedErlang : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GeneralizedErlang, ConstantBirthsReduceToErlangB) {
  const auto [a, c] = GetParam();
  const std::vector<double> birth(static_cast<std::size_t>(c), a);
  EXPECT_NEAR(e::generalized_erlang_b(birth), e::erlang_b(a, c), 1e-10)
      << "a=" << a << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Cases, GeneralizedErlang,
                         ::testing::Combine(::testing::Values(0.5, 4.0, 25.0, 110.0),
                                            ::testing::Values(1, 3, 20, 100)));

TEST(GeneralizedErlangB, StateDependentOverflowRaisesBlocking) {
  // Adding overflow traffic in low states can only push the chain higher.
  const int c = 20;
  std::vector<double> plain(static_cast<std::size_t>(c), 10.0);
  std::vector<double> loaded = plain;
  for (std::size_t s = 0; s < 10; ++s) loaded[s] += 5.0;
  EXPECT_GT(e::generalized_erlang_b(loaded), e::generalized_erlang_b(plain));
}

TEST(GeneralizedErlangB, EmptyChainBlocksEverything) {
  EXPECT_DOUBLE_EQ(e::generalized_erlang_b({}), 1.0);
}

TEST(AcceptedArrivals, SingleStateIsOne) {
  // X_{0,1} = 1 always: the first accepted arrival moves 0 -> 1.
  const auto x = e::accepted_arrivals_to_next_state({7.0}, {1.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(AcceptedArrivals, MatchesPaperRecursion) {
  // Eq. 5: X_{s,s+1} = 1 + (s / birth_s) X_{s-1,s} with death rate s.
  const std::vector<double> birth = {5.0, 4.0, 3.0, 2.0};
  std::vector<double> death(birth.size());
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  const auto x = e::accepted_arrivals_to_next_state(birth, death);
  double expected = 1.0;
  EXPECT_DOUBLE_EQ(x[0], expected);
  for (std::size_t s = 1; s < birth.size(); ++s) {
    expected = 1.0 + (static_cast<double>(s) / birth[s]) * expected;
    EXPECT_NEAR(x[s], expected, 1e-12) << s;
  }
}

TEST(AcceptedArrivals, EqualsInverseBlockingOfTheoremChain) {
  // The proof's key identity (Eq. 6): X_{s,s+1} is the inverse blocking of
  // the chain M with births [b_1..b_{s}] appended...  For the CONSTANT
  // birth-rate case M equals an Erlang chain shifted by one state, so
  // X_{s,s+1} = 1 / B(nu, s) exactly.
  const double nu = 9.0;
  std::vector<double> birth(12, nu);
  std::vector<double> death(12);
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  const auto x = e::accepted_arrivals_to_next_state(birth, death);
  for (std::size_t s = 0; s < x.size(); ++s) {
    EXPECT_NEAR(x[s], 1.0 / e::erlang_b(nu, static_cast<int>(s)), 1e-9) << s;
  }
}

TEST(MeanPassageTimeUp, MM1StyleClosedForm) {
  // Birth b, death rates d*s... simplest check: pure birth chain (deaths
  // never fire from state 0) with constant rates: m_0 = 1/b; with death d
  // in state 1: m_1 = (1 + d m_0)/b.
  const auto m = e::mean_passage_time_up({2.0, 4.0}, {3.0, 5.0});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NEAR(m[0], 0.5, 1e-12);
  EXPECT_NEAR(m[1], (1.0 + 3.0 * 0.5) / 4.0, 1e-12);
}

TEST(MeanPassageTimeUp, BoundUsedInTheoremOneProof) {
  // E[tau] <= 1 / (B(lambda_vec, s+1) * nu) when the inter-arrival time is
  // below 1/nu (Eq. 10): verify numerically for an Erlang chain.
  const double nu = 6.0;
  const int c = 15;
  std::vector<double> birth(static_cast<std::size_t>(c), nu);
  std::vector<double> death(static_cast<std::size_t>(c));
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  const auto m = e::mean_passage_time_up(birth, death);
  for (int s = 0; s < c; ++s) {
    const double bound = 1.0 / (e::erlang_b(nu, s + 1) * nu);
    EXPECT_LE(m[static_cast<std::size_t>(s)], bound * (1.0 + 1e-9)) << s;
  }
}

TEST(ProtectedLinkBirths, AppliesOverflowOnlyBelowThreshold) {
  const auto birth = e::protected_link_births(3.0, {1.0, 1.0, 1.0, 1.0, 1.0}, 5, 2);
  // C = 5, r = 2: overflow admitted in states 0..2 only.
  ASSERT_EQ(birth.size(), 5u);
  EXPECT_DOUBLE_EQ(birth[0], 4.0);
  EXPECT_DOUBLE_EQ(birth[1], 4.0);
  EXPECT_DOUBLE_EQ(birth[2], 4.0);
  EXPECT_DOUBLE_EQ(birth[3], 3.0);
  EXPECT_DOUBLE_EQ(birth[4], 3.0);
}

TEST(ProtectedLinkBirths, ShortOverflowVectorTreatedAsZeros) {
  const auto birth = e::protected_link_births(2.0, {5.0}, 4, 0);
  EXPECT_DOUBLE_EQ(birth[0], 7.0);
  EXPECT_DOUBLE_EQ(birth[1], 2.0);
  EXPECT_DOUBLE_EQ(birth[2], 2.0);
  EXPECT_DOUBLE_EQ(birth[3], 2.0);
}

TEST(ProtectedLinkBirths, Validation) {
  EXPECT_THROW((void)e::protected_link_births(-1.0, {}, 5, 0), std::invalid_argument);
  EXPECT_THROW((void)e::protected_link_births(1.0, {}, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)e::protected_link_births(1.0, {}, 5, 6), std::invalid_argument);
  EXPECT_THROW((void)e::protected_link_births(1.0, {-2.0}, 5, 0), std::invalid_argument);
}

}  // namespace
