// Kaufman-Roberts multi-rate blocking and the exact reservation chain.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/kaufman_roberts.hpp"

namespace e = altroute::erlang;

namespace {

TEST(KaufmanRoberts, SingleUnitClassReducesToErlangB) {
  for (const double a : {0.5, 5.0, 25.0, 120.0}) {
    for (const int c : {1, 10, 100}) {
      const auto blocking = e::kaufman_roberts_blocking({{a, 1}}, c);
      ASSERT_EQ(blocking.size(), 1u);
      EXPECT_NEAR(blocking[0], e::erlang_b(a, c), 1e-10) << "a=" << a << " c=" << c;
    }
  }
}

TEST(KaufmanRoberts, DistributionNormalizedAndNonNegative) {
  const auto q = e::kaufman_roberts_distribution({{10.0, 1}, {3.0, 4}}, 50);
  ASSERT_EQ(q.size(), 51u);
  double total = 0.0;
  for (const double value : q) {
    EXPECT_GE(value, 0.0);
    total += value;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(KaufmanRoberts, WideCallsAsSingleClassMatchScaledErlang) {
  // One class of b-unit calls on a C-unit link is an Erlang system with
  // C/b servers when b divides C.
  const auto blocking = e::kaufman_roberts_blocking({{7.0, 5}}, 50);
  EXPECT_NEAR(blocking[0], e::erlang_b(7.0, 10), 1e-10);
}

TEST(KaufmanRoberts, WiderClassBlocksMore) {
  const auto blocking = e::kaufman_roberts_blocking({{8.0, 1}, {2.0, 4}, {1.0, 8}}, 30);
  ASSERT_EQ(blocking.size(), 3u);
  EXPECT_LT(blocking[0], blocking[1]);
  EXPECT_LT(blocking[1], blocking[2]);
}

TEST(KaufmanRoberts, ExactBruteForceCrossCheck) {
  // Two classes on a tiny link: compare against the reservation chain with
  // zero reservation (which solves the full 2-D Markov chain exactly;
  // with r = 0 it must agree with product-form Kaufman-Roberts).
  const std::vector<e::RateClass> classes = {{2.0, 1}, {1.0, 3}};
  const auto kr = e::kaufman_roberts_blocking(classes, 8);
  const auto exact = e::multirate_reservation_blocking(classes, 8, {0, 0});
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_NEAR(kr[0], exact[0], 1e-8);
  EXPECT_NEAR(kr[1], exact[1], 1e-8);
}

TEST(KaufmanRoberts, HeavyLoadStability) {
  // Enormous offered load must not overflow the recursion.
  const auto blocking = e::kaufman_roberts_blocking({{1e6, 1}, {1e5, 10}}, 200);
  EXPECT_GT(blocking[0], 0.99);
  EXPECT_LE(blocking[1], 1.0);
}

TEST(KaufmanRoberts, Validation) {
  EXPECT_THROW((void)e::kaufman_roberts_blocking({}, 10), std::invalid_argument);
  EXPECT_THROW((void)e::kaufman_roberts_blocking({{1.0, 0}}, 10), std::invalid_argument);
  EXPECT_THROW((void)e::kaufman_roberts_blocking({{-1.0, 1}}, 10), std::invalid_argument);
  EXPECT_THROW((void)e::kaufman_roberts_blocking({{1.0, 1}}, -1), std::invalid_argument);
}

TEST(ReservationChain, ProtectsTheFavoredClass) {
  // Reserving against the wide class lowers the narrow class's blocking
  // and raises the wide class's, relative to no reservation.
  const std::vector<e::RateClass> classes = {{4.0, 1}, {1.5, 3}};
  const auto plain = e::multirate_reservation_blocking(classes, 10, {0, 0});
  const auto guarded = e::multirate_reservation_blocking(classes, 10, {0, 3});
  EXPECT_LT(guarded[0], plain[0]);
  EXPECT_GT(guarded[1], plain[1]);
}

TEST(ReservationChain, FullReservationShutsAClassOut) {
  const std::vector<e::RateClass> classes = {{3.0, 1}, {1.0, 2}};
  const auto blocking = e::multirate_reservation_blocking(classes, 6, {0, 6});
  EXPECT_NEAR(blocking[1], 1.0, 1e-9);
  // With class 2 shut out, class 1 behaves like a pure Erlang system.
  EXPECT_NEAR(blocking[0], e::erlang_b(3.0, 6), 1e-6);
}

TEST(ReservationChain, Validation) {
  EXPECT_THROW((void)e::multirate_reservation_blocking({{1.0, 1}}, 5, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)e::multirate_reservation_blocking({{1.0, 1}}, 5, {6}),
               std::invalid_argument);
}

}  // namespace
