// The checker's case universe: generate_case must be deterministic in its
// seed, every generated spec must validate and materialize, the corpus
// must actually cover the interesting axes (all three policies, events of
// several kinds, warmed and cold runs), and the case.json codec must
// round-trip bit-exactly -- a dumped artifact that replays a DIFFERENT
// case would make every shrunk repro worthless.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <string>

#include "check/case.hpp"
#include "check/oracle.hpp"

using namespace altroute;

namespace {

constexpr int kCorpus = 300;  // seeds sampled by the statistics tests

std::uint64_t seed_of(int index) {
  return check::case_seed(42, static_cast<std::uint64_t>(index));
}

TEST(CheckGenerator, DeterministicInTheSeed) {
  for (int i = 0; i < 25; ++i) {
    const check::CaseSpec a = check::generate_case(seed_of(i));
    const check::CaseSpec b = check::generate_case(seed_of(i));
    EXPECT_EQ(check::case_to_json(a), check::case_to_json(b)) << "seed " << a.seed;
  }
}

TEST(CheckGenerator, EveryGeneratedSpecValidatesAndMaterializes) {
  for (int i = 0; i < kCorpus; ++i) {
    const check::CaseSpec spec = check::generate_case(seed_of(i));
    ASSERT_NO_THROW(spec.validate()) << "seed " << spec.seed;
    EXPECT_GE(spec.nodes, 2);
    EXPECT_LE(spec.nodes, 8);
    // The ring guarantees connectivity: n facilities for n >= 3, one for 2.
    EXPECT_GE(spec.facilities.size(), spec.nodes == 2 ? 1u : static_cast<std::size_t>(spec.nodes));
    EXPECT_EQ(spec.demands.size(),
              static_cast<std::size_t>(spec.nodes) * static_cast<std::size_t>(spec.nodes));
    EXPECT_GT(spec.horizon, spec.warmup);

    const net::Graph graph = spec.graph();
    EXPECT_EQ(graph.node_count(), spec.nodes);
    EXPECT_EQ(graph.link_count(), static_cast<int>(2 * spec.facilities.size()));
    const sim::CallTrace trace = spec.trace();
    EXPECT_NO_THROW((void)spec.scenario());
    EXPECT_NE(spec.make_policy(), nullptr);
    if (!spec.reservations().empty()) {
      EXPECT_EQ(spec.reservations().size(), static_cast<std::size_t>(graph.link_count()));
    }
    (void)trace;
  }
}

TEST(CheckGenerator, CorpusCoversTheInterestingAxes) {
  std::set<check::PolicyChoice> policies;
  std::set<scenario::EventKind> event_kinds;
  int with_events = 0, warmed = 0, binned = 0, protected_cases = 0, auto_resolved = 0;
  int control_cases = 0, ewma_cases = 0, deadbanded = 0, stepped = 0, dar_trunkless = 0;
  for (int i = 0; i < kCorpus; ++i) {
    const check::CaseSpec spec = check::generate_case(seed_of(i));
    policies.insert(spec.policy);
    for (const scenario::ScenarioEvent& e : spec.events) event_kinds.insert(e.kind);
    if (!spec.events.empty()) ++with_events;
    if (spec.warmup > 0.0) ++warmed;
    if (spec.time_bins > 0) ++binned;
    if (spec.protect) ++protected_cases;
    if (spec.auto_resolve) ++auto_resolved;
    if (spec.control_on()) {
      ++control_cases;
      if (spec.control_estimator == 1) ++ewma_cases;
      if (spec.control_deadband > 0.0) ++deadbanded;
      if (spec.control_max_step > 0) ++stepped;
    }
    if (spec.policy == check::PolicyChoice::kDar && spec.dar_trunk == 0) ++dar_trunkless;
    EXPECT_GE(spec.resume_at, 0.0) << "every case exercises the resume oracle";
  }
  EXPECT_EQ(policies.size(), 4u) << "all four routing schemes must appear";
  EXPECT_EQ(event_kinds.size(), 6u) << "all six event kinds must appear";
  EXPECT_GT(with_events, kCorpus / 2);
  EXPECT_GT(warmed, kCorpus / 8);
  EXPECT_LT(warmed, kCorpus);  // cold runs keep the occupancy model active
  EXPECT_GT(binned, kCorpus / 8);
  EXPECT_GT(protected_cases, kCorpus / 4);
  EXPECT_GT(auto_resolved, kCorpus / 16);
  // The adaptive control plane and DAR must both be exercised, including
  // their interesting sub-axes (EWMA estimator, hysteresis knobs, the
  // trunk=0 sticky-random degeneration) -- but neither may take over the
  // corpus: control-off and non-DAR cases guard the pre-control engine.
  EXPECT_GT(control_cases, kCorpus / 8);
  EXPECT_LT(control_cases, kCorpus / 2);
  EXPECT_GT(ewma_cases, kCorpus / 32);
  EXPECT_GT(deadbanded, kCorpus / 32);
  EXPECT_GT(stepped, kCorpus / 32);
  EXPECT_GT(dar_trunkless, 0);
}

TEST(CheckGenerator, CaseSeedStreamsAreStableAndSpread) {
  // The corpus seed schedule must not depend on corpus size (so a failure
  // at --cases 2000 replays at any size) and must not collide trivially.
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < kCorpus; ++i) {
    EXPECT_EQ(check::case_seed(7, static_cast<std::uint64_t>(i)),
              check::case_seed(7, static_cast<std::uint64_t>(i)));
    seeds.insert(check::case_seed(7, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(seeds.size(), static_cast<std::size_t>(kCorpus));
}

TEST(CheckGenerator, CaseJsonRoundTripsBitExactly) {
  for (int i = 0; i < 50; ++i) {
    const check::CaseSpec spec = check::generate_case(seed_of(i));
    const std::string json = check::case_to_json(spec);
    const check::CaseSpec back = check::case_from_json(json);
    EXPECT_EQ(check::case_to_json(back), json) << "seed " << spec.seed;
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.trace_seed, spec.trace_seed);
    EXPECT_EQ(back.policy_seed, spec.policy_seed);
    EXPECT_EQ(back.policy, spec.policy);
    EXPECT_EQ(back.demands, spec.demands);  // %.17g: bit-exact doubles
    EXPECT_EQ(back.horizon, spec.horizon);
    EXPECT_EQ(back.resume_at, spec.resume_at);
    EXPECT_EQ(back.events.size(), spec.events.size());
  }
}

TEST(CheckGenerator, LoadCaseReadsWhatDumpArtifactsWrote) {
  const check::CaseSpec spec = check::generate_case(seed_of(3));
  const std::string dir = ::testing::TempDir() + "check_gen_artifacts";
  check::dump_case_artifacts(dir, spec, {"synthetic failure for the bundle"});

  const check::CaseSpec back = check::load_case(dir + "/case.json");
  EXPECT_EQ(check::case_to_json(back), check::case_to_json(spec));
  // The bundle carries the human-facing repro pieces too.
  EXPECT_TRUE(std::ifstream(dir + "/network.txt").good());
  EXPECT_TRUE(std::ifstream(dir + "/traffic.txt").good());
  EXPECT_TRUE(std::ifstream(dir + "/scenario.json").good());
  EXPECT_TRUE(std::ifstream(dir + "/repro.txt").good());
}

TEST(CheckGenerator, MalformedCaseJsonIsRejectedPointedly) {
  const auto expect_rejects = [](const std::string& json, const char* expected) {
    try {
      (void)check::case_from_json(json);
      FAIL() << "accepted: " << json;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos) << e.what();
    }
  };
  expect_rejects("[]", "object");
  expect_rejects(R"({"format": 2})", "format");
  const check::CaseSpec spec = check::generate_case(seed_of(0));
  std::string json = check::case_to_json(spec);
  // A seed rendered as a JSON number would round through a double; the
  // schema demands a decimal string.
  const std::string needle = "\"seed\": \"" + std::to_string(spec.seed) + "\"";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos) << json.substr(0, 200);
  json.replace(at, needle.size(), "\"seed\": 12");
  expect_rejects(json, "seed");
}

}  // namespace
