// Online Lambda estimation extension: convergence to the a-priori scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "erlang/state_protection.hpp"
#include "loss/engine.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace core = altroute::core;
namespace loss = altroute::loss;
namespace routing = altroute::routing;
namespace sim = altroute::sim;

namespace {

TEST(AdaptivePolicy, OptionValidation) {
  const net::Graph g = net::full_mesh(3, 10);
  core::AdaptiveOptions bad;
  bad.window = 0.0;
  EXPECT_THROW((void)core::AdaptiveControlledPolicy(g, bad), std::invalid_argument);
  bad = {};
  bad.ewma_weight = 0.0;
  EXPECT_THROW((void)core::AdaptiveControlledPolicy(g, bad), std::invalid_argument);
  bad = {};
  bad.ewma_weight = 1.5;
  EXPECT_THROW((void)core::AdaptiveControlledPolicy(g, bad), std::invalid_argument);
  bad = {};
  bad.max_alt_hops = 0;
  EXPECT_THROW((void)core::AdaptiveControlledPolicy(g, bad), std::invalid_argument);
  bad = {};
  bad.initial_lambda = -1.0;
  EXPECT_THROW((void)core::AdaptiveControlledPolicy(g, bad), std::invalid_argument);
}

TEST(AdaptivePolicy, InitialReservationsComeFromInitialLambda) {
  const net::Graph g = net::full_mesh(3, 100);
  core::AdaptiveOptions options;
  options.initial_lambda = 74.0;
  options.max_alt_hops = 6;
  const core::AdaptiveControlledPolicy policy(g, options);
  for (const int r : policy.reservations()) {
    EXPECT_EQ(r, 7);  // Table 1: lambda 74, C 100, H 6 -> r 7
  }
}

TEST(AdaptivePolicy, LambdaEstimatesConvergeToTrueDemand) {
  // Quadrangle at 20 E/pair: every primary is the 1-hop direct link, so
  // the true Lambda on every link is 20.
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 20.0);
  const sim::CallTrace trace = sim::generate_trace(t, 400.0, 31);
  core::AdaptiveOptions options;
  options.window = 5.0;
  options.ewma_weight = 0.3;
  core::AdaptiveControlledPolicy policy(g, options);
  loss::EngineOptions engine;
  engine.warmup = 10.0;
  engine.link_stats = false;
  (void)loss::run_trace(g, routes, policy, trace, engine);
  for (const double lambda : policy.lambda_estimates()) {
    EXPECT_NEAR(lambda, 20.0, 3.0);
  }
  // Converged thresholds match the a-priori computation within +-1 (the
  // estimate hovers around the truth).
  const int expected = altroute::erlang::min_state_protection(20.0, 100, 6);
  for (const int r : policy.reservations()) {
    EXPECT_NEAR(static_cast<double>(r), static_cast<double>(expected), 1.0);
  }
}

TEST(AdaptivePolicy, BlockingComparableToAPrioriControlled) {
  // With converged estimates the adaptive scheme should perform within
  // noise of the a-priori controlled scheme (the robustness property that
  // justifies local estimation).
  const net::Graph g = net::full_mesh(4, 50);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 45.0);
  core::Controller controller(g, t, core::ControllerConfig{3});
  const sim::CallTrace trace = sim::generate_trace(t, 210.0, 77);

  core::ControlledAlternatePolicy apriori;
  const loss::RunResult fixed = controller.run(apriori, trace);

  core::AdaptiveOptions options;
  options.max_alt_hops = 3;
  core::AdaptiveControlledPolicy adaptive(g, options);
  loss::EngineOptions engine;
  engine.link_stats = false;
  const loss::RunResult learned = loss::run_trace(g, controller.routes(), adaptive, trace, engine);

  EXPECT_NEAR(learned.blocking(), fixed.blocking(), 0.03);
}

}  // namespace
