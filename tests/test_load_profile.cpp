// Time-varying load: profiles, thinned trace generation, engine time bins.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/load_profile.hpp"

namespace net = altroute::net;
namespace sim = altroute::sim;
namespace loss = altroute::loss;
namespace routing = altroute::routing;

namespace {

TEST(LoadProfile, PiecewiseLookup) {
  const sim::LoadProfile p({0.0, 10.0, 25.0}, {1.0, 2.5, 0.5});
  EXPECT_DOUBLE_EQ(p.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(10.0), 2.5);
  EXPECT_DOUBLE_EQ(p.factor_at(24.0), 2.5);
  EXPECT_DOUBLE_EQ(p.factor_at(25.0), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(1e9), 0.5);  // last segment extends
  EXPECT_DOUBLE_EQ(p.max_factor(), 2.5);
}

TEST(LoadProfile, PeriodicWraps) {
  const sim::LoadProfile p({0.0, 5.0}, {1.0, 3.0}, /*periodic=*/true, /*period=*/10.0);
  EXPECT_DOUBLE_EQ(p.factor_at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(7.0), 3.0);
  EXPECT_DOUBLE_EQ(p.factor_at(12.0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(17.0), 3.0);
  EXPECT_DOUBLE_EQ(p.mean_factor(), 2.0);
}

TEST(LoadProfile, ConstantAndDiurnal) {
  EXPECT_DOUBLE_EQ(sim::LoadProfile::constant(1.7).factor_at(42.0), 1.7);
  const sim::LoadProfile d = sim::LoadProfile::diurnal(24.0, 0.5, 1.5, 24);
  // Trough near t = 0, peak near t = 12.
  EXPECT_LT(d.factor_at(0.5), 0.6);
  EXPECT_GT(d.factor_at(12.0), 1.4);
  EXPECT_NEAR(d.mean_factor(), 1.0, 0.01);
  EXPECT_LE(d.max_factor(), 1.5);
  // One full period later the value repeats.
  EXPECT_DOUBLE_EQ(d.factor_at(3.0), d.factor_at(27.0));
}

TEST(LoadProfile, Validation) {
  EXPECT_THROW((void)sim::LoadProfile({}, {}), std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile({0.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile({0.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile({0.0, 5.0}, {1.0, 1.0}, true, 4.0),
               std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile::diurnal(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)sim::LoadProfile::diurnal(10.0, 2.0, 1.0), std::invalid_argument);
}

TEST(ProfiledTrace, RateTracksTheProfile) {
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 20.0);
  const sim::LoadProfile p({0.0, 100.0}, {0.5, 2.0});
  const sim::CallTrace trace = sim::generate_profiled_trace(t, p, 200.0, 5);
  long long first_half = 0;
  long long second_half = 0;
  for (const sim::CallRecord& c : trace.calls) {
    (c.arrival < 100.0 ? first_half : second_half) += 1;
  }
  EXPECT_NEAR(static_cast<double>(first_half), 20.0 * 0.5 * 100.0, 150.0);
  EXPECT_NEAR(static_cast<double>(second_half), 20.0 * 2.0 * 100.0, 400.0);
}

TEST(ProfiledTrace, ConstantProfileMatchesHomogeneousRate) {
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(3, 4.0);
  const sim::CallTrace trace =
      sim::generate_profiled_trace(t, sim::LoadProfile::constant(1.0), 300.0, 9);
  EXPECT_NEAR(static_cast<double>(trace.size()), 6 * 4.0 * 300.0, 0.05 * 6 * 4.0 * 300.0);
  double prev = 0.0;
  for (const sim::CallRecord& c : trace.calls) {
    EXPECT_GE(c.arrival, prev);
    prev = c.arrival;
  }
}

TEST(ProfiledTrace, ZeroProfileGivesEmptyTrace) {
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(3, 4.0);
  const sim::CallTrace trace =
      sim::generate_profiled_trace(t, sim::LoadProfile::constant(0.0), 50.0, 1);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(EngineTimeBins, ConservationAndLoadShape) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 12.0);
  const sim::LoadProfile p({0.0, 105.0}, {0.25, 1.5});
  const sim::CallTrace trace = sim::generate_profiled_trace(t, p, 200.0, 3);
  loss::SinglePathPolicy policy;
  loss::EngineOptions options;
  options.warmup = 10.0;
  options.time_bins = 10;  // 19-unit bins over [10, 200)
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);
  ASSERT_EQ(run.bin_offered.size(), 10u);
  long long offered = 0;
  long long blocked = 0;
  for (std::size_t b = 0; b < 10; ++b) {
    offered += run.bin_offered[b];
    blocked += run.bin_blocked[b];
    EXPECT_LE(run.bin_blocked[b], run.bin_offered[b]) << b;
  }
  EXPECT_EQ(offered, run.offered);
  EXPECT_EQ(blocked, run.blocked);
  // The load steps up at t = 105 (bin 5): later bins see far more traffic
  // and far more blocking than early ones.
  EXPECT_GT(run.bin_offered[8], 3 * run.bin_offered[2]);
  EXPECT_GT(run.bin_blocked[8], run.bin_blocked[2]);
}

}  // namespace
