// Regression tests for the r* memo-invalidation bug class.
//
// The Erlang memo caches each link's inverse Erlang-B sequence keyed on
// its (Lambda, C) pair.  The latent-bug class this file pins down: a
// scenario operation changes a link's capacity or demand, and a stale
// cached table keeps answering with the OLD r* -- silently mis-protecting
// the link for the rest of the run.  Invalidation is by key comparison,
// so every test drives a real mutation path (compounding capacity_scale,
// repair-after-fail, traffic_scale, no-op events) and asserts the memo's
// answer equals a from-scratch erlang::min_state_protection at the
// CURRENT operating point.
#include <gtest/gtest.h>

#include <vector>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "core/protection.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/memo.hpp"
#include "erlang/state_protection.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "scenario/runner.hpp"
#include "sim/call_trace.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace core = altroute::core;
namespace erlang = altroute::erlang;
namespace routing = altroute::routing;
namespace scenario = altroute::scenario;
namespace sim = altroute::sim;

namespace {

constexpr int kH = 4;

/// Ground truth at an operating point: the direct Eq.-15 scan.
int direct_rstar(double lambda, int capacity) {
  return erlang::min_state_protection(lambda, capacity, kH);
}

}  // namespace

// --- unit level: the memo's key discipline --------------------------------

TEST(RstarInvalidation, ConfigureRebuildsExactlyOnKeyChange) {
  erlang::LinkErlangMemo memo;
  EXPECT_TRUE(memo.configure(12.0, 20));   // fresh: rebuild
  EXPECT_FALSE(memo.configure(12.0, 20));  // same key: cached
  EXPECT_TRUE(memo.configure(12.0, 10));   // capacity changed: rebuild
  EXPECT_TRUE(memo.configure(6.0, 10));    // lambda changed: rebuild
  EXPECT_FALSE(memo.configure(6.0, 10));
  EXPECT_TRUE(memo.configure(12.0, 20));   // back to the first key: the memo
                                           // keeps ONE table, so this rebuilds
  EXPECT_EQ(memo.r_star(kH), direct_rstar(12.0, 20));
}

TEST(RstarInvalidation, CapacityChangeNeverServesStaleRstar) {
  erlang::LinkErlangMemo memo;
  // A capacity walk that revisits values: every answer must match the
  // direct computation at the CURRENT capacity, not any earlier one.
  for (const int capacity : {20, 10, 20, 5, 40, 20, 10}) {
    memo.configure(12.0, capacity);
    EXPECT_EQ(memo.r_star(kH), direct_rstar(12.0, capacity)) << "C=" << capacity;
    EXPECT_EQ(memo.blocking(), erlang::erlang_b(12.0, capacity)) << "C=" << capacity;
  }
}

TEST(RstarInvalidation, LambdaChangeNeverServesStaleRstar) {
  erlang::LinkErlangMemo memo;
  for (const double lambda : {15.0, 3.0, 15.0, 0.0, 22.5, 15.0}) {
    memo.configure(lambda, 18);
    EXPECT_EQ(memo.r_star(kH), direct_rstar(lambda, 18)) << "lambda=" << lambda;
  }
}

TEST(RstarInvalidation, RstarHCacheInvalidatesWithHAndWithKey) {
  erlang::LinkErlangMemo memo;
  memo.configure(14.0, 16);
  EXPECT_EQ(memo.r_star(3), erlang::min_state_protection(14.0, 16, 3));
  // Different H against the same table: the per-H cache must not leak.
  EXPECT_EQ(memo.r_star(9), erlang::min_state_protection(14.0, 16, 9));
  EXPECT_EQ(memo.r_star(3), erlang::min_state_protection(14.0, 16, 3));
  // Key change must also drop the cached (H, r*) pair.
  memo.configure(14.0, 8);
  EXPECT_EQ(memo.r_star(3), erlang::min_state_protection(14.0, 8, 3));
}

TEST(RstarInvalidation, ExplicitInvalidateForcesRebuild) {
  erlang::LinkErlangMemo memo;
  memo.configure(10.0, 12);
  memo.invalidate();
  EXPECT_FALSE(memo.configured());
  EXPECT_TRUE(memo.configure(10.0, 12));  // identical key still rebuilds
  EXPECT_EQ(memo.r_star(kH), direct_rstar(10.0, 12));
}

TEST(RstarInvalidation, NetworkMemoRebuildCountTracksChangedLinksOnly) {
  erlang::NetworkErlangMemo memo;
  EXPECT_EQ(memo.configure({5.0, 7.0, 9.0}, {10, 10, 10}), 3u);
  EXPECT_EQ(memo.configure({5.0, 7.0, 9.0}, {10, 10, 10}), 0u);
  EXPECT_EQ(memo.configure({5.0, 7.0, 9.0}, {10, 4, 10}), 1u);  // one capacity event
  EXPECT_EQ(memo.configure({5.0, 8.4, 9.0}, {10, 4, 10}), 1u);  // one demand change
  EXPECT_EQ(memo.protection_levels(kH),
            erlang::state_protection_levels({5.0, 8.4, 9.0}, {10, 4, 10}, kH));
}

// --- system level: scenario operations ------------------------------------

namespace {

/// Quadrangle fixture under moderate load with a controlled policy; the
/// scenario runner resolves protection automatically after every event.
struct ScenarioFixture {
  ScenarioFixture()
      : graph(net::full_mesh(4, 20)),
        traffic(net::TrafficMatrix::uniform(4, 14.0)),
        trace(sim::generate_trace(traffic, 40.0, 77)) {}

  scenario::ScenarioRunResult run(const scenario::Scenario& s, bool memoize) {
    scenario::ScenarioEngineOptions options;
    options.warmup = 5.0;
    options.max_alt_hops = kH;
    options.auto_resolve_protection = true;
    options.memoize_protection = memoize;
    core::ControlledAlternatePolicy policy;
    return scenario::run_scenario(graph, traffic, policy, trace, s, options);
  }

  /// Expected final reservations, recomputed from scratch on the final
  /// (topology, capacities, traffic factor).
  std::vector<int> expected_final_levels(const net::Graph& final_graph, double traffic_factor) {
    const routing::RouteTable routes = routing::build_min_hop_routes(final_graph, kH);
    return core::protection_levels(final_graph, routes, traffic.scaled(traffic_factor), kH);
  }

  net::Graph graph;
  net::TrafficMatrix traffic;
  sim::CallTrace trace;
};

}  // namespace

// Compounding capacity_scale: two scales of the same facility (x0.5 then
// x1.5) compound multiplicatively.  A memo that stays keyed to the first
// scaled capacity -- or to the original -- produces wrong final levels.
TEST(RstarInvalidation, CompoundingCapacityScaleResolvesAtCurrentCapacity) {
  ScenarioFixture fx;
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(10.0, 0, 1, 0.5));
  s.events.push_back(scenario::ScenarioEvent::capacity_scale(20.0, 0, 1, 1.5));

  const scenario::ScenarioRunResult memoized = fx.run(s, /*memoize=*/true);
  const scenario::ScenarioRunResult direct = fx.run(s, /*memoize=*/false);

  // 20 -> 10 -> 15 on both directions of facility (0,1).
  net::Graph final_graph = fx.graph;
  for (const net::LinkId id : final_graph.duplex_links(net::NodeId(0), net::NodeId(1))) {
    final_graph.set_link_capacity(id, 15);
  }
  const std::vector<int> expected = fx.expected_final_levels(final_graph, 1.0);
  ASSERT_EQ(memoized.final_links.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(memoized.final_links[k].reservation, expected[k]) << "link " << k;
    EXPECT_EQ(direct.final_links[k].reservation, expected[k]) << "link " << k;
    EXPECT_EQ(memoized.final_links[k].capacity, direct.final_links[k].capacity);
  }
}

// Repair-after-fail: the failure re-routes demand (Lambda changes on the
// survivors), the repair restores it.  The memo must rebuild on BOTH
// transitions; a stale post-failure table would leave the repaired network
// with failure-era protection levels.
TEST(RstarInvalidation, RepairAfterFailRestoresNominalLevels) {
  ScenarioFixture fx;
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::link_fail(10.0, 0, 1));
  s.events.push_back(scenario::ScenarioEvent::link_repair(25.0, 0, 1));

  const scenario::ScenarioRunResult memoized = fx.run(s, /*memoize=*/true);
  const scenario::ScenarioRunResult direct = fx.run(s, /*memoize=*/false);

  // After the repair the topology (and factor 1.0 traffic) is nominal, so
  // the final levels must equal the nominal Eq.-15 solution.
  const std::vector<int> expected = fx.expected_final_levels(fx.graph, 1.0);
  ASSERT_EQ(memoized.final_links.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(memoized.final_links[k].reservation, expected[k]) << "link " << k;
    EXPECT_EQ(direct.final_links[k].reservation, expected[k]) << "link " << k;
    EXPECT_TRUE(memoized.final_links[k].enabled);
  }
}

// traffic_scale changes every link's Lambda with no topology change -- the
// pure lambda-key invalidation path.
TEST(RstarInvalidation, TrafficScaleRebuildsAllLevels) {
  ScenarioFixture fx;
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::traffic_scale(12.0, 1.5));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(12.0));

  const scenario::ScenarioRunResult memoized = fx.run(s, /*memoize=*/true);
  const scenario::ScenarioRunResult direct = fx.run(s, /*memoize=*/false);

  const std::vector<int> expected = fx.expected_final_levels(fx.graph, 1.5);
  ASSERT_EQ(memoized.final_links.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(memoized.final_links[k].reservation, expected[k]) << "link " << k;
    EXPECT_EQ(direct.final_links[k].reservation, expected[k]) << "link " << k;
  }
  // The scale must actually have changed something, or this test is vacuous.
  EXPECT_NE(expected, fx.expected_final_levels(fx.graph, 1.0));
}

// A capacity_set to the current value changes nothing; the memo may keep
// every table, but the resolved levels must still be the nominal ones.
TEST(RstarInvalidation, NoOpCapacitySetKeepsLevelsCorrect) {
  ScenarioFixture fx;
  scenario::Scenario s;
  s.events.push_back(scenario::ScenarioEvent::capacity_set(10.0, 0, 1, 20));  // already 20

  const scenario::ScenarioRunResult memoized = fx.run(s, /*memoize=*/true);
  const std::vector<int> expected = fx.expected_final_levels(fx.graph, 1.0);
  ASSERT_EQ(memoized.final_links.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(memoized.final_links[k].reservation, expected[k]) << "link " << k;
  }
}

// Controller::retarget shares the same memo machinery: a retarget sweep
// up and back down must land on the original levels, not a stale mix.
TEST(RstarInvalidation, ControllerRetargetRoundTrip) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = altroute::study::nsfnet_nominal_traffic();
  core::ControllerConfig config;
  config.max_alt_hops = 6;
  core::Controller controller(g, nominal, config);
  const std::vector<int> at_nominal = controller.reservations();

  controller.retarget(nominal.scaled(1.3));
  const std::vector<int> at_high = controller.reservations();
  EXPECT_NE(at_nominal, at_high);  // the sweep must move the levels

  controller.retarget(nominal);
  EXPECT_EQ(controller.reservations(), at_nominal);
}
