// Wilkinson/Riordan overflow moments, Hayward blocking, Rapp's fit, and
// the batch-means analyzer.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "erlang/overflow_moments.hpp"
#include "sim/batch_means.hpp"
#include "sim/rng.hpp"

namespace e = altroute::erlang;
namespace sim = altroute::sim;

namespace {

TEST(OverflowMoments, ZeroCircuitsPassesThePoissonStreamThrough) {
  // Overflow of a 0-circuit group IS the offered stream: mean a, Z = 1.
  const auto m = e::overflow_moments(7.0, 0);
  EXPECT_NEAR(m.mean, 7.0, 1e-12);
  EXPECT_NEAR(m.peakedness, 1.0, 1e-12);
  EXPECT_NEAR(m.variance, 7.0, 1e-12);
}

TEST(OverflowMoments, OverflowIsPeaked) {
  for (const double a : {5.0, 20.0, 80.0}) {
    for (const int c : {1, 10, 50}) {
      const auto m = e::overflow_moments(a, c);
      EXPECT_NEAR(m.mean, a * e::erlang_b(a, c), 1e-12) << a << " " << c;
      EXPECT_GT(m.peakedness, 1.0) << a << " " << c;
    }
  }
}

TEST(OverflowMoments, PeakednessGrowsThenShrinksInCapacity) {
  // Z is known to peak near c ~ a and approach 1 for c >> a (almost
  // nothing overflows) -- check the qualitative shape at a = 20.
  const double a = 20.0;
  const double z_small = e::overflow_moments(a, 2).peakedness;
  const double z_match = e::overflow_moments(a, 20).peakedness;
  const double z_large = e::overflow_moments(a, 60).peakedness;
  EXPECT_GT(z_match, z_small);
  EXPECT_GT(z_match, z_large);
}

TEST(OverflowMoments, Validation) {
  EXPECT_THROW((void)e::overflow_moments(-1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)e::overflow_moments(1.0, -1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(e::overflow_moments(0.0, 5).mean, 0.0);
}

TEST(Hayward, PoissonReducesToErlangB) {
  for (const double a : {3.0, 15.0, 60.0}) {
    for (const int c : {5, 20, 80}) {
      EXPECT_NEAR(e::hayward_blocking(a, 1.0, c), e::erlang_b(a, c), 1e-7)
          << a << " " << c;
    }
  }
}

TEST(Hayward, PeakedTrafficBlocksMore) {
  for (const double z : {1.5, 2.0, 3.0}) {
    EXPECT_GT(e::hayward_blocking(20.0, z, 30), e::erlang_b(20.0, 30)) << z;
  }
  EXPECT_THROW((void)e::hayward_blocking(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(e::hayward_blocking(0.0, 2.0, 5), 0.0);
}

TEST(Rapp, RoundTripsRiordanMoments) {
  // Moments of a known overflow -> Rapp fit -> recompute moments from the
  // fitted (a*, c*) rounded to the nearest integer circuit count: means
  // should agree within a few percent (Rapp is an approximation).
  const auto m = e::overflow_moments(25.0, 20);
  const auto eq = e::rapp_equivalent(m.mean, m.variance);
  EXPECT_NEAR(eq.offered, 25.0, 0.15 * 25.0);
  EXPECT_NEAR(eq.circuits, 20.0, 0.15 * 20.0 + 1.0);
  const auto back = e::overflow_moments(eq.offered, static_cast<int>(eq.circuits + 0.5));
  EXPECT_NEAR(back.mean, m.mean, 0.08 * m.mean + 0.05);
}

TEST(Rapp, Validation) {
  EXPECT_THROW((void)e::rapp_equivalent(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)e::rapp_equivalent(2.0, 1.0), std::invalid_argument);
}

TEST(BatchMeans, IidSeriesCiCoversTheMean) {
  sim::Rng rng(3, 0);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.exponential(0.5));  // mean 2
  const sim::BatchMeansResult r = sim::batch_means(data, 20);
  EXPECT_EQ(r.batches, 20u);
  EXPECT_NEAR(r.mean, 2.0, 0.1);
  EXPECT_GT(r.ci95_halfwidth, 0.0);
  EXPECT_LE(std::abs(r.mean - 2.0), 3.0 * r.ci95_halfwidth + 0.02);
  EXPECT_LT(std::abs(r.lag1_autocorrelation), 0.5);
}

TEST(BatchMeans, CorrelatedSeriesFlagsItself) {
  // Strongly positively correlated observations with SHORT batches leave
  // visible lag-1 autocorrelation in the batch means.
  sim::Rng rng(9, 0);
  std::vector<double> data;
  double x = 0.0;
  for (int i = 0; i < 4000; ++i) {
    x = 0.999 * x + rng.uniform01() - 0.5;
    data.push_back(x);
  }
  const sim::BatchMeansResult r = sim::batch_means(data, 200);  // 20-obs batches
  EXPECT_GT(r.lag1_autocorrelation, 0.5);
}

TEST(BatchMeans, Validation) {
  EXPECT_THROW((void)sim::batch_means({1.0, 2.0, 3.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)sim::batch_means({1.0}, 2), std::invalid_argument);
}

}  // namespace
