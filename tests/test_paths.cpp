// Path construction and shortest-path / path-enumeration algorithms.
#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <stdexcept>
#include <utility>

#include "netgraph/topologies.hpp"
#include "routing/path.hpp"
#include "routing/shortest_paths.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;

namespace {

std::vector<net::NodeId> ids(std::initializer_list<int> values) {
  std::vector<net::NodeId> out;
  for (const int v : values) out.emplace_back(v);
  return out;
}

TEST(MakePath, ResolvesLinks) {
  const net::Graph g = net::full_mesh(4, 10);
  const routing::Path p = routing::make_path(g, ids({0, 2, 3}));
  EXPECT_EQ(p.hops(), 2);
  EXPECT_EQ(p.origin(), net::NodeId(0));
  EXPECT_EQ(p.destination(), net::NodeId(3));
  EXPECT_EQ(g.link(p.links[0]).dst, net::NodeId(2));
  EXPECT_EQ(g.link(p.links[1]).dst, net::NodeId(3));
}

TEST(MakePath, RejectsBadSequences) {
  net::Graph g = net::ring(4, 10);
  EXPECT_THROW((void)routing::make_path(g, ids({0})), std::invalid_argument);
  EXPECT_THROW((void)routing::make_path(g, ids({0, 2})), std::invalid_argument);  // no link
  EXPECT_THROW((void)routing::make_path(g, ids({0, 1, 0})), std::invalid_argument);  // loop
  g.fail_duplex(net::NodeId(0), net::NodeId(1));
  EXPECT_THROW((void)routing::make_path(g, ids({0, 1})), std::invalid_argument);  // disabled
}

TEST(PathOrder, HopsThenLexicographic) {
  const net::Graph g = net::full_mesh(4, 10);
  const routing::Path direct = routing::make_path(g, ids({0, 3}));
  const routing::Path via1 = routing::make_path(g, ids({0, 1, 3}));
  const routing::Path via2 = routing::make_path(g, ids({0, 2, 3}));
  EXPECT_TRUE(routing::path_order(direct, via1));
  EXPECT_TRUE(routing::path_order(via1, via2));
  EXPECT_FALSE(routing::path_order(via2, via1));
  EXPECT_FALSE(routing::path_order(via1, via1));
}

TEST(HopDistances, RingDistances) {
  const net::Graph g = net::ring(6, 10);
  const auto dist = routing::hop_distances_to(g, net::NodeId(0));
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(HopDistances, UnreachableIsMinusOne) {
  net::Graph g(3);
  g.add_link(net::NodeId(0), net::NodeId(1), 5);
  const auto dist = routing::hop_distances_to(g, net::NodeId(1));
  EXPECT_EQ(dist[0], 1);
  EXPECT_EQ(dist[2], -1);
}

TEST(MinHopPath, UniqueLexicographicTieBreak) {
  // 0 -> 3 via 1 or via 2, both 2 hops: the unique primary must go via 1.
  const net::Graph g = net::full_mesh(4, 10);
  const auto p = routing::min_hop_path(g, net::NodeId(0), net::NodeId(3));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 1);  // direct link exists in a full mesh
  net::Graph sparse(4);
  sparse.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  sparse.add_duplex(net::NodeId(0), net::NodeId(2), 5);
  sparse.add_duplex(net::NodeId(1), net::NodeId(3), 5);
  sparse.add_duplex(net::NodeId(2), net::NodeId(3), 5);
  const auto q = routing::min_hop_path(sparse, net::NodeId(0), net::NodeId(3));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->nodes, ids({0, 1, 3}));
}

TEST(MinHopPath, RespectsFailuresAndUnreachable) {
  net::Graph g = net::ring(4, 10);
  g.fail_duplex(net::NodeId(0), net::NodeId(1));
  const auto p = routing::min_hop_path(g, net::NodeId(0), net::NodeId(1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, ids({0, 3, 2, 1}));
  g.fail_duplex(net::NodeId(0), net::NodeId(3));
  EXPECT_FALSE(routing::min_hop_path(g, net::NodeId(0), net::NodeId(1)).has_value());
  EXPECT_THROW((void)routing::min_hop_path(g, net::NodeId(0), net::NodeId(0)),
               std::invalid_argument);
}

TEST(WeightedShortestPath, PrefersCheapDetour) {
  // Triangle where the direct link is expensive.
  net::Graph g(3);
  const net::LinkId direct = g.add_link(net::NodeId(0), net::NodeId(2), 5);
  g.add_link(net::NodeId(0), net::NodeId(1), 5);
  g.add_link(net::NodeId(1), net::NodeId(2), 5);
  std::vector<double> w = {10.0, 1.0, 1.0};
  const auto p = routing::weighted_shortest_path(g, net::NodeId(0), net::NodeId(2), w);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, ids({0, 1, 2}));
  w[direct.index()] = 1.5;
  const auto q = routing::weighted_shortest_path(g, net::NodeId(0), net::NodeId(2), w);
  EXPECT_EQ(q->nodes, ids({0, 2}));
}

TEST(WeightedShortestPath, UnitWeightsMatchMinHop) {
  const net::Graph g = net::nsfnet_t3();
  const std::vector<double> w(static_cast<std::size_t>(g.link_count()), 1.0);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      const auto a = routing::min_hop_path(g, net::NodeId(i), net::NodeId(j));
      const auto b = routing::weighted_shortest_path(g, net::NodeId(i), net::NodeId(j), w);
      ASSERT_TRUE(a && b);
      EXPECT_EQ(a->nodes, b->nodes) << i << "->" << j;
    }
  }
}

TEST(WeightedShortestPath, Validation) {
  const net::Graph g = net::ring(4, 10);
  const std::vector<double> short_w(3, 1.0);
  EXPECT_THROW(
      (void)routing::weighted_shortest_path(g, net::NodeId(0), net::NodeId(1), short_w),
      std::invalid_argument);
  std::vector<double> neg(static_cast<std::size_t>(g.link_count()), 1.0);
  neg[0] = -1.0;
  EXPECT_THROW((void)routing::weighted_shortest_path(g, net::NodeId(0), net::NodeId(1), neg),
               std::invalid_argument);
}

TEST(AllSimplePaths, FullMeshCountsAreFactorialSums) {
  // K4, 0 -> 3: 1 direct, 2 two-hop, 2 three-hop = 5 simple paths.
  const net::Graph g = net::full_mesh(4, 10);
  const auto all = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(3), 3);
  EXPECT_EQ(all.size(), 5u);
  const auto two = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(3), 2);
  EXPECT_EQ(two.size(), 3u);
  const auto one = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(3), 1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(AllSimplePaths, OrderedByHopsThenLexicographic) {
  const net::Graph g = net::full_mesh(4, 10);
  const auto all = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(3), 3);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(routing::path_order(all[i - 1], all[i])) << i;
  }
  EXPECT_EQ(all[0].nodes, ids({0, 3}));
  EXPECT_EQ(all[1].nodes, ids({0, 1, 3}));
  EXPECT_EQ(all[2].nodes, ids({0, 2, 3}));
  EXPECT_EQ(all[3].nodes, ids({0, 1, 2, 3}));
  EXPECT_EQ(all[4].nodes, ids({0, 2, 1, 3}));
}

TEST(AllSimplePaths, EveryPathIsSimpleAndTerminatesCorrectly) {
  const net::Graph g = net::nsfnet_t3();
  const auto all = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(6), 11);
  EXPECT_GE(all.size(), 5u);
  for (const routing::Path& p : all) {
    EXPECT_EQ(p.origin(), net::NodeId(0));
    EXPECT_EQ(p.destination(), net::NodeId(6));
    std::set<net::NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "revisits a node";
    EXPECT_LE(p.hops(), 11);
  }
}

TEST(AllSimplePaths, MaxPathsCapHonored) {
  const net::Graph g = net::full_mesh(5, 10);
  const auto capped = routing::all_simple_paths(g, net::NodeId(0), net::NodeId(4), 4, 3);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(KShortestPaths, MatchesExhaustiveEnumerationOnNsfnet) {
  const net::Graph g = net::nsfnet_t3();
  for (const auto& [src, dst] : {std::pair{0, 6}, {2, 9}, {11, 3}}) {
    const auto exhaustive =
        routing::all_simple_paths(g, net::NodeId(src), net::NodeId(dst), 11);
    const auto yen = routing::k_shortest_paths(g, net::NodeId(src), net::NodeId(dst), 6);
    ASSERT_GE(exhaustive.size(), yen.size());
    for (std::size_t k = 0; k < yen.size(); ++k) {
      EXPECT_EQ(yen[k].nodes, exhaustive[k].nodes) << src << "->" << dst << " k=" << k;
    }
  }
}

TEST(KShortestPaths, StopsWhenGraphRunsOut) {
  const net::Graph g = net::ring(4, 10);
  // Exactly two simple paths between any ring pair.
  const auto paths = routing::k_shortest_paths(g, net::NodeId(0), net::NodeId(2), 10);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_EQ(routing::k_shortest_paths(g, net::NodeId(0), net::NodeId(2), 0).size(), 0u);
}

TEST(KShortestPaths, FirstPathIsMinHop) {
  const net::Graph g = net::nsfnet_t3();
  for (int j = 1; j < 12; ++j) {
    const auto yen = routing::k_shortest_paths(g, net::NodeId(0), net::NodeId(j), 3);
    const auto direct = routing::min_hop_path(g, net::NodeId(0), net::NodeId(j));
    ASSERT_FALSE(yen.empty());
    EXPECT_EQ(yen[0].nodes, direct->nodes) << j;
  }
}

}  // namespace
