// Graph substrate: construction, adjacency, failures, connectivity, DOT.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "netgraph/dot.hpp"
#include "netgraph/graph.hpp"
#include "netgraph/topologies.hpp"

namespace net = altroute::net;

namespace {

TEST(Ids, DefaultIdsAreInvalid) {
  EXPECT_FALSE(net::NodeId{}.valid());
  EXPECT_FALSE(net::LinkId{}.valid());
  EXPECT_TRUE(net::NodeId(0).valid());
  EXPECT_TRUE(net::LinkId(3).valid());
}

TEST(Graph, AddNodesAndLinks) {
  net::Graph g;
  const net::NodeId a = g.add_node("a");
  const net::NodeId b = g.add_node("b");
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.node_name(a), "a");
  const net::LinkId l = g.add_link(a, b, 7);
  EXPECT_EQ(g.link_count(), 1);
  EXPECT_EQ(g.link(l).capacity, 7);
  EXPECT_EQ(g.link(l).src, a);
  EXPECT_EQ(g.link(l).dst, b);
  EXPECT_TRUE(g.link(l).enabled);
}

TEST(Graph, AnonymousConstructorNamesNodes) {
  const net::Graph g(3);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.node_name(net::NodeId(2)), "n2");
}

TEST(Graph, RejectsBadLinks) {
  net::Graph g(2);
  EXPECT_THROW((void)g.add_link(net::NodeId(0), net::NodeId(0), 5), std::invalid_argument);
  EXPECT_THROW((void)g.add_link(net::NodeId(0), net::NodeId(1), 0), std::invalid_argument);
  EXPECT_THROW((void)g.add_link(net::NodeId(0), net::NodeId(5), 5), std::invalid_argument);
  EXPECT_THROW((void)g.add_link(net::NodeId{}, net::NodeId(1), 5), std::invalid_argument);
}

TEST(Graph, DuplexCreatesOppositePair) {
  net::Graph g(2);
  const auto [fwd, rev] = g.add_duplex(net::NodeId(0), net::NodeId(1), 9);
  EXPECT_EQ(g.link(fwd).src, net::NodeId(0));
  EXPECT_EQ(g.link(rev).src, net::NodeId(1));
  EXPECT_EQ(g.link(fwd).capacity, g.link(rev).capacity);
}

TEST(Graph, OutAndInLinks) {
  net::Graph g(3);
  g.add_link(net::NodeId(0), net::NodeId(1), 1);
  g.add_link(net::NodeId(0), net::NodeId(2), 1);
  g.add_link(net::NodeId(1), net::NodeId(0), 1);
  EXPECT_EQ(g.out_links(net::NodeId(0)).size(), 2u);
  EXPECT_EQ(g.in_links(net::NodeId(0)).size(), 1u);
  EXPECT_EQ(g.out_links(net::NodeId(2)).size(), 0u);
}

TEST(Graph, FindLinkSkipsDisabled) {
  net::Graph g(2);
  const net::LinkId l = g.add_link(net::NodeId(0), net::NodeId(1), 4);
  EXPECT_TRUE(g.find_link(net::NodeId(0), net::NodeId(1)).has_value());
  g.set_link_enabled(l, false);
  EXPECT_FALSE(g.find_link(net::NodeId(0), net::NodeId(1)).has_value());
  g.set_link_enabled(l, true);
  EXPECT_TRUE(g.find_link(net::NodeId(0), net::NodeId(1)).has_value());
}

TEST(Graph, FailDuplexDisablesBothDirections) {
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 4);
  g.add_duplex(net::NodeId(1), net::NodeId(2), 4);
  EXPECT_EQ(g.fail_duplex(net::NodeId(0), net::NodeId(1)), 2);
  EXPECT_FALSE(g.find_link(net::NodeId(0), net::NodeId(1)).has_value());
  EXPECT_FALSE(g.find_link(net::NodeId(1), net::NodeId(0)).has_value());
  EXPECT_TRUE(g.find_link(net::NodeId(1), net::NodeId(2)).has_value());
  // Idempotent: already-disabled links are not counted again.
  EXPECT_EQ(g.fail_duplex(net::NodeId(0), net::NodeId(1)), 0);
}

TEST(Graph, FailDuplexRejectsNonexistentFacility) {
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 4);
  // No edge between 0 and 2 at all: a clear error, not a silent no-op.
  EXPECT_THROW((void)g.fail_duplex(net::NodeId(0), net::NodeId(2)), std::invalid_argument);
  EXPECT_THROW((void)g.repair_duplex(net::NodeId(0), net::NodeId(2)), std::invalid_argument);
  EXPECT_THROW((void)g.duplex_links(net::NodeId(0), net::NodeId(2)), std::invalid_argument);
  EXPECT_THROW((void)g.fail_duplex(net::NodeId(0), net::NodeId(7)), std::invalid_argument);
}

TEST(Graph, RepairDuplexReenablesBothDirections) {
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 4);
  EXPECT_EQ(g.fail_duplex(net::NodeId(0), net::NodeId(1)), 2);
  EXPECT_EQ(g.repair_duplex(net::NodeId(1), net::NodeId(0)), 2);  // order-insensitive
  EXPECT_TRUE(g.find_link(net::NodeId(0), net::NodeId(1)).has_value());
  EXPECT_TRUE(g.find_link(net::NodeId(1), net::NodeId(0)).has_value());
  // Idempotent, like fail_duplex.
  EXPECT_EQ(g.repair_duplex(net::NodeId(0), net::NodeId(1)), 0);
}

TEST(Graph, DuplexLinksReturnsBothDirections) {
  net::Graph g(3);
  const auto [fwd, rev] = g.add_duplex(net::NodeId(0), net::NodeId(1), 4);
  const std::vector<net::LinkId> links = g.duplex_links(net::NodeId(1), net::NodeId(0));
  ASSERT_EQ(links.size(), 2u);
  EXPECT_TRUE((links[0] == fwd && links[1] == rev) || (links[0] == rev && links[1] == fwd));
}

TEST(Graph, SetLinkCapacityValidates) {
  net::Graph g(2);
  const net::LinkId l = g.add_link(net::NodeId(0), net::NodeId(1), 4);
  g.set_link_capacity(l, 9);
  EXPECT_EQ(g.link(l).capacity, 9);
  EXPECT_THROW(g.set_link_capacity(l, 0), std::invalid_argument);
  EXPECT_THROW(g.set_link_capacity(net::LinkId(5), 3), std::invalid_argument);
}

TEST(Graph, NeighborsDeduplicatedAndSorted) {
  net::Graph g(4);
  g.add_link(net::NodeId(0), net::NodeId(3), 1);
  g.add_link(net::NodeId(0), net::NodeId(1), 1);
  g.add_link(net::NodeId(0), net::NodeId(3), 2);  // parallel link
  const auto nb = g.neighbors(net::NodeId(0));
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], net::NodeId(1));
  EXPECT_EQ(nb[1], net::NodeId(3));
}

TEST(Graph, StrongConnectivity) {
  net::Graph g(3);
  g.add_link(net::NodeId(0), net::NodeId(1), 1);
  g.add_link(net::NodeId(1), net::NodeId(2), 1);
  EXPECT_FALSE(g.strongly_connected());
  g.add_link(net::NodeId(2), net::NodeId(0), 1);
  EXPECT_TRUE(g.strongly_connected());
}

TEST(Graph, StrongConnectivityRespectsFailures) {
  net::Graph g = net::ring(5, 10);
  EXPECT_TRUE(g.strongly_connected());
  g.fail_duplex(net::NodeId(0), net::NodeId(1));
  // A failed duplex leaves a line graph: still strongly connected via the
  // other direction around the ring.
  EXPECT_TRUE(g.strongly_connected());
  g.fail_duplex(net::NodeId(2), net::NodeId(3));
  EXPECT_FALSE(g.strongly_connected());
}

TEST(Graph, CapacityBetweenSumsParallelEnabledLinks) {
  net::Graph g(2);
  const net::LinkId a = g.add_link(net::NodeId(0), net::NodeId(1), 4);
  g.add_link(net::NodeId(0), net::NodeId(1), 6);
  EXPECT_EQ(g.capacity_between(net::NodeId(0), net::NodeId(1)), 10);
  g.set_link_enabled(a, false);
  EXPECT_EQ(g.capacity_between(net::NodeId(0), net::NodeId(1)), 6);
  EXPECT_EQ(g.capacity_between(net::NodeId(1), net::NodeId(0)), 0);
}

TEST(Dot, CollapsesDuplexPairsAndMarksFailures) {
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  const net::LinkId one_way = g.add_link(net::NodeId(1), net::NodeId(2), 3);
  g.set_link_enabled(one_way, false);
  const std::string dot = net::to_dot(g, "t");
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);  // collapsed
  EXPECT_NE(dot.find("dir=forward"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, AdjacencyTextListsEveryNode) {
  const net::Graph g = net::nsfnet_t3();
  const std::string text = net::to_adjacency_text(g);
  for (int i = 0; i < 12; ++i) {
    EXPECT_NE(text.find(std::string(g.node_name(net::NodeId(i)))), std::string::npos) << i;
  }
}

}  // namespace
