// Controller facade: wiring of routes -> Lambda -> protection levels.
#include <gtest/gtest.h>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "erlang/state_protection.hpp"
#include "netgraph/topologies.hpp"
#include "routing/minloss.hpp"
#include "sim/call_trace.hpp"

namespace net = altroute::net;
namespace core = altroute::core;
namespace routing = altroute::routing;
namespace sim = altroute::sim;

namespace {

TEST(Controller, QuadrangleWiring) {
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 74.0);
  const core::Controller controller(g, t, core::ControllerConfig{3});
  // Direct primaries: every link's Lambda equals its pair demand.
  for (const double lambda : controller.primary_loads()) {
    EXPECT_DOUBLE_EQ(lambda, 74.0);
  }
  const int expected_r = altroute::erlang::min_state_protection(74.0, 100, 3);
  for (const int r : controller.reservations()) EXPECT_EQ(r, expected_r);
  EXPECT_EQ(controller.max_alt_hops(), 3);
}

TEST(Controller, RetargetTracksScaledLoad) {
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 50.0);
  core::Controller controller(g, t, core::ControllerConfig{3});
  const std::vector<int> at50 = controller.reservations();
  controller.retarget(t.scaled(1.8));  // 90 E / pair
  const std::vector<int> at90 = controller.reservations();
  for (std::size_t k = 0; k < at50.size(); ++k) {
    EXPECT_DOUBLE_EQ(controller.primary_loads()[k], 90.0);
    EXPECT_GT(at90[k], at50[k]) << k;
  }
}

TEST(Controller, EngineOptionsCarryReservations) {
  const net::Graph g = net::full_mesh(4, 100);
  const core::Controller controller(g, net::TrafficMatrix::uniform(4, 80.0),
                                    core::ControllerConfig{3});
  const auto options = controller.engine_options(10.0, 42);
  EXPECT_EQ(options.reservations, controller.reservations());
  EXPECT_DOUBLE_EQ(options.warmup, 10.0);
  EXPECT_EQ(options.policy_seed, 42u);
}

TEST(Controller, LinkReportMirrorsGraphAndLevels) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 2.0);
  const core::Controller controller(g, t, core::ControllerConfig{6});
  const auto report = controller.link_report();
  ASSERT_EQ(report.size(), 30u);
  for (const core::LinkReport& row : report) {
    EXPECT_EQ(row.capacity, 100);
    EXPECT_EQ(row.lambda, controller.primary_loads()[row.link.index()]);
    EXPECT_EQ(row.reservation, controller.reservations()[row.link.index()]);
    EXPECT_EQ(g.link(row.link).src, row.src);
    EXPECT_EQ(g.link(row.link).dst, row.dst);
  }
}

TEST(Controller, RunAppliesLevels) {
  const net::Graph g = net::full_mesh(4, 30);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 33.0);
  const core::Controller controller(g, t, core::ControllerConfig{3});
  core::ControlledAlternatePolicy policy;
  const sim::CallTrace trace = sim::generate_trace(t, 60.0, 4);
  const auto result = controller.run(policy, trace);
  EXPECT_GT(result.offered, 0);
  EXPECT_EQ(result.offered, result.blocked + result.carried_primary + result.carried_alternate);
}

TEST(Controller, PerLinkHVariantNeverReservesMore) {
  // A ring's longest loop-free path is 3 links, so a sloppy global H = 8
  // over-reserves; the footnote-5 config recovers the slack through the
  // same facade.
  const net::Graph g = net::ring(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 25.0);
  core::ControllerConfig global;
  global.max_alt_hops = 8;
  core::ControllerConfig local = global;
  local.per_link_h = true;
  const core::Controller a(g, t, global);
  const core::Controller b(g, t, local);
  for (std::size_t k = 0; k < a.reservations().size(); ++k) {
    EXPECT_LT(b.reservations()[k], a.reservations()[k]) << k;
    EXPECT_EQ(b.reservations()[k],
              altroute::erlang::min_state_protection(b.primary_loads()[k], 100, 3))
        << k;
  }
}

TEST(Controller, AcceptsExternalRouteTable) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 6.0);
  routing::MinLossOptions minloss;
  minloss.max_alt_hops = 6;
  const routing::MinLossResult optimized = routing::optimize_min_loss_primaries(g, t, minloss);
  const core::Controller controller(g, t, optimized.routes, core::ControllerConfig{6});
  // Lambda from bifurcated primaries still sums to total hop-weighted load.
  double total_lambda = 0.0;
  for (const double l : controller.primary_loads()) total_lambda += l;
  EXPECT_GT(total_lambda, t.total());  // multi-hop primaries count per hop
}

}  // namespace
