// Simulation engine: analytic cross-checks and accounting invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/controlled_policy.hpp"
#include "erlang/erlang_b.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;
namespace sim = altroute::sim;

namespace {

// Two nodes, one duplex link: the 0->1 direction is an M/M/C/C system.
struct SingleLinkFixture {
  SingleLinkFixture(int capacity, double offered) : graph(2) {
    graph.add_duplex(net::NodeId(0), net::NodeId(1), capacity);
    routes = routing::build_min_hop_routes(graph, 1);
    traffic = net::TrafficMatrix(2);
    traffic.set(net::NodeId(0), net::NodeId(1), offered);
  }
  net::Graph graph;
  routing::RouteTable routes;
  net::TrafficMatrix traffic;
};

TEST(Engine, SingleLinkBlockingMatchesErlangB) {
  // M/M/10/10 at 7 Erlangs: B = 7.87e-2.  Average 20 seeds of 100 units.
  SingleLinkFixture fx(10, 7.0);
  loss::SinglePathPolicy policy;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(fx.traffic, 110.0, seed);
    const loss::RunResult run = loss::run_trace(fx.graph, fx.routes, policy, trace, {});
    blocking.add(run.blocking());
  }
  const double analytic = altroute::erlang::erlang_b(7.0, 10);
  EXPECT_NEAR(blocking.mean(), analytic, 3.0 * blocking.stderr_mean() + 0.005);
}

TEST(Engine, SingleLinkHeavyLoadMatchesErlangB) {
  SingleLinkFixture fx(10, 15.0);
  loss::SinglePathPolicy policy;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(fx.traffic, 110.0, seed);
    blocking.add(loss::run_trace(fx.graph, fx.routes, policy, trace, {}).blocking());
  }
  EXPECT_NEAR(blocking.mean(), altroute::erlang::erlang_b(15.0, 10),
              3.0 * blocking.stderr_mean() + 0.01);
}

TEST(Engine, ConservationOfferedEqualsCarriedPlusBlocked) {
  const net::Graph g = net::full_mesh(4, 20);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 25.0);
  const sim::CallTrace trace = sim::generate_trace(t, 60.0, 7);
  loss::UncontrolledAlternatePolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, {});
  EXPECT_EQ(run.offered, run.blocked + run.carried_primary + run.carried_alternate);
  long long pair_offered = 0;
  long long pair_blocked = 0;
  for (const loss::PairCounters& pc : run.per_pair) {
    pair_offered += pc.offered;
    pair_blocked += pc.blocked;
    EXPECT_EQ(pc.offered, pc.blocked + pc.carried_primary + pc.carried_alternate);
  }
  EXPECT_EQ(pair_offered, run.offered);
  EXPECT_EQ(pair_blocked, run.blocked);
  EXPECT_GT(run.offered, 0);
}

TEST(Engine, WarmupCallsExcludedFromCounters) {
  SingleLinkFixture fx(5, 3.0);
  loss::SinglePathPolicy policy;
  const sim::CallTrace trace = sim::generate_trace(fx.traffic, 50.0, 3);
  loss::EngineOptions options;
  options.warmup = 25.0;
  const loss::RunResult run = loss::run_trace(fx.graph, fx.routes, policy, trace, options);
  long long expected = 0;
  for (const sim::CallRecord& c : trace.calls) {
    if (c.arrival >= 25.0) ++expected;
  }
  EXPECT_EQ(run.offered, expected);
}

TEST(Engine, DeterministicAcrossRuns) {
  const net::Graph g = net::full_mesh(4, 30);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 28.0), 80.0, 11);
  core::ControlledAlternatePolicy policy;
  loss::EngineOptions options;
  options.reservations.assign(static_cast<std::size_t>(g.link_count()), 2);
  const loss::RunResult a = loss::run_trace(g, routes, policy, trace, options);
  const loss::RunResult b = loss::run_trace(g, routes, policy, trace, options);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.carried_alternate, b.carried_alternate);
  EXPECT_EQ(a.mean_link_occupancy, b.mean_link_occupancy);
}

TEST(Engine, MeanOccupancyMatchesCarriedLoadOnSingleLink) {
  // Little's law on the 0->1 link: time-average occupancy equals the
  // carried load (accepted calls per unit time x unit mean holding).
  SingleLinkFixture fx(10, 6.0);
  loss::SinglePathPolicy policy;
  const sim::CallTrace trace = sim::generate_trace(fx.traffic, 210.0, 5);
  loss::EngineOptions options;
  options.warmup = 10.0;
  const loss::RunResult run = loss::run_trace(fx.graph, fx.routes, policy, trace, options);
  const double carried_rate =
      static_cast<double>(run.carried_primary) / (trace.horizon - options.warmup);
  ASSERT_EQ(run.mean_link_occupancy.size(), 2u);
  EXPECT_NEAR(run.mean_link_occupancy[0], carried_rate, 0.35);
  EXPECT_DOUBLE_EQ(run.mean_link_occupancy[1], 0.0);  // reverse direction idle
}

TEST(Engine, PrimaryLossesAttributedToFirstBlockingLink) {
  SingleLinkFixture fx(2, 40.0);  // tiny link, heavy load: plenty of blocking
  loss::SinglePathPolicy policy;
  const sim::CallTrace trace = sim::generate_trace(fx.traffic, 30.0, 2);
  const loss::RunResult run = loss::run_trace(fx.graph, fx.routes, policy, trace, {});
  EXPECT_GT(run.blocked, 0);
  EXPECT_EQ(run.primary_losses_at_link[0], run.blocked);
  EXPECT_EQ(run.primary_losses_at_link[1], 0);
}

TEST(Engine, ReservationsChangeControlledButNotUncontrolledResults) {
  const net::Graph g = net::full_mesh(4, 15);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 16.0), 60.0, 9);
  loss::EngineOptions no_res;
  loss::EngineOptions with_res;
  with_res.reservations.assign(static_cast<std::size_t>(g.link_count()), 5);

  core::ControlledAlternatePolicy controlled;
  const auto c0 = loss::run_trace(g, routes, controlled, trace, no_res);
  const auto c1 = loss::run_trace(g, routes, controlled, trace, with_res);
  EXPECT_NE(c0.carried_alternate, c1.carried_alternate);
  EXPECT_GT(c0.carried_alternate, c1.carried_alternate);

  loss::UncontrolledAlternatePolicy uncontrolled;
  const auto u0 = loss::run_trace(g, routes, uncontrolled, trace, no_res);
  const auto u1 = loss::run_trace(g, routes, uncontrolled, trace, with_res);
  EXPECT_EQ(u0.blocked, u1.blocked);
  EXPECT_EQ(u0.carried_alternate, u1.carried_alternate);
}

TEST(Engine, ControlledWithZeroReservationEqualsUncontrolled) {
  const net::Graph g = net::full_mesh(4, 15);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const sim::CallTrace trace =
      sim::generate_trace(net::TrafficMatrix::uniform(4, 14.0), 70.0, 21);
  core::ControlledAlternatePolicy controlled;
  loss::UncontrolledAlternatePolicy uncontrolled;
  const auto a = loss::run_trace(g, routes, controlled, trace, {});
  const auto b = loss::run_trace(g, routes, uncontrolled, trace, {});
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.carried_primary, b.carried_primary);
  EXPECT_EQ(a.carried_alternate, b.carried_alternate);
}

TEST(Engine, PolicySeedDrivesBifurcationSampling) {
  // With bifurcated primaries the engine's policy_seed stream decides
  // which primary each call samples: equal seeds reproduce the run
  // exactly, different seeds shift the per-primary split.
  net::Graph g(4);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  g.add_duplex(net::NodeId(1), net::NodeId(3), 10);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 10);
  g.add_duplex(net::NodeId(2), net::NodeId(3), 10);
  routing::RouteTable routes(4);
  routing::RouteSet& set = routes.at(net::NodeId(0), net::NodeId(3));
  set.primaries.push_back(
      routing::make_path(g, {net::NodeId(0), net::NodeId(1), net::NodeId(3)}));
  set.primaries.push_back(
      routing::make_path(g, {net::NodeId(0), net::NodeId(2), net::NodeId(3)}));
  set.primary_probs = {0.5, 0.5};
  net::TrafficMatrix t(4);
  t.set(net::NodeId(0), net::NodeId(3), 9.0);
  const sim::CallTrace trace = sim::generate_trace(t, 80.0, 4);
  loss::SinglePathPolicy policy;
  loss::EngineOptions options;
  options.policy_seed = 1;
  const loss::RunResult a = loss::run_trace(g, routes, policy, trace, options);
  const loss::RunResult b = loss::run_trace(g, routes, policy, trace, options);
  EXPECT_EQ(a.mean_link_occupancy, b.mean_link_occupancy);
  options.policy_seed = 2;
  const loss::RunResult c = loss::run_trace(g, routes, policy, trace, options);
  EXPECT_NE(a.mean_link_occupancy, c.mean_link_occupancy);
  // Both splits remain near 50/50 in carried load across the two branches.
  const auto l01 = g.find_link(net::NodeId(0), net::NodeId(1));
  const auto l02 = g.find_link(net::NodeId(0), net::NodeId(2));
  EXPECT_NEAR(a.mean_link_occupancy[l01->index()], a.mean_link_occupancy[l02->index()],
              1.5);
}

TEST(Engine, Validation) {
  SingleLinkFixture fx(5, 2.0);
  loss::SinglePathPolicy policy;
  const sim::CallTrace trace = sim::generate_trace(fx.traffic, 20.0, 1);
  loss::EngineOptions options;
  options.warmup = 20.0;  // == horizon: empty measurement window
  EXPECT_THROW((void)loss::run_trace(fx.graph, fx.routes, policy, trace, options),
               std::invalid_argument);
  const routing::RouteTable wrong_size(3);
  EXPECT_THROW((void)loss::run_trace(fx.graph, wrong_size, policy, trace, {}),
               std::invalid_argument);
}

}  // namespace
