// Statistics helpers: Welford accumulator, t table, time averages,
// sample summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/stats.hpp"

namespace sim = altroute::sim;

namespace {

TEST(RunningStats, KnownSmallSample) {
  sim::RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  sim::RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  sim::RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, CiUsesStudentT) {
  sim::RunningStats s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);  // stddev = 1, n = 3
  const double expected = sim::t_critical_95(2) * 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(s.ci95_halfwidth(), expected, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  sim::RunningStats all;
  sim::RunningStats a;
  sim::RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i * 0.1;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  sim::RunningStats a;
  a.add(1.0);
  sim::RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(TCritical, TableValues) {
  EXPECT_DOUBLE_EQ(sim::t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(sim::t_critical_95(9), 2.262);   // the paper's 10 seeds
  EXPECT_DOUBLE_EQ(sim::t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(sim::t_critical_95(100), 1.960);
  EXPECT_DOUBLE_EQ(sim::t_critical_95(0), 0.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  sim::TimeWeighted tw;
  tw.observe(2.0, 1.0);
  tw.observe(4.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.elapsed(), 4.0);
  EXPECT_DOUBLE_EQ(tw.average(), (2.0 + 12.0) / 4.0);
  EXPECT_THROW(tw.observe(1.0, -1.0), std::invalid_argument);
}

TEST(TimeWeighted, EmptyAverageIsZero) {
  const sim::TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.average(), 0.0);
}

TEST(Summarize, DescriptiveFields) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 100.0};
  const sim::SampleSummary s = sim::summarize(data);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_GT(s.skewness, 1.0);  // one large outlier -> strongly right-skewed
  EXPECT_GT(s.cv, 1.0);
}

TEST(Summarize, EvenCountMedianInterpolates) {
  const sim::SampleSummary s = sim::summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, SymmetricDataHasNearZeroSkew) {
  const sim::SampleSummary s = sim::summarize({-2.0, -1.0, 0.0, 1.0, 2.0});
  EXPECT_NEAR(s.skewness, 0.0, 1e-12);
}

TEST(Summarize, DegenerateCases) {
  EXPECT_EQ(sim::summarize({}).count, 0u);
  const sim::SampleSummary one = sim::summarize({5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.skewness, 0.0);
  const sim::SampleSummary constant = sim::summarize({3.0, 3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(constant.stddev, 0.0);
  EXPECT_DOUBLE_EQ(constant.skewness, 0.0);
  EXPECT_DOUBLE_EQ(constant.cv, 0.0);
}

}  // namespace
