// Erlang fixed-point (reduced-load) approximation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/fixed_point.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/nsfnet_traffic.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;
namespace erlang = altroute::erlang;
namespace loss = altroute::loss;
namespace sim = altroute::sim;

namespace {

TEST(FixedPoint, SingleLinkIsExactErlangB) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 8.0);
  const auto fp = routing::erlang_fixed_point(g, routes, t);
  EXPECT_TRUE(fp.converged);
  EXPECT_NEAR(fp.network_blocking, erlang::erlang_b(8.0, 10), 1e-10);
  EXPECT_NEAR(fp.link_blocking[0], erlang::erlang_b(8.0, 10), 1e-10);
  EXPECT_DOUBLE_EQ(fp.link_blocking[1], 0.0);  // idle reverse direction
}

TEST(FixedPoint, TandemThinsUpstreamLoad) {
  // 0 -1- 1 -2- 2 line; traffic 0->2 over both links plus local 1->2.
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  g.add_duplex(net::NodeId(1), net::NodeId(2), 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  net::TrafficMatrix t(3);
  t.set(net::NodeId(0), net::NodeId(2), 8.0);
  t.set(net::NodeId(1), net::NodeId(2), 4.0);
  const auto fp = routing::erlang_fixed_point(g, routes, t);
  ASSERT_TRUE(fp.converged);
  const auto l01 = g.find_link(net::NodeId(0), net::NodeId(1));
  const auto l12 = g.find_link(net::NodeId(1), net::NodeId(2));
  // Link 1->2 sees the 0->2 stream thinned by link 0->1's blocking.
  const double b01 = fp.link_blocking[l01->index()];
  const double b12 = fp.link_blocking[l12->index()];
  EXPECT_NEAR(fp.reduced_load[l12->index()], 8.0 * (1.0 - b01) + 4.0, 1e-9);
  EXPECT_NEAR(fp.reduced_load[l01->index()], 8.0 * (1.0 - b12), 1e-9);
  // Self-consistency: B = ErlangB(reduced load).
  EXPECT_NEAR(b01, erlang::erlang_b(fp.reduced_load[l01->index()], 10), 1e-9);
  // Pair blocking composes along the path.
  EXPECT_NEAR(fp.pair_blocking[0 * 3 + 2], 1.0 - (1.0 - b01) * (1.0 - b12), 1e-9);
}

TEST(FixedPoint, MatchesSinglePathSimulationOnNsfnet) {
  // The approximation should land within a point or two of simulated
  // single-path blocking at nominal load (independent-link error is small
  // on a sparse mesh with multi-hop primaries).
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const net::TrafficMatrix& t = altroute::study::nsfnet_nominal_traffic();
  const auto fp = routing::erlang_fixed_point(g, routes, t);
  ASSERT_TRUE(fp.converged);

  loss::SinglePathPolicy policy;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(t, 60.0, seed);
    blocking.add(loss::run_trace(g, routes, policy, trace, {}).blocking());
  }
  EXPECT_NEAR(fp.network_blocking, blocking.mean(), 0.02);
}

TEST(FixedPoint, ZeroTraffic) {
  const net::Graph g = net::ring(4, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const auto fp = routing::erlang_fixed_point(g, routes, net::TrafficMatrix(4));
  EXPECT_TRUE(fp.converged);
  EXPECT_DOUBLE_EQ(fp.network_blocking, 0.0);
  for (const double b : fp.link_blocking) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(FixedPoint, BifurcatedPrimariesSupported) {
  net::Graph g(4);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  g.add_duplex(net::NodeId(1), net::NodeId(3), 10);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 10);
  g.add_duplex(net::NodeId(2), net::NodeId(3), 10);
  routing::RouteTable routes(4);
  routing::RouteSet& set = routes.at(net::NodeId(0), net::NodeId(3));
  set.primaries.push_back(
      routing::make_path(g, {net::NodeId(0), net::NodeId(1), net::NodeId(3)}));
  set.primaries.push_back(
      routing::make_path(g, {net::NodeId(0), net::NodeId(2), net::NodeId(3)}));
  set.primary_probs = {0.5, 0.5};
  net::TrafficMatrix t(4);
  t.set(net::NodeId(0), net::NodeId(3), 16.0);
  const auto fp = routing::erlang_fixed_point(g, routes, t);
  ASSERT_TRUE(fp.converged);
  // Each branch carries 8 E thinned by its partner link; by symmetry both
  // routes see identical blocking.
  const auto l01 = g.find_link(net::NodeId(0), net::NodeId(1));
  const auto l02 = g.find_link(net::NodeId(0), net::NodeId(2));
  EXPECT_NEAR(fp.link_blocking[l01->index()], fp.link_blocking[l02->index()], 1e-9);
  EXPECT_GT(fp.network_blocking, 0.0);
}

TEST(FixedPoint, MonotoneInLoad) {
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const net::TrafficMatrix& nominal = altroute::study::nsfnet_nominal_traffic();
  double prev = -1.0;
  for (const double f : {0.5, 0.8, 1.0, 1.3, 1.6}) {
    const auto fp = routing::erlang_fixed_point(g, routes, nominal.scaled(f));
    EXPECT_TRUE(fp.converged) << f;
    EXPECT_GT(fp.network_blocking, prev) << f;
    prev = fp.network_blocking;
  }
}

TEST(FixedPoint, Validation) {
  const net::Graph g = net::ring(4, 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  EXPECT_THROW((void)routing::erlang_fixed_point(g, routes, net::TrafficMatrix(5)),
               std::invalid_argument);
  routing::FixedPointOptions bad;
  bad.damping = 0.0;
  EXPECT_THROW((void)routing::erlang_fixed_point(g, routes, net::TrafficMatrix(4), bad),
               std::invalid_argument);
}

}  // namespace
