// Min-loss bifurcated primary optimization (Frank-Wolfe flow deviation).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "netgraph/topologies.hpp"
#include "routing/minloss.hpp"
#include "routing/route_table.hpp"

namespace net = altroute::net;
namespace routing = altroute::routing;
namespace erlang = altroute::erlang;

namespace {

TEST(MinLoss, NeverWorseThanAllOnMinHop) {
  const net::Graph g = net::nsfnet_t3();
  net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 8.0);
  const routing::MinLossResult r = routing::optimize_min_loss_primaries(g, t);
  EXPECT_LE(r.expected_loss_rate, r.initial_loss_rate + 1e-9);
  EXPECT_GE(r.iterations, 1);
}

TEST(MinLoss, SplitsAcrossParallelRoutesUnderPressure) {
  // Two disjoint 2-hop routes 0->3 and a heavy demand: the optimum must
  // bifurcate close to 50/50 by symmetry.
  net::Graph g(4);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 20);
  g.add_duplex(net::NodeId(1), net::NodeId(3), 20);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 20);
  g.add_duplex(net::NodeId(2), net::NodeId(3), 20);
  net::TrafficMatrix t(4);
  t.set(net::NodeId(0), net::NodeId(3), 30.0);
  routing::MinLossOptions options;
  options.max_alt_hops = 3;
  const routing::MinLossResult r = routing::optimize_min_loss_primaries(g, t, options);
  const routing::RouteSet& set = r.routes.at(net::NodeId(0), net::NodeId(3));
  ASSERT_EQ(set.primaries.size(), 2u);
  EXPECT_NEAR(set.primary_probs[0], 0.5, 0.02);
  EXPECT_NEAR(set.primary_probs[1], 0.5, 0.02);
  // Expected loss with the split: two independent links at 15 E / 20 C
  // (the path's two links see the same flow, but blocking is dominated per
  // link; the objective is the SUM of link loss rates).
  const double balanced = 4.0 * erlang::loss_rate(15.0, 20);
  const double unbalanced = 2.0 * erlang::loss_rate(30.0, 20);
  EXPECT_LT(balanced, unbalanced);  // sanity of the premise
  EXPECT_NEAR(r.expected_loss_rate, balanced, 0.05 * balanced);
}

TEST(MinLoss, ProbabilitiesFormDistributions) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 10.0);
  const routing::MinLossResult r = routing::optimize_min_loss_primaries(g, t);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      const routing::RouteSet& set = r.routes.at(net::NodeId(i), net::NodeId(j));
      ASSERT_TRUE(set.reachable()) << i << "->" << j;
      double total = 0.0;
      for (std::size_t p = 0; p < set.primaries.size(); ++p) {
        EXPECT_GT(set.primary_probs[p], 0.0);
        EXPECT_EQ(set.primaries[p].origin(), net::NodeId(i));
        EXPECT_EQ(set.primaries[p].destination(), net::NodeId(j));
        total += set.primary_probs[p];
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << i << "->" << j;
    }
  }
}

TEST(MinLoss, LightLoadStaysOnMinHop) {
  // With negligible load the loss gradient is ~zero everywhere and the
  // min-hop start is already optimal: no bifurcation should appear.
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 0.05);
  const routing::MinLossResult r = routing::optimize_min_loss_primaries(g, t);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      EXPECT_EQ(r.routes.at(net::NodeId(i), net::NodeId(j)).primaries.size(), 1u)
          << i << "->" << j;
    }
  }
  EXPECT_NEAR(r.expected_loss_rate, r.initial_loss_rate, 1e-12);
}

TEST(MinLoss, SingleCandidateDegeneratesToMinHop) {
  // With one candidate path per pair there is nothing to optimize: the
  // result must be the min-hop program with probability 1 everywhere and
  // the objective unchanged from the starting point.
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(12, 9.0);
  routing::MinLossOptions options;
  options.candidate_paths = 1;
  const routing::MinLossResult r = routing::optimize_min_loss_primaries(g, t, options);
  EXPECT_DOUBLE_EQ(r.expected_loss_rate, r.initial_loss_rate);
  const routing::RouteTable minhop = routing::build_min_hop_routes(g, options.max_alt_hops);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i == j) continue;
      const routing::RouteSet& set = r.routes.at(net::NodeId(i), net::NodeId(j));
      ASSERT_EQ(set.primaries.size(), 1u);
      EXPECT_DOUBLE_EQ(set.primary_probs[0], 1.0);
      EXPECT_EQ(set.primaries[0].nodes,
                minhop.at(net::NodeId(i), net::NodeId(j)).primaries[0].nodes)
          << i << "->" << j;
    }
  }
}

TEST(MinLoss, Validation) {
  const net::Graph g = net::ring(4, 10);
  EXPECT_THROW((void)routing::optimize_min_loss_primaries(g, net::TrafficMatrix(5)),
               std::invalid_argument);
  net::Graph disconnected(3);
  disconnected.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  net::TrafficMatrix t(3);
  t.set(net::NodeId(0), net::NodeId(2), 1.0);
  EXPECT_THROW((void)routing::optimize_min_loss_primaries(disconnected, t),
               std::invalid_argument);
  routing::MinLossOptions bad;
  bad.candidate_paths = 0;
  EXPECT_THROW((void)routing::optimize_min_loss_primaries(g, net::TrafficMatrix(4), bad),
               std::invalid_argument);
}

}  // namespace
