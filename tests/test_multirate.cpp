// Multi-rate extension of the call-level engine.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controlled_policy.hpp"
#include "erlang/kaufman_roberts.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace net = altroute::net;
namespace loss = altroute::loss;
namespace core = altroute::core;
namespace routing = altroute::routing;
namespace sim = altroute::sim;
namespace erlang = altroute::erlang;

namespace {

std::vector<sim::TrafficClass> two_class_demand(int n, double narrow, double wide,
                                                int wide_bandwidth) {
  std::vector<sim::TrafficClass> classes(2);
  classes[0].offered = net::TrafficMatrix::uniform(n, narrow);
  classes[0].bandwidth = 1;
  classes[1].offered = net::TrafficMatrix::uniform(n, wide);
  classes[1].bandwidth = wide_bandwidth;
  return classes;
}

TEST(MultirateTrace, ClassBandwidthsCarriedThrough) {
  const auto classes = two_class_demand(3, 2.0, 1.0, 4);
  const sim::CallTrace trace = sim::generate_multirate_trace(classes, 50.0, 9);
  long long narrow = 0;
  long long wide = 0;
  double prev = 0.0;
  for (const sim::CallRecord& c : trace.calls) {
    EXPECT_GE(c.arrival, prev);
    prev = c.arrival;
    if (c.bandwidth == 1) {
      ++narrow;
    } else {
      EXPECT_EQ(c.bandwidth, 4);
      ++wide;
    }
  }
  // 6 pairs x rate x horizon in expectation.
  EXPECT_NEAR(static_cast<double>(narrow), 6 * 2.0 * 50.0, 150.0);
  EXPECT_NEAR(static_cast<double>(wide), 6 * 1.0 * 50.0, 100.0);
}

TEST(MultirateTrace, AddingAClassDoesNotPerturbExisting) {
  std::vector<sim::TrafficClass> one = {two_class_demand(3, 2.0, 1.0, 4)[0]};
  const auto both = two_class_demand(3, 2.0, 1.0, 4);
  const sim::CallTrace a = sim::generate_multirate_trace(one, 40.0, 5);
  const sim::CallTrace b = sim::generate_multirate_trace(both, 40.0, 5);
  std::vector<double> narrow_a;
  for (const auto& c : a.calls) narrow_a.push_back(c.arrival);
  std::vector<double> narrow_b;
  for (const auto& c : b.calls) {
    if (c.bandwidth == 1) narrow_b.push_back(c.arrival);
  }
  EXPECT_EQ(narrow_a, narrow_b);
}

TEST(MultirateTrace, MeanHoldingRespected) {
  std::vector<sim::TrafficClass> classes(1);
  classes[0].offered = net::TrafficMatrix::uniform(3, 3.0);
  classes[0].bandwidth = 2;
  classes[0].mean_holding = 4.0;  // 3 Erlangs = 0.75 calls/unit * 4 units held
  const sim::CallTrace trace = sim::generate_multirate_trace(classes, 400.0, 2);
  double hold = 0.0;
  for (const auto& c : trace.calls) hold += c.holding;
  EXPECT_NEAR(hold / static_cast<double>(trace.size()), 4.0, 0.15);
  // Arrival rate is offered / holding.
  EXPECT_NEAR(static_cast<double>(trace.size()), 6 * (3.0 / 4.0) * 400.0, 200.0);
}

TEST(MultirateTrace, Validation) {
  EXPECT_THROW((void)sim::generate_multirate_trace({}, 10.0, 1), std::invalid_argument);
  std::vector<sim::TrafficClass> bad(1);
  bad[0].offered = net::TrafficMatrix::uniform(3, 1.0);
  bad[0].bandwidth = 0;
  EXPECT_THROW((void)sim::generate_multirate_trace(bad, 10.0, 1), std::invalid_argument);
  bad[0].bandwidth = 1;
  bad[0].mean_holding = 0.0;
  EXPECT_THROW((void)sim::generate_multirate_trace(bad, 10.0, 1), std::invalid_argument);
  std::vector<sim::TrafficClass> mismatch(2);
  mismatch[0].offered = net::TrafficMatrix::uniform(3, 1.0);
  mismatch[1].offered = net::TrafficMatrix::uniform(4, 1.0);
  EXPECT_THROW((void)sim::generate_multirate_trace(mismatch, 10.0, 1), std::invalid_argument);
}

TEST(MultirateEngine, SingleLinkMatchesKaufmanRoberts) {
  // Two classes on an isolated link: simulated per-class blocking must
  // match the product-form Kaufman-Roberts values.
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 20);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  std::vector<sim::TrafficClass> classes(2);
  classes[0].offered = net::TrafficMatrix(2);
  classes[0].offered.set(net::NodeId(0), net::NodeId(1), 10.0);
  classes[0].bandwidth = 1;
  classes[1].offered = net::TrafficMatrix(2);
  classes[1].offered.set(net::NodeId(0), net::NodeId(1), 2.0);
  classes[1].bandwidth = 5;

  loss::SinglePathPolicy policy;
  sim::RunningStats narrow;
  sim::RunningStats wide;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::CallTrace trace = sim::generate_multirate_trace(classes, 160.0, seed);
    const loss::RunResult run = loss::run_trace(g, routes, policy, trace, {});
    ASSERT_EQ(run.per_class.size(), 2u);
    EXPECT_EQ(run.per_class[0].bandwidth, 1);
    EXPECT_EQ(run.per_class[1].bandwidth, 5);
    narrow.add(run.per_class[0].blocking());
    wide.add(run.per_class[1].blocking());
  }
  const auto kr = erlang::kaufman_roberts_blocking({{10.0, 1}, {2.0, 5}}, 20);
  EXPECT_NEAR(narrow.mean(), kr[0], 3.0 * narrow.stderr_mean() + 0.01);
  EXPECT_NEAR(wide.mean(), kr[1], 3.0 * wide.stderr_mean() + 0.02);
}

TEST(MultirateEngine, ConservationPerClass) {
  const net::Graph g = net::full_mesh(4, 30);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const auto classes = two_class_demand(4, 15.0, 3.0, 4);
  const sim::CallTrace trace = sim::generate_multirate_trace(classes, 60.0, 3);
  loss::UncontrolledAlternatePolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, {});
  long long offered = 0;
  long long blocked = 0;
  for (const loss::ClassCounters& cls : run.per_class) {
    offered += cls.offered;
    blocked += cls.blocked;
  }
  EXPECT_EQ(offered, run.offered);
  EXPECT_EQ(blocked, run.blocked);
}

TEST(MultirateEngine, WideCallsSeeReservationSooner) {
  // With r = 3 on C = 10, a 4-unit alternate call needs occupancy <= 3,
  // while a 1-unit alternate call is fine through occupancy 6: check via
  // direct policy probing.
  net::Graph g(3);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 10);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 10);
  g.add_duplex(net::NodeId(2), net::NodeId(1), 10);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 2);
  loss::NetworkState state(g);
  std::vector<int> r(static_cast<std::size_t>(g.link_count()), 3);
  state.set_reservations(r);
  // Fill direct 0->1 completely and put 4 calls on 0->2.
  const routing::Path direct = routing::make_path(g, {net::NodeId(0), net::NodeId(1)});
  for (int i = 0; i < 10; ++i) state.book(direct);
  const routing::Path feeder = routing::make_path(g, {net::NodeId(0), net::NodeId(2)});
  for (int i = 0; i < 4; ++i) state.book(feeder);

  core::ControlledAlternatePolicy policy;
  const routing::RouteSet& set = routes.at(net::NodeId(0), net::NodeId(1));
  const loss::RoutingContext narrow{g, state, net::NodeId(0), net::NodeId(1), set, 0.0, 0.0, 1};
  const loss::RoutingContext wide{g, state, net::NodeId(0), net::NodeId(1), set, 0.0, 0.0, 4};
  EXPECT_TRUE(policy.route(narrow).accepted());   // 4 + 1 <= 10 - 3
  EXPECT_FALSE(policy.route(wide).accepted());    // 4 + 4 > 10 - 3
}

TEST(MultirateEngine, SingleRateTraceStillYieldsOneClass) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 5);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  net::TrafficMatrix t(2);
  t.set(net::NodeId(0), net::NodeId(1), 3.0);
  const sim::CallTrace trace = sim::generate_trace(t, 30.0, 1);
  loss::SinglePathPolicy policy;
  const loss::RunResult run = loss::run_trace(g, routes, policy, trace, {});
  ASSERT_EQ(run.per_class.size(), 1u);
  EXPECT_EQ(run.per_class[0].bandwidth, 1);
  EXPECT_EQ(run.per_class[0].offered, run.offered);
}

}  // namespace
