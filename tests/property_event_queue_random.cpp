// Property test: the calendar queue is observationally identical to the
// legacy binary-heap EventQueue on random schedules.
//
// Each case drives both queues side by side through the same randomized
// schedule/pop workload and asserts the full pop streams match exactly --
// time AND payload, so FIFO tie-breaks are covered too.  The generators
// are seeded (every failure reproduces); the shapes are chosen to hit the
// calendar queue's structural edges: bucket growth and shrink, the
// one-lap scan, the direct-search fallback for sparse far-future events,
// rewind-on-enqueue, and width re-estimation after resize.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"

namespace sim = altroute::sim;

namespace {

/// Pops both queues once and asserts the (time, payload) pair agrees.
/// Returns the popped time so callers can advance their clocks.
double pop_both(sim::EventQueue<std::uint64_t>& heap, sim::CalendarQueue<std::uint64_t>& cal) {
  EXPECT_EQ(heap.next_time(), cal.next_time());
  const auto [ht, hv] = heap.pop();
  const auto [ct, cv] = cal.pop();
  EXPECT_EQ(ht, ct);
  EXPECT_EQ(hv, cv);
  EXPECT_EQ(heap.size(), cal.size());
  return ht;
}

void drain_both(sim::EventQueue<std::uint64_t>& heap, sim::CalendarQueue<std::uint64_t>& cal) {
  while (!heap.empty()) pop_both(heap, cal);
  EXPECT_TRUE(cal.empty());
}

}  // namespace

// Fully random interleave of schedules and pops, times drawn over a wide
// range so events scatter across many calendar years.
TEST(PropertyEventQueueRandom, RandomInterleaveMatchesHeap) {
  std::mt19937_64 rng(0xD1FFu);
  std::uniform_real_distribution<double> time(0.0, 1000.0);
  std::uniform_int_distribution<int> burst(0, 6);
  for (int trial = 0; trial < 30; ++trial) {
    sim::EventQueue<std::uint64_t> heap;
    sim::CalendarQueue<std::uint64_t> cal;
    std::uint64_t id = 0;
    for (int step = 0; step < 500; ++step) {
      for (int i = burst(rng); i > 0; --i) {
        const double t = time(rng);
        heap.schedule(t, id);
        cal.schedule(t, id);
        ++id;
      }
      for (int i = burst(rng); i > 0 && !heap.empty(); --i) pop_both(heap, cal);
    }
    drain_both(heap, cal);
  }
}

// Engine-shaped workload: the clock only moves forward, every schedule is
// at now + holding, pops release everything due -- the loss engine's
// departure pattern, including occasional zero-holding ties.
TEST(PropertyEventQueueRandom, MonotoneEngineWorkloadMatchesHeap) {
  std::mt19937_64 rng(0xE71Eu);
  std::exponential_distribution<double> gap(2.0);
  std::exponential_distribution<double> holding(1.0);
  std::uniform_int_distribution<int> tie(0, 9);
  for (int trial = 0; trial < 10; ++trial) {
    sim::EventQueue<std::uint64_t> heap;
    sim::CalendarQueue<std::uint64_t> cal;
    double now = 0.0;
    std::uint64_t id = 0;
    for (int arrival = 0; arrival < 3000; ++arrival) {
      now += gap(rng);
      while (!heap.empty() && heap.next_time() <= now) pop_both(heap, cal);
      const double hold = tie(rng) == 0 ? 0.0 : holding(rng);
      heap.schedule(now + hold, id);
      cal.schedule(now + hold, id);
      ++id;
    }
    drain_both(heap, cal);
  }
}

// Population swings: fill to thousands (bucket growth), drain to a handful
// (bucket shrink), refill -- the resize paths re-estimate the width from
// surviving events each time.
TEST(PropertyEventQueueRandom, GrowShrinkCyclesMatchHeap) {
  std::mt19937_64 rng(0x9505u);
  std::uniform_real_distribution<double> time(0.0, 50.0);
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  std::uint64_t id = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 3000; ++i) {
      const double t = time(rng);
      heap.schedule(t, id);
      cal.schedule(t, id);
      ++id;
    }
    while (heap.size() > 5) pop_both(heap, cal);
  }
  drain_both(heap, cal);
}

// Sparse far-future events: a handful of events spread over a huge span,
// so the one-lap scan misses and the direct-search fallback must find the
// global minimum.
TEST(PropertyEventQueueRandom, SparseFarFutureMatchesHeap) {
  std::mt19937_64 rng(0x5AA5u);
  std::uniform_real_distribution<double> magnitude(0.0, 12.0);
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const double t = std::pow(10.0, magnitude(rng));  // 1 .. 1e12
    heap.schedule(t, id);
    cal.schedule(t, id);
  }
  drain_both(heap, cal);
}

// Schedule-before-cursor: after popping far into the future, schedule
// events earlier than the last pop (allowed by the interface); the
// calendar queue must rewind its scan.
TEST(PropertyEventQueueRandom, RewindOnEarlyScheduleMatchesHeap) {
  std::mt19937_64 rng(0x0F0Fu);
  std::uniform_real_distribution<double> late(100.0, 200.0);
  std::uniform_real_distribution<double> early(0.0, 50.0);
  for (int trial = 0; trial < 20; ++trial) {
    sim::EventQueue<std::uint64_t> heap;
    sim::CalendarQueue<std::uint64_t> cal;
    std::uint64_t id = 0;
    for (int i = 0; i < 40; ++i, ++id) {
      const double t = late(rng);
      heap.schedule(t, id);
      cal.schedule(t, id);
    }
    for (int i = 0; i < 20; ++i) pop_both(heap, cal);  // cursor now ~150
    for (int i = 0; i < 40; ++i, ++id) {
      const double t = early(rng);  // before the cursor: rewind
      heap.schedule(t, id);
      cal.schedule(t, id);
    }
    drain_both(heap, cal);
  }
}

// clear() resets both queues to a fresh state, including the tie-break
// sequence counter.
TEST(PropertyEventQueueRandom, ClearResetsLikeHeap) {
  std::mt19937_64 rng(0xC1EAu);
  std::uniform_real_distribution<double> time(0.0, 10.0);
  sim::EventQueue<std::uint64_t> heap;
  sim::CalendarQueue<std::uint64_t> cal;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const double t = time(rng);
    heap.schedule(t, id);
    cal.schedule(t, id);
  }
  heap.clear();
  cal.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const double t = time(rng);
    heap.schedule(t, id);
    cal.schedule(t, id);
  }
  drain_both(heap, cal);
}

// Interface contract shared with EventQueue: invalid times throw, empty
// pops throw.
TEST(PropertyEventQueueRandom, ContractMatchesEventQueue) {
  sim::CalendarQueue<int> cal;
  EXPECT_THROW(cal.schedule(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(cal.schedule(std::nan(""), 0), std::invalid_argument);
  EXPECT_THROW(cal.pop(), std::logic_error);
  EXPECT_THROW(cal.next_time(), std::logic_error);
  cal.schedule(0.0, 7);  // t = 0 is valid, matching EventQueue
  EXPECT_EQ(cal.pop().second, 7);
}
