// altroute_check: model-based simulation checker.
//
// Draws randomized network/scenario cases from a seeded generator and runs
// every engine configuration through the differential and invariant
// oracles (src/check).  The first failing case is (optionally) shrunk to a
// local minimum and dumped as a replayable artifact bundle.
//
//   usage: altroute_check --cases N --seed S [options]
//          altroute_check --replay case.json [options]
//
//   --cases N        number of generated cases to check (default 50)
//   --seed S         corpus master seed (default 1); case c runs under the
//                    derived seed rng(S, c) -- stable across corpus sizes
//   --replay FILE    check one case loaded from a case.json artifact
//   --shrink         shrink the first failing case before reporting
//   --artifacts DIR  dump the (shrunk) failing case bundle into DIR
//   --inject occupancy-leak
//                    mutation testing: inject a known circuit-leak fault
//                    into every run; the checker MUST then fail
//   --flight-recorder N
//                    tee a last-N trace ring into every run: dumped to
//                    stderr on a fatal signal, bundled as flight.jsonl
//                    with the failing-case artifacts (compared streams
//                    are unchanged)
//   --no-threads / --no-resume / --no-static / --no-invariants
//                    disable one oracle family
//   --quiet          only print the summary line and failures
//
// exit 0: every case passed (and the corpus was non-vacuous)
// exit 1: a case failed every-oracle checking (details + artifacts)
// exit 2: bad usage
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/case.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"

using namespace altroute;

namespace {

[[noreturn]] void usage_error(const std::string& why) {
  std::fprintf(stderr, "altroute_check: %s\n", why.c_str());
  std::fprintf(stderr,
               "usage: altroute_check --cases N --seed S [--shrink] [--artifacts DIR]\n"
               "       altroute_check --replay case.json\n"
               "       options: --inject occupancy-leak, --flight-recorder N,\n"
               "                --no-threads, --no-resume, --no-static, --no-invariants,\n"
               "                --quiet\n");
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (...) {
    usage_error("option " + std::string(what) + " needs an unsigned integer, got '" + text +
                "'");
  }
}

struct Cli {
  long long cases{50};
  std::uint64_t seed{1};
  std::string replay;
  std::string artifacts;
  bool shrink{false};
  bool quiet{false};
  check::CheckOptions options;
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  const auto next = [&](int& i, const char* what) -> std::string {
    if (i + 1 >= argc) usage_error("option " + std::string(what) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cases") {
      cli.cases = static_cast<long long>(parse_u64(next(i, "--cases"), "--cases"));
    } else if (arg == "--seed") {
      cli.seed = parse_u64(next(i, "--seed"), "--seed");
    } else if (arg == "--replay") {
      cli.replay = next(i, "--replay");
    } else if (arg == "--artifacts") {
      cli.artifacts = next(i, "--artifacts");
    } else if (arg == "--shrink") {
      cli.shrink = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--inject") {
      const std::string fault = next(i, "--inject");
      if (fault != "occupancy-leak") usage_error("unknown fault '" + fault + "'");
      cli.options.inject_release_leak = true;
    } else if (arg == "--flight-recorder") {
      cli.options.flight_recorder =
          static_cast<int>(parse_u64(next(i, "--flight-recorder"), "--flight-recorder"));
      if (cli.options.flight_recorder < 1) usage_error("--flight-recorder must be >= 1");
    } else if (arg == "--no-threads") {
      cli.options.threads = false;
    } else if (arg == "--no-resume") {
      cli.options.resume = false;
    } else if (arg == "--no-static") {
      cli.options.static_reference = false;
    } else if (arg == "--no-invariants") {
      cli.options.invariants = false;
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (cli.cases < 1) usage_error("--cases must be >= 1");
  return cli;
}

void print_failures(const check::CaseReport& report) {
  std::fprintf(stderr, "FAIL case seed %llu (%zu oracle failures):\n",
               static_cast<unsigned long long>(report.seed), report.failures.size());
  for (const std::string& f : report.failures) {
    std::fprintf(stderr, "  - %s\n", f.c_str());
  }
}

/// Shrinks, dumps artifacts, reports.  Returns the process exit code.
int handle_failure(const Cli& cli, const check::CaseSpec& spec,
                   const check::CaseReport& report) {
  print_failures(report);
  check::CaseSpec minimal = spec;
  if (cli.shrink) {
    check::ShrinkStats stats;
    minimal = check::shrink_case(
        spec, [&](const check::CaseSpec& cand) { return !check_case(cand, cli.options).passed(); },
        &stats);
    std::fprintf(stderr,
                 "shrunk to %d nodes / %zu facilities / %zu events "
                 "(%d rounds, %d/%d candidates kept)\n",
                 minimal.nodes, minimal.facilities.size(), minimal.events.size(), stats.rounds,
                 stats.accepted, stats.attempted);
  }
  if (!cli.artifacts.empty()) {
    const check::CaseReport final_report = check::check_case(minimal, cli.options);
    const bool use_final = !final_report.failures.empty();
    check::dump_case_artifacts(cli.artifacts, minimal,
                               use_final ? final_report.failures : report.failures,
                               use_final ? final_report.flight_dump : report.flight_dump);
    std::fprintf(stderr, "artifacts written to %s (replay: altroute_check --replay %s/%s)\n",
                 cli.artifacts.c_str(), cli.artifacts.c_str(), "case.json");
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  try {
    if (!cli.replay.empty()) {
      const check::CaseSpec spec = check::load_case(cli.replay);
      const check::CaseReport report = check::check_case(spec, cli.options);
      if (!report.passed()) return handle_failure(cli, spec, report);
      std::printf("replay %s: PASS (offered %lld, blocked %lld, alt %lld, dropped %lld)\n",
                  cli.replay.c_str(), report.offered, report.blocked, report.carried_alternate,
                  report.dropped);
      return 0;
    }

    long long offered = 0, blocked = 0, alternates = 0, dropped = 0, with_events = 0;
    for (long long c = 0; c < cli.cases; ++c) {
      const std::uint64_t seed = check::case_seed(cli.seed, static_cast<std::uint64_t>(c));
      const check::CaseSpec spec = check::generate_case(seed);
      const check::CaseReport report = check::check_case(spec, cli.options);
      if (!report.passed()) {
        std::fprintf(stderr, "case %lld/%lld (seed %llu) failed\n", c + 1, cli.cases,
                     static_cast<unsigned long long>(seed));
        return handle_failure(cli, spec, report);
      }
      offered += report.offered;
      blocked += report.blocked;
      alternates += report.carried_alternate;
      dropped += report.dropped;
      if (!spec.events.empty()) ++with_events;
      if (!cli.quiet && (c + 1) % 50 == 0) {
        std::printf("  %lld/%lld cases checked\n", c + 1, cli.cases);
      }
    }

    // Non-vacuity: a corpus that never blocks, never overflows onto an
    // alternate, or never scripts an event is not exercising the paths
    // this checker exists for.  Only meaningful at corpus scale.
    if (cli.cases >= 20) {
      std::vector<std::string> vacuous;
      if (blocked == 0) vacuous.push_back("no case ever blocked a call");
      if (alternates == 0) vacuous.push_back("no case ever carried an alternate");
      if (with_events == 0) vacuous.push_back("no case had scenario events");
      if (!vacuous.empty()) {
        for (const std::string& v : vacuous) {
          std::fprintf(stderr, "VACUOUS corpus: %s\n", v.c_str());
        }
        return 1;
      }
    }

    std::printf(
        "checked %lld cases (seed %llu): all oracles passed; offered %lld, blocked %lld, "
        "alternates %lld, dropped %lld\n",
        cli.cases, static_cast<unsigned long long>(cli.seed), offered, blocked, alternates,
        dropped);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altroute_check: %s\n", e.what());
    return 2;
  }
}
