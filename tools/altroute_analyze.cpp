// altroute_analyze: offline trace analytics.
//
// Consumes a JSONL trace written by any instrumented binary (--trace) and
// produces the same report the live --analyze path prints: the empirical
// Theorem-1 audit (per-link L^k vs the Eq. 15 bound), per-OD-pair and
// (pair, link) overflow attribution, across-replication confidence
// intervals, and the time-binned occupancy series.  Because the live path
// formats its records to JSONL bytes and feeds them through this same
// parser, running this tool over a saved trace of the same run reproduces
// the live report byte for byte.
//
//   usage: altroute_analyze trace.jsonl [flags]
//     --topology nsfnet|quadrangle   network the trace was recorded on
//                                    (default nsfnet)
//     --loads f1,f2,...              load factors of the sweep, in task
//                                    order (default 1.0)
//     --seeds N                      replications per load point; 0 = all
//                                    replications are one point (default 0)
//     --hops H                       max alternate hops (default: 11 for
//                                    nsfnet, 3 for quadrangle)
//     --warmup T / --measure T       measured window (defaults 10 / 100)
//     --bins N                       occupancy time bins (default 20)
//     --out report.json              also write the JSON report
//     --strict                       exit 3 if the Theorem-1 audit flags
//                                    any violation
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "netgraph/topologies.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "study/analysis.hpp"
#include "study/nsfnet_traffic.hpp"

using namespace altroute;

namespace {

struct ToolOptions {
  std::string trace_path;
  std::string topology{"nsfnet"};
  std::vector<double> load_factors{1.0};
  int seeds{0};
  std::optional<int> hops;
  double warmup{10.0};
  double measure{100.0};
  int bins{20};
  std::optional<std::string> out;
  bool strict{false};
};

double parse_double(const std::string& flag, const std::string& value) {
  std::size_t used = 0;
  const double out = std::stod(value, &used);
  if (used != value.size()) {
    throw std::invalid_argument(flag + ": trailing junk in '" + value + "'");
  }
  return out;
}

ToolOptions parse_args(int argc, char** argv) {
  ToolOptions options;
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument(flag + ": missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--topology") {
      options.topology = need_value(i, arg);
      if (options.topology != "nsfnet" && options.topology != "quadrangle") {
        throw std::invalid_argument("--topology: expected nsfnet or quadrangle");
      }
    } else if (arg == "--loads") {
      std::vector<double> loads;
      std::stringstream ss(need_value(i, arg));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) loads.push_back(parse_double(arg, item));
      }
      if (loads.empty()) throw std::invalid_argument("--loads: empty list");
      options.load_factors = std::move(loads);
    } else if (arg == "--seeds") {
      options.seeds = static_cast<int>(parse_double(arg, need_value(i, arg)));
      if (options.seeds < 0) throw std::invalid_argument("--seeds: must be >= 0");
    } else if (arg == "--hops") {
      options.hops = static_cast<int>(parse_double(arg, need_value(i, arg)));
      if (*options.hops < 1) throw std::invalid_argument("--hops: must be >= 1");
    } else if (arg == "--warmup") {
      options.warmup = parse_double(arg, need_value(i, arg));
    } else if (arg == "--measure") {
      options.measure = parse_double(arg, need_value(i, arg));
    } else if (arg == "--bins") {
      options.bins = static_cast<int>(parse_double(arg, need_value(i, arg)));
      if (options.bins < 1) throw std::invalid_argument("--bins: must be >= 1");
    } else if (arg == "--out") {
      options.out = need_value(i, arg);
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown flag '" + arg +
                                  "' (known: --topology --loads --seeds --hops --warmup "
                                  "--measure --bins --out --strict)");
    } else if (options.trace_path.empty()) {
      options.trace_path = arg;
    } else {
      throw std::invalid_argument("unexpected extra argument '" + arg + "'");
    }
  }
  if (options.trace_path.empty()) {
    throw std::invalid_argument(
        "usage: altroute_analyze trace.jsonl [--topology nsfnet|quadrangle] "
        "[--loads f1,f2,...] [--seeds N] [--hops H] [--warmup T] [--measure T] "
        "[--bins N] [--out report.json] [--strict]");
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ToolOptions options = parse_args(argc, argv);
    std::ifstream in(options.trace_path);
    if (!in) {
      std::cerr << "altroute_analyze: cannot open " << options.trace_path << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const bool nsfnet = options.topology == "nsfnet";
    const net::Graph graph = nsfnet ? net::nsfnet_t3() : net::full_mesh(4, 100);
    const net::TrafficMatrix nominal =
        nsfnet ? study::nsfnet_nominal_traffic() : net::TrafficMatrix::uniform(4, 1.0);
    const int hops = options.hops.value_or(nsfnet ? 11 : 3);
    const obs::analysis::AnalysisConfig config = study::analysis_config_for(
        graph, nominal, hops,
        {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
         study::PolicyKind::kControlledAlternate},
        options.load_factors, options.seeds, options.warmup, options.measure, options.bins);

    const obs::analysis::AnalysisReport report =
        study::render_analysis(buffer.str(), config, std::cout, options.out);
    if (options.strict && !report.theorem1_ok()) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "altroute_analyze: " << e.what() << '\n';
    return 1;
  }
}
