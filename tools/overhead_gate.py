#!/usr/bin/env python3
"""Gate the profiler's compiled-in overhead on the serial sweep.

The phase profiler is designed to be cheap enough to LEAVE compiled in:
when no accumulator is attached, every ScopedPhase site is a null-pointer
test, and the sites live on per-task paths, never per-event ones.  This
script enforces that claim: it runs the same benchmark row from two
microbench builds -- the default build (profiler compiled in, nothing
attached) and a -DALTROUTE_PROF=OFF build (every ScopedPhase site
compiled to a no-op, everything else identical) -- and fails when the
default build is more than --max-overhead percent slower (default 3).

    $ cmake -B build-noprof -S . -DALTROUTE_PROF=OFF
    $ cmake --build build-noprof -j --target microbench
    $ python3 tools/overhead_gate.py \
          --bench-on build/bench/microbench \
          --bench-off build-noprof/bench/microbench

The gate is the tripwire that keeps ALTROUTE_PROF_SCOPE off the hot
per-event paths as the profiler grows: today the delta is below
measurement noise, and a future scope site inside the event loop would
blow straight past 3%.

Comparing against -DALTROUTE_OBS=OFF instead measures the WHOLE
dormant observability layer (the per-event Probe hook sites of the
metrics/trace subsystem plus the profiler) -- about 6% on this sweep,
nearly all of it the long-standing probe sites.  CI reports that number
on every push (OVERHEAD_SKIP_GATE=1, report-only) but gates only the
profiler axis, so the gate stays red/green on what THIS layer controls.

The watched row defaults to BM_NsfnetSweepThreads/1 (the serial sweep:
no thread-pool noise, every event on the measured thread).  Both
binaries are interleaved A/B/A/B across --rounds to cancel slow drift on
shared runners, and the MINIMUM per-binary time is compared -- the
standard technique for one-sided noise: interference only ever adds
time, so the minimum is the best estimate of the true cost.

Exits non-zero when either binary fails, the row is missing, or the
gate trips.  OVERHEAD_SKIP_GATE=1 records the numbers but always
passes.  Needs only the standard library.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile


def measure_once(bench: str, row: str, repetitions: int) -> float:
    """Minimum real time for `row` in milliseconds across repetitions."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        cmd = [
            bench,
            f"--benchmark_filter=^{row}$|^{row}/",
            f"--benchmark_out={raw_path}",
            "--benchmark_out_format=json",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=false",
        ]
        subprocess.run(cmd, check=True, stdout=sys.stderr)
        with open(raw_path, encoding="utf-8") as handle:
            raw = json.load(handle)
    finally:
        os.unlink(raw_path)
    times = []
    for bench_row in raw.get("benchmarks", []):
        if bench_row.get("run_type") == "aggregate":
            continue
        name = bench_row.get("name", "")
        if name != row and not name.startswith(row + "/"):
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[
            bench_row.get("time_unit", "ns")]
        times.append(float(bench_row["real_time"]) * scale)
    if not times:
        raise SystemExit(f"overhead_gate: no '{row}' rows from {bench}")
    return min(times)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-on", required=True,
                        help="microbench from the default (instrumented) build")
    parser.add_argument("--bench-off", required=True,
                        help="microbench from the -DALTROUTE_OBS=OFF build")
    parser.add_argument("--row", default="BM_NsfnetSweepThreads/1",
                        help="benchmark row to compare "
                             "(default BM_NsfnetSweepThreads/1)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved A/B rounds per binary (default 3)")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="benchmark repetitions per round (default 1)")
    parser.add_argument("--max-overhead", type=float,
                        default=float(os.environ.get("OVERHEAD_TOLERANCE", 3.0)),
                        help="max tolerated overhead in percent "
                             "(default 3, or $OVERHEAD_TOLERANCE)")
    args = parser.parse_args()

    on_ms = float("inf")
    off_ms = float("inf")
    for round_index in range(args.rounds):
        print(f"overhead_gate: round {round_index + 1}/{args.rounds}",
              file=sys.stderr)
        on_ms = min(on_ms, measure_once(args.bench_on, args.row, args.repetitions))
        off_ms = min(off_ms, measure_once(args.bench_off, args.row, args.repetitions))

    overhead_pct = 100.0 * (on_ms - off_ms) / off_ms
    verdict = "FAIL" if overhead_pct > args.max_overhead else "ok"
    print(f"overhead_gate: {args.row}: instrumentation off {off_ms:.1f} ms, "
          f"on {on_ms:.1f} ms -> {overhead_pct:+.2f}% overhead "
          f"(tolerance {args.max_overhead:.1f}%) [{verdict}]",
          file=sys.stderr)
    if overhead_pct > args.max_overhead:
        if os.environ.get("OVERHEAD_SKIP_GATE") == "1":
            print("overhead_gate: OVERHEAD_SKIP_GATE=1, reporting only",
                  file=sys.stderr)
            return 0
        print("overhead_gate: the instrumented build exceeds the overhead "
              "budget; profile the ScopedPhase / counter sites, or override "
              "with --max-overhead / $OVERHEAD_TOLERANCE / OVERHEAD_SKIP_GATE=1",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
