#!/usr/bin/env python3
"""Record the sweep-harness benchmark as a small committed-artifact JSON.

Runs the microbench's BM_NsfnetSweepThreads rows (the end-to-end parallel
sweep wall clock, one row per thread count) and distils google-benchmark's
raw output into BENCH_sweep.json: mean/median milliseconds per thread
count, plus the git revision and date, so CI can archive one comparable
perf record per commit.

    $ python3 tools/bench_record.py --bench build/bench/microbench \
          --out BENCH_sweep.json --repetitions 3

Alongside the timings, the record carries the engine's deterministic
perf counters (obs/prof/counters.hpp) that the benchmarks export as
google-benchmark user counters -- events popped per sweep, peak queue
depth, the protection-memo hit rate, and so on.  Counter rows come from
the timing family plus the families named by --counter-filter (default
BM_FailureScenarioSweep|BM_AdaptiveControlSweep, which exercise the
memo/kill/rebuild paths and the closed-loop control counters -- epochs
fired, links re-targeted, deadband holds -- that the plain load sweep
never touches).

With --baseline, the fresh record is also GATED against a previous
BENCH_sweep.json: the run fails when the mean at threads=1 or at the
highest thread count present in both records regresses by more than
--max-regression percent (default 10).  A missing baseline file passes
with a note, so the first run on a fresh runner records without gating.
Counter drift against the baseline is reported too, but only ever as a
WARNING: the counters are bit-deterministic for a fixed workload, so a
drift usually just means the engine legitimately changed behaviour
(e.g. a scheduling fix) -- flag it for review, don't fail the push.

Override knobs, for when a regression is expected (e.g. an accepted
trade-off or a known-noisy runner):
  * --max-regression 25        -- widen the tolerance for one invocation
  * BENCH_REGRESSION_TOLERANCE -- same, via the environment (CI variable)
  * BENCH_SKIP_GATE=1          -- record but skip the comparison entirely

Exits non-zero when the benchmark binary fails, produces no matching
rows, or the gate trips.  Needs only the standard library.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import subprocess
import sys
import tempfile


def git_sha() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_benchmark(bench: str, bench_filter: str, repetitions: int) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        cmd = [
            bench,
            f"--benchmark_filter={bench_filter}",
            f"--benchmark_out={raw_path}",
            "--benchmark_out_format=json",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=false",
        ]
        subprocess.run(cmd, check=True, stdout=sys.stderr)
        with open(raw_path, encoding="utf-8") as handle:
            return json.load(handle)
    finally:
        os.unlink(raw_path)


# Keys google-benchmark itself writes into every row of the JSON output.
# Anything numeric OUTSIDE this set is a user counter exported by the
# benchmark body (state.counters[...]) and gets recorded verbatim.
STANDARD_ROW_FIELDS = {
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "label", "error_occurred",
    "error_message", "big_o", "rms", "allocs_per_iter",
    "max_bytes_used", "total_allocated_bytes", "utilization",
}


def counter_row_key(name: str) -> str:
    """BM_NsfnetSweepThreads/4/real_time -> BM_NsfnetSweepThreads/4."""
    for suffix in ("/real_time", "/process_time"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def collect_counters(raw: dict) -> dict:
    """User-counter medians per benchmark row, keyed 'Family/arg'.

    The engine counters are deterministic for a fixed workload, so the
    median across repetitions is just noise insurance for the few
    rate-style counters (e.g. memo_hit_rate) that divide by wall time.
    """
    samples: dict[str, dict[str, list[float]]] = {}
    for row in raw.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        key = counter_row_key(row.get("name", ""))
        for field, value in row.items():
            if field in STANDARD_ROW_FIELDS or not isinstance(value, (int, float)):
                continue
            samples.setdefault(key, {}).setdefault(field, []).append(float(value))
    return {
        key: {
            counter: round(statistics.median(values), 6)
            for counter, values in sorted(counters.items())
        }
        for key, counters in sorted(samples.items())
    }


def warn_counter_drift(fresh: dict, baseline: dict) -> int:
    """Prints a WARNING per drifted counter shared by both records.

    Deliberately never fails the run: see the module docstring.  Returns
    the number of drifted counters (for the summary line / tests)."""
    drifted = 0
    for key in sorted(set(fresh) & set(baseline)):
        for counter in sorted(set(fresh[key]) & set(baseline[key])):
            old = float(baseline[key][counter])
            new = float(fresh[key][counter])
            scale = max(abs(old), abs(new), 1e-12)
            if abs(new - old) / scale <= 1e-6:
                continue
            drifted += 1
            print(f"bench_record: WARNING: counter drift {key}.{counter}: "
                  f"{old:g} -> {new:g} (informational, not a gate)",
                  file=sys.stderr)
    if drifted:
        print(f"bench_record: {drifted} counter(s) drifted vs baseline -- "
              "review whether the engine change was intended",
              file=sys.stderr)
    return drifted


def threads_of(name: str, base: str) -> str | None:
    """BM_NsfnetSweepThreads/4/real_time -> '4' (None for foreign rows)."""
    if not name.startswith(base + "/"):
        return None
    return name[len(base) + 1 :].split("/")[0]


def distil(raw: dict, base: str) -> dict:
    """Per-thread-count mean/median real time in milliseconds."""
    samples: dict[str, list[float]] = {}
    for row in raw.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue  # recomputed below from the iteration rows
        threads = threads_of(row.get("name", ""), base)
        if threads is None:
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[row.get("time_unit", "ns")]
        samples.setdefault(threads, []).append(float(row["real_time"]) * scale)
    return {
        threads: {
            "mean_ms": round(statistics.fmean(times), 3),
            "median_ms": round(statistics.median(times), 3),
            "samples": len(times),
        }
        for threads, times in sorted(samples.items(), key=lambda kv: int(kv[0]))
    }


def gate_thread_counts(fresh: dict, baseline: dict) -> list[str]:
    """The rows the gate watches: serial, and the widest parallel row the
    two records share (runner core counts may differ across records)."""
    shared = sorted(set(fresh) & set(baseline), key=int)
    watched = []
    if "1" in shared:
        watched.append("1")
    if shared and shared[-1] != "1":
        watched.append(shared[-1])
    return watched


def check_regression(fresh: dict, baseline_path: str, tolerance_pct: float) -> list[str]:
    """Compares fresh per-thread means against the baseline record.
    Returns a list of human-readable failures (empty = gate passes)."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_threads = baseline.get("threads", {})
    failures = []
    for threads in gate_thread_counts(fresh, base_threads):
        old = float(base_threads[threads]["mean_ms"])
        new = float(fresh[threads]["mean_ms"])
        if old <= 0.0:
            continue
        delta_pct = 100.0 * (new - old) / old
        status = "FAIL" if delta_pct > tolerance_pct else "ok"
        print(f"bench_record: gate threads={threads}: {old:.1f} ms -> {new:.1f} ms "
              f"({delta_pct:+.1f}%, tolerance {tolerance_pct:.0f}%) [{status}]",
              file=sys.stderr)
        if delta_pct > tolerance_pct:
            failures.append(
                f"threads={threads} regressed {delta_pct:+.1f}% "
                f"({old:.1f} ms -> {new:.1f} ms)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="build/bench/microbench",
                        help="microbench binary (default build/bench/microbench)")
    parser.add_argument("--filter", default="BM_NsfnetSweepThreads",
                        help="benchmark family to record")
    parser.add_argument("--counter-filter",
                        default="BM_FailureScenarioSweep|BM_AdaptiveControlSweep",
                        help="extra famil(ies) run only for their user "
                             "counters, '|'-separated regex alternatives "
                             "(default BM_FailureScenarioSweep|"
                             "BM_AdaptiveControlSweep; '' disables)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="repetitions per row (default 3)")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output path (default BENCH_sweep.json)")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_sweep.json to gate against "
                             "(missing file: record only, no gate)")
    parser.add_argument("--max-regression", type=float,
                        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", 10.0)),
                        help="max tolerated mean regression in percent "
                             "(default 10, or $BENCH_REGRESSION_TOLERANCE)")
    args = parser.parse_args()

    bench_filter = args.filter
    if args.counter_filter:
        bench_filter = f"{args.filter}|{args.counter_filter}"
    raw = run_benchmark(args.bench, bench_filter, args.repetitions)
    results = distil(raw, args.filter)
    if not results:
        print(f"bench_record: no '{args.filter}' rows in benchmark output",
              file=sys.stderr)
        return 1
    counters = collect_counters(raw)

    record = {
        "benchmark": args.filter,
        "git_sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "repetitions": args.repetitions,
        "unit": "milliseconds of real time per sweep",
        "threads": results,
        "counters": counters,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"bench_record: wrote {args.out}", file=sys.stderr)

    if args.baseline:
        if os.environ.get("BENCH_SKIP_GATE") == "1":
            print("bench_record: BENCH_SKIP_GATE=1, skipping regression gate",
                  file=sys.stderr)
        elif not os.path.exists(args.baseline):
            print(f"bench_record: no baseline at {args.baseline}, recording only",
                  file=sys.stderr)
        else:
            with open(args.baseline, encoding="utf-8") as handle:
                warn_counter_drift(counters, json.load(handle).get("counters", {}))
            failures = check_regression(results, args.baseline, args.max_regression)
            if failures:
                for failure in failures:
                    print(f"bench_record: REGRESSION: {failure}", file=sys.stderr)
                print("bench_record: override with --max-regression, "
                      "$BENCH_REGRESSION_TOLERANCE, or BENCH_SKIP_GATE=1",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
