#!/usr/bin/env python3
"""Record the sweep-harness benchmark as a small committed-artifact JSON.

Runs the microbench's BM_NsfnetSweepThreads rows (the end-to-end parallel
sweep wall clock, one row per thread count) and distils google-benchmark's
raw output into BENCH_sweep.json: mean/median milliseconds per thread
count, plus the git revision and date, so CI can archive one comparable
perf record per commit.

    $ python3 tools/bench_record.py --bench build/bench/microbench \
          --out BENCH_sweep.json --repetitions 3

Exits non-zero when the benchmark binary fails or produces no matching
rows.  Needs only the standard library.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import subprocess
import sys
import tempfile


def git_sha() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_benchmark(bench: str, bench_filter: str, repetitions: int) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        cmd = [
            bench,
            f"--benchmark_filter={bench_filter}",
            f"--benchmark_out={raw_path}",
            "--benchmark_out_format=json",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=false",
        ]
        subprocess.run(cmd, check=True, stdout=sys.stderr)
        with open(raw_path, encoding="utf-8") as handle:
            return json.load(handle)
    finally:
        os.unlink(raw_path)


def threads_of(name: str, base: str) -> str | None:
    """BM_NsfnetSweepThreads/4/real_time -> '4' (None for foreign rows)."""
    if not name.startswith(base + "/"):
        return None
    return name[len(base) + 1 :].split("/")[0]


def distil(raw: dict, base: str) -> dict:
    """Per-thread-count mean/median real time in milliseconds."""
    samples: dict[str, list[float]] = {}
    for row in raw.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue  # recomputed below from the iteration rows
        threads = threads_of(row.get("name", ""), base)
        if threads is None:
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[row.get("time_unit", "ns")]
        samples.setdefault(threads, []).append(float(row["real_time"]) * scale)
    return {
        threads: {
            "mean_ms": round(statistics.fmean(times), 3),
            "median_ms": round(statistics.median(times), 3),
            "samples": len(times),
        }
        for threads, times in sorted(samples.items(), key=lambda kv: int(kv[0]))
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="build/bench/microbench",
                        help="microbench binary (default build/bench/microbench)")
    parser.add_argument("--filter", default="BM_NsfnetSweepThreads",
                        help="benchmark family to record")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="repetitions per row (default 3)")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output path (default BENCH_sweep.json)")
    args = parser.parse_args()

    raw = run_benchmark(args.bench, args.filter, args.repetitions)
    results = distil(raw, args.filter)
    if not results:
        print(f"bench_record: no '{args.filter}' rows in benchmark output",
              file=sys.stderr)
        return 1

    record = {
        "benchmark": args.filter,
        "git_sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "repetitions": args.repetitions,
        "unit": "milliseconds of real time per sweep",
        "threads": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"bench_record: wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
