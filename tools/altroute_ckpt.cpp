// altroute_ckpt: checkpoint-file inspector.
//
// Works on any container produced by src/snapshot -- scenario checkpoints
// (--checkpoint-out / mid-run sweep .ckpt files) and sweep carry .res
// files all share the sectioned format (format.hpp).
//
//   usage: altroute_ckpt dump FILE
//            prints the header, the section table (tag, offset, size,
//            CRC-32), the META self-identification, and -- for scenario
//            checkpoints -- a capture-point summary.
//
//          altroute_ckpt diff A B
//            compares two files section by section.  For two scenario
//            checkpoints the first diverging FIELD is named (e.g.
//            "CONF: advanced_to: 12.5 vs 13.25"); otherwise the first
//            diverging byte offset within the section is reported.
//            exit 0 = identical, 1 = files differ, 2 = bad usage / error.
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"

using namespace altroute;

namespace {

// META kind of a parsed container (every snapshot file self-identifies).
std::string meta_kind(const std::vector<snapshot::Section>& sections, const std::string& name) {
  for (const snapshot::Section& s : sections) {
    if (s.tag == "META") {
      snapshot::SectionReader r(s);
      return r.str();
    }
  }
  throw std::invalid_argument("checkpoint '" + name + "': missing section 'META'");
}

int dump(const std::string& path) {
  const std::vector<std::uint8_t> bytes = snapshot::read_file_bytes(path);
  const std::vector<snapshot::SectionInfo> table = snapshot::read_section_table(bytes, path);
  const std::vector<snapshot::Section> sections = snapshot::parse_container(bytes, path);

  std::printf("%s: %zu bytes, format v%u, %zu sections\n", path.c_str(), bytes.size(),
              snapshot::kFormatVersion, table.size());
  std::printf("  %-4s  %10s  %10s  %s\n", "tag", "offset", "size", "crc32");
  for (const snapshot::SectionInfo& s : table) {
    std::printf("  %-4s  %10" PRIu64 "  %10" PRIu64 "  %08x\n", s.tag.c_str(), s.offset, s.size,
                s.crc);
  }

  const std::string kind = meta_kind(sections, path);
  std::printf("kind: %s\n", kind.c_str());
  if (kind == "scenario-checkpoint") {
    const snapshot::ScenarioCheckpoint c = snapshot::decode_checkpoint(sections, path);
    std::printf("  captured at t=%g (advanced to %g), call %" PRIu64 "/%" PRIu64
                ", scenario event %" PRIu64 "/%" PRIu64 "\n",
                c.checkpoint_at, c.advanced_to, c.next_call, c.trace_calls, c.next_event,
                c.scenario_events);
    std::printf("  network: %d nodes, %d links; horizon %g, warmup %g, H=%d, bins=%d\n",
                c.node_count, c.link_count, c.horizon, c.warmup, c.max_alt_hops, c.time_bins);
    std::printf("  policy: %s (%zu state bytes), engine: %s\n", c.policy.c_str(),
                c.policy_state.size(), c.legacy_event_queue != 0 ? "heap" : "calendar");
    std::printf("  in flight: %zu calls, %zu queued departures (next seq %" PRIu64 ")\n",
                c.arena.calls.size(), c.departures.entries.size(), c.departures.next_seq);
    std::printf("  counters: offered %" PRId64 ", blocked %" PRId64 ", carried %" PRId64
                "+%" PRId64 ", dropped %" PRId64 "\n",
                c.counters.offered, c.counters.blocked, c.counters.carried_primary,
                c.counters.carried_alternate, c.counters.dropped);
  }
  return 0;
}

// --- field-level diff of two scenario checkpoints ---------------------------
// Walks the logical fields in section order and reports the FIRST
// divergence by name.  Returns true when a difference was printed.

std::string fmt_f(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}
std::string fmt_u(std::uint64_t v) { return std::to_string(v); }
std::string fmt_i(std::int64_t v) { return std::to_string(v); }

struct FieldDiff {
  bool found{false};
  std::string text;

  // First hit wins; later checks are no-ops.
  void hit(const char* section, const std::string& field, const std::string& a,
           const std::string& b) {
    if (found) return;
    found = true;
    text = std::string(section) + ": " + field + ": " + a + " vs " + b;
  }
  void f(const char* s, const char* n, double a, double b) {
    if (a != b) hit(s, n, fmt_f(a), fmt_f(b));
  }
  void u(const char* s, const char* n, std::uint64_t a, std::uint64_t b) {
    if (a != b) hit(s, n, fmt_u(a), fmt_u(b));
  }
  void i(const char* s, const char* n, std::int64_t a, std::int64_t b) {
    if (a != b) hit(s, n, fmt_i(a), fmt_i(b));
  }
  void str(const char* s, const char* n, const std::string& a, const std::string& b) {
    if (a != b) hit(s, n, "'" + a + "'", "'" + b + "'");
  }
  template <class T>
  void vec(const char* s, const char* n, const std::vector<T>& a, const std::vector<T>& b) {
    if (found) return;
    if (a.size() != b.size()) {
      hit(s, std::string(n) + ".size", fmt_u(a.size()), fmt_u(b.size()));
      return;
    }
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (!(a[k] == b[k])) {
        hit(s, std::string(n) + "[" + std::to_string(k) + "]",
            fmt_f(static_cast<double>(a[k])), fmt_f(static_cast<double>(b[k])));
        return;
      }
    }
  }
};

bool diff_checkpoints(const snapshot::ScenarioCheckpoint& a,
                      const snapshot::ScenarioCheckpoint& b) {
  FieldDiff d;
  d.f("CONF", "checkpoint_at", a.checkpoint_at, b.checkpoint_at);
  d.f("CONF", "advanced_to", a.advanced_to, b.advanced_to);
  d.u("CONF", "next_call", a.next_call, b.next_call);
  d.u("CONF", "next_event", a.next_event, b.next_event);
  d.f("CONF", "traffic_factor", a.traffic_factor, b.traffic_factor);
  d.f("CONF", "horizon", a.horizon, b.horizon);
  d.f("CONF", "warmup", a.warmup, b.warmup);
  d.u("CONF", "policy_seed", a.policy_seed, b.policy_seed);
  d.i("CONF", "node_count", a.node_count, b.node_count);
  d.i("CONF", "link_count", a.link_count, b.link_count);
  d.u("CONF", "trace_calls", a.trace_calls, b.trace_calls);
  d.u("CONF", "scenario_events", a.scenario_events, b.scenario_events);
  d.u("CONF", "legacy_event_queue", a.legacy_event_queue, b.legacy_event_queue);
  d.i("CONF", "max_alt_hops", a.max_alt_hops, b.max_alt_hops);
  d.i("CONF", "time_bins", a.time_bins, b.time_bins);
  d.vec("GRPH", "link_enabled", a.link_enabled, b.link_enabled);
  d.vec("GRPH", "link_capacity", a.link_capacity, b.link_capacity);
  d.vec("NETS", "occupancy", a.occupancy, b.occupancy);
  d.vec("NETS", "reservation", a.reservation, b.reservation);
  for (std::size_t k = 0; k < 4; ++k) {
    d.u("RNGS", ("engine_rng[" + std::to_string(k) + "]").c_str(), a.engine_rng[k],
        b.engine_rng[k]);
  }
  d.str("POLS", "policy", a.policy, b.policy);
  d.vec("POLS", "policy_state", a.policy_state, b.policy_state);
  d.u("EVTQ", "next_seq", a.departures.next_seq, b.departures.next_seq);
  if (!d.found && a.departures.entries.size() != b.departures.entries.size()) {
    d.hit("EVTQ", "entries.size", fmt_u(a.departures.entries.size()),
          fmt_u(b.departures.entries.size()));
  }
  for (std::size_t k = 0; !d.found && k < a.departures.entries.size(); ++k) {
    const std::string p = "entries[" + std::to_string(k) + "].";
    d.f("EVTQ", (p + "time").c_str(), a.departures.entries[k].time, b.departures.entries[k].time);
    d.u("EVTQ", (p + "seq").c_str(), a.departures.entries[k].seq, b.departures.entries[k].seq);
    d.u("EVTQ", (p + "payload").c_str(), a.departures.entries[k].payload,
        b.departures.entries[k].payload);
  }
  d.vec("ARNA", "gens", a.arena.gens, b.arena.gens);
  d.vec("ARNA", "live_order", a.arena.live_order, b.arena.live_order);
  d.vec("ARNA", "free_order", a.arena.free_order, b.arena.free_order);
  if (!d.found && a.arena.calls.size() != b.arena.calls.size()) {
    d.hit("ARNA", "calls.size", fmt_u(a.arena.calls.size()), fmt_u(b.arena.calls.size()));
  }
  for (std::size_t k = 0; !d.found && k < a.arena.calls.size(); ++k) {
    const std::string p = "calls[" + std::to_string(k) + "].";
    d.vec("ARNA", (p + "nodes").c_str(), a.arena.calls[k].nodes, b.arena.calls[k].nodes);
    d.vec("ARNA", (p + "links").c_str(), a.arena.calls[k].links, b.arena.calls[k].links);
    d.i("ARNA", (p + "units").c_str(), a.arena.calls[k].units, b.arena.calls[k].units);
    d.u("ARNA", (p + "alternate").c_str(), a.arena.calls[k].alternate,
        b.arena.calls[k].alternate);
  }
  d.i("CNTR", "offered", a.counters.offered, b.counters.offered);
  d.i("CNTR", "blocked", a.counters.blocked, b.counters.blocked);
  d.i("CNTR", "carried_primary", a.counters.carried_primary, b.counters.carried_primary);
  d.i("CNTR", "carried_alternate", a.counters.carried_alternate, b.counters.carried_alternate);
  d.vec("CNTR", "per_pair", a.counters.per_pair, b.counters.per_pair);
  d.vec("CNTR", "class_bandwidth", a.counters.class_bandwidth, b.counters.class_bandwidth);
  d.vec("CNTR", "class_offered", a.counters.class_offered, b.counters.class_offered);
  d.vec("CNTR", "class_blocked", a.counters.class_blocked, b.counters.class_blocked);
  d.vec("CNTR", "carried_by_hops", a.counters.carried_by_hops, b.counters.carried_by_hops);
  d.vec("CNTR", "bin_offered", a.counters.bin_offered, b.counters.bin_offered);
  d.vec("CNTR", "bin_blocked", a.counters.bin_blocked, b.counters.bin_blocked);
  d.i("CNTR", "dropped", a.counters.dropped, b.counters.dropped);
  if (!d.found && a.counters.applied.size() != b.counters.applied.size()) {
    d.hit("CNTR", "applied.size", fmt_u(a.counters.applied.size()),
          fmt_u(b.counters.applied.size()));
  }
  for (std::size_t k = 0; !d.found && k < a.counters.applied.size(); ++k) {
    const std::string p = "applied[" + std::to_string(k) + "].";
    d.f("CNTR", (p + "time").c_str(), a.counters.applied[k].time, b.counters.applied[k].time);
    d.i("CNTR", (p + "kind").c_str(), a.counters.applied[k].kind, b.counters.applied[k].kind);
    d.i("CNTR", (p + "links_changed").c_str(), a.counters.applied[k].links_changed,
        b.counters.applied[k].links_changed);
    d.i("CNTR", (p + "calls_killed").c_str(), a.counters.applied[k].calls_killed,
        b.counters.applied[k].calls_killed);
  }
  d.u("OBSM", "present", a.obs.present, b.obs.present);
  d.i("OBSM", "grid_cursor", a.obs.grid_cursor, b.obs.grid_cursor);
  d.vec("OBSM", "ints", a.obs.ints, b.obs.ints);
  d.vec("OBSM", "reals", a.obs.reals, b.obs.reals);
  d.vec("MEMO", "memo_lambda", a.memo_lambda, b.memo_lambda);
  d.vec("MEMO", "memo_capacity", a.memo_capacity, b.memo_capacity);
  if (d.found) std::printf("%s\n", d.text.c_str());
  return d.found;
}

int diff(const std::string& path_a, const std::string& path_b) {
  const std::vector<snapshot::Section> a =
      snapshot::parse_container(snapshot::read_file_bytes(path_a), path_a);
  const std::vector<snapshot::Section> b =
      snapshot::parse_container(snapshot::read_file_bytes(path_b), path_b);

  // Section roster first: a missing/extra section is the coarsest diff.
  bool differ = false;
  for (const snapshot::Section& s : a) {
    bool present = false;
    for (const snapshot::Section& t : b) present = present || t.tag == s.tag;
    if (!present) {
      std::printf("%s: only in %s\n", s.tag.c_str(), path_a.c_str());
      differ = true;
    }
  }
  for (const snapshot::Section& t : b) {
    bool present = false;
    for (const snapshot::Section& s : a) present = present || s.tag == t.tag;
    if (!present) {
      std::printf("%s: only in %s\n", t.tag.c_str(), path_b.c_str());
      differ = true;
    }
  }
  if (differ) return 1;

  const std::string kind_a = meta_kind(a, path_a);
  const std::string kind_b = meta_kind(b, path_b);
  if (kind_a != kind_b) {
    std::printf("META: kind: '%s' vs '%s'\n", kind_a.c_str(), kind_b.c_str());
    return 1;
  }

  if (kind_a == "scenario-checkpoint") {
    // Same roster + decodable: name the first diverging logical field.
    if (diff_checkpoints(snapshot::decode_checkpoint(a, path_a),
                         snapshot::decode_checkpoint(b, path_b))) {
      return 1;
    }
    std::printf("identical (%zu sections)\n", a.size());
    return 0;
  }

  // Sweep carry files: byte-level per section, first diverging offset.
  for (const snapshot::Section& s : a) {
    for (const snapshot::Section& t : b) {
      if (t.tag != s.tag) continue;
      const std::size_t n = s.bytes.size() < t.bytes.size() ? s.bytes.size() : t.bytes.size();
      std::size_t k = 0;
      while (k < n && s.bytes[k] == t.bytes[k]) ++k;
      if (k < n || s.bytes.size() != t.bytes.size()) {
        std::printf("%s: first divergence at byte %zu (sizes %zu vs %zu)\n", s.tag.c_str(), k,
                    s.bytes.size(), t.bytes.size());
        differ = true;
      }
    }
  }
  if (!differ) std::printf("identical (%zu sections)\n", a.size());
  return differ ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3 && std::string(argv[1]) == "dump") return dump(argv[2]);
    if (argc == 4 && std::string(argv[1]) == "diff") return diff(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altroute_ckpt: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "usage: altroute_ckpt dump FILE | altroute_ckpt diff A B\n");
  return 2;
}
