// google-benchmark micro-benchmarks for the performance-critical kernels:
// teletraffic math, route computation, event queue, and the end-to-end
// call-processing rate of the simulation engine.
#include <benchmark/benchmark.h>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/erlang_bound.hpp"
#include "erlang/state_protection.hpp"
#include "loss/engine.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "routing/shortest_paths.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/call_trace.hpp"
#include "sim/event_queue.hpp"
#include "erlang/kaufman_roberts.hpp"
#include "routing/fixed_point.hpp"
#include "sim/rng.hpp"
#include "obs/prof/counters.hpp"
#include "scenario/parse.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/format.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/optimal_overflow.hpp"

namespace {

using namespace altroute;

void BM_ErlangB(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  double a = 0.74 * c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(erlang::erlang_b(a, c));
    a += 1e-9;  // defeat value caching
  }
}
BENCHMARK(BM_ErlangB)->Arg(100)->Arg(1000)->Arg(10000);

void BM_StateProtectionSolve(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  double lambda = 0.8 * c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(erlang::min_state_protection(lambda, c, 6));
    lambda += 1e-9;
  }
}
BENCHMARK(BM_StateProtectionSolve)->Arg(100)->Arg(1000);

void BM_ErlangBoundNsfnet(benchmark::State& state) {
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(erlang::erlang_bound(g, t).bound);
  }
}
BENCHMARK(BM_ErlangBoundNsfnet);

void BM_MinHopPath(benchmark::State& state) {
  const net::Graph g = net::nsfnet_t3();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::min_hop_path(g, net::NodeId(i % 11), net::NodeId(11)));
    ++i;
  }
}
BENCHMARK(BM_MinHopPath);

void BM_AllSimplePathsNsfnet(benchmark::State& state) {
  const net::Graph g = net::nsfnet_t3();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::all_simple_paths(g, net::NodeId(0), net::NodeId(6), 11));
  }
}
BENCHMARK(BM_AllSimplePathsNsfnet);

void BM_BuildRouteTableNsfnet(benchmark::State& state) {
  const net::Graph g = net::nsfnet_t3();
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::build_min_hop_routes(g, h));
  }
}
BENCHMARK(BM_BuildRouteTableNsfnet)->Arg(6)->Arg(11);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::Rng rng(1, 0);
  sim::EventQueue<int> q;
  const int depth = static_cast<int>(state.range(0));
  double now = 0.0;
  for (int i = 0; i < depth; ++i) q.schedule(rng.uniform01(), i);
  for (auto _ : state) {
    const auto [t, payload] = q.pop();
    now = t;
    q.schedule(now + rng.exponential(1.0), payload);
  }
  benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

void BM_CalendarQueueChurn(benchmark::State& state) {
  // Same hold-model churn as BM_EventQueueChurn, on the calendar queue the
  // engines now run: O(1) amortized per operation vs the heap's O(log n),
  // so the gap should widen with depth.
  sim::Rng rng(1, 0);
  sim::CalendarQueue<int> q;
  const int depth = static_cast<int>(state.range(0));
  double now = 0.0;
  for (int i = 0; i < depth; ++i) q.schedule(rng.uniform01(), i);
  for (auto _ : state) {
    const auto [t, payload] = q.pop();
    now = t;
    q.schedule(now + rng.exponential(1.0), payload);
  }
  benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_CalendarQueueChurn)->Arg(1000)->Arg(100000);

void BM_TraceGenerationNsfnet(benchmark::State& state) {
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_trace(t, 110.0, seed++).size());
  }
}
BENCHMARK(BM_TraceGenerationNsfnet)->Unit(benchmark::kMillisecond);

void BM_EndToEndNsfnetRun(benchmark::State& state) {
  // Calls routed per second through the full engine with the controlled
  // policy at nominal load (~132k calls per iteration).
  const net::Graph g = net::nsfnet_t3();
  const core::Controller controller(g, study::nsfnet_nominal_traffic(),
                                    core::ControllerConfig{11});
  const sim::CallTrace trace = sim::generate_trace(study::nsfnet_nominal_traffic(), 110.0, 7);
  core::ControlledAlternatePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.run(policy, trace).blocked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EndToEndNsfnetRun)->Unit(benchmark::kMillisecond);

void BM_NsfnetSweepThreads(benchmark::State& state) {
  // Serial-vs-parallel wall clock of the whole sweep harness on a reduced
  // Figure-6 NSFNet sweep.  Arg = SweepOptions::threads; compare the /1 row
  // against /4 for the parallel speedup (results are bit-identical by
  // construction, only the wall clock moves -- needs >= 4 hardware threads
  // to show the full effect).
  const net::Graph g = net::nsfnet_t3();
  study::SweepOptions options;
  options.load_factors = {0.9, 1.0, 1.1};
  options.seeds = 8;
  options.measure = 40.0;
  options.warmup = 10.0;
  options.max_alt_hops = 11;
  options.erlang_bound = false;
  options.threads = static_cast<int>(state.range(0));
  // Deterministic engine counters, surfaced as user counters so the bench
  // recorder (tools/bench_record.py) tracks WHAT the run did alongside how
  // long it took.  Tallies accumulate across iterations -> kAvgIterations
  // reports the per-iteration value; peaks merge by max -> plain counter.
  obs::prof::EngineCounters counters;
  options.prof.counters = &counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        study::run_sweep(g, study::nsfnet_nominal_traffic(),
                         {study::PolicyKind::kSinglePath,
                          study::PolicyKind::kUncontrolledAlternate,
                          study::PolicyKind::kControlledAlternate},
                         options)
            .curves.size());
  }
  state.counters["events_popped"] = benchmark::Counter(
      static_cast<double>(counters.events_popped), benchmark::Counter::kAvgIterations);
  state.counters["events_scheduled"] = benchmark::Counter(
      static_cast<double>(counters.events_scheduled), benchmark::Counter::kAvgIterations);
  state.counters["peak_queue_depth"] =
      benchmark::Counter(static_cast<double>(counters.peak_queue_depth));
}
BENCHMARK(BM_NsfnetSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FailureScenarioSweep(benchmark::State& state) {
  // Scenario-engine sweep over the canonical 2<->3 fail/repair transient.
  // The resolve_protection events re-solve Eq. 15 per link through the
  // Erlang memo, so this is the bench that surfaces memo hit rates (the
  // static sweep above never re-solves).
  const net::Graph g = net::nsfnet_t3();
  const scenario::Scenario scen = scenario::scenario_from_json(R"({
    "name": "bench failure recovery",
    "events": [
      {"time": 20, "type": "link_fail",          "a": 2, "b": 3},
      {"time": 20, "type": "resolve_protection"},
      {"time": 35, "type": "link_repair",        "a": 2, "b": 3},
      {"time": 35, "type": "resolve_protection"}
    ]})");
  study::ScenarioSweepOptions options;
  options.seeds = 6;
  options.measure = 40.0;
  options.warmup = 10.0;
  options.max_alt_hops = 11;
  options.time_bins = 10;
  options.threads = static_cast<int>(state.range(0));
  obs::prof::EngineCounters counters;
  options.prof.counters = &counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        study::run_scenario_sweep(g, study::nsfnet_nominal_traffic(), scen,
                                  {study::PolicyKind::kControlledAlternate}, options)
            .curves.size());
  }
  state.counters["memo_hits"] = benchmark::Counter(static_cast<double>(counters.memo_hits),
                                                   benchmark::Counter::kAvgIterations);
  state.counters["memo_misses"] = benchmark::Counter(
      static_cast<double>(counters.memo_misses), benchmark::Counter::kAvgIterations);
  const double lookups =
      static_cast<double>(counters.memo_hits) + static_cast<double>(counters.memo_misses);
  state.counters["memo_hit_rate"] = benchmark::Counter(
      lookups > 0.0 ? static_cast<double>(counters.memo_hits) / lookups : 0.0);
  state.counters["protection_resolves"] = benchmark::Counter(
      static_cast<double>(counters.protection_resolves), benchmark::Counter::kAvgIterations);
  state.counters["calls_killed"] = benchmark::Counter(
      static_cast<double>(counters.calls_killed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FailureScenarioSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AdaptiveControlSweep(benchmark::State& state) {
  // The closed-loop control plane on the same fail/repair transient: the
  // arg is the control epoch period (0 = control off, the zero-cost-when-
  // off baseline -- its delta against epoch > 0 prices the estimator
  // observe() per call plus one Eq.-15 re-solve per epoch).
  const net::Graph g = net::nsfnet_t3();
  const scenario::Scenario scen = scenario::scenario_from_json(R"({
    "name": "bench adaptive control",
    "events": [
      {"time": 20, "type": "link_fail",   "a": 2, "b": 3},
      {"time": 35, "type": "link_repair", "a": 2, "b": 3}
    ]})");
  study::ScenarioSweepOptions options;
  options.seeds = 6;
  options.measure = 40.0;
  options.warmup = 10.0;
  options.max_alt_hops = 11;
  options.time_bins = 10;
  options.control.epoch = static_cast<double>(state.range(0));
  options.control.estimator = control::EstimatorKind::kEwma;
  obs::prof::EngineCounters counters;
  options.prof.counters = &counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        study::run_scenario_sweep(g, study::nsfnet_nominal_traffic(), scen,
                                  {study::PolicyKind::kControlledAlternate}, options)
            .curves.size());
  }
  state.counters["control_epochs"] = benchmark::Counter(
      static_cast<double>(counters.control_epochs), benchmark::Counter::kAvgIterations);
  state.counters["control_retargets"] = benchmark::Counter(
      static_cast<double>(counters.control_retargets), benchmark::Counter::kAvgIterations);
  state.counters["control_holds"] = benchmark::Counter(
      static_cast<double>(counters.control_holds), benchmark::Counter::kAvgIterations);
  state.counters["memo_hits"] = benchmark::Counter(static_cast<double>(counters.memo_hits),
                                                   benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AdaptiveControlSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(5)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_KaufmanRoberts(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  std::vector<erlang::RateClass> classes = {{0.5 * c, 1}, {0.06 * c, 5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(erlang::kaufman_roberts_blocking(classes, c));
    classes[0].offered += 1e-9;
  }
}
BENCHMARK(BM_KaufmanRoberts)->Arg(100)->Arg(1000);

void BM_ErlangFixedPointNsfnet(benchmark::State& state) {
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::erlang_fixed_point(g, routes, t).network_blocking);
  }
}
BENCHMARK(BM_ErlangFixedPointNsfnet);

void BM_OptimalOverflowMdp(benchmark::State& state) {
  study::OverflowSystem system;
  system.target_rate = 6.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        study::evaluate_overflow_policy(system, study::OverflowPolicy::kOptimal).loss_rate);
    system.target_rate += 1e-9;
  }
}
BENCHMARK(BM_OptimalOverflowMdp)->Unit(benchmark::kMillisecond);

void BM_EndToEndQuadrangleRun(benchmark::State& state) {
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix t = net::TrafficMatrix::uniform(4, 90.0);
  const core::Controller controller(g, t, core::ControllerConfig{3});
  const sim::CallTrace trace = sim::generate_trace(t, 110.0, 7);
  core::ControlledAlternatePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.run(policy, trace).blocked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EndToEndQuadrangleRun)->Unit(benchmark::kMillisecond);

void BM_CheckpointSaveRestore(benchmark::State& state) {
  // Serialize + revalidate + decode one warm NSFNet checkpoint (hundreds
  // of in-flight calls): the per-capture cost a periodic sweep checkpoint
  // pays, minus the file system.
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix& traffic = study::nsfnet_nominal_traffic();
  const sim::CallTrace trace = scenario::make_scenario_trace(traffic, {}, 60.0, 7);
  snapshot::BufferCheckpointSink sink;
  scenario::ScenarioEngineOptions options;
  options.max_alt_hops = 11;
  options.checkpoint_at = 40.0;
  options.checkpoints = &sink;
  core::ControlledAlternatePolicy policy;
  (void)scenario::run_scenario(g, traffic, policy, trace, {}, options);
  const snapshot::ScenarioCheckpoint& ckpt = sink.captured.front();
  std::vector<std::uint8_t> image;
  for (auto _ : state) {
    image = snapshot::render_container(snapshot::encode_checkpoint(ckpt));
    benchmark::DoNotOptimize(
        snapshot::decode_checkpoint(snapshot::parse_container(image, "bench"), "bench")
            .departures.entries.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CheckpointSaveRestore);

}  // namespace
