// The optimality gap of the Eq.-15 control, measured EXACTLY.
//
// On the canonical overflow system (direct link + one two-hop alternate
// with background primary traffic; see study/optimal_overflow.hpp) every
// policy's long-run loss rate is computed from the stationary distribution
// of the full chain -- no simulation noise -- and compared against the true
// optimal routing policy from relative value iteration.
//
// Expected shape: uncontrolled wins at light background and collapses past
// it; controlled tracks single-path's guarantee while capturing most of
// the overflow gain; the optimal policy's margin over controlled is the
// "price of locality" the paper's scheme pays for needing no global state.
#include "bench_common.hpp"
#include "study/optimal_overflow.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  study::TextTable table({"target_E", "background_E", "single", "uncontrolled",
                          "controlled(r)", "optimal", "gap_ctl_vs_opt%"});
  const std::vector<double> targets = cli.loads.value_or(std::vector<double>{4, 6, 8, 10});
  for (const double target : targets) {
    for (const double background : {1.5, 3.5, 5.5}) {
      study::OverflowSystem system;
      system.direct_capacity = 6;
      system.via_a_capacity = 6;
      system.via_b_capacity = 6;
      system.target_rate = target;
      system.background_a_rate = background;
      system.background_b_rate = background;
      const auto single =
          study::evaluate_overflow_policy(system, study::OverflowPolicy::kSinglePath);
      const auto uncontrolled =
          study::evaluate_overflow_policy(system, study::OverflowPolicy::kUncontrolled);
      const auto controlled =
          study::evaluate_overflow_policy(system, study::OverflowPolicy::kControlled);
      const auto optimal =
          study::evaluate_overflow_policy(system, study::OverflowPolicy::kOptimal);
      const double gap =
          optimal.loss_rate > 0.0
              ? 100.0 * (controlled.loss_rate - optimal.loss_rate) / optimal.loss_rate
              : 0.0;
      table.add_row({study::fmt(target, 1), study::fmt(background, 1),
                     study::fmt(single.loss_rate, 4), study::fmt(uncontrolled.loss_rate, 4),
                     study::fmt(controlled.loss_rate, 4) + " (" +
                         std::to_string(controlled.reservation_a) + ")",
                     study::fmt(optimal.loss_rate, 4), study::fmt(gap, 1)});
    }
  }
  bench::emit(table, cli,
              "Exact loss rates on the canonical overflow system (C = 6/6/6, "
              "losses in calls per unit time; gap = controlled excess over optimal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
