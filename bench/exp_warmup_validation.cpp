// Validating the paper's measurement protocol: is a 10-unit warm-up from
// an idle network really enough?
//
// Starting from idle, per-unit-time blocking observations are collected
// (no warm-up truncation) and MSER-5 picks the objective truncation point.
// The paper's choice holds if the detected transient stays at or below 10
// time units across loads and schemes -- which it does: the network's
// relaxation time is a few mean holding times.
//
// Also reports the mean carried hop count, the resource-cost fingerprint:
// alternate routing carries calls on more links per call, which is exactly
// why uncontrolled overflow can implode.
#include "bench_common.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "sim/call_trace.hpp"
#include "sim/mser.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::full_mesh(4, 100);
  const double horizon = 110.0;
  const int bins = static_cast<int>(horizon);  // 1-unit observation bins

  study::TextTable table({"E_per_pair", "scheme", "mser5_warmup_units",
                          "paper_warmup_ok", "mean_carried_hops"});
  for (const double load : cli.loads.value_or(std::vector<double>{70, 90, 110})) {
    const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, load);
    const core::Controller controller(g, traffic, core::ControllerConfig{3});
    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    struct Entry {
      loss::RoutingPolicy* policy;
      bool reservations;
    };
    for (const Entry entry : {Entry{&single, false}, Entry{&uncontrolled, false},
                              Entry{&controlled, true}}) {
      sim::RunningStats warmup_units;
      sim::RunningStats carried_hops;
      for (int s = 1; s <= shape.seeds; ++s) {
        const sim::CallTrace trace =
            sim::generate_trace(traffic, horizon, static_cast<std::uint64_t>(s));
        loss::EngineOptions options;
        options.warmup = 0.0;  // observe the transient itself
        options.link_stats = false;
        options.time_bins = bins;
        if (entry.reservations) options.reservations = controller.reservations();
        const loss::RunResult run = loss::run_trace(g, controller.routes(), *entry.policy,
                                                    trace, options);
        std::vector<double> series;
        series.reserve(static_cast<std::size_t>(bins));
        for (int b = 0; b < bins; ++b) {
          const auto bi = static_cast<std::size_t>(b);
          series.push_back(run.bin_offered[bi] > 0
                               ? static_cast<double>(run.bin_blocked[bi]) /
                                     static_cast<double>(run.bin_offered[bi])
                               : 0.0);
        }
        const sim::MserResult mser = sim::mser_truncation(series, 5);
        warmup_units.add(static_cast<double>(mser.truncation_batches) * 5.0);
        carried_hops.add(run.mean_carried_hops());
      }
      table.add_row({study::fmt(load, 0), std::string(entry.policy->name()),
                     study::fmt(warmup_units.mean(), 1),
                     warmup_units.mean() <= 10.0 ? "yes" : "NO",
                     study::fmt(carried_hops.mean(), 3)});
    }
  }
  bench::emit(table, cli,
              "MSER-5 warm-up detection on the quadrangle (paper uses 10 units) and the "
              "carried-hops resource fingerprint");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
