// Section 4.2.2, "Link failures", via the scenario engine.
//
// Static table: each failure is a Scenario that fails the facility at
// t = 0 and re-solves Eq. 15 on what is left -- the paper's "operate the
// degraded network with levels engineered for it".  The paper reports
// higher blocking overall but an unchanged relative ordering of the three
// schemes across the intact, 2<->3-failed, and 7<->9-failed networks.
//
// Transient table: the dynamic experiment the static table cannot show --
// the 2<->3 facility fails mid-run (t = 40) with calls in flight and is
// repaired at t = 70, protection re-solved at both instants.  The per-bin
// series shows blocking degrade, plateau, and recover.  A JSON scenario
// given with --scenario replaces the built-in fail -> repair script.
#include <iostream>

#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "scenario/parse.hpp"
#include "scenario/scenario.hpp"
#include "study/analysis.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

scenario::Scenario static_failure(const char* name, int a, int b) {
  scenario::Scenario s;
  s.name = name;
  if (a >= 0) {
    s.events.push_back(scenario::ScenarioEvent::link_fail(0.0, a, b));
    s.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));
  }
  return s;
}

// Fail at 30% and repair at 60% of the measurement window, so the default
// shape (warmup 10, measure 100) gives the canonical t = 40 / t = 70 and
// --fast / --measure runs keep the events inside their shorter horizon.
scenario::Scenario failure_recovery(double warmup, double measure) {
  const double fail_at = warmup + 0.3 * measure;
  const double repair_at = warmup + 0.6 * measure;
  scenario::Scenario s;
  s.name = "fail 2<->3 at t=" + study::fmt(fail_at, 0) + ", repair at t=" +
           study::fmt(repair_at, 0);
  s.events.push_back(scenario::ScenarioEvent::link_fail(fail_at, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(fail_at));
  s.events.push_back(scenario::ScenarioEvent::link_repair(repair_at, 2, 3));
  s.events.push_back(scenario::ScenarioEvent::resolve_protection(repair_at));
  return s;
}

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const std::vector<double> paper_loads = cli.loads.value_or(std::vector<double>{8, 10, 12});
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix nominal = study::nsfnet_nominal_traffic();
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kSinglePath,
                                                   study::PolicyKind::kUncontrolledAlternate,
                                                   study::PolicyKind::kControlledAlternate};

  const scenario::Scenario statics[] = {static_failure("intact", -1, -1),
                                        static_failure("fail 2<->3", 2, 3),
                                        static_failure("fail 7<->9", 7, 9)};
  study::TextTable table(
      {"scenario", "load", "single-path", "uncontrolled-alt", "controlled-alt"});
  for (const scenario::Scenario& scen : statics) {
    for (const double load : paper_loads) {
      study::ScenarioSweepOptions options;
      options.seeds = shape.seeds;
      options.threads = shape.threads;
      options.measure = shape.measure;
      options.warmup = shape.warmup;
      options.max_alt_hops = cli.hops.value_or(11);
      options.time_bins = 1;  // the static table wants the whole window
      options.load_factor = load / 10.0;
      const study::ScenarioSweepResult r =
          study::run_scenario_sweep(g, nominal, scen, policies, options);
      table.add_row({scen.name, study::fmt(load, 0),
                     study::fmt(r.curves[0].mean_blocking, 4),
                     study::fmt(r.curves[1].mean_blocking, 4),
                     study::fmt(r.curves[2].mean_blocking, 4)});
    }
  }
  bench::emit(table, cli,
              "Section 4.2.2: link failures keep the relative ordering of the schemes "
              "(Load = 10 nominal)");

  const scenario::Scenario transient =
      cli.scenario ? scenario::load_scenario_file(*cli.scenario)
                   : failure_recovery(shape.warmup, shape.measure);
  study::ScenarioSweepOptions options;
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(11);
  options.time_bins = 10;
  // --control turns on the closed-loop r* controller for every scheme;
  // --policy dar[,trunk=N] adds the dynamic alternate policy as a curve.
  std::vector<study::PolicyKind> transient_policies = policies;
  if (cli.control) options.control = *cli.control;
  if (cli.dar) {
    options.dar_trunk = cli.dar->trunk;
    transient_policies.push_back(study::PolicyKind::kDar);
  }
  bench::TraceCapture capture;
  capture.attach(cli, options.obs);
  const study::ScenarioSweepResult r =
      study::run_scenario_sweep(g, nominal, transient, transient_policies, options);
  std::string title = "Transient: " + transient.name + " (per-bin blocking; dropped = ";
  for (std::size_t pi = 0; pi < r.curves.size(); ++pi) {
    if (pi > 0) title += ", ";
    title += r.curves[pi].name + " " + std::to_string(r.curves[pi].dropped);
  }
  title += " in-flight calls killed across seeds)";
  bench::emit(study::scenario_table(r), cli.csv ? study::CliOptions{} : cli, title);
  capture.flush(cli);
  if (cli.wants_analysis()) {
    study::render_analysis(
        capture.buffer.str(),
        study::analysis_config_for(g, nominal, options.max_alt_hops, transient_policies,
                                   {options.load_factor}, /*replications_per_point=*/0,
                                   options.warmup, options.measure, options.time_bins),
        std::cout, cli.analysis_out);
  }
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
