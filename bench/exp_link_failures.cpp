// Section 4.2.2, "Link failures": disable the duplex facilities 2<->3 and
// then 7<->9 on the NSFNet model.  The paper reports higher blocking
// overall but an unchanged relative ordering of the three schemes.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const std::vector<double> paper_loads = cli.loads.value_or(std::vector<double>{8, 10, 12});

  struct Scenario {
    const char* name;
    int fail_a;
    int fail_b;
  };
  const Scenario scenarios[] = {
      {"intact", -1, -1}, {"fail 2<->3", 2, 3}, {"fail 7<->9", 7, 9}};

  study::TextTable table(
      {"scenario", "load", "single-path", "uncontrolled-alt", "controlled-alt"});
  for (const Scenario& scenario : scenarios) {
    net::Graph g = net::nsfnet_t3();
    if (scenario.fail_a >= 0) {
      g.fail_duplex(net::NodeId(scenario.fail_a), net::NodeId(scenario.fail_b));
    }
    study::SweepOptions options;
    options.load_factors.clear();
    for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
    options.seeds = shape.seeds;
    options.threads = shape.threads;
    options.measure = shape.measure;
    options.warmup = shape.warmup;
    options.max_alt_hops = cli.hops.value_or(11);
    options.erlang_bound = false;
    const study::SweepResult r = study::run_sweep(
        g, study::nsfnet_nominal_traffic(),
        {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
         study::PolicyKind::kControlledAlternate},
        options);
    for (std::size_t i = 0; i < paper_loads.size(); ++i) {
      table.add_row({scenario.name, study::fmt(paper_loads[i], 0),
                     study::fmt(r.curves[0].mean_blocking[i], 4),
                     study::fmt(r.curves[1].mean_blocking[i], 4),
                     study::fmt(r.curves[2].mean_blocking[i], 4)});
    }
  }
  bench::emit(table, cli,
              "Section 4.2.2: link failures keep the relative ordering of the schemes "
              "(Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
