// Figure 4: the same quadrangle experiment as Figure 3, rendered on a log
// scale with a finer low-load grid to emphasize the regime where both
// alternate-routing schemes are orders of magnitude below single-path.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  options.load_factors =
      cli.loads.value_or(std::vector<double>{40, 50, 60, 65, 70, 75, 80, 85, 90, 95, 100});
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(3);
  const study::SweepResult result = study::run_sweep(
      net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, 1.0),
      {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
       study::PolicyKind::kControlledAlternate},
      options);
  bench::emit(study::sweep_table(result, /*scientific=*/true), cli,
              "Figure 4: quadrangle blocking, log-scale view "
              "(scientific notation; low-load regime emphasized)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
