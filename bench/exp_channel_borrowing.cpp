// Section 3.2: channel borrowing in cellular telephony.  The co-cell set
// has 3 cells, so the prescription is the Eq.-15 reservation level with
// H = 3: controlled borrowing is then guaranteed to improve on no
// borrowing, while staying clear of the locking avalanche that uncontrolled
// borrowing triggers at high loads.
#include "bench_common.hpp"
#include "cellular/borrowing_sim.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const cellular::CellGrid grid(6, 6);
  const std::vector<double> loads =
      cli.loads.value_or(std::vector<double>{30, 38, 42, 46, 50, 55, 60});

  study::TextTable table({"erlangs_per_cell", "no_borrowing", "uncontrolled", "controlled",
                          "controlled_r", "borrow_share_unc", "borrow_share_ctl"});
  for (const double load : loads) {
    cellular::BorrowingConfig config;
    config.channels_per_cell = 50;
    config.offered = {load};
    config.measure = shape.measure;
    config.warmup = shape.warmup;

    sim::RunningStats none;
    sim::RunningStats uncontrolled;
    sim::RunningStats controlled;
    long long borrowed_unc = 0;
    long long borrowed_ctl = 0;
    long long carried_unc = 0;
    long long carried_ctl = 0;
    int reservation = 0;
    for (int s = 0; s < shape.seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s + 1);
      config.mode = cellular::BorrowingMode::kNone;
      none.add(cellular::run_borrowing(grid, config, seed).blocking());
      config.mode = cellular::BorrowingMode::kUncontrolled;
      const auto u = cellular::run_borrowing(grid, config, seed);
      uncontrolled.add(u.blocking());
      borrowed_unc += u.borrowed_calls;
      carried_unc += u.offered_calls - u.blocked_calls;
      config.mode = cellular::BorrowingMode::kControlled;
      const auto c = cellular::run_borrowing(grid, config, seed);
      controlled.add(c.blocking());
      borrowed_ctl += c.borrowed_calls;
      carried_ctl += c.offered_calls - c.blocked_calls;
      reservation = c.reservations.front();
    }
    table.add_row(
        {study::fmt(load, 0), study::fmt(none.mean(), 4), study::fmt(uncontrolled.mean(), 4),
         study::fmt(controlled.mean(), 4), std::to_string(reservation),
         study::fmt(carried_unc > 0 ? static_cast<double>(borrowed_unc) / carried_unc : 0.0, 3),
         study::fmt(carried_ctl > 0 ? static_cast<double>(borrowed_ctl) / carried_ctl : 0.0, 3)});
  }
  bench::emit(table, cli,
              "Section 3.2: channel borrowing on a 6x6 hex torus, C = 50 channels/cell, "
              "co-cell set = 3 (H = 3)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
