// Figure 6: average network blocking versus load on the NSFNet T3 model
// with unlimited (H = 11) alternate path lengths, linear scale.
//
// The x-axis follows the paper: Load = 10 is the nominal traffic matrix,
// other points scale it linearly.  Curves: single-path, uncontrolled,
// controlled, plus the Erlang Bound; the Ott-Krishnan comparator discussed
// in the same section has its own bench (exp_ott_krishnan).
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "sim/thread_pool.hpp"
#include "study/analysis.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/prof_capture.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  // Paper's "Load" axis: nominal corresponds to Load = 10.  We keep the
  // same units by treating a load value L as factor L / 10.
  const std::vector<double> paper_loads =
      cli.loads.value_or(std::vector<double>{6, 8, 9, 10, 11, 12, 13, 14, 16});
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(11);
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kSinglePath,
                                                study::PolicyKind::kUncontrolledAlternate,
                                                study::PolicyKind::kControlledAlternate};
  bench::TraceCapture capture;
  capture.attach(cli, options.obs);
  // Run health (--profile / --manifest-out / --flight-recorder /
  // --progress).  Attached after the trace capture so the flight recorder
  // tees in front of it without changing the trace bytes.
  study::ProfCapture prof_capture("fig6_nsfnet_blocking");
  prof_capture.attach(cli, options.obs, options.prof);
  study::SweepResult result =
      study::run_sweep(net::nsfnet_t3(), study::nsfnet_nominal_traffic(), policies, options);
  // Relabel the factor column in the paper's Load units.  (The analysis
  // config below uses the true multiplicative factors, not the labels.)
  for (std::size_t i = 0; i < result.load_factors.size(); ++i) {
    result.load_factors[i] = paper_loads[i];
  }
  bench::emit(study::sweep_table(result, /*scientific=*/false), cli,
              "Figure 6: Internet model (NSFNet T3), unlimited alternate path lengths "
              "(Load = 10 is the nominal matrix)");
  capture.flush(cli);
  if (cli.wants_analysis()) {
    study::render_analysis(
        capture.buffer.str(),
        study::analysis_config_for(net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
                                   options.max_alt_hops, policies, options.load_factors,
                                   /*replications_per_point=*/options.seeds, options.warmup,
                                   options.measure),
        std::cout, cli.analysis_out);
  }
  const int resolved_threads =
      options.threads == 0 ? static_cast<int>(sim::ThreadPool::hardware_threads())
                           : options.threads;
  prof_capture.emit(cli,
                    study::sweep_fingerprint(net::nsfnet_t3(),
                                             study::nsfnet_nominal_traffic(), policies,
                                             options),
                    resolved_threads, std::cout);
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
