// Figure 5: the NSFNet T3 Backbone map (Fall 1992), reconstructed from
// Table 1's link list, plus the Section 4.2 route-set census ("on the
// average each node pair had about 9 alternate paths, with a maximum of 15
// and a minimum of 5").
#include <iostream>

#include "bench_common.hpp"
#include "netgraph/dot.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const net::Graph g = net::nsfnet_t3();
  std::cout << "# Figure 5: NSFNet T3 Backbone model (12 Core Nodal Switching Subsystems)\n\n";
  std::cout << net::to_adjacency_text(g) << '\n';
  std::cout << "# Graphviz DOT (render with `dot -Tpng`):\n"
            << net::to_dot(g, "NSFNet T3 Backbone, Fall 1992") << '\n';

  study::TextTable census({"H", "pairs", "mean_alternates", "min", "max"});
  for (const int h : {cli.hops.value_or(11), 6}) {
    const routing::RouteCensus c = routing::census(routing::build_min_hop_routes(g, h));
    census.add_row({std::to_string(h), std::to_string(c.pairs),
                    study::fmt(c.mean_alternates, 2), std::to_string(c.min_alternates),
                    std::to_string(c.max_alternates)});
  }
  bench::emit(census, cli,
              "Route-set census (paper at H=11: mean ~9, min 5, max 15; our literal "
              "<=H-link reading at H=6 differs from the paper's H=6 census -- see "
              "EXPERIMENTS.md)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
