// Section 4.2.2, "Primary paths chosen to minimize link loss": replace the
// min-hop primaries with the bifurcated min-loss program (Frank-Wolfe on
// the convex Erlang loss-rate objective) and re-run the comparison.
//
// The paper: without alternate routing the optimized primaries do better
// than min-hop; once controlled alternate routing is added the two primary
// rules perform "almost coincident" -- the control is robust to the choice
// of SI tier.
#include <iostream>

#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "routing/minloss.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const std::vector<double> paper_loads = cli.loads.value_or(std::vector<double>{8, 10, 12});
  const int hops = cli.hops.value_or(11);
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix& nominal = study::nsfnet_nominal_traffic();

  study::SweepOptions options;
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = hops;
  options.erlang_bound = false;
  const std::vector<study::PolicyKind> policies = {study::PolicyKind::kSinglePath,
                                                   study::PolicyKind::kControlledAlternate};

  const study::SweepResult minhop = study::run_sweep(g, nominal, policies, options);

  // Optimize the primaries against the nominal matrix (the engineering-time
  // forecast), then keep them fixed across the load sweep, as an operator
  // would.
  routing::MinLossOptions ml;
  ml.max_alt_hops = hops;
  const routing::MinLossResult optimized = routing::optimize_min_loss_primaries(g, nominal, ml);
  const study::SweepResult minloss =
      study::run_sweep_with_routes(g, nominal, optimized.routes, policies, options);

  std::cout << "Frank-Wolfe: expected loss rate " << study::fmt(optimized.initial_loss_rate, 3)
            << " -> " << study::fmt(optimized.expected_loss_rate, 3) << " calls/unit time in "
            << optimized.iterations << " iterations (nominal load, independent-link model)\n\n";

  study::TextTable table({"load", "single_minhop", "single_minloss", "controlled_minhop",
                          "controlled_minloss"});
  for (std::size_t i = 0; i < paper_loads.size(); ++i) {
    table.add_row({study::fmt(paper_loads[i], 0),
                   study::fmt(minhop.curves[0].mean_blocking[i], 4),
                   study::fmt(minloss.curves[0].mean_blocking[i], 4),
                   study::fmt(minhop.curves[1].mean_blocking[i], 4),
                   study::fmt(minloss.curves[1].mean_blocking[i], 4)});
  }
  bench::emit(table, cli,
              "Section 4.2.2: min-hop vs min-loss primaries, without and with the "
              "controlled alternate tier (Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
