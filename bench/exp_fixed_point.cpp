// Analytic vs simulated single-path blocking: the Erlang fixed-point
// (reduced-load) approximation against the call-by-call engine, across the
// NSFNet load sweep.  Validates both the analytic module and the engine,
// and quantifies the independent-link error on a sparse mesh.
#include "bench_common.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/fixed_point.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const net::TrafficMatrix& nominal = study::nsfnet_nominal_traffic();

  study::TextTable table(
      {"load", "fixed_point", "simulated", "sim_ci95", "fp_iterations"});
  loss::SinglePathPolicy policy;
  for (const double load : cli.loads.value_or(std::vector<double>{6, 8, 10, 12, 14, 16})) {
    const net::TrafficMatrix traffic = nominal.scaled(load / 10.0);
    const auto fp = routing::erlang_fixed_point(g, routes, traffic);
    sim::RunningStats blocking;
    for (int s = 1; s <= shape.seeds; ++s) {
      const sim::CallTrace trace = sim::generate_trace(
          traffic, shape.measure + shape.warmup, static_cast<std::uint64_t>(s));
      loss::EngineOptions options;
      options.warmup = shape.warmup;
      options.link_stats = false;
      blocking.add(loss::run_trace(g, routes, policy, trace, options).blocking());
    }
    table.add_row({study::fmt(load, 0), study::fmt(fp.network_blocking, 4),
                   study::fmt(blocking.mean(), 4), study::fmt(blocking.ci95_halfwidth(), 4),
                   std::to_string(fp.iterations)});
  }
  bench::emit(table, cli,
              "Reduced-load fixed point vs simulation, single-path routing on NSFNet "
              "(Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
