// Theorem 1: the guaranteed ceiling on the expected number of extra
// primary calls lost when one alternate-routed call is accepted,
//     L <= B(Lambda, C) / B(Lambda, C - r),
// checked two ways on a single protected link:
//   exact    -- E[tau] * B * nu (Eq. 3) on the exact birth-death chain,
//               maximized over the admitting states and over several
//               adversarial state-dependent overflow patterns;
//   simulated-- Monte-Carlo paired runs (accept vs reject one alternate
//               call at t=0) counting the difference in primary losses.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "erlang/birth_death.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"
#include "sim/rng.hpp"

namespace {

using namespace altroute;

// Exact worst-case L over admitting states for one overflow pattern.
double exact_worst_case(double nu, int capacity, int reservation,
                        const std::vector<double>& overflow) {
  const auto birth = erlang::protected_link_births(nu, overflow, capacity, reservation);
  std::vector<double> death(static_cast<std::size_t>(capacity));
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  const double blocking = erlang::generalized_erlang_b(birth);
  const auto passage = erlang::mean_passage_time_up(birth, death);
  double worst = 0.0;
  for (int s = 0; s < capacity - reservation; ++s) {
    worst = std::max(worst, passage[static_cast<std::size_t>(s)] * blocking * nu);
  }
  return worst;
}

// Paired simulation of L: evolve two copies of the link from state s,
// one with an extra call injected at t = 0, under identical arrivals, and
// count extra primary losses until the copies couple.
double simulated_extra_loss(double nu, int capacity, int reservation, double overflow_rate,
                            int start_state, int replications, std::uint64_t seed) {
  sim::Rng rng(seed, 0);
  long long extra = 0;
  for (int rep = 0; rep < replications; ++rep) {
    int with = start_state + 1;  // accepted the alternate call
    int without = start_state;
    // Uniformized two-chain coupling: same arrival/departure draws.
    const double max_rate = nu + overflow_rate + capacity;
    while (with != without) {
      const double u = rng.uniform01() * max_rate;
      if (u < nu) {  // primary arrival
        // While uncoupled, without == with - 1 <= C - 1 always accepts, so
        // only the loaded copy can lose the call.
        if (with >= capacity) ++extra;
        if (with < capacity) ++with;
        if (without < capacity) ++without;
      } else if (u < nu + overflow_rate) {  // alternate arrival
        if (with < capacity - reservation) ++with;
        if (without < capacity - reservation) ++without;
      } else {  // potential departure: call index u - nu - overflow
        const int call = static_cast<int>(u - nu - overflow_rate);
        if (call < with) --with;
        if (call < without) --without;
      }
    }
  }
  return static_cast<double>(extra) / replications;
}

void run(const study::CliOptions& cli) {
  const int capacity = 12;
  const double nu = 8.0;
  const int replications = cli.fast ? 20000 : 200000;

  study::TextTable table({"r", "overflow", "exact_worst_L", "simulated_L_at_worst_s",
                          "thm1_bound", "bound_holds"});
  for (const int r : {1, 2, 3, 5}) {
    for (const double overflow : {0.5, 4.0, 20.0}) {
      const double bound = erlang::theorem1_bound(nu, capacity, r);
      const double exact = exact_worst_case(
          nu, capacity, r, std::vector<double>(static_cast<std::size_t>(capacity), overflow));
      // The worst admitting state for the paired simulation is the highest
      // one (C - r - 1): closest to the blocking region.
      const double simulated = simulated_extra_loss(nu, capacity, r, overflow,
                                                    capacity - r - 1, replications, 12345);
      table.add_row({std::to_string(r), study::fmt(overflow, 1), study::fmt(exact, 4),
                     study::fmt(simulated, 4), study::fmt(bound, 4),
                     (exact <= bound + 1e-9 && simulated <= bound + 0.05) ? "yes" : "NO"});
    }
  }
  bench::emit(table, cli,
              "Theorem 1: exact and simulated extra primary losses per accepted "
              "alternate call vs the B(L,C)/B(L,C-r) bound (nu = 8, C = 12)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
