// Section 4.2.2, "We have also investigated the effect of limiting the
// length of the alternate paths": H = 6 vs H = 11 on the NSFNet model.
// The paper reports a small improvement for the controlled scheme (smaller
// r values, nearly all useful alternates retained) and little change for
// single-path and uncontrolled routing.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const std::vector<double> paper_loads =
      cli.loads.value_or(std::vector<double>{8, 10, 12, 14});

  study::TextTable table({"load", "single_H6", "single_H11", "uncontrolled_H6",
                          "uncontrolled_H11", "controlled_H6", "controlled_H11"});
  std::vector<study::SweepResult> results;
  for (const int h : {6, 11}) {
    study::SweepOptions options;
    options.load_factors.clear();
    for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
    options.seeds = shape.seeds;
    options.threads = shape.threads;
    options.measure = shape.measure;
    options.warmup = shape.warmup;
    options.max_alt_hops = h;
    options.erlang_bound = false;
    results.push_back(study::run_sweep(
        net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
        {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
         study::PolicyKind::kControlledAlternate},
        options));
  }
  for (std::size_t i = 0; i < paper_loads.size(); ++i) {
    table.add_row({study::fmt(paper_loads[i], 0),
                   study::fmt(results[0].curves[0].mean_blocking[i], 4),
                   study::fmt(results[1].curves[0].mean_blocking[i], 4),
                   study::fmt(results[0].curves[1].mean_blocking[i], 4),
                   study::fmt(results[1].curves[1].mean_blocking[i], 4),
                   study::fmt(results[0].curves[2].mean_blocking[i], 4),
                   study::fmt(results[1].curves[2].mean_blocking[i], 4)});
  }
  bench::emit(table, cli,
              "Section 4.2.2: effect of the H limit (H=6 vs H=11) on NSFNet blocking "
              "(Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
