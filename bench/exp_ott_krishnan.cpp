// Section 4.2.2 (text): "It is interesting to note that if the
// state-dependent scheme of Ott and Krishnan's were to be used the
// performance is poor" on the sparse NSFNet mesh -- the separability
// approximation misjudges path costs when primaries are multi-hop.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  const std::vector<double> paper_loads =
      cli.loads.value_or(std::vector<double>{6, 8, 10, 12, 14});
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(11);
  study::SweepResult result = study::run_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
      {study::PolicyKind::kSinglePath, study::PolicyKind::kControlledAlternate,
       study::PolicyKind::kOttKrishnan},
      options);
  for (std::size_t i = 0; i < result.load_factors.size(); ++i) {
    result.load_factors[i] = paper_loads[i];
  }
  bench::emit(study::sweep_table(result, /*scientific=*/false), cli,
              "Section 4.2.2: Ott-Krishnan separable shadow-price routing vs controlled "
              "alternate routing on the sparse NSFNet mesh (Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
