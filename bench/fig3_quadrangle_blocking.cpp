// Figure 3: average network blocking versus offered load on the
// fully-connected symmetric 4-node network (linear scale; the crossover
// region around 85-95 Erlangs/pair is where the controlled scheme beats
// both single-path and uncontrolled alternate routing).
//
// Protocol as in Section 4: 10 seeds x (10 warm-up + 100 measured) time
// units, identical call traces across policies, C = 100 per directional
// link, per-pair load on the x-axis.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/analysis.hpp"
#include "study/experiment.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  // Nominal = 1 Erlang/pair, so a load factor IS the per-pair Erlang load.
  options.load_factors =
      cli.loads.value_or(std::vector<double>{60, 70, 75, 80, 85, 90, 95, 100, 105, 110, 120});
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(3);  // all loop-free paths on K4
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kSinglePath,
                                                study::PolicyKind::kUncontrolledAlternate,
                                                study::PolicyKind::kControlledAlternate};
  bench::TraceCapture capture;
  capture.attach(cli, options.obs);
  const study::SweepResult result = study::run_sweep(
      net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, 1.0), policies, options);
  bench::emit(study::sweep_table(result, /*scientific=*/false), cli,
              "Figure 3: blocking for a fully-connected quadrangle "
              "(load_factor = Erlangs per ordered pair, C = 100)");
  capture.flush(cli);
  if (cli.wants_analysis()) {
    study::render_analysis(
        capture.buffer.str(),
        study::analysis_config_for(net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, 1.0),
                                   options.max_alt_hops, policies, options.load_factors,
                                   /*replications_per_point=*/options.seeds, options.warmup,
                                   options.measure),
        std::cout, cli.analysis_out);
  }
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
