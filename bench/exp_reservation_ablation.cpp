// Ablation: how good is Eq. 15's choice of r, and how robust is state
// protection to getting r wrong?
//
// Sweep a FIXED uniform reservation level r on the quadrangle at three
// loads and compare against the Eq.-15 (load-dependent) choice.  Two
// paper-adjacent claims are visible in the output: the scheme is robust
// ("a state-protection level optimized for a specific loading situation
// works well under variations in load", Key via Section 1), and the
// Eq.-15 r sits near the blocking minimum at every load while guaranteeing
// the single-path bound.
#include "bench_common.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const std::vector<double> loads = cli.loads.value_or(std::vector<double>{85, 95, 105});
  const std::vector<int> fixed_r = {0, 1, 2, 3, 5, 7, 10, 15, 25, 50, 100};

  std::vector<std::string> headers{"r"};
  for (const double load : loads) headers.push_back("B at " + study::fmt(load, 0) + "E");
  study::TextTable table(std::move(headers));
  core::ControlledAlternatePolicy controlled;

  std::vector<std::vector<double>> columns(fixed_r.size() + 2,
                                           std::vector<double>(loads.size(), 0.0));
  std::vector<int> eq15_r(loads.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, loads[li]);
    const auto lambda = routing::primary_link_loads(g, routes, traffic);
    const auto r_eq15 = core::protection_levels_from_lambda(g, lambda, 3);
    eq15_r[li] = r_eq15.front();
    for (int s = 1; s <= shape.seeds; ++s) {
      const sim::CallTrace trace =
          sim::generate_trace(traffic, shape.measure + shape.warmup,
                              static_cast<std::uint64_t>(s));
      loss::EngineOptions options;
      options.warmup = shape.warmup;
      options.link_stats = false;
      for (std::size_t ri = 0; ri < fixed_r.size(); ++ri) {
        options.reservations.assign(static_cast<std::size_t>(g.link_count()), fixed_r[ri]);
        columns[ri][li] +=
            loss::run_trace(g, routes, controlled, trace, options).blocking() / shape.seeds;
      }
      options.reservations = r_eq15;
      columns[fixed_r.size()][li] +=
          loss::run_trace(g, routes, controlled, trace, options).blocking() / shape.seeds;
      loss::SinglePathPolicy single;
      options.reservations.clear();
      columns[fixed_r.size() + 1][li] +=
          loss::run_trace(g, routes, single, trace, options).blocking() / shape.seeds;
    }
  }
  const auto emit_row = [&](std::string label, const std::vector<double>& column) {
    std::vector<std::string> row{std::move(label)};
    for (const double value : column) row.push_back(study::fmt(value, 4));
    table.add_row(std::move(row));
  };
  for (std::size_t ri = 0; ri < fixed_r.size(); ++ri) {
    emit_row(std::to_string(fixed_r[ri]), columns[ri]);
  }
  std::string eq15_label = "eq15 (";
  for (std::size_t li = 0; li < eq15_r.size(); ++li) {
    if (li != 0) eq15_label += "/";
    eq15_label += std::to_string(eq15_r[li]);
  }
  eq15_label += ")";
  emit_row(std::move(eq15_label), columns[fixed_r.size()]);
  emit_row("single-path", columns[fixed_r.size() + 1]);
  bench::emit(table, cli,
              "Reservation ablation on the quadrangle (uniform fixed r vs the Eq.-15 "
              "choice; r = 0 is uncontrolled, r = 100 is single-path)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
