// Policy zoo: the paper's schemes next to the classic telephony
// alternatives its related-work section discusses.
//
//   first-fit order (the paper)     vs  least-busy alternative (LBA/ALBA)
//   sequential probing (the paper)  vs  sticky random (Gibbens-Kelly DAR)
//   each with and without the Eq.-15 state protection.
//
// Two regimes: the fully-connected quadrangle (where LBA/DAR were born)
// and the sparse NSFNet mesh (the paper's argument for local control).
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

const std::vector<study::PolicyKind> kZoo = {
    study::PolicyKind::kSinglePath,
    study::PolicyKind::kUncontrolledAlternate,
    study::PolicyKind::kControlledAlternate,
    study::PolicyKind::kLeastBusy,
    study::PolicyKind::kLeastBusyProtected,
    study::PolicyKind::kStickyRandom,
    study::PolicyKind::kStickyRandomProtected,
};

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);

  {
    study::SweepOptions options;
    options.load_factors = cli.loads.value_or(std::vector<double>{80, 90, 100, 110});
    options.seeds = shape.seeds;
    options.threads = shape.threads;
    options.measure = shape.measure;
    options.warmup = shape.warmup;
    options.max_alt_hops = 2;  // the classic one-overflow-hop setting
    options.erlang_bound = false;
    const study::SweepResult r = study::run_sweep(
        net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, 1.0), kZoo, options);
    bench::emit(study::sweep_table(r), cli,
                "Policy zoo on the quadrangle (H = 2, load = Erlangs/pair)");
  }
  {
    study::SweepOptions options;
    options.load_factors.clear();
    for (const double load : {8.0, 10.0, 12.0}) options.load_factors.push_back(load / 10.0);
    options.seeds = shape.seeds;
    options.threads = shape.threads;
    options.measure = shape.measure;
    options.warmup = shape.warmup;
    options.max_alt_hops = cli.hops.value_or(11);
    options.erlang_bound = false;
    study::SweepResult r =
        study::run_sweep(net::nsfnet_t3(), study::nsfnet_nominal_traffic(), kZoo, options);
    r.load_factors = {8.0, 10.0, 12.0};
    study::CliOptions no_csv = cli;
    no_csv.csv.reset();
    bench::emit(study::sweep_table(r), no_csv,
                "Policy zoo on NSFNet (H = 11, Load = 10 nominal)");
  }
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
