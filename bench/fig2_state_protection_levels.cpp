// Figure 2: state-protection level r^k versus primary load Lambda^k for a
// link of capacity C = 100, drawn for H = 2, 6 and 120 -- plus the text's
// H in [1000, 2000] claim (r in [10, 20] at 50 Erlangs).
//
// Pure Eq.-15 computation; no simulation.
#include <vector>

#include "bench_common.hpp"
#include "erlang/state_protection.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const int capacity = 100;
  study::TextTable table({"lambda", "r_H2", "r_H6", "r_H120"});
  for (int lambda = 0; lambda <= capacity; lambda += 2) {
    table.add_row({std::to_string(lambda),
                   std::to_string(erlang::min_state_protection(lambda, capacity, 2)),
                   std::to_string(erlang::min_state_protection(lambda, capacity, 6)),
                   std::to_string(erlang::min_state_protection(lambda, capacity, 120))});
  }
  bench::emit(table, cli,
              "Figure 2: r^k vs Lambda^k, C = 100, H = 2 / 6 / 120 (paper Section 3.1)");

  study::TextTable huge({"H", "r at lambda=50 (paper: 10..20)"});
  for (const int h : {1000, 1250, 1500, 1750, 2000}) {
    huge.add_row({std::to_string(h),
                  std::to_string(erlang::min_state_protection(50.0, capacity, h))});
  }
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(huge, no_csv, "Section 3.1 text: H in [1000, 2000] at 50 Erlangs");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
