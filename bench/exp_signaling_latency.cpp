// Signaling-latency ablation: how stale state and booking races erode the
// routing schemes as the per-hop set-up delay grows.
//
// The paper's footnote 2 assumes signaling "is given priority" and costs
// negligible bandwidth; its simulator treats set-up as atomic.  This bench
// runs the faithful forward-check / backward-book protocol on the
// quadrangle at a crossover load, sweeping the one-way per-hop delay from
// 0 (atomic) to 10% of a mean holding time, and reports blocking, the
// booking-race rate, and the mean set-up latency per scheme.
#include "bench_common.hpp"
#include "core/protection.hpp"
#include "loss/signaling.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const double load = 95.0;
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(4, load);
  const auto reservations = core::protection_levels_from_lambda(
      g, routing::primary_link_loads(g, routes, traffic), 3);

  study::TextTable table({"hop_delay", "scheme", "blocking", "races_per_1k_calls",
                          "mean_setup_delay", "attempts_per_call"});
  const std::vector<double> delays =
      cli.loads.value_or(std::vector<double>{0.0, 0.001, 0.005, 0.02, 0.05, 0.1});
  for (const double delay : delays) {
    for (const auto mode : {loss::SignalingMode::kSinglePath,
                            loss::SignalingMode::kUncontrolled,
                            loss::SignalingMode::kControlled}) {
      sim::RunningStats blocking;
      sim::RunningStats races;
      sim::RunningStats setup_delay;
      sim::RunningStats attempts;
      for (int s = 1; s <= shape.seeds; ++s) {
        const sim::CallTrace trace = sim::generate_trace(
            traffic, shape.measure + shape.warmup, static_cast<std::uint64_t>(s));
        loss::SignalingOptions options;
        options.hop_delay = delay;
        options.warmup = shape.warmup;
        options.mode = mode;
        if (mode == loss::SignalingMode::kControlled) options.reservations = reservations;
        const loss::SignalingResult r = loss::run_signaling(g, routes, trace, options);
        blocking.add(r.blocking());
        races.add(1000.0 * static_cast<double>(r.booking_races) /
                  static_cast<double>(std::max<long long>(1, r.offered)));
        setup_delay.add(r.mean_setup_delay);
        attempts.add(static_cast<double>(r.attempts) /
                     static_cast<double>(std::max<long long>(1, r.offered)));
      }
      const char* name = mode == loss::SignalingMode::kSinglePath     ? "single-path"
                         : mode == loss::SignalingMode::kUncontrolled ? "uncontrolled"
                                                                      : "controlled";
      table.add_row({study::fmt(delay, 3), name, study::fmt(blocking.mean(), 4),
                     study::fmt(races.mean(), 2), study::fmt(setup_delay.mean(), 4),
                     study::fmt(attempts.mean(), 2)});
    }
  }
  bench::emit(table, cli,
              "Signaling-latency ablation on the quadrangle at 95 E/pair (hop_delay in "
              "mean-holding-time units; --loads overrides the delay list)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
