// Time-varying load: a diurnal swing through the critical region.
//
// The quadrangle's offered load swings sinusoidally between 60 and 110
// Erlangs/pair (period 50 holding times, two periods simulated), crossing
// the ~85-95 E crossover twice per cycle.  Compared schemes:
//   single-path, uncontrolled, controlled with r from the MEAN load,
//   controlled with r from the PEAK load, and the adaptive policy that
//   re-estimates Lambda online.
// The paper argues state protection is robust to load mis-estimates; here
// that means the mean- and peak-engineered r perform nearly alike, and the
// adaptive scheme matches them without being told the profile at all.
#include "bench_common.hpp"
#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/load_profile.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 1.0);
  const double period = 50.0;
  const sim::LoadProfile profile = sim::LoadProfile::diurnal(period, 60.0, 110.0, 24);
  const double horizon = shape.warmup + 2.0 * period;

  const auto levels_for = [&](double erlangs) {
    return core::protection_levels_from_lambda(
        g, std::vector<double>(static_cast<std::size_t>(g.link_count()), erlangs), 3);
  };
  const auto r_mean = levels_for(profile.mean_factor());
  const auto r_peak = levels_for(profile.max_factor());

  struct Scheme {
    const char* name;
    sim::RunningStats blocking;
    std::vector<long long> bin_offered;
    std::vector<long long> bin_blocked;
  };
  const int bins = 8;  // quarter-period resolution over two periods
  std::vector<Scheme> schemes;
  for (const char* name : {"single-path", "uncontrolled", "controlled-r(mean)",
                           "controlled-r(peak)", "adaptive"}) {
    schemes.push_back(Scheme{name, {}, std::vector<long long>(bins, 0),
                             std::vector<long long>(bins, 0)});
  }

  for (int s = 1; s <= shape.seeds; ++s) {
    const sim::CallTrace trace =
        sim::generate_profiled_trace(nominal, profile, horizon, static_cast<std::uint64_t>(s));
    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    core::AdaptiveOptions adaptive_options;
    adaptive_options.max_alt_hops = 3;
    adaptive_options.window = 2.0;
    adaptive_options.ewma_weight = 0.4;
    core::AdaptiveControlledPolicy adaptive(g, adaptive_options);

    for (std::size_t k = 0; k < schemes.size(); ++k) {
      loss::EngineOptions options;
      options.warmup = shape.warmup;
      options.link_stats = false;
      options.time_bins = bins;
      loss::RoutingPolicy* policy = nullptr;
      switch (k) {
        case 0: policy = &single; break;
        case 1: policy = &uncontrolled; break;
        case 2: policy = &controlled; options.reservations = r_mean; break;
        case 3: policy = &controlled; options.reservations = r_peak; break;
        case 4: policy = &adaptive; break;
      }
      const loss::RunResult result = loss::run_trace(g, routes, *policy, trace, options);
      schemes[k].blocking.add(result.blocking());
      for (int b = 0; b < bins; ++b) {
        schemes[k].bin_offered[static_cast<std::size_t>(b)] +=
            result.bin_offered[static_cast<std::size_t>(b)];
        schemes[k].bin_blocked[static_cast<std::size_t>(b)] +=
            result.bin_blocked[static_cast<std::size_t>(b)];
      }
    }
  }

  study::TextTable table({"scheme", "overall_blocking", "ci95", "trough_bins", "peak_bins"});
  for (const Scheme& scheme : schemes) {
    // Bins 0/3/4/7 straddle the troughs, 1/2/5/6 the peaks, for a profile
    // starting at the trough.
    long long trough_o = 0, trough_b = 0, peak_o = 0, peak_b = 0;
    for (int b = 0; b < bins; ++b) {
      const bool peak = (b % 4 == 1) || (b % 4 == 2);
      (peak ? peak_o : trough_o) += scheme.bin_offered[static_cast<std::size_t>(b)];
      (peak ? peak_b : trough_b) += scheme.bin_blocked[static_cast<std::size_t>(b)];
    }
    table.add_row({scheme.name, study::fmt(scheme.blocking.mean(), 4),
                   study::fmt(scheme.blocking.ci95_halfwidth(), 4),
                   study::fmt(trough_o > 0 ? static_cast<double>(trough_b) / trough_o : 0.0, 4),
                   study::fmt(peak_o > 0 ? static_cast<double>(peak_b) / peak_o : 0.0, 4)});
  }
  bench::emit(table, cli,
              "Diurnal load 60-110 E/pair on the quadrangle (period 50, two periods): "
              "robustness of the control to load mis-estimation");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
