// Time-varying load: a diurnal swing through the critical region, driven
// by the scenario engine.
//
// The quadrangle's offered load swings sinusoidally between 60 and 110
// Erlangs/pair (period 50 holding times, two periods simulated), crossing
// the ~85-95 E crossover twice per cycle.  The swing is expressed as
// traffic_scale scenario events sampled from the piecewise-constant
// diurnal profile, so the generated traces are exactly those of the old
// generate_profiled_trace path -- and, because load dynamics are now just
// events, they compose with topology events in one scenario.  Compared:
//   single-path, uncontrolled, controlled with r from the MEAN load,
//   controlled with r from the PEAK load, and the adaptive policy that
//   re-estimates Lambda online.
// The paper argues state protection is robust to load mis-estimates; here
// that means the mean- and peak-engineered r perform nearly alike, and the
// adaptive scheme matches them without being told the profile at all.
//
// A second table composes the same swing with a mid-run facility outage
// (fail 0<->1 at half a period, repair one period later) -- a failure
// landing on a network that is simultaneously breathing.  --scenario PATH
// replaces that composed script with a user-supplied one.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "scenario/parse.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/load_profile.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

/// The diurnal profile as traffic_scale events: one per piecewise-constant
/// segment boundary in [0, horizon).  make_scenario_trace on the result
/// reproduces generate_profiled_trace(nominal, profile, ...) exactly.
std::vector<scenario::ScenarioEvent> diurnal_events(const sim::LoadProfile& profile,
                                                    double period, int steps, double horizon) {
  std::vector<scenario::ScenarioEvent> events;
  const double step = period / steps;
  for (int i = 0; i * step < horizon; ++i) {
    events.push_back(
        scenario::ScenarioEvent::traffic_scale(i * step, profile.factor_at(i * step)));
  }
  return events;
}

scenario::Scenario with_outage(std::vector<scenario::ScenarioEvent> events, double fail_at,
                               double repair_at) {
  events.push_back(scenario::ScenarioEvent::link_fail(fail_at, 0, 1));
  events.push_back(scenario::ScenarioEvent::resolve_protection(fail_at));
  events.push_back(scenario::ScenarioEvent::link_repair(repair_at, 0, 1));
  events.push_back(scenario::ScenarioEvent::resolve_protection(repair_at));
  std::stable_sort(events.begin(), events.end(),
                   [](const scenario::ScenarioEvent& a, const scenario::ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  scenario::Scenario s;
  s.name = "diurnal swing + fail 0<->1";
  s.events = std::move(events);
  return s;
}

struct Scheme {
  const char* name;
  sim::RunningStats blocking;
  long long dropped{0};
  std::vector<long long> bin_offered;
  std::vector<long long> bin_blocked;
};

/// Replays `scen` for every scheme and seed (common random numbers) and
/// returns the accumulated transient series, one curve per scheme.
study::ScenarioSweepResult run_schemes(const net::Graph& g, const net::TrafficMatrix& nominal,
                                       const scenario::Scenario& scen, int seeds, double warmup,
                                       double horizon, int bins, const std::vector<int>& r_mean,
                                       const std::vector<int>& r_peak) {
  std::vector<Scheme> schemes;
  for (const char* name : {"single-path", "uncontrolled", "controlled-r(mean)",
                           "controlled-r(peak)", "adaptive"}) {
    schemes.push_back(
        Scheme{name, {}, 0, std::vector<long long>(bins, 0), std::vector<long long>(bins, 0)});
  }

  study::ScenarioSweepResult out;
  for (int s = 1; s <= seeds; ++s) {
    const sim::CallTrace trace =
        scenario::make_scenario_trace(nominal, scen, horizon, static_cast<std::uint64_t>(s));
    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    core::AdaptiveOptions adaptive_options;
    adaptive_options.max_alt_hops = 3;
    adaptive_options.window = 2.0;
    adaptive_options.ewma_weight = 0.4;
    core::AdaptiveControlledPolicy adaptive(g, adaptive_options);

    for (std::size_t k = 0; k < schemes.size(); ++k) {
      scenario::ScenarioEngineOptions options;
      options.warmup = warmup;
      options.time_bins = bins;
      options.max_alt_hops = 3;
      loss::RoutingPolicy* policy = nullptr;
      switch (k) {
        case 0: policy = &single; break;
        case 1: policy = &uncontrolled; break;
        case 2: policy = &controlled; options.reservations = r_mean; break;
        case 3: policy = &controlled; options.reservations = r_peak; break;
        case 4: policy = &adaptive; break;
      }
      const scenario::ScenarioRunResult result =
          scenario::run_scenario(g, nominal, *policy, trace, scen, options);
      schemes[k].blocking.add(result.run.blocking());
      schemes[k].dropped += result.dropped;
      for (int b = 0; b < bins; ++b) {
        schemes[k].bin_offered[static_cast<std::size_t>(b)] +=
            result.run.bin_offered[static_cast<std::size_t>(b)];
        schemes[k].bin_blocked[static_cast<std::size_t>(b)] +=
            result.run.bin_blocked[static_cast<std::size_t>(b)];
      }
      if (s == 1 && k == 0) out.applied = result.applied;
    }
  }

  const double bin_width = (horizon - warmup) / bins;
  for (int b = 0; b < bins; ++b) out.bin_start.push_back(warmup + b * bin_width);
  for (const Scheme& scheme : schemes) {
    study::ScenarioCurve curve;
    curve.name = scheme.name;
    curve.mean_blocking = scheme.blocking.mean();
    curve.ci95 = scheme.blocking.ci95_halfwidth();
    curve.dropped = scheme.dropped;
    curve.bin_offered = scheme.bin_offered;
    curve.bin_blocked = scheme.bin_blocked;
    for (int b = 0; b < bins; ++b) {
      const long long offered = scheme.bin_offered[static_cast<std::size_t>(b)];
      const long long blocked = scheme.bin_blocked[static_cast<std::size_t>(b)];
      curve.bin_blocking.push_back(
          offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0);
    }
    out.curves.push_back(std::move(curve));
  }
  return out;
}

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix nominal = net::TrafficMatrix::uniform(4, 1.0);
  const double period = 50.0;
  const int steps = 24;
  const sim::LoadProfile profile = sim::LoadProfile::diurnal(period, 60.0, 110.0, steps);
  const double horizon = shape.warmup + 2.0 * period;
  const int bins = 8;  // quarter-period resolution over two periods

  const auto levels_for = [&](double erlangs) {
    return core::protection_levels_from_lambda(
        g, std::vector<double>(static_cast<std::size_t>(g.link_count()), erlangs), 3);
  };
  const auto r_mean = levels_for(profile.mean_factor());
  const auto r_peak = levels_for(profile.max_factor());

  scenario::Scenario swing;
  swing.name = "diurnal swing";
  swing.events = diurnal_events(profile, period, steps, horizon);
  const study::ScenarioSweepResult diurnal = run_schemes(
      g, nominal, swing, shape.seeds, shape.warmup, horizon, bins, r_mean, r_peak);

  study::TextTable table({"scheme", "overall_blocking", "ci95", "trough_bins", "peak_bins"});
  for (const study::ScenarioCurve& curve : diurnal.curves) {
    // Bins 0/3/4/7 straddle the troughs, 1/2/5/6 the peaks, for a profile
    // starting at the trough.
    long long trough_o = 0, trough_b = 0, peak_o = 0, peak_b = 0;
    for (int b = 0; b < bins; ++b) {
      const bool peak = (b % 4 == 1) || (b % 4 == 2);
      (peak ? peak_o : trough_o) += curve.bin_offered[static_cast<std::size_t>(b)];
      (peak ? peak_b : trough_b) += curve.bin_blocked[static_cast<std::size_t>(b)];
    }
    table.add_row({curve.name, study::fmt(curve.mean_blocking, 4), study::fmt(curve.ci95, 4),
                   study::fmt(trough_o > 0 ? static_cast<double>(trough_b) / trough_o : 0.0, 4),
                   study::fmt(peak_o > 0 ? static_cast<double>(peak_b) / peak_o : 0.0, 4)});
  }
  bench::emit(table, cli,
              "Diurnal load 60-110 E/pair on the quadrangle (period 50, two periods): "
              "robustness of the control to load mis-estimation");

  const scenario::Scenario composed =
      cli.scenario ? scenario::load_scenario_file(*cli.scenario)
                   : with_outage(diurnal_events(profile, period, steps, horizon),
                                 shape.warmup + 0.5 * period, shape.warmup + 1.5 * period);
  const study::ScenarioSweepResult outage = run_schemes(
      g, nominal, composed, shape.seeds, shape.warmup, horizon, bins, r_mean, r_peak);
  bench::emit(study::scenario_table(outage), cli.csv ? study::CliOptions{} : cli,
              "Composed scenario: " + composed.name + " (per-bin blocking)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
