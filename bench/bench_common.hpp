// Shared plumbing for the experiment binaries: guarded main, table output.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "study/cli.hpp"
#include "study/report.hpp"

namespace altroute::bench {

/// Parses the CLI, runs `body`, and converts exceptions into a non-zero
/// exit with a message on stderr.
inline int guarded_main(int argc, char** argv,
                        const std::function<void(const study::CliOptions&)>& body) {
  try {
    body(study::parse_cli(argc, argv));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "bench") << ": " << e.what() << '\n';
    return 1;
  }
}

/// Prints a titled table to stdout and, when --csv was given, writes the
/// CSV alongside.
inline void emit(const study::TextTable& table, const study::CliOptions& cli,
                 const std::string& title) {
  std::cout << "# " << title << '\n' << table.str() << '\n';
  if (cli.csv) {
    study::write_file(*cli.csv, table.csv());
    std::cout << "(csv written to " << *cli.csv << ")\n\n";
  }
}

}  // namespace altroute::bench
