// Shared plumbing for the experiment binaries: guarded main, table output,
// optional trace capture for the --trace / --analyze post-pass.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"
#include "study/report.hpp"

namespace altroute::bench {

/// Parses the CLI, runs `body`, and converts exceptions into a non-zero
/// exit with a message on stderr.  `--trace-filter list` short-circuits to
/// printing the valid kind names (the body never runs).
inline int guarded_main(int argc, char** argv,
                        const std::function<void(const study::CliOptions&)>& body) {
  try {
    const study::CliOptions cli = study::parse_cli(argc, argv);
    if (cli.trace_filter_list) {
      std::cout << obs::trace_kind_list() << '\n';
      return 0;
    }
    body(cli);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "bench") << ": " << e.what() << '\n';
    return 1;
  }
}

/// Prints a titled table to stdout and, when --csv was given, writes the
/// CSV alongside.
inline void emit(const study::TextTable& table, const study::CliOptions& cli,
                 const std::string& title) {
  std::cout << "# " << title << '\n' << table.str() << '\n';
  if (cli.csv) {
    study::write_file(*cli.csv, table.csv());
    std::cout << "(csv written to " << *cli.csv << ")\n\n";
  }
}

/// In-memory JSONL trace capture for a sweep binary.  When the CLI asks for
/// --trace and/or --analyze/--analysis-out, `attach` hooks a buffering sink
/// into the sweep's obs options; after the sweep, `flush` writes the file
/// for --trace.  The buffer holds the exact bytes the offline analyzer
/// parses, so a live --analyze report matches `altroute_analyze` run on the
/// saved trace byte for byte.
struct TraceCapture {
  std::ostringstream buffer;
  std::unique_ptr<obs::JsonlTraceSink> sink;

  void attach(const study::CliOptions& cli, study::SweepObsOptions& obs) {
    if (!cli.trace && !cli.wants_analysis()) return;
    sink = std::make_unique<obs::JsonlTraceSink>(
        buffer, obs::parse_trace_filter(cli.trace_filter.value_or("")));
    obs.trace = sink.get();
  }

  void flush(const study::CliOptions& cli) const {
    if (!cli.trace) return;
    study::write_file(*cli.trace, buffer.str());
    std::cout << "(trace written to " << *cli.trace << ")\n\n";
  }
};

}  // namespace altroute::bench
