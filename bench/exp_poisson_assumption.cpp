// How Poisson is the overflow?  Quantifying assumption A1.
//
// Theorem 1 assumes alternate-routed calls arrive at a link as a (state-
// dependent) Poisson process.  Real overflow is peaked: it appears exactly
// while some primary link is full, in bursts.  Classical overflow theory
// measures the burstiness: on the symmetric quadrangle, the stream
// overflowing a direct link has Wilkinson peakedness Z > 1, and a link
// receiving primary traffic PLUS that overflow sees more blocking than a
// Poisson stream of the same mean would produce (Hayward's correction).
//
// This bench prints, per load: the overflow moments, the combined-stream
// peakedness at an alternate link, and Poisson-assumed vs Hayward-corrected
// blocking -- the size and direction of the A1 idealization.  (The scheme's
// GUARANTEE is not at stake -- Eq. 15 keeps alternates from mattering when
// links are hot -- but absolute blocking predictions built on A1 are
// optimistic by the gap shown here.)
#include "bench_common.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/overflow_moments.hpp"
#include "erlang/symmetric_overflow.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const int capacity = 100;
  study::TextTable table({"E_per_pair", "B_direct", "overflow_mean", "Z_overflow",
                          "Z_combined", "B_poisson(A1)", "B_hayward", "excess%"});
  for (const double load :
       cli.loads.value_or(std::vector<double>{70, 80, 85, 90, 95, 100})) {
    // Overflow of one direct link of the quadrangle.
    const erlang::OverflowMoments overflow = erlang::overflow_moments(load, capacity);
    // Share of that overflow actually offered to a given alternate link:
    // the uncontrolled symmetric fixed point's xi (N = 4, r = 0).
    erlang::SymmetricOverflowModel model;
    model.nodes = 4;
    model.capacity = capacity;
    model.direct_load = load;
    model.reservation = 0;
    const auto fp = erlang::solve_symmetric_overflow(model, 0.0);
    const double xi = fp.overflow_rate;
    // Combined stream at an alternate link: Poisson primary `load` plus
    // overflow of mean xi carrying the direct overflow's peakedness.
    const double combined_mean = load + xi;
    const double combined_variance = load + xi * overflow.peakedness;
    const double combined_z = combined_mean > 0.0 ? combined_variance / combined_mean : 1.0;
    const double poisson_b = erlang::erlang_b(combined_mean, capacity);
    const double hayward_b = erlang::hayward_blocking(combined_mean, combined_z, capacity);
    table.add_row(
        {study::fmt(load, 0), study::fmt(erlang::erlang_b(load, capacity), 4),
         study::fmt(xi, 2), study::fmt(overflow.peakedness, 2), study::fmt(combined_z, 3),
         study::fmt(poisson_b, 4), study::fmt(hayward_b, 4),
         study::fmt(poisson_b > 0.0 ? 100.0 * (hayward_b - poisson_b) / poisson_b : 0.0, 1)});
  }
  bench::emit(table, cli,
              "Assumption A1 on the quadrangle (C = 100): peakedness of the overflow "
              "and the Hayward correction to an alternate link's blocking");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
