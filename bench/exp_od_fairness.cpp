// Section 4.2.2, "Blocking on an O-D pair basis": the skewness of per-pair
// blocking probabilities across the 132 ordered pairs of the NSFNet model
// (H = 6).  The paper: most skewed for single-path, least skewed for
// uncontrolled alternate routing -- the fairness property of alternate
// routing.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  const std::vector<double> paper_loads = cli.loads.value_or(std::vector<double>{10, 12});
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(6);
  options.erlang_bound = false;
  options.fairness = true;
  const study::SweepResult r = study::run_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
      {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
       study::PolicyKind::kControlledAlternate},
      options);

  study::TextTable table({"load", "policy", "mean_pair_blocking", "stddev", "cv",
                          "skewness", "max_pair_blocking"});
  for (std::size_t i = 0; i < paper_loads.size(); ++i) {
    for (const study::PolicyCurve& curve : r.curves) {
      const auto& s = curve.pair_blocking[i];
      table.add_row({study::fmt(paper_loads[i], 0), curve.name, study::fmt(s.mean, 4),
                     study::fmt(s.stddev, 4), study::fmt(s.cv, 3), study::fmt(s.skewness, 3),
                     study::fmt(s.max, 4)});
    }
  }
  bench::emit(table, cli,
              "Section 4.2.2: per-O-D-pair blocking dispersion, H = 6 (paper: single-path "
              "most skewed, uncontrolled least)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
