// Ablation: three provably-safe ways to set the state-protection levels.
//
//   global-H     -- the paper's Eq. 15 with the network-wide H (baseline);
//   per-link-H^k -- footnote 5's refinement: each link uses the longest
//                   alternate that actually traverses it;
//   per-length   -- each alternate call of length h faces r(lambda, C, h),
//                   so short detours are admitted far more freely.
//
// All three retain the never-worse-than-single-path guarantee; the
// question is how much of uncontrolled routing's low-load gain each one
// recovers.  Run on the quadrangle (where per-length is maximally
// different: 2-hop vs 3-hop alternates) and on NSFNet.
#include "bench_common.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "core/variants.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

struct Row {
  double single{0};
  double uncontrolled{0};
  double global_h{0};
  double per_link_h{0};
  double per_length{0};
};

Row run_point(const net::Graph& g, const net::TrafficMatrix& traffic, int global_h,
              int seeds, double measure) {
  const routing::RouteTable routes = routing::build_min_hop_routes(g, global_h);
  const auto lambda = routing::primary_link_loads(g, routes, traffic);
  const auto r_global = core::protection_levels_from_lambda(g, lambda, global_h);
  const auto r_local = core::protection_levels_per_link_h(g, routes, traffic);

  loss::SinglePathPolicy single;
  loss::UncontrolledAlternatePolicy uncontrolled;
  core::ControlledAlternatePolicy controlled;
  core::PerLengthControlledPolicy per_length(g, lambda, global_h);

  sim::RunningStats stats[5];
  for (int s = 1; s <= seeds; ++s) {
    const sim::CallTrace trace =
        sim::generate_trace(traffic, measure + 10.0, static_cast<std::uint64_t>(s));
    loss::EngineOptions plain;
    plain.link_stats = false;
    stats[0].add(loss::run_trace(g, routes, single, trace, plain).blocking());
    stats[1].add(loss::run_trace(g, routes, uncontrolled, trace, plain).blocking());
    loss::EngineOptions with_global = plain;
    with_global.reservations = r_global;
    stats[2].add(loss::run_trace(g, routes, controlled, trace, with_global).blocking());
    loss::EngineOptions with_local = plain;
    with_local.reservations = r_local;
    stats[3].add(loss::run_trace(g, routes, controlled, trace, with_local).blocking());
    stats[4].add(loss::run_trace(g, routes, per_length, trace, plain).blocking());
  }
  return Row{stats[0].mean(), stats[1].mean(), stats[2].mean(), stats[3].mean(),
             stats[4].mean()};
}

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);

  study::TextTable quad({"E_per_pair", "single", "uncontrolled", "ctl_globalH",
                         "ctl_perlinkH", "ctl_perlength"});
  for (const double load : cli.loads.value_or(std::vector<double>{80, 85, 90, 95, 105})) {
    const Row row = run_point(net::full_mesh(4, 100), net::TrafficMatrix::uniform(4, load), 3,
                              shape.seeds, shape.measure);
    quad.add_row({study::fmt(load, 0), study::fmt(row.single, 4),
                  study::fmt(row.uncontrolled, 4), study::fmt(row.global_h, 4),
                  study::fmt(row.per_link_h, 4), study::fmt(row.per_length, 4)});
  }
  bench::emit(quad, cli, "Protection variants on the quadrangle (C = 100, H = 3)");

  study::TextTable nsf({"load", "single", "uncontrolled", "ctl_globalH", "ctl_perlinkH",
                        "ctl_perlength"});
  for (const double load : {8.0, 10.0, 12.0}) {
    const Row row =
        run_point(net::nsfnet_t3(), study::nsfnet_nominal_traffic().scaled(load / 10.0), 11,
                  shape.seeds, shape.measure);
    nsf.add_row({study::fmt(load, 0), study::fmt(row.single, 4),
                 study::fmt(row.uncontrolled, 4), study::fmt(row.global_h, 4),
                 study::fmt(row.per_link_h, 4), study::fmt(row.per_length, 4)});
  }
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(nsf, no_csv, "Protection variants on NSFNet (H = 11, Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
