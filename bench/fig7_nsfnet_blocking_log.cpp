// Figure 7: the NSFNet experiment of Figure 6 on a log scale, with a finer
// low-load grid -- the view that shows uncontrolled/controlled alternate
// routing hugging the Erlang Bound while single-path blocking is orders of
// magnitude higher at modest loads.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "sim/thread_pool.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/prof_capture.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  const std::vector<double> paper_loads =
      cli.loads.value_or(std::vector<double>{4, 5, 6, 7, 8, 9, 10, 11, 12});
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(11);
  const std::vector<study::PolicyKind> policies{study::PolicyKind::kSinglePath,
                                                study::PolicyKind::kUncontrolledAlternate,
                                                study::PolicyKind::kControlledAlternate};
  study::ProfCapture prof_capture("fig7_nsfnet_blocking_log");
  prof_capture.attach(cli, options.obs, options.prof);
  study::SweepResult result =
      study::run_sweep(net::nsfnet_t3(), study::nsfnet_nominal_traffic(), policies, options);
  for (std::size_t i = 0; i < result.load_factors.size(); ++i) {
    result.load_factors[i] = paper_loads[i];
  }
  bench::emit(study::sweep_table(result, /*scientific=*/true), cli,
              "Figure 7: Internet model, log-scale view (Load = 10 nominal)");
  const int resolved_threads =
      options.threads == 0 ? static_cast<int>(sim::ThreadPool::hardware_threads())
                           : options.threads;
  prof_capture.emit(cli,
                    study::sweep_fingerprint(net::nsfnet_t3(),
                                             study::nsfnet_nominal_traffic(), policies,
                                             options),
                    resolved_threads, std::cout);
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
