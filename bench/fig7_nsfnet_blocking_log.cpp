// Figure 7: the NSFNet experiment of Figure 6 on a log scale, with a finer
// low-load grid -- the view that shows uncontrolled/controlled alternate
// routing hugging the Erlang Bound while single-path blocking is orders of
// magnitude higher at modest loads.
#include "bench_common.hpp"
#include "netgraph/topologies.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  study::SweepOptions options;
  const std::vector<double> paper_loads =
      cli.loads.value_or(std::vector<double>{4, 5, 6, 7, 8, 9, 10, 11, 12});
  options.load_factors.clear();
  for (const double load : paper_loads) options.load_factors.push_back(load / 10.0);
  options.seeds = shape.seeds;
  options.threads = shape.threads;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.max_alt_hops = cli.hops.value_or(11);
  study::SweepResult result = study::run_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
      {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
       study::PolicyKind::kControlledAlternate},
      options);
  for (std::size_t i = 0; i < result.load_factors.size(); ++i) {
    result.load_factors[i] = paper_loads[i];
  }
  bench::emit(study::sweep_table(result, /*scientific=*/true), cli,
              "Figure 7: Internet model, log-scale view (Load = 10 nominal)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
