// Bistability / hysteresis of uncontrolled alternate routing -- the
// phenomenon behind the paper's references [10] (Gibbens, Hunt & Kelly,
// "Bistability in communication networks") and [1] (Akinpelu).
//
// Near the critical load a symmetric network with free overflow has TWO
// quasi-stable regimes: a low-blocking one where most calls are direct,
// and a high-blocking one where alternate-routed calls occupy two circuits
// each and crowd out directs.  Which one the network lives in depends on
// where it starts.  The probe: run the same measurement window twice, once
// from an idle ("cold") network and once "hot" -- preceded by a 30-unit
// overload burst at 1.4x the target that fills the mesh with two-link
// calls -- and compare.  A hysteresis gap (hot >> cold) is the bistability
// signature; the Eq.-15 control is designed to erase it.
//
// N = 10 fully-connected, C = 120 per link, two-link alternates (H = 2):
// the classic setting of the bistability literature.
#include <memory>

#include "bench_common.hpp"
#include "control/dar.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "erlang/state_protection.hpp"
#include "erlang/symmetric_overflow.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  const int n = 10;
  const int capacity = 120;
  const net::Graph g = net::full_mesh(n, capacity);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, cli.hops.value_or(2));
  const double burst = 30.0;  // hot-start overload phase

  study::TextTable table({"E_per_pair", "scheme", "cold_start", "hot_start",
                          "hysteresis_gap"});
  const std::vector<double> loads =
      cli.loads.value_or(std::vector<double>{85, 88, 91, 94, 97, 100, 103});
  for (const double load : loads) {
    const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(n, load);
    const net::TrafficMatrix overload = net::TrafficMatrix::uniform(n, 1.4 * load);
    const auto reservations = core::protection_levels_from_lambda(
        g, routing::primary_link_loads(g, routes, traffic), 2);

    // DAR joins the probe because trunk reservation is ITS answer to this
    // exact phenomenon: trunk=0 is plain sticky random (free overflow,
    // metastable like the uncontrolled scheme), a modest static reserve
    // restores a unique regime.  The sticky memory and resample RNG are
    // per-replication state, so DAR gets a fresh policy per run.
    struct Scheme {
      const char* name;
      bool use_reservations;
      int dar_trunk;  // < 0: not DAR
    };
    for (const Scheme scheme :
         {Scheme{"uncontrolled", false, -1}, Scheme{"controlled", true, -1},
          Scheme{"dar trunk=0", false, 0}, Scheme{"dar trunk=5", false, 5}}) {
      sim::RunningStats cold;
      sim::RunningStats hot;
      for (int s = 1; s <= shape.seeds; ++s) {
        const auto seed = static_cast<std::uint64_t>(s);
        // Both runs measure the SAME steady segment (common random
        // numbers); only the 30-unit lead-in differs -- target-load
        // traffic from idle (cold) vs a 1.4x overload burst (hot).
        const sim::CallTrace steady = sim::generate_trace(traffic, shape.measure, seed);
        const sim::CallTrace cold_trace = sim::concatenate_traces(
            sim::generate_trace(traffic, burst, seed + 2000), steady);
        const sim::CallTrace hot_trace = sim::concatenate_traces(
            sim::generate_trace(overload, burst, seed + 1000), steady);
        loss::EngineOptions options;
        options.warmup = burst;  // measure [burst, burst + measure)
        options.link_stats = false;
        if (scheme.use_reservations) options.reservations = reservations;
        const auto make_policy = [&]() -> std::unique_ptr<loss::RoutingPolicy> {
          if (scheme.dar_trunk >= 0) {
            control::DarConfig dar;
            dar.trunk = scheme.dar_trunk;
            return std::make_unique<control::DarPolicy>(n, seed, dar);
          }
          if (scheme.use_reservations)
            return std::make_unique<core::ControlledAlternatePolicy>();
          return std::make_unique<loss::UncontrolledAlternatePolicy>();
        };
        cold.add(loss::run_trace(g, routes, *make_policy(), cold_trace, options).blocking());
        hot.add(loss::run_trace(g, routes, *make_policy(), hot_trace, options).blocking());
      }
      table.add_row({study::fmt(load, 0), scheme.name, study::fmt(cold.mean(), 4),
                     study::fmt(hot.mean(), 4), study::fmt(hot.mean() - cold.mean(), 4)});
    }
  }
  bench::emit(table, cli,
              "Hysteresis probe on a 10-node full mesh (C = 120, H = 2): hot starts "
              "follow a 30-unit 1.4x overload burst; a positive gap for the "
              "uncontrolled scheme is the bistability signature of refs [10]/[1]");

  // The analytic face of the same phenomenon: the symmetric reduced-load
  // fixed point solved from a cold start (B = 0) and a hot start (B = 1).
  // Two distinct solutions = bistability; the Eq.-15 reservation restores
  // a unique (low) fixed point.
  study::TextTable analytic({"E_per_pair", "r", "fp_cold", "fp_hot", "fp_gap"});
  for (const double load : loads) {
    for (const int r :
         {0, erlang::min_state_protection(load, capacity, 2)}) {
      erlang::SymmetricOverflowModel model;
      model.nodes = n;
      model.capacity = capacity;
      model.direct_load = load;
      model.reservation = r;
      const auto cold_fp = erlang::solve_symmetric_overflow(model, 0.0);
      const auto hot_fp = erlang::solve_symmetric_overflow(model, 1.0);
      analytic.add_row({study::fmt(load, 0), std::to_string(r),
                        study::fmt(cold_fp.call_blocking, 4),
                        study::fmt(hot_fp.call_blocking, 4),
                        study::fmt(hot_fp.call_blocking - cold_fp.call_blocking, 4)});
    }
  }
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(analytic, no_csv,
              "Analytic fixed points of the symmetric reduced-load model (cold vs hot "
              "start): two solutions with r = 0 in the critical window, one with the "
              "Eq.-15 r");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
