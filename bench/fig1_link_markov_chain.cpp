// Figure 1: the birth-death chain of a state-protected link.
//
// The paper's Figure 1 is an illustration of the Markov chain underlying
// Theorem 1.  This bench makes it quantitative: it prints the stationary
// occupancy distribution of a protected link under primary load nu plus
// state-dependent overflow, for several reservation levels, showing how
// protection empties the top states of alternate traffic.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "erlang/birth_death.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/state_protection.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const int capacity = 20;
  const double nu = 14.0;        // primary Poisson rate
  const double overflow = 6.0;   // alternate-routed arrival rate (states < C-r)

  study::TextTable table({"state", "pi_r0", "pi_r2", "pi_r5", "pi_r20"});
  std::vector<std::vector<double>> pis;
  for (const int r : {0, 2, 5, 20}) {
    const auto birth = erlang::protected_link_births(
        nu, std::vector<double>(static_cast<std::size_t>(capacity), overflow), capacity, r);
    std::vector<double> death(static_cast<std::size_t>(capacity));
    for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
    pis.push_back(erlang::stationary_distribution(birth, death));
  }
  for (int s = 0; s <= capacity; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    for (const auto& pi : pis) row.push_back(study::fmt(pi[static_cast<std::size_t>(s)], 5));
    table.add_row(std::move(row));
  }
  bench::emit(table, cli,
              "Figure 1: occupancy distribution of a protected link "
              "(C=20, nu=14, overflow=6, r in {0,2,5,20})");

  study::TextTable summary(
      {"r", "P(full)", "primary_blocking", "thm1_bound_L"});
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const int r = std::vector<int>{0, 2, 5, 20}[i];
    summary.add_row({std::to_string(r), study::fmt(pis[i].back(), 5),
                     study::fmt(pis[i].back(), 5),
                     study::fmt(erlang::theorem1_bound(nu, capacity, r), 5)});
  }
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(summary, no_csv,
              "Per-level summary (primary blocking = P(full) by PASTA)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
