// Table 1: capacity, primary load, and state-protection levels (H = 6 and
// H = 11) for the 30 directed links of the NSFNet T3 model.
//
// Three layers of reproduction are printed side by side:
//   lambda_paper / r6_paper / r11_paper  -- transcribed from the paper;
//   r6_from_paper_lambda / r11_...       -- our Eq.-15 solver fed the
//                                           paper's (rounded) loads;
//   lambda_fit / r6_fit / r11_fit        -- the full pipeline: reconstructed
//                                           traffic matrix -> Eq. 1 -> Eq. 15.
#include <iostream>

#include "bench_common.hpp"
#include "core/protection.hpp"
#include "erlang/state_protection.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "study/nsfnet_traffic.hpp"

namespace {

using namespace altroute;

void run(const study::CliOptions& cli) {
  const net::Graph g = net::nsfnet_t3();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 6);
  const auto lambda_fit =
      routing::primary_link_loads(g, routes, study::nsfnet_nominal_traffic());
  const auto r6_fit = core::protection_levels_from_lambda(g, lambda_fit, 6);
  const auto r11_fit = core::protection_levels_from_lambda(g, lambda_fit, 11);

  study::TextTable table({"link", "C", "lambda_paper", "lambda_fit", "r6_paper", "r6_ours",
                          "r6_fit", "r11_paper", "r11_ours", "r11_fit"});
  int exact6 = 0;
  int exact11 = 0;
  const auto& rows = net::nsfnet_table1();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    const int r6_ours = erlang::min_state_protection(row.lambda, row.capacity, 6);
    const int r11_ours = erlang::min_state_protection(row.lambda, row.capacity, 11);
    exact6 += (r6_ours == row.r_h6) ? 1 : 0;
    exact11 += (r11_ours == row.r_h11) ? 1 : 0;
    table.add_row({std::to_string(row.src) + "->" + std::to_string(row.dst),
                   std::to_string(row.capacity), study::fmt(row.lambda, 0),
                   study::fmt(lambda_fit[k], 1), std::to_string(row.r_h6),
                   std::to_string(r6_ours), std::to_string(r6_fit[k]),
                   std::to_string(row.r_h11), std::to_string(r11_ours),
                   std::to_string(r11_fit[k])});
  }
  bench::emit(table, cli, "Table 1: NSFNet link capacities, primary loads, protection levels");
  std::cout << "Solver vs paper from printed lambdas: H=6 " << exact6 << "/30 exact, H=11 "
            << exact11 << "/30 exact (mismatches are +-0.5-Erlang print-rounding artifacts)\n";
  const study::ReconstructionQuality& q = study::nsfnet_reconstruction_quality();
  std::cout << "Traffic reconstruction residual vs Table 1: max |err| = "
            << study::fmt(q.max_abs_residual, 4) << " E, rms = " << study::fmt(q.rms_residual, 4)
            << " E (" << q.iterations << " projected-gradient iterations)\n\n";

  // The paper also prints the nominal matrix itself; ours is the
  // reconstruction (one of the non-negative solutions consistent with
  // Table 1 -- see DESIGN.md).
  const net::TrafficMatrix& t = study::nsfnet_nominal_traffic();
  std::vector<std::string> headers{"T(i,j)"};
  for (int j = 0; j < 12; ++j) headers.push_back(std::to_string(j));
  study::TextTable matrix(std::move(headers));
  for (int i = 0; i < 12; ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (int j = 0; j < 12; ++j) {
      row.push_back(study::fmt(t.at(net::NodeId(i), net::NodeId(j)), 1));
    }
    matrix.add_row(std::move(row));
  }
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(matrix, no_csv,
              "Reconstructed nominal traffic matrix (Erlangs; total " +
                  study::fmt(t.total(), 0) + ")");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
