// Multi-rate extension (the paper's named future work): two call classes
// -- 1-circuit "audio" and 5-circuit "video" -- on the quadrangle, under
// the three routing schemes.  The reservation levels come from Eq. 15 on
// the total circuit demand (audio Erlangs + 5 x video Erlangs), the
// pragmatic generalization documented in DESIGN.md.
//
// Also prints the single-link Kaufman-Roberts cross-check: simulated
// per-class blocking on an isolated link vs the product-form values.
#include <iostream>

#include "bench_common.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "erlang/kaufman_roberts.hpp"
#include "loss/engine.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

namespace {

using namespace altroute;

void kaufman_roberts_check(const study::CliOptions& cli, const study::RunShape& shape) {
  net::Graph g(2);
  g.add_duplex(net::NodeId(0), net::NodeId(1), 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 1);
  std::vector<sim::TrafficClass> classes(2);
  classes[0].offered = net::TrafficMatrix(2);
  classes[0].offered.set(net::NodeId(0), net::NodeId(1), 50.0);
  classes[0].bandwidth = 1;
  classes[1].offered = net::TrafficMatrix(2);
  classes[1].offered.set(net::NodeId(0), net::NodeId(1), 8.0);
  classes[1].bandwidth = 5;

  loss::SinglePathPolicy policy;
  sim::RunningStats narrow;
  sim::RunningStats wide;
  for (int s = 1; s <= shape.seeds; ++s) {
    const sim::CallTrace trace = sim::generate_multirate_trace(
        classes, shape.measure + shape.warmup, static_cast<std::uint64_t>(s));
    loss::EngineOptions options;
    options.warmup = shape.warmup;
    options.link_stats = false;
    const loss::RunResult run = loss::run_trace(g, routes, policy, trace, options);
    narrow.add(run.per_class[0].blocking());
    wide.add(run.per_class[1].blocking());
  }
  const auto kr = erlang::kaufman_roberts_blocking({{50.0, 1}, {8.0, 5}}, 100);
  study::TextTable table({"class", "simulated", "kaufman_roberts"});
  table.add_row({"1-circuit @50E", study::fmt(narrow.mean(), 4), study::fmt(kr[0], 4)});
  table.add_row({"5-circuit @8E", study::fmt(wide.mean(), 4), study::fmt(kr[1], 4)});
  study::CliOptions no_csv = cli;
  no_csv.csv.reset();
  bench::emit(table, no_csv,
              "Single-link validation: engine vs Kaufman-Roberts (C = 100)");
}

void run(const study::CliOptions& cli) {
  const study::RunShape shape = study::shape_from_cli(cli);
  kaufman_roberts_check(cli, shape);

  const net::Graph g = net::full_mesh(4, 100);
  const routing::RouteTable routes = routing::build_min_hop_routes(g, 3);

  study::TextTable table({"audio_E", "video_E", "policy", "blocking", "audio_B", "video_B",
                          "alt_fraction"});
  for (const double scale : cli.loads.value_or(std::vector<double>{0.8, 1.0, 1.2})) {
    std::vector<sim::TrafficClass> classes(2);
    classes[0].offered = net::TrafficMatrix::uniform(4, 50.0 * scale);
    classes[0].bandwidth = 1;
    classes[1].offered = net::TrafficMatrix::uniform(4, 8.0 * scale);
    classes[1].bandwidth = 5;
    // Circuit demand per pair: 50 + 5*8 = 90 at scale 1 -> Eq. 15 on the
    // direct-primary link load in circuit units.
    const double circuit_load = (50.0 + 5.0 * 8.0) * scale;
    const auto reservations = core::protection_levels_from_lambda(
        g, std::vector<double>(static_cast<std::size_t>(g.link_count()), circuit_load), 3);

    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    struct Entry {
      loss::RoutingPolicy* policy;
      bool use_reservations;
    };
    const Entry entries[] = {{&single, false}, {&uncontrolled, false}, {&controlled, true}};
    for (const Entry& entry : entries) {
      sim::RunningStats blocking;
      sim::RunningStats audio;
      sim::RunningStats video;
      sim::RunningStats alt;
      for (int s = 1; s <= shape.seeds; ++s) {
        const sim::CallTrace trace = sim::generate_multirate_trace(
            classes, shape.measure + shape.warmup, static_cast<std::uint64_t>(s));
        loss::EngineOptions options;
        options.warmup = shape.warmup;
        options.link_stats = false;
        if (entry.use_reservations) options.reservations = reservations;
        const loss::RunResult run = loss::run_trace(g, routes, *entry.policy, trace, options);
        blocking.add(run.blocking());
        audio.add(run.per_class[0].blocking());
        video.add(run.per_class[1].blocking());
        alt.add(run.alternate_fraction());
      }
      table.add_row({study::fmt(50.0 * scale, 0), study::fmt(8.0 * scale, 1),
                     std::string(entry.policy->name()), study::fmt(blocking.mean(), 4),
                     study::fmt(audio.mean(), 4), study::fmt(video.mean(), 4),
                     study::fmt(alt.mean(), 3)});
    }
  }
  bench::emit(table, cli,
              "Multi-rate quadrangle: 1-circuit audio + 5-circuit video, C = 100 "
              "(controlled levels from Eq. 15 on total circuit demand)");
}

}  // namespace

int main(int argc, char** argv) { return altroute::bench::guarded_main(argc, argv, run); }
