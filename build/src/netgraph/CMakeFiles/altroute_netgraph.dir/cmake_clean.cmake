file(REMOVE_RECURSE
  "CMakeFiles/altroute_netgraph.dir/dot.cpp.o"
  "CMakeFiles/altroute_netgraph.dir/dot.cpp.o.d"
  "CMakeFiles/altroute_netgraph.dir/graph.cpp.o"
  "CMakeFiles/altroute_netgraph.dir/graph.cpp.o.d"
  "CMakeFiles/altroute_netgraph.dir/io.cpp.o"
  "CMakeFiles/altroute_netgraph.dir/io.cpp.o.d"
  "CMakeFiles/altroute_netgraph.dir/topologies.cpp.o"
  "CMakeFiles/altroute_netgraph.dir/topologies.cpp.o.d"
  "CMakeFiles/altroute_netgraph.dir/traffic_matrix.cpp.o"
  "CMakeFiles/altroute_netgraph.dir/traffic_matrix.cpp.o.d"
  "libaltroute_netgraph.a"
  "libaltroute_netgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_netgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
