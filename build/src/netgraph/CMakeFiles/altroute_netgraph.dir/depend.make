# Empty dependencies file for altroute_netgraph.
# This may be replaced when dependencies are built.
