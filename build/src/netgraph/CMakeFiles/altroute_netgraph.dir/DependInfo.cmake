
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgraph/dot.cpp" "src/netgraph/CMakeFiles/altroute_netgraph.dir/dot.cpp.o" "gcc" "src/netgraph/CMakeFiles/altroute_netgraph.dir/dot.cpp.o.d"
  "/root/repo/src/netgraph/graph.cpp" "src/netgraph/CMakeFiles/altroute_netgraph.dir/graph.cpp.o" "gcc" "src/netgraph/CMakeFiles/altroute_netgraph.dir/graph.cpp.o.d"
  "/root/repo/src/netgraph/io.cpp" "src/netgraph/CMakeFiles/altroute_netgraph.dir/io.cpp.o" "gcc" "src/netgraph/CMakeFiles/altroute_netgraph.dir/io.cpp.o.d"
  "/root/repo/src/netgraph/topologies.cpp" "src/netgraph/CMakeFiles/altroute_netgraph.dir/topologies.cpp.o" "gcc" "src/netgraph/CMakeFiles/altroute_netgraph.dir/topologies.cpp.o.d"
  "/root/repo/src/netgraph/traffic_matrix.cpp" "src/netgraph/CMakeFiles/altroute_netgraph.dir/traffic_matrix.cpp.o" "gcc" "src/netgraph/CMakeFiles/altroute_netgraph.dir/traffic_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
