file(REMOVE_RECURSE
  "libaltroute_netgraph.a"
)
