# CMake generated Testfile for 
# Source directory: /root/repo/src/netgraph
# Build directory: /root/repo/build/src/netgraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
