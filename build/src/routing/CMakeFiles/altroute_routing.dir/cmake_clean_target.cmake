file(REMOVE_RECURSE
  "libaltroute_routing.a"
)
