
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/fixed_point.cpp" "src/routing/CMakeFiles/altroute_routing.dir/fixed_point.cpp.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/fixed_point.cpp.o.d"
  "/root/repo/src/routing/minloss.cpp" "src/routing/CMakeFiles/altroute_routing.dir/minloss.cpp.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/minloss.cpp.o.d"
  "/root/repo/src/routing/path.cpp" "src/routing/CMakeFiles/altroute_routing.dir/path.cpp.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/path.cpp.o.d"
  "/root/repo/src/routing/route_table.cpp" "src/routing/CMakeFiles/altroute_routing.dir/route_table.cpp.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/route_table.cpp.o.d"
  "/root/repo/src/routing/shortest_paths.cpp" "src/routing/CMakeFiles/altroute_routing.dir/shortest_paths.cpp.o" "gcc" "src/routing/CMakeFiles/altroute_routing.dir/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/erlang/CMakeFiles/altroute_erlang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
