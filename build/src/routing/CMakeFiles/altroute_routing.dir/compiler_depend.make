# Empty compiler generated dependencies file for altroute_routing.
# This may be replaced when dependencies are built.
