file(REMOVE_RECURSE
  "CMakeFiles/altroute_routing.dir/fixed_point.cpp.o"
  "CMakeFiles/altroute_routing.dir/fixed_point.cpp.o.d"
  "CMakeFiles/altroute_routing.dir/minloss.cpp.o"
  "CMakeFiles/altroute_routing.dir/minloss.cpp.o.d"
  "CMakeFiles/altroute_routing.dir/path.cpp.o"
  "CMakeFiles/altroute_routing.dir/path.cpp.o.d"
  "CMakeFiles/altroute_routing.dir/route_table.cpp.o"
  "CMakeFiles/altroute_routing.dir/route_table.cpp.o.d"
  "CMakeFiles/altroute_routing.dir/shortest_paths.cpp.o"
  "CMakeFiles/altroute_routing.dir/shortest_paths.cpp.o.d"
  "libaltroute_routing.a"
  "libaltroute_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
