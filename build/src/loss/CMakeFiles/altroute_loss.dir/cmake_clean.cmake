file(REMOVE_RECURSE
  "CMakeFiles/altroute_loss.dir/dynamic_policies.cpp.o"
  "CMakeFiles/altroute_loss.dir/dynamic_policies.cpp.o.d"
  "CMakeFiles/altroute_loss.dir/engine.cpp.o"
  "CMakeFiles/altroute_loss.dir/engine.cpp.o.d"
  "CMakeFiles/altroute_loss.dir/network_state.cpp.o"
  "CMakeFiles/altroute_loss.dir/network_state.cpp.o.d"
  "CMakeFiles/altroute_loss.dir/policies.cpp.o"
  "CMakeFiles/altroute_loss.dir/policies.cpp.o.d"
  "CMakeFiles/altroute_loss.dir/signaling.cpp.o"
  "CMakeFiles/altroute_loss.dir/signaling.cpp.o.d"
  "libaltroute_loss.a"
  "libaltroute_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
