
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loss/dynamic_policies.cpp" "src/loss/CMakeFiles/altroute_loss.dir/dynamic_policies.cpp.o" "gcc" "src/loss/CMakeFiles/altroute_loss.dir/dynamic_policies.cpp.o.d"
  "/root/repo/src/loss/engine.cpp" "src/loss/CMakeFiles/altroute_loss.dir/engine.cpp.o" "gcc" "src/loss/CMakeFiles/altroute_loss.dir/engine.cpp.o.d"
  "/root/repo/src/loss/network_state.cpp" "src/loss/CMakeFiles/altroute_loss.dir/network_state.cpp.o" "gcc" "src/loss/CMakeFiles/altroute_loss.dir/network_state.cpp.o.d"
  "/root/repo/src/loss/policies.cpp" "src/loss/CMakeFiles/altroute_loss.dir/policies.cpp.o" "gcc" "src/loss/CMakeFiles/altroute_loss.dir/policies.cpp.o.d"
  "/root/repo/src/loss/signaling.cpp" "src/loss/CMakeFiles/altroute_loss.dir/signaling.cpp.o" "gcc" "src/loss/CMakeFiles/altroute_loss.dir/signaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/altroute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/erlang/CMakeFiles/altroute_erlang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
