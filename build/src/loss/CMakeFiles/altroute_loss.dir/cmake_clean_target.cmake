file(REMOVE_RECURSE
  "libaltroute_loss.a"
)
