# Empty compiler generated dependencies file for altroute_loss.
# This may be replaced when dependencies are built.
