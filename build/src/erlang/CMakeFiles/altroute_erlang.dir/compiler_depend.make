# Empty compiler generated dependencies file for altroute_erlang.
# This may be replaced when dependencies are built.
