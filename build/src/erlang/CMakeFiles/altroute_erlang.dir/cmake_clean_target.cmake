file(REMOVE_RECURSE
  "libaltroute_erlang.a"
)
