file(REMOVE_RECURSE
  "CMakeFiles/altroute_erlang.dir/birth_death.cpp.o"
  "CMakeFiles/altroute_erlang.dir/birth_death.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/erlang_b.cpp.o"
  "CMakeFiles/altroute_erlang.dir/erlang_b.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/erlang_bound.cpp.o"
  "CMakeFiles/altroute_erlang.dir/erlang_bound.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/kaufman_roberts.cpp.o"
  "CMakeFiles/altroute_erlang.dir/kaufman_roberts.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/overflow_moments.cpp.o"
  "CMakeFiles/altroute_erlang.dir/overflow_moments.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/shadow_price.cpp.o"
  "CMakeFiles/altroute_erlang.dir/shadow_price.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/state_protection.cpp.o"
  "CMakeFiles/altroute_erlang.dir/state_protection.cpp.o.d"
  "CMakeFiles/altroute_erlang.dir/symmetric_overflow.cpp.o"
  "CMakeFiles/altroute_erlang.dir/symmetric_overflow.cpp.o.d"
  "libaltroute_erlang.a"
  "libaltroute_erlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_erlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
