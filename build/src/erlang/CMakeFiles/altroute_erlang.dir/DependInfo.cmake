
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erlang/birth_death.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/birth_death.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/birth_death.cpp.o.d"
  "/root/repo/src/erlang/erlang_b.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/erlang_b.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/erlang_b.cpp.o.d"
  "/root/repo/src/erlang/erlang_bound.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/erlang_bound.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/erlang_bound.cpp.o.d"
  "/root/repo/src/erlang/kaufman_roberts.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/kaufman_roberts.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/kaufman_roberts.cpp.o.d"
  "/root/repo/src/erlang/overflow_moments.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/overflow_moments.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/overflow_moments.cpp.o.d"
  "/root/repo/src/erlang/shadow_price.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/shadow_price.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/shadow_price.cpp.o.d"
  "/root/repo/src/erlang/state_protection.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/state_protection.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/state_protection.cpp.o.d"
  "/root/repo/src/erlang/symmetric_overflow.cpp" "src/erlang/CMakeFiles/altroute_erlang.dir/symmetric_overflow.cpp.o" "gcc" "src/erlang/CMakeFiles/altroute_erlang.dir/symmetric_overflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
