# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netgraph")
subdirs("erlang")
subdirs("sim")
subdirs("routing")
subdirs("loss")
subdirs("core")
subdirs("cellular")
subdirs("study")
