file(REMOVE_RECURSE
  "CMakeFiles/altroute_study.dir/cli.cpp.o"
  "CMakeFiles/altroute_study.dir/cli.cpp.o.d"
  "CMakeFiles/altroute_study.dir/experiment.cpp.o"
  "CMakeFiles/altroute_study.dir/experiment.cpp.o.d"
  "CMakeFiles/altroute_study.dir/nsfnet_traffic.cpp.o"
  "CMakeFiles/altroute_study.dir/nsfnet_traffic.cpp.o.d"
  "CMakeFiles/altroute_study.dir/optimal_overflow.cpp.o"
  "CMakeFiles/altroute_study.dir/optimal_overflow.cpp.o.d"
  "CMakeFiles/altroute_study.dir/report.cpp.o"
  "CMakeFiles/altroute_study.dir/report.cpp.o.d"
  "libaltroute_study.a"
  "libaltroute_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
