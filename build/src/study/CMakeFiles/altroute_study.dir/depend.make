# Empty dependencies file for altroute_study.
# This may be replaced when dependencies are built.
