file(REMOVE_RECURSE
  "libaltroute_study.a"
)
