# Empty dependencies file for altroute_core.
# This may be replaced when dependencies are built.
