
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_policy.cpp" "src/core/CMakeFiles/altroute_core.dir/adaptive_policy.cpp.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/adaptive_policy.cpp.o.d"
  "/root/repo/src/core/controlled_policy.cpp" "src/core/CMakeFiles/altroute_core.dir/controlled_policy.cpp.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/controlled_policy.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/altroute_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/protection.cpp" "src/core/CMakeFiles/altroute_core.dir/protection.cpp.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/protection.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "src/core/CMakeFiles/altroute_core.dir/variants.cpp.o" "gcc" "src/core/CMakeFiles/altroute_core.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loss/CMakeFiles/altroute_loss.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/erlang/CMakeFiles/altroute_erlang.dir/DependInfo.cmake"
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/altroute_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
