file(REMOVE_RECURSE
  "libaltroute_core.a"
)
