file(REMOVE_RECURSE
  "CMakeFiles/altroute_core.dir/adaptive_policy.cpp.o"
  "CMakeFiles/altroute_core.dir/adaptive_policy.cpp.o.d"
  "CMakeFiles/altroute_core.dir/controlled_policy.cpp.o"
  "CMakeFiles/altroute_core.dir/controlled_policy.cpp.o.d"
  "CMakeFiles/altroute_core.dir/controller.cpp.o"
  "CMakeFiles/altroute_core.dir/controller.cpp.o.d"
  "CMakeFiles/altroute_core.dir/protection.cpp.o"
  "CMakeFiles/altroute_core.dir/protection.cpp.o.d"
  "CMakeFiles/altroute_core.dir/variants.cpp.o"
  "CMakeFiles/altroute_core.dir/variants.cpp.o.d"
  "libaltroute_core.a"
  "libaltroute_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
