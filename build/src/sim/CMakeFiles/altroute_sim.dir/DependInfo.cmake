
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/batch_means.cpp" "src/sim/CMakeFiles/altroute_sim.dir/batch_means.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/batch_means.cpp.o.d"
  "/root/repo/src/sim/call_trace.cpp" "src/sim/CMakeFiles/altroute_sim.dir/call_trace.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/call_trace.cpp.o.d"
  "/root/repo/src/sim/load_profile.cpp" "src/sim/CMakeFiles/altroute_sim.dir/load_profile.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/load_profile.cpp.o.d"
  "/root/repo/src/sim/mser.cpp" "src/sim/CMakeFiles/altroute_sim.dir/mser.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/mser.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/sim/CMakeFiles/altroute_sim.dir/rng.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/altroute_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/altroute_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
