file(REMOVE_RECURSE
  "libaltroute_sim.a"
)
