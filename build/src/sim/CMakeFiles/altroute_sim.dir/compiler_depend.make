# Empty compiler generated dependencies file for altroute_sim.
# This may be replaced when dependencies are built.
