file(REMOVE_RECURSE
  "CMakeFiles/altroute_sim.dir/batch_means.cpp.o"
  "CMakeFiles/altroute_sim.dir/batch_means.cpp.o.d"
  "CMakeFiles/altroute_sim.dir/call_trace.cpp.o"
  "CMakeFiles/altroute_sim.dir/call_trace.cpp.o.d"
  "CMakeFiles/altroute_sim.dir/load_profile.cpp.o"
  "CMakeFiles/altroute_sim.dir/load_profile.cpp.o.d"
  "CMakeFiles/altroute_sim.dir/mser.cpp.o"
  "CMakeFiles/altroute_sim.dir/mser.cpp.o.d"
  "CMakeFiles/altroute_sim.dir/rng.cpp.o"
  "CMakeFiles/altroute_sim.dir/rng.cpp.o.d"
  "CMakeFiles/altroute_sim.dir/stats.cpp.o"
  "CMakeFiles/altroute_sim.dir/stats.cpp.o.d"
  "libaltroute_sim.a"
  "libaltroute_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
