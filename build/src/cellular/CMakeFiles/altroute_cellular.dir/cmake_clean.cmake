file(REMOVE_RECURSE
  "CMakeFiles/altroute_cellular.dir/borrowing_sim.cpp.o"
  "CMakeFiles/altroute_cellular.dir/borrowing_sim.cpp.o.d"
  "CMakeFiles/altroute_cellular.dir/cell_grid.cpp.o"
  "CMakeFiles/altroute_cellular.dir/cell_grid.cpp.o.d"
  "libaltroute_cellular.a"
  "libaltroute_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altroute_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
