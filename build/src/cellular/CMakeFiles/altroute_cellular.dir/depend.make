# Empty dependencies file for altroute_cellular.
# This may be replaced when dependencies are built.
