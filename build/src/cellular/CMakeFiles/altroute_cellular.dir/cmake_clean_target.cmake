file(REMOVE_RECURSE
  "libaltroute_cellular.a"
)
