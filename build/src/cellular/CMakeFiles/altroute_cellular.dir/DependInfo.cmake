
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellular/borrowing_sim.cpp" "src/cellular/CMakeFiles/altroute_cellular.dir/borrowing_sim.cpp.o" "gcc" "src/cellular/CMakeFiles/altroute_cellular.dir/borrowing_sim.cpp.o.d"
  "/root/repo/src/cellular/cell_grid.cpp" "src/cellular/CMakeFiles/altroute_cellular.dir/cell_grid.cpp.o" "gcc" "src/cellular/CMakeFiles/altroute_cellular.dir/cell_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/erlang/CMakeFiles/altroute_erlang.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/altroute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
