# Empty dependencies file for exp_policy_zoo.
# This may be replaced when dependencies are built.
