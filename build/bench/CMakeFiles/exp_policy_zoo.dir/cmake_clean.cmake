file(REMOVE_RECURSE
  "CMakeFiles/exp_policy_zoo.dir/exp_policy_zoo.cpp.o"
  "CMakeFiles/exp_policy_zoo.dir/exp_policy_zoo.cpp.o.d"
  "exp_policy_zoo"
  "exp_policy_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_policy_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
