# Empty dependencies file for exp_reservation_ablation.
# This may be replaced when dependencies are built.
