file(REMOVE_RECURSE
  "CMakeFiles/exp_reservation_ablation.dir/exp_reservation_ablation.cpp.o"
  "CMakeFiles/exp_reservation_ablation.dir/exp_reservation_ablation.cpp.o.d"
  "exp_reservation_ablation"
  "exp_reservation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_reservation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
