# Empty dependencies file for exp_ott_krishnan.
# This may be replaced when dependencies are built.
