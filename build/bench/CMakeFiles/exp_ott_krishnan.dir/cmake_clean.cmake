file(REMOVE_RECURSE
  "CMakeFiles/exp_ott_krishnan.dir/exp_ott_krishnan.cpp.o"
  "CMakeFiles/exp_ott_krishnan.dir/exp_ott_krishnan.cpp.o.d"
  "exp_ott_krishnan"
  "exp_ott_krishnan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ott_krishnan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
