# Empty compiler generated dependencies file for fig2_state_protection_levels.
# This may be replaced when dependencies are built.
