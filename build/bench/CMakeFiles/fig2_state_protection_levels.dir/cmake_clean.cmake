file(REMOVE_RECURSE
  "CMakeFiles/fig2_state_protection_levels.dir/fig2_state_protection_levels.cpp.o"
  "CMakeFiles/fig2_state_protection_levels.dir/fig2_state_protection_levels.cpp.o.d"
  "fig2_state_protection_levels"
  "fig2_state_protection_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_state_protection_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
