
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_state_protection_levels.cpp" "bench/CMakeFiles/fig2_state_protection_levels.dir/fig2_state_protection_levels.cpp.o" "gcc" "bench/CMakeFiles/fig2_state_protection_levels.dir/fig2_state_protection_levels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/altroute_study.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altroute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/altroute_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/loss/CMakeFiles/altroute_loss.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/altroute_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/erlang/CMakeFiles/altroute_erlang.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/altroute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netgraph/CMakeFiles/altroute_netgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
