# Empty dependencies file for exp_optimal_gap.
# This may be replaced when dependencies are built.
