file(REMOVE_RECURSE
  "CMakeFiles/exp_optimal_gap.dir/exp_optimal_gap.cpp.o"
  "CMakeFiles/exp_optimal_gap.dir/exp_optimal_gap.cpp.o.d"
  "exp_optimal_gap"
  "exp_optimal_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_optimal_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
