file(REMOVE_RECURSE
  "CMakeFiles/exp_poisson_assumption.dir/exp_poisson_assumption.cpp.o"
  "CMakeFiles/exp_poisson_assumption.dir/exp_poisson_assumption.cpp.o.d"
  "exp_poisson_assumption"
  "exp_poisson_assumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_poisson_assumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
