# Empty compiler generated dependencies file for exp_poisson_assumption.
# This may be replaced when dependencies are built.
