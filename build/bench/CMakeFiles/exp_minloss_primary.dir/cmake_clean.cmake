file(REMOVE_RECURSE
  "CMakeFiles/exp_minloss_primary.dir/exp_minloss_primary.cpp.o"
  "CMakeFiles/exp_minloss_primary.dir/exp_minloss_primary.cpp.o.d"
  "exp_minloss_primary"
  "exp_minloss_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_minloss_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
