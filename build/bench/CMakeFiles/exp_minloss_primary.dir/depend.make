# Empty dependencies file for exp_minloss_primary.
# This may be replaced when dependencies are built.
