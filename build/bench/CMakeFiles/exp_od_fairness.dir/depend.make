# Empty dependencies file for exp_od_fairness.
# This may be replaced when dependencies are built.
