file(REMOVE_RECURSE
  "CMakeFiles/exp_od_fairness.dir/exp_od_fairness.cpp.o"
  "CMakeFiles/exp_od_fairness.dir/exp_od_fairness.cpp.o.d"
  "exp_od_fairness"
  "exp_od_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_od_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
