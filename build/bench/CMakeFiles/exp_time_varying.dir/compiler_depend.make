# Empty compiler generated dependencies file for exp_time_varying.
# This may be replaced when dependencies are built.
