file(REMOVE_RECURSE
  "CMakeFiles/exp_time_varying.dir/exp_time_varying.cpp.o"
  "CMakeFiles/exp_time_varying.dir/exp_time_varying.cpp.o.d"
  "exp_time_varying"
  "exp_time_varying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_time_varying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
