# Empty dependencies file for fig1_link_markov_chain.
# This may be replaced when dependencies are built.
