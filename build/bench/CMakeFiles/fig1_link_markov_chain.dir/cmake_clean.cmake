file(REMOVE_RECURSE
  "CMakeFiles/fig1_link_markov_chain.dir/fig1_link_markov_chain.cpp.o"
  "CMakeFiles/fig1_link_markov_chain.dir/fig1_link_markov_chain.cpp.o.d"
  "fig1_link_markov_chain"
  "fig1_link_markov_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_link_markov_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
