file(REMOVE_RECURSE
  "CMakeFiles/exp_bistability.dir/exp_bistability.cpp.o"
  "CMakeFiles/exp_bistability.dir/exp_bistability.cpp.o.d"
  "exp_bistability"
  "exp_bistability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_bistability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
