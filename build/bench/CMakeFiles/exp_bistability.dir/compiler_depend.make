# Empty compiler generated dependencies file for exp_bistability.
# This may be replaced when dependencies are built.
