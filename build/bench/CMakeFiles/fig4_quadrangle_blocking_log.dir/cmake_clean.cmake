file(REMOVE_RECURSE
  "CMakeFiles/fig4_quadrangle_blocking_log.dir/fig4_quadrangle_blocking_log.cpp.o"
  "CMakeFiles/fig4_quadrangle_blocking_log.dir/fig4_quadrangle_blocking_log.cpp.o.d"
  "fig4_quadrangle_blocking_log"
  "fig4_quadrangle_blocking_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_quadrangle_blocking_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
