# Empty dependencies file for fig4_quadrangle_blocking_log.
# This may be replaced when dependencies are built.
