file(REMOVE_RECURSE
  "CMakeFiles/exp_warmup_validation.dir/exp_warmup_validation.cpp.o"
  "CMakeFiles/exp_warmup_validation.dir/exp_warmup_validation.cpp.o.d"
  "exp_warmup_validation"
  "exp_warmup_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_warmup_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
