# Empty compiler generated dependencies file for exp_warmup_validation.
# This may be replaced when dependencies are built.
