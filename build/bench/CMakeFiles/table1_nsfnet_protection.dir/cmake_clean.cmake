file(REMOVE_RECURSE
  "CMakeFiles/table1_nsfnet_protection.dir/table1_nsfnet_protection.cpp.o"
  "CMakeFiles/table1_nsfnet_protection.dir/table1_nsfnet_protection.cpp.o.d"
  "table1_nsfnet_protection"
  "table1_nsfnet_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nsfnet_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
