# Empty compiler generated dependencies file for table1_nsfnet_protection.
# This may be replaced when dependencies are built.
