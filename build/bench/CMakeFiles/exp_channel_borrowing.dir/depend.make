# Empty dependencies file for exp_channel_borrowing.
# This may be replaced when dependencies are built.
