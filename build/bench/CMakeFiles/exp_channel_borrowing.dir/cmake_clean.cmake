file(REMOVE_RECURSE
  "CMakeFiles/exp_channel_borrowing.dir/exp_channel_borrowing.cpp.o"
  "CMakeFiles/exp_channel_borrowing.dir/exp_channel_borrowing.cpp.o.d"
  "exp_channel_borrowing"
  "exp_channel_borrowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_channel_borrowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
