# Empty dependencies file for exp_theorem1_bound.
# This may be replaced when dependencies are built.
