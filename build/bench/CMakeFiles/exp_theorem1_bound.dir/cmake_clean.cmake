file(REMOVE_RECURSE
  "CMakeFiles/exp_theorem1_bound.dir/exp_theorem1_bound.cpp.o"
  "CMakeFiles/exp_theorem1_bound.dir/exp_theorem1_bound.cpp.o.d"
  "exp_theorem1_bound"
  "exp_theorem1_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_theorem1_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
