# Empty dependencies file for exp_h_limit.
# This may be replaced when dependencies are built.
