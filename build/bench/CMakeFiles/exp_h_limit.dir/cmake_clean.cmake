file(REMOVE_RECURSE
  "CMakeFiles/exp_h_limit.dir/exp_h_limit.cpp.o"
  "CMakeFiles/exp_h_limit.dir/exp_h_limit.cpp.o.d"
  "exp_h_limit"
  "exp_h_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_h_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
