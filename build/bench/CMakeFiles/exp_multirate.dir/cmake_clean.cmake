file(REMOVE_RECURSE
  "CMakeFiles/exp_multirate.dir/exp_multirate.cpp.o"
  "CMakeFiles/exp_multirate.dir/exp_multirate.cpp.o.d"
  "exp_multirate"
  "exp_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
