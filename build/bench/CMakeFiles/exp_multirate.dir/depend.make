# Empty dependencies file for exp_multirate.
# This may be replaced when dependencies are built.
