# Empty compiler generated dependencies file for fig5_nsfnet_topology.
# This may be replaced when dependencies are built.
