file(REMOVE_RECURSE
  "CMakeFiles/fig5_nsfnet_topology.dir/fig5_nsfnet_topology.cpp.o"
  "CMakeFiles/fig5_nsfnet_topology.dir/fig5_nsfnet_topology.cpp.o.d"
  "fig5_nsfnet_topology"
  "fig5_nsfnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nsfnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
