# Empty compiler generated dependencies file for exp_signaling_latency.
# This may be replaced when dependencies are built.
