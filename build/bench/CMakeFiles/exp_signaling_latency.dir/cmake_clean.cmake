file(REMOVE_RECURSE
  "CMakeFiles/exp_signaling_latency.dir/exp_signaling_latency.cpp.o"
  "CMakeFiles/exp_signaling_latency.dir/exp_signaling_latency.cpp.o.d"
  "exp_signaling_latency"
  "exp_signaling_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_signaling_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
