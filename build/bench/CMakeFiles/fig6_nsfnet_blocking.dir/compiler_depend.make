# Empty compiler generated dependencies file for fig6_nsfnet_blocking.
# This may be replaced when dependencies are built.
