file(REMOVE_RECURSE
  "CMakeFiles/fig6_nsfnet_blocking.dir/fig6_nsfnet_blocking.cpp.o"
  "CMakeFiles/fig6_nsfnet_blocking.dir/fig6_nsfnet_blocking.cpp.o.d"
  "fig6_nsfnet_blocking"
  "fig6_nsfnet_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nsfnet_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
