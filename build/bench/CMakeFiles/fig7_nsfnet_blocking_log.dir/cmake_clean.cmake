file(REMOVE_RECURSE
  "CMakeFiles/fig7_nsfnet_blocking_log.dir/fig7_nsfnet_blocking_log.cpp.o"
  "CMakeFiles/fig7_nsfnet_blocking_log.dir/fig7_nsfnet_blocking_log.cpp.o.d"
  "fig7_nsfnet_blocking_log"
  "fig7_nsfnet_blocking_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nsfnet_blocking_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
