# Empty dependencies file for fig7_nsfnet_blocking_log.
# This may be replaced when dependencies are built.
