# Empty dependencies file for exp_fixed_point.
# This may be replaced when dependencies are built.
