file(REMOVE_RECURSE
  "CMakeFiles/exp_fixed_point.dir/exp_fixed_point.cpp.o"
  "CMakeFiles/exp_fixed_point.dir/exp_fixed_point.cpp.o.d"
  "exp_fixed_point"
  "exp_fixed_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
