# Empty compiler generated dependencies file for exp_fixed_point.
# This may be replaced when dependencies are built.
