file(REMOVE_RECURSE
  "CMakeFiles/exp_link_failures.dir/exp_link_failures.cpp.o"
  "CMakeFiles/exp_link_failures.dir/exp_link_failures.cpp.o.d"
  "exp_link_failures"
  "exp_link_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_link_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
