# Empty dependencies file for exp_link_failures.
# This may be replaced when dependencies are built.
