# Empty compiler generated dependencies file for fig3_quadrangle_blocking.
# This may be replaced when dependencies are built.
