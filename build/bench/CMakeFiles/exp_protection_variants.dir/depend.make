# Empty dependencies file for exp_protection_variants.
# This may be replaced when dependencies are built.
