file(REMOVE_RECURSE
  "CMakeFiles/exp_protection_variants.dir/exp_protection_variants.cpp.o"
  "CMakeFiles/exp_protection_variants.dir/exp_protection_variants.cpp.o.d"
  "exp_protection_variants"
  "exp_protection_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_protection_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
