file(REMOVE_RECURSE
  "CMakeFiles/test_overflow_moments.dir/test_overflow_moments.cpp.o"
  "CMakeFiles/test_overflow_moments.dir/test_overflow_moments.cpp.o.d"
  "test_overflow_moments"
  "test_overflow_moments.pdb"
  "test_overflow_moments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overflow_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
