# Empty dependencies file for test_overflow_moments.
# This may be replaced when dependencies are built.
