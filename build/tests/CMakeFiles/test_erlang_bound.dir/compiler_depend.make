# Empty compiler generated dependencies file for test_erlang_bound.
# This may be replaced when dependencies are built.
