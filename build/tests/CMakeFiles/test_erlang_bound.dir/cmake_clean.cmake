file(REMOVE_RECURSE
  "CMakeFiles/test_erlang_bound.dir/test_erlang_bound.cpp.o"
  "CMakeFiles/test_erlang_bound.dir/test_erlang_bound.cpp.o.d"
  "test_erlang_bound"
  "test_erlang_bound.pdb"
  "test_erlang_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_erlang_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
