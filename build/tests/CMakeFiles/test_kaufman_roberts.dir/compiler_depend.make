# Empty compiler generated dependencies file for test_kaufman_roberts.
# This may be replaced when dependencies are built.
