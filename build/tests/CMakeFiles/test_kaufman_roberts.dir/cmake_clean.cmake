file(REMOVE_RECURSE
  "CMakeFiles/test_kaufman_roberts.dir/test_kaufman_roberts.cpp.o"
  "CMakeFiles/test_kaufman_roberts.dir/test_kaufman_roberts.cpp.o.d"
  "test_kaufman_roberts"
  "test_kaufman_roberts.pdb"
  "test_kaufman_roberts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kaufman_roberts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
