file(REMOVE_RECURSE
  "CMakeFiles/test_link_state.dir/test_link_state.cpp.o"
  "CMakeFiles/test_link_state.dir/test_link_state.cpp.o.d"
  "test_link_state"
  "test_link_state.pdb"
  "test_link_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
