file(REMOVE_RECURSE
  "CMakeFiles/test_nsfnet_traffic.dir/test_nsfnet_traffic.cpp.o"
  "CMakeFiles/test_nsfnet_traffic.dir/test_nsfnet_traffic.cpp.o.d"
  "test_nsfnet_traffic"
  "test_nsfnet_traffic.pdb"
  "test_nsfnet_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsfnet_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
