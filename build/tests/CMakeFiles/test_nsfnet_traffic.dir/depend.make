# Empty dependencies file for test_nsfnet_traffic.
# This may be replaced when dependencies are built.
