file(REMOVE_RECURSE
  "CMakeFiles/test_birth_death.dir/test_birth_death.cpp.o"
  "CMakeFiles/test_birth_death.dir/test_birth_death.cpp.o.d"
  "test_birth_death"
  "test_birth_death.pdb"
  "test_birth_death[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_birth_death.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
