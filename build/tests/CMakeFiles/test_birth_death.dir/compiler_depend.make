# Empty compiler generated dependencies file for test_birth_death.
# This may be replaced when dependencies are built.
