file(REMOVE_RECURSE
  "CMakeFiles/test_minloss.dir/test_minloss.cpp.o"
  "CMakeFiles/test_minloss.dir/test_minloss.cpp.o.d"
  "test_minloss"
  "test_minloss.pdb"
  "test_minloss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
