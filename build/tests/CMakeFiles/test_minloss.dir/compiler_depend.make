# Empty compiler generated dependencies file for test_minloss.
# This may be replaced when dependencies are built.
