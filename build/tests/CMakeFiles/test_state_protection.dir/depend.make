# Empty dependencies file for test_state_protection.
# This may be replaced when dependencies are built.
