file(REMOVE_RECURSE
  "CMakeFiles/test_state_protection.dir/test_state_protection.cpp.o"
  "CMakeFiles/test_state_protection.dir/test_state_protection.cpp.o.d"
  "test_state_protection"
  "test_state_protection.pdb"
  "test_state_protection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
