file(REMOVE_RECURSE
  "CMakeFiles/test_erlang_b.dir/test_erlang_b.cpp.o"
  "CMakeFiles/test_erlang_b.dir/test_erlang_b.cpp.o.d"
  "test_erlang_b"
  "test_erlang_b.pdb"
  "test_erlang_b[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_erlang_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
