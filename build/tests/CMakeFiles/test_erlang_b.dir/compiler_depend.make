# Empty compiler generated dependencies file for test_erlang_b.
# This may be replaced when dependencies are built.
