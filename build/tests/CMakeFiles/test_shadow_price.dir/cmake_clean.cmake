file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_price.dir/test_shadow_price.cpp.o"
  "CMakeFiles/test_shadow_price.dir/test_shadow_price.cpp.o.d"
  "test_shadow_price"
  "test_shadow_price.pdb"
  "test_shadow_price[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
