# Empty compiler generated dependencies file for test_shadow_price.
# This may be replaced when dependencies are built.
