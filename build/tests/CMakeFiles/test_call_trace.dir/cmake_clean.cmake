file(REMOVE_RECURSE
  "CMakeFiles/test_call_trace.dir/test_call_trace.cpp.o"
  "CMakeFiles/test_call_trace.dir/test_call_trace.cpp.o.d"
  "test_call_trace"
  "test_call_trace.pdb"
  "test_call_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_call_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
