# Empty compiler generated dependencies file for test_call_trace.
# This may be replaced when dependencies are built.
