file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_policy.dir/test_adaptive_policy.cpp.o"
  "CMakeFiles/test_adaptive_policy.dir/test_adaptive_policy.cpp.o.d"
  "test_adaptive_policy"
  "test_adaptive_policy.pdb"
  "test_adaptive_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
