# Empty compiler generated dependencies file for test_multirate.
# This may be replaced when dependencies are built.
