file(REMOVE_RECURSE
  "CMakeFiles/test_multirate.dir/test_multirate.cpp.o"
  "CMakeFiles/test_multirate.dir/test_multirate.cpp.o.d"
  "test_multirate"
  "test_multirate.pdb"
  "test_multirate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
