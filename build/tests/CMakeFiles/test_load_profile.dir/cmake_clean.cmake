file(REMOVE_RECURSE
  "CMakeFiles/test_load_profile.dir/test_load_profile.cpp.o"
  "CMakeFiles/test_load_profile.dir/test_load_profile.cpp.o.d"
  "test_load_profile"
  "test_load_profile.pdb"
  "test_load_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
