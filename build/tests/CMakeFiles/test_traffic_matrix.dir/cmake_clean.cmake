file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_matrix.dir/test_traffic_matrix.cpp.o"
  "CMakeFiles/test_traffic_matrix.dir/test_traffic_matrix.cpp.o.d"
  "test_traffic_matrix"
  "test_traffic_matrix.pdb"
  "test_traffic_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
