# Empty dependencies file for test_traffic_matrix.
# This may be replaced when dependencies are built.
