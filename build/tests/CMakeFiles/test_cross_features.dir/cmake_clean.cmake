file(REMOVE_RECURSE
  "CMakeFiles/test_cross_features.dir/test_cross_features.cpp.o"
  "CMakeFiles/test_cross_features.dir/test_cross_features.cpp.o.d"
  "test_cross_features"
  "test_cross_features.pdb"
  "test_cross_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
