# Empty dependencies file for test_mser.
# This may be replaced when dependencies are built.
