file(REMOVE_RECURSE
  "CMakeFiles/test_mser.dir/test_mser.cpp.o"
  "CMakeFiles/test_mser.dir/test_mser.cpp.o.d"
  "test_mser"
  "test_mser.pdb"
  "test_mser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
