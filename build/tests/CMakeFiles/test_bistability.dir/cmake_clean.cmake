file(REMOVE_RECURSE
  "CMakeFiles/test_bistability.dir/test_bistability.cpp.o"
  "CMakeFiles/test_bistability.dir/test_bistability.cpp.o.d"
  "test_bistability"
  "test_bistability.pdb"
  "test_bistability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bistability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
