# Empty dependencies file for test_bistability.
# This may be replaced when dependencies are built.
