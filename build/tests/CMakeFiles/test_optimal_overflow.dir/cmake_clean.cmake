file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_overflow.dir/test_optimal_overflow.cpp.o"
  "CMakeFiles/test_optimal_overflow.dir/test_optimal_overflow.cpp.o.d"
  "test_optimal_overflow"
  "test_optimal_overflow.pdb"
  "test_optimal_overflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
