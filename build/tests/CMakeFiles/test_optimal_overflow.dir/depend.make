# Empty dependencies file for test_optimal_overflow.
# This may be replaced when dependencies are built.
