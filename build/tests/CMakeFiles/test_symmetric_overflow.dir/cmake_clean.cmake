file(REMOVE_RECURSE
  "CMakeFiles/test_symmetric_overflow.dir/test_symmetric_overflow.cpp.o"
  "CMakeFiles/test_symmetric_overflow.dir/test_symmetric_overflow.cpp.o.d"
  "test_symmetric_overflow"
  "test_symmetric_overflow.pdb"
  "test_symmetric_overflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetric_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
