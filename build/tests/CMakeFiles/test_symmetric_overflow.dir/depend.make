# Empty dependencies file for test_symmetric_overflow.
# This may be replaced when dependencies are built.
