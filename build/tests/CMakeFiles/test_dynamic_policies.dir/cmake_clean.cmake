file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_policies.dir/test_dynamic_policies.cpp.o"
  "CMakeFiles/test_dynamic_policies.dir/test_dynamic_policies.cpp.o.d"
  "test_dynamic_policies"
  "test_dynamic_policies.pdb"
  "test_dynamic_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
