# Empty dependencies file for test_dynamic_policies.
# This may be replaced when dependencies are built.
