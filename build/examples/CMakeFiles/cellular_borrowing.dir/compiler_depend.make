# Empty compiler generated dependencies file for cellular_borrowing.
# This may be replaced when dependencies are built.
