file(REMOVE_RECURSE
  "CMakeFiles/cellular_borrowing.dir/cellular_borrowing.cpp.o"
  "CMakeFiles/cellular_borrowing.dir/cellular_borrowing.cpp.o.d"
  "cellular_borrowing"
  "cellular_borrowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_borrowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
