# Empty dependencies file for adaptive_estimation.
# This may be replaced when dependencies are built.
