# Empty dependencies file for nsfnet_study.
# This may be replaced when dependencies are built.
