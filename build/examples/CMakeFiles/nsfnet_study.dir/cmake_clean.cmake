file(REMOVE_RECURSE
  "CMakeFiles/nsfnet_study.dir/nsfnet_study.cpp.o"
  "CMakeFiles/nsfnet_study.dir/nsfnet_study.cpp.o.d"
  "nsfnet_study"
  "nsfnet_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsfnet_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
