#include "routing/route_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/shortest_paths.hpp"

namespace altroute::routing {

RouteTable::RouteTable(int nodes) : n_(nodes) {
  if (nodes < 0) throw std::invalid_argument("RouteTable: negative node count");
  sets_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes));
}

RouteTable build_min_hop_routes(const net::Graph& graph, int max_alt_hops,
                                std::size_t max_paths_per_pair) {
  if (max_alt_hops < 1) throw std::invalid_argument("build_min_hop_routes: H < 1");
  RouteTable table(graph.node_count());
  for (int i = 0; i < graph.node_count(); ++i) {
    for (int j = 0; j < graph.node_count(); ++j) {
      if (i == j) continue;
      const net::NodeId src(i);
      const net::NodeId dst(j);
      auto primary = min_hop_path(graph, src, dst);
      if (!primary) continue;  // unreachable pair: empty route set
      RouteSet& set = table.at(src, dst);
      set.primaries.push_back(std::move(*primary));
      set.primary_probs.push_back(1.0);
      set.alternates = all_simple_paths(graph, src, dst, max_alt_hops, max_paths_per_pair);
    }
  }
  return table;
}

std::vector<double> primary_link_loads(const net::Graph& graph, const RouteTable& routes,
                                       const net::TrafficMatrix& traffic) {
  if (routes.nodes() != graph.node_count() || traffic.size() != graph.node_count()) {
    throw std::invalid_argument("primary_link_loads: size mismatch");
  }
  std::vector<double> lambda(static_cast<std::size_t>(graph.link_count()), 0.0);
  for (int i = 0; i < graph.node_count(); ++i) {
    for (int j = 0; j < graph.node_count(); ++j) {
      if (i == j) continue;
      const net::NodeId src(i);
      const net::NodeId dst(j);
      const double demand = traffic.at(src, dst);
      if (demand <= 0.0) continue;
      const RouteSet& set = routes.at(src, dst);
      for (std::size_t p = 0; p < set.primaries.size(); ++p) {
        const double share = demand * set.primary_probs[p];
        for (const net::LinkId k : set.primaries[p].links) {
          lambda[k.index()] += share;
        }
      }
    }
  }
  return lambda;
}

RouteCensus census(const RouteTable& routes) {
  RouteCensus c;
  long long total = 0;
  bool first = true;
  for (int i = 0; i < routes.nodes(); ++i) {
    for (int j = 0; j < routes.nodes(); ++j) {
      if (i == j) continue;
      const RouteSet& set = routes.at(net::NodeId(i), net::NodeId(j));
      if (!set.reachable()) continue;
      int alternates = 0;
      for (const Path& p : set.alternates) {
        const bool is_primary =
            std::find(set.primaries.begin(), set.primaries.end(), p) != set.primaries.end();
        if (!is_primary) ++alternates;
      }
      ++c.pairs;
      total += alternates;
      if (first) {
        c.min_alternates = c.max_alternates = alternates;
        first = false;
      } else {
        c.min_alternates = std::min(c.min_alternates, alternates);
        c.max_alternates = std::max(c.max_alternates, alternates);
      }
    }
  }
  if (c.pairs > 0) c.mean_alternates = static_cast<double>(total) / c.pairs;
  return c;
}

}  // namespace altroute::routing
