// Path representation shared by all routing code.
#pragma once

#include <vector>

#include "netgraph/graph.hpp"

namespace altroute::routing {

/// A loop-free directed path: the node sequence plus the resolved link ids
/// (links[i] goes from nodes[i] to nodes[i+1]).
struct Path {
  std::vector<net::NodeId> nodes;
  std::vector<net::LinkId> links;

  /// Number of links; 0 for an empty/invalid path.
  [[nodiscard]] int hops() const { return static_cast<int>(links.size()); }

  [[nodiscard]] bool empty() const { return links.empty(); }

  [[nodiscard]] net::NodeId origin() const { return nodes.front(); }
  [[nodiscard]] net::NodeId destination() const { return nodes.back(); }

  friend bool operator==(const Path& a, const Path& b) { return a.nodes == b.nodes; }
};

/// Resolves a node sequence to a Path over enabled links.  Throws
/// std::invalid_argument when the sequence is shorter than 2 nodes, revisits
/// a node, or uses a missing/disabled link.
[[nodiscard]] Path make_path(const net::Graph& graph, const std::vector<net::NodeId>& nodes);

/// True when `a` precedes `b` in the paper's alternate-path order:
/// increasing hop count, ties broken by lexicographic node sequence (the
/// deterministic order in which blocked calls try alternates).
[[nodiscard]] bool path_order(const Path& a, const Path& b);

}  // namespace altroute::routing
