// Min-loss state-independent primary routing (Section 4, "Primary paths
// chosen to minimize link loss").
//
// Chooses primary flows to minimize the expected total link loss rate
//     F(x) = sum over links k of  Lambda_k(x) * B(Lambda_k(x), C_k)
// under the independent-link assumption.  The per-link loss rate is convex
// in its load (Krishnan), so the problem is a convex multicommodity flow
// over each pair's candidate paths and is solved here by the Frank-Wolfe
// (flow deviation) method with exact golden-section line search -- the same
// family of conditional-gradient methods as the conjugate-gradient scheme
// the paper cites from Bertsekas & Tsitsiklis.  The result is in general a
// BIFURCATED primary program: a pair splits its traffic over several
// primaries with fixed probabilities (still state-independent).
#pragma once

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/route_table.hpp"

namespace altroute::routing {

struct MinLossOptions {
  /// Candidate paths per ordered pair (the k of k-shortest enumeration).
  int candidate_paths{8};
  /// Frank-Wolfe iteration cap.
  int max_iterations{200};
  /// Stop when the relative objective improvement falls below this.
  double tolerance{1e-9};
  /// Golden-section evaluations per line search.
  int line_search_evals{48};
  /// Primary-path probabilities below this are dropped and renormalized.
  double prune_probability{1e-6};
  /// Hop cap H for the alternate lists attached to the resulting table.
  int max_alt_hops{16};
};

struct MinLossResult {
  RouteTable routes;             ///< bifurcated primaries + ordered alternates
  double expected_loss_rate{0};  ///< F at the returned flows (calls lost / unit time)
  double initial_loss_rate{0};   ///< F of the all-on-min-hop starting point
  int iterations{0};             ///< Frank-Wolfe iterations performed
};

/// Runs the optimizer.  Throws when the traffic matrix size mismatches the
/// graph or a pair with positive demand is unreachable.
[[nodiscard]] MinLossResult optimize_min_loss_primaries(const net::Graph& graph,
                                                        const net::TrafficMatrix& traffic,
                                                        const MinLossOptions& options = {});

}  // namespace altroute::routing
