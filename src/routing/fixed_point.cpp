#include "routing/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::routing {

FixedPointResult erlang_fixed_point(const net::Graph& graph,
                                    const routing::RouteTable& routes,
                                    const net::TrafficMatrix& traffic,
                                    const FixedPointOptions& options) {
  const int n = graph.node_count();
  if (routes.nodes() != n || traffic.size() != n) {
    throw std::invalid_argument("erlang_fixed_point: size mismatch");
  }
  if (options.max_iterations < 1 || !(options.tolerance > 0.0) ||
      !(options.damping > 0.0) || options.damping > 1.0) {
    throw std::invalid_argument("erlang_fixed_point: bad options");
  }
  const std::size_t links = static_cast<std::size_t>(graph.link_count());

  // Flatten the primary streams once: (path links, offered load).
  struct Stream {
    const routing::Path* path;
    double offered;
    std::size_t src;
    std::size_t dst;
  };
  std::vector<Stream> streams;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double demand = traffic.at(net::NodeId(i), net::NodeId(j));
      if (demand <= 0.0) continue;
      const routing::RouteSet& set = routes.at(net::NodeId(i), net::NodeId(j));
      for (std::size_t p = 0; p < set.primaries.size(); ++p) {
        streams.push_back(Stream{&set.primaries[p], demand * set.primary_probs[p],
                                 static_cast<std::size_t>(i), static_cast<std::size_t>(j)});
      }
    }
  }

  std::vector<int> capacity(links);
  for (std::size_t k = 0; k < links; ++k) {
    capacity[k] = graph.link(net::LinkId(static_cast<std::int32_t>(k))).capacity;
  }

  FixedPointResult result;
  result.link_blocking.assign(links, 0.0);
  result.reduced_load.assign(links, 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    // Reduced loads from the current blocking estimates.
    std::fill(result.reduced_load.begin(), result.reduced_load.end(), 0.0);
    for (const Stream& stream : streams) {
      for (const net::LinkId k : stream.path->links) {
        double thinned = stream.offered;
        for (const net::LinkId j : stream.path->links) {
          if (j != k) thinned *= 1.0 - result.link_blocking[j.index()];
        }
        result.reduced_load[k.index()] += thinned;
      }
    }
    // Damped blocking update.
    double delta = 0.0;
    for (std::size_t k = 0; k < links; ++k) {
      const double fresh = erlang::erlang_b(result.reduced_load[k], capacity[k]);
      const double next = (1.0 - options.damping) * result.link_blocking[k] +
                          options.damping * fresh;
      delta = std::max(delta, std::abs(next - result.link_blocking[k]));
      result.link_blocking[k] = next;
    }
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // End-to-end blocking per pair and the traffic-weighted average.
  result.pair_blocking.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  double lost = 0.0;
  double offered = 0.0;
  // A pair's blocking averages its primaries' path blocking by probability;
  // accumulate stream-by-stream.
  for (const Stream& stream : streams) {
    double through = 1.0;
    for (const net::LinkId k : stream.path->links) {
      through *= 1.0 - result.link_blocking[k.index()];
    }
    const double path_blocking = 1.0 - through;
    result.pair_blocking[stream.src * static_cast<std::size_t>(n) + stream.dst] +=
        path_blocking * stream.offered /
        traffic.at(net::NodeId(static_cast<std::int32_t>(stream.src)),
                   net::NodeId(static_cast<std::int32_t>(stream.dst)));
    lost += stream.offered * path_blocking;
    offered += stream.offered;
  }
  result.network_blocking = offered > 0.0 ? lost / offered : 0.0;
  return result;
}

}  // namespace altroute::routing
