// Per-O-D route programs: the SI primary tier plus the ordered alternate
// list used by the SD tier (computed DALFAR-style from hop counts).
#pragma once

#include <vector>

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/path.hpp"

namespace altroute::routing {

/// Routes available to one ordered node pair.
///
/// `primaries` holds one path with probability 1 for deterministic SI rules
/// (min-hop), or several with probabilities summing to 1 for bifurcated SI
/// rules (the min-loss optimizer of Section 4).  `alternates` is the full
/// list of loop-free paths of at most H hops in the paper's order
/// (increasing hops, lexicographic ties); it may contain paths equal to a
/// primary -- policies skip the primary they actually tried.
struct RouteSet {
  std::vector<Path> primaries;
  std::vector<double> primary_probs;
  std::vector<Path> alternates;

  [[nodiscard]] bool reachable() const { return !primaries.empty(); }
};

/// All route sets of a network, indexed by ordered pair.
class RouteTable {
 public:
  RouteTable() = default;
  explicit RouteTable(int nodes);

  [[nodiscard]] int nodes() const { return n_; }

  [[nodiscard]] const RouteSet& at(net::NodeId src, net::NodeId dst) const {
    return sets_[pair_index(src, dst)];
  }
  [[nodiscard]] RouteSet& at(net::NodeId src, net::NodeId dst) {
    return sets_[pair_index(src, dst)];
  }

 private:
  [[nodiscard]] std::size_t pair_index(net::NodeId src, net::NodeId dst) const {
    return src.index() * static_cast<std::size_t>(n_) + dst.index();
  }

  int n_{0};
  std::vector<RouteSet> sets_;
};

/// Builds the paper's demonstration routing program: unique min-hop primary
/// per ordered pair, alternates = all loop-free paths of at most `max_alt_hops`
/// links (H), ordered by (hops, lexicographic).  Unreachable pairs get empty
/// route sets.  `max_paths_per_pair` caps alternate enumeration.
[[nodiscard]] RouteTable build_min_hop_routes(const net::Graph& graph, int max_alt_hops,
                                              std::size_t max_paths_per_pair = 100000);

/// Primary traffic demand per link, the paper's Eq. 1:
///     Lambda^k = sum over pairs whose primary traverses k of T(i, j),
/// with bifurcated primaries weighted by their probabilities.  Indexed by
/// LinkId.
[[nodiscard]] std::vector<double> primary_link_loads(const net::Graph& graph,
                                                     const RouteTable& routes,
                                                     const net::TrafficMatrix& traffic);

/// Census of alternate-route availability (the Section 4.2.2 numbers:
/// "on the average each node pair had about 9 alternate paths, with a
/// maximum of 15 and a minimum of 5").
struct RouteCensus {
  double mean_alternates{0.0};
  int min_alternates{0};
  int max_alternates{0};
  int pairs{0};  ///< ordered pairs counted (reachable, src != dst)
};

/// Counts alternates per reachable ordered pair, excluding paths identical
/// to a primary (those are not "alternates" from the pair's point of view).
[[nodiscard]] RouteCensus census(const RouteTable& routes);

}  // namespace altroute::routing
