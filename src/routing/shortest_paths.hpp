// Shortest-path computations over enabled links.
//
// Minimum-hop paths are the paper's demonstration SI (state-independent)
// primary routing rule; they are attractive precisely because they are
// computable in a distributed fashion.  Ties are broken toward the
// lexicographically smallest node sequence so that every ordered pair has a
// UNIQUE, reproducible primary path P*(i,j), as the paper assumes.
#pragma once

#include <optional>
#include <vector>

#include "netgraph/graph.hpp"
#include "routing/path.hpp"

namespace altroute::routing {

/// Hop distance from every node to `dst` over enabled links (reverse BFS);
/// unreachable nodes get -1.  This is the per-destination table a
/// distributed distance-vector computation would hold.
[[nodiscard]] std::vector<int> hop_distances_to(const net::Graph& graph, net::NodeId dst);

/// The unique minimum-hop path src -> dst (lexicographically smallest node
/// sequence among minimum-hop paths), or nullopt when unreachable.
[[nodiscard]] std::optional<Path> min_hop_path(const net::Graph& graph, net::NodeId src,
                                               net::NodeId dst);

/// Dijkstra over per-link weights (size = link_count; disabled links are
/// skipped regardless of weight; weights must be >= 0).  Ties broken toward
/// lexicographically smallest node sequence.  nullopt when unreachable.
[[nodiscard]] std::optional<Path> weighted_shortest_path(const net::Graph& graph,
                                                         net::NodeId src, net::NodeId dst,
                                                         const std::vector<double>& weights);

/// All loop-free (simple) paths src -> dst with at most `max_hops` links,
/// in the paper's alternate order (hops, then lexicographic).  `max_paths`
/// caps the result as a safety valve for dense graphs; enumeration stops
/// once the cap is hit (the returned paths are still the first ones in DFS
/// order, then sorted).  Throws if src == dst.
[[nodiscard]] std::vector<Path> all_simple_paths(const net::Graph& graph, net::NodeId src,
                                                 net::NodeId dst, int max_hops,
                                                 std::size_t max_paths = 100000);

/// Yen's algorithm: the k shortest loop-free paths by hop count (ties
/// lexicographic), fewer if the graph has fewer.  Equivalent to the first k
/// entries of all_simple_paths() with unlimited hops, but polynomial per
/// path; provided for graphs where exhaustive enumeration is infeasible.
[[nodiscard]] std::vector<Path> k_shortest_paths(const net::Graph& graph, net::NodeId src,
                                                 net::NodeId dst, std::size_t k);

}  // namespace altroute::routing
