#include "routing/shortest_paths.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace altroute::routing {

namespace {

// Reverse BFS honoring per-node / per-link bans; returns hop distances to
// dst (-1 when unreachable).  Banned vectors may be empty (no bans).
std::vector<int> banned_distances_to(const net::Graph& graph, net::NodeId dst,
                                     const std::vector<char>& banned_node,
                                     const std::vector<char>& banned_link) {
  std::vector<int> dist(static_cast<std::size_t>(graph.node_count()), -1);
  if (!banned_node.empty() && banned_node[dst.index()]) return dist;
  dist[dst.index()] = 0;
  std::queue<net::NodeId> q;
  q.push(dst);
  while (!q.empty()) {
    const net::NodeId v = q.front();
    q.pop();
    for (const net::LinkId id : graph.in_links(v)) {
      const net::Link& l = graph.link(id);
      if (!l.enabled) continue;
      if (!banned_link.empty() && banned_link[id.index()]) continue;
      if (!banned_node.empty() && banned_node[l.src.index()]) continue;
      if (dist[l.src.index()] < 0) {
        dist[l.src.index()] = dist[v.index()] + 1;
        q.push(l.src);
      }
    }
  }
  return dist;
}

// Greedy forward walk along a distance-to-destination field: from each node
// choose the smallest-id successor one hop closer to dst.  Produces the
// lexicographically smallest minimum-hop path.
std::optional<Path> walk_min_hop(const net::Graph& graph, net::NodeId src, net::NodeId dst,
                                 const std::vector<int>& dist,
                                 const std::vector<char>& banned_node,
                                 const std::vector<char>& banned_link) {
  if (dist[src.index()] < 0) return std::nullopt;
  if (!banned_node.empty() && banned_node[src.index()]) return std::nullopt;
  Path p;
  p.nodes.push_back(src);
  net::NodeId u = src;
  while (u != dst) {
    net::NodeId best_node;
    net::LinkId best_link;
    for (const net::LinkId id : graph.out_links(u)) {
      const net::Link& l = graph.link(id);
      if (!l.enabled) continue;
      if (!banned_link.empty() && banned_link[id.index()]) continue;
      if (!banned_node.empty() && banned_node[l.dst.index()]) continue;
      if (dist[l.dst.index()] != dist[u.index()] - 1) continue;
      if (!best_node.valid() || l.dst < best_node) {
        best_node = l.dst;
        best_link = id;
      }
    }
    if (!best_node.valid()) return std::nullopt;  // cannot happen with consistent dist
    p.nodes.push_back(best_node);
    p.links.push_back(best_link);
    u = best_node;
  }
  return p;
}

std::optional<Path> restricted_min_hop(const net::Graph& graph, net::NodeId src,
                                       net::NodeId dst, const std::vector<char>& banned_node,
                                       const std::vector<char>& banned_link) {
  const std::vector<int> dist = banned_distances_to(graph, dst, banned_node, banned_link);
  return walk_min_hop(graph, src, dst, dist, banned_node, banned_link);
}

}  // namespace

std::vector<int> hop_distances_to(const net::Graph& graph, net::NodeId dst) {
  return banned_distances_to(graph, dst, {}, {});
}

std::optional<Path> min_hop_path(const net::Graph& graph, net::NodeId src, net::NodeId dst) {
  if (src == dst) throw std::invalid_argument("min_hop_path: src == dst");
  return restricted_min_hop(graph, src, dst, {}, {});
}

std::optional<Path> weighted_shortest_path(const net::Graph& graph, net::NodeId src,
                                           net::NodeId dst,
                                           const std::vector<double>& weights) {
  if (src == dst) throw std::invalid_argument("weighted_shortest_path: src == dst");
  if (weights.size() != static_cast<std::size_t>(graph.link_count())) {
    throw std::invalid_argument("weighted_shortest_path: weight vector size mismatch");
  }
  for (const double w : weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("weighted_shortest_path: negative weight");
  }
  // Reverse Dijkstra: cost-to-destination field, then a greedy forward walk
  // (smallest next node among tight links) for lexicographic determinism.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(static_cast<std::size_t>(graph.node_count()), kInf);
  cost[dst.index()] = 0.0;
  using Item = std::pair<double, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, dst);
  while (!pq.empty()) {
    const auto [c, v] = pq.top();
    pq.pop();
    if (c > cost[v.index()]) continue;
    for (const net::LinkId id : graph.in_links(v)) {
      const net::Link& l = graph.link(id);
      if (!l.enabled) continue;
      const double nc = c + weights[id.index()];
      if (nc < cost[l.src.index()]) {
        cost[l.src.index()] = nc;
        pq.emplace(nc, l.src);
      }
    }
  }
  if (cost[src.index()] == kInf) return std::nullopt;

  Path p;
  p.nodes.push_back(src);
  net::NodeId u = src;
  // Tolerance for "link is on a shortest path" comparisons.
  const double eps = 1e-9 * (1.0 + cost[src.index()]);
  std::vector<char> visited(static_cast<std::size_t>(graph.node_count()), 0);
  visited[src.index()] = 1;
  while (u != dst) {
    net::NodeId best_node;
    net::LinkId best_link;
    for (const net::LinkId id : graph.out_links(u)) {
      const net::Link& l = graph.link(id);
      if (!l.enabled || visited[l.dst.index()]) continue;
      if (std::abs(weights[id.index()] + cost[l.dst.index()] - cost[u.index()]) > eps) continue;
      if (!best_node.valid() || l.dst < best_node) {
        best_node = l.dst;
        best_link = id;
      }
    }
    if (!best_node.valid()) return std::nullopt;
    visited[best_node.index()] = 1;
    p.nodes.push_back(best_node);
    p.links.push_back(best_link);
    u = best_node;
  }
  return p;
}

std::vector<Path> all_simple_paths(const net::Graph& graph, net::NodeId src, net::NodeId dst,
                                   int max_hops, std::size_t max_paths) {
  if (src == dst) throw std::invalid_argument("all_simple_paths: src == dst");
  if (max_hops < 1) return {};
  const std::vector<int> dist_to = hop_distances_to(graph, dst);
  std::vector<Path> out;
  std::vector<char> visited(static_cast<std::size_t>(graph.node_count()), 0);
  Path current;
  current.nodes.push_back(src);
  visited[src.index()] = 1;

  // Iterative DFS with explicit work stack of (node, link-used-to-reach) and
  // depth markers would obscure the invariant; the recursion depth is
  // bounded by the node count, so plain recursion is safe here.
  const std::function<void(net::NodeId)> dfs = [&](net::NodeId u) {
    if (out.size() >= max_paths) return;
    for (const net::LinkId id : graph.out_links(u)) {
      const net::Link& l = graph.link(id);
      if (!l.enabled || visited[l.dst.index()]) continue;
      const int depth = current.hops() + 1;
      if (depth > max_hops) continue;
      // Prune branches that cannot reach dst within the hop budget (the
      // unconstrained hop distance is a valid lower bound on the remainder).
      if (dist_to[l.dst.index()] < 0 || depth + dist_to[l.dst.index()] > max_hops) continue;
      current.nodes.push_back(l.dst);
      current.links.push_back(id);
      if (l.dst == dst) {
        out.push_back(current);
      } else {
        visited[l.dst.index()] = 1;
        dfs(l.dst);
        visited[l.dst.index()] = 0;
      }
      current.nodes.pop_back();
      current.links.pop_back();
      if (out.size() >= max_paths) return;
    }
  };
  dfs(src);
  std::sort(out.begin(), out.end(), path_order);
  return out;
}

std::vector<Path> k_shortest_paths(const net::Graph& graph, net::NodeId src, net::NodeId dst,
                                   std::size_t k) {
  if (src == dst) throw std::invalid_argument("k_shortest_paths: src == dst");
  std::vector<Path> result;
  if (k == 0) return result;
  const auto first = min_hop_path(graph, src, dst);
  if (!first) return result;
  result.push_back(*first);

  // Candidate pool ordered by the paper's path order; std::set keeps
  // deduplication and ordered extraction in one structure.
  const auto cmp = [](const Path& a, const Path& b) { return path_order(a, b); };
  std::set<Path, decltype(cmp)> candidates(cmp);

  std::vector<char> banned_node(static_cast<std::size_t>(graph.node_count()), 0);
  std::vector<char> banned_link(static_cast<std::size_t>(graph.link_count()), 0);

  while (result.size() < k) {
    const Path& prev = result.back();
    for (std::size_t spur_idx = 0; spur_idx + 1 < prev.nodes.size(); ++spur_idx) {
      const net::NodeId spur_node = prev.nodes[spur_idx];
      // Root = prev.nodes[0..spur_idx].
      std::fill(banned_node.begin(), banned_node.end(), 0);
      std::fill(banned_link.begin(), banned_link.end(), 0);
      for (std::size_t i = 0; i < spur_idx; ++i) banned_node[prev.nodes[i].index()] = 1;
      // Ban the next link of every accepted path sharing this root.
      for (const Path& p : result) {
        if (p.nodes.size() <= spur_idx) continue;
        if (!std::equal(p.nodes.begin(), p.nodes.begin() + static_cast<std::ptrdiff_t>(spur_idx) + 1,
                        prev.nodes.begin())) {
          continue;
        }
        banned_link[p.links[spur_idx].index()] = 1;
      }
      const auto spur = restricted_min_hop(graph, spur_node, dst, banned_node, banned_link);
      if (!spur) continue;
      Path total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<std::ptrdiff_t>(spur_idx));
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(spur_idx));
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(), spur->nodes.end());
      total.links.insert(total.links.end(), spur->links.begin(), spur->links.end());
      candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    // Smallest candidate not already accepted becomes the next path.
    auto it = candidates.begin();
    while (it != candidates.end() &&
           std::find(result.begin(), result.end(), *it) != result.end()) {
      it = candidates.erase(it);
    }
    if (it == candidates.end()) break;
    result.push_back(*it);
    candidates.erase(it);
  }
  return result;
}

}  // namespace altroute::routing
