// Erlang fixed-point (reduced-load) approximation for single-path routing.
//
// The classic analytic companion to call-by-call simulation (Kelly 1991,
// and the machinery behind the reduced-load variant of Ott-Krishnan that
// Section 4.2.2 mentions).  Under the independent-link assumption, the
// blocking probability B_k of link k and the thinned (reduced) load
// offered to it satisfy the fixed point
//
//     a_k = sum over primary paths p through k of
//             T_p * prod_{j in p, j != k} (1 - B_j),
//     B_k = ErlangB(a_k, C_k),
//
// and a pair's end-to-end blocking is 1 - prod_{k in p} (1 - B_k).
// Repeated substitution converges for loss networks of this kind; we
// additionally damp the update for robustness at deep overload.
#pragma once

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/route_table.hpp"

namespace altroute::routing {

struct FixedPointOptions {
  int max_iterations{10000};
  /// Convergence threshold on the largest per-link blocking change.
  double tolerance{1e-12};
  /// Damping factor in (0, 1]: B <- (1-d)*B_old + d*B_new.
  double damping{0.5};
};

struct FixedPointResult {
  /// Per-link blocking probabilities at the fixed point.
  std::vector<double> link_blocking;
  /// Per-link reduced offered loads at the fixed point.
  std::vector<double> reduced_load;
  /// Traffic-weighted average end-to-end blocking over all pairs.
  double network_blocking{0.0};
  /// Per-ordered-pair end-to-end blocking, indexed src * n + dst.
  std::vector<double> pair_blocking;
  int iterations{0};
  bool converged{false};
};

/// Solves the reduced-load fixed point for the SINGLE-PATH routing scheme
/// over `routes` (bifurcated primaries supported: each primary path is a
/// separate thinned stream weighted by its probability).  Throws on size
/// mismatches or bad options.
[[nodiscard]] FixedPointResult erlang_fixed_point(const net::Graph& graph,
                                                  const routing::RouteTable& routes,
                                                  const net::TrafficMatrix& traffic,
                                                  const FixedPointOptions& options = {});

}  // namespace altroute::routing
