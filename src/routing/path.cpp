#include "routing/path.hpp"

#include <stdexcept>
#include <unordered_set>

namespace altroute::routing {

Path make_path(const net::Graph& graph, const std::vector<net::NodeId>& nodes) {
  if (nodes.size() < 2) throw std::invalid_argument("make_path: need at least 2 nodes");
  std::unordered_set<net::NodeId> seen;
  Path p;
  p.nodes = nodes;
  p.links.reserve(nodes.size() - 1);
  for (const net::NodeId n : nodes) {
    if (!seen.insert(n).second) throw std::invalid_argument("make_path: path revisits a node");
  }
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const auto link = graph.find_link(nodes[i], nodes[i + 1]);
    if (!link) throw std::invalid_argument("make_path: missing or disabled link on path");
    p.links.push_back(*link);
  }
  return p;
}

bool path_order(const Path& a, const Path& b) {
  if (a.hops() != b.hops()) return a.hops() < b.hops();
  return a.nodes < b.nodes;
}

}  // namespace altroute::routing
