#include "routing/minloss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"
#include "routing/shortest_paths.hpp"

namespace altroute::routing {

namespace {

struct Commodity {
  net::NodeId src;
  net::NodeId dst;
  double demand{0.0};
  std::vector<Path> candidates;
  std::vector<double> flow;  // per candidate, sums to demand
};

double objective(const std::vector<double>& loads, const std::vector<int>& capacity) {
  double f = 0.0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    f += erlang::loss_rate(loads[k], capacity[k]);
  }
  return f;
}

std::vector<double> link_loads(const std::vector<Commodity>& commodities, std::size_t links) {
  std::vector<double> loads(links, 0.0);
  for (const Commodity& c : commodities) {
    for (std::size_t p = 0; p < c.candidates.size(); ++p) {
      if (c.flow[p] <= 0.0) continue;
      for (const net::LinkId id : c.candidates[p].links) loads[id.index()] += c.flow[p];
    }
  }
  return loads;
}

}  // namespace

MinLossResult optimize_min_loss_primaries(const net::Graph& graph,
                                          const net::TrafficMatrix& traffic,
                                          const MinLossOptions& options) {
  if (traffic.size() != graph.node_count()) {
    throw std::invalid_argument("optimize_min_loss_primaries: traffic size mismatch");
  }
  if (options.candidate_paths < 1 || options.max_iterations < 1) {
    throw std::invalid_argument("optimize_min_loss_primaries: bad options");
  }
  const std::size_t links = static_cast<std::size_t>(graph.link_count());
  std::vector<int> capacity(links);
  for (std::size_t k = 0; k < links; ++k) capacity[k] = graph.link(net::LinkId(static_cast<std::int32_t>(k))).capacity;

  // Collect commodities: one per ordered pair with positive demand.
  std::vector<Commodity> commodities;
  for (int i = 0; i < graph.node_count(); ++i) {
    for (int j = 0; j < graph.node_count(); ++j) {
      if (i == j) continue;
      const double demand = traffic.at(net::NodeId(i), net::NodeId(j));
      if (demand <= 0.0) continue;
      Commodity c;
      c.src = net::NodeId(i);
      c.dst = net::NodeId(j);
      c.demand = demand;
      c.candidates = k_shortest_paths(graph, c.src, c.dst,
                                      static_cast<std::size_t>(options.candidate_paths));
      if (c.candidates.empty()) {
        throw std::invalid_argument("optimize_min_loss_primaries: demand on unreachable pair");
      }
      c.flow.assign(c.candidates.size(), 0.0);
      c.flow[0] = demand;  // start all-on-min-hop
      commodities.push_back(std::move(c));
    }
  }

  MinLossResult result;
  std::vector<double> loads = link_loads(commodities, links);
  double f = objective(loads, capacity);
  result.initial_loss_rate = f;
  int iterations = 0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++iterations;
    // Gradient of F with respect to each link load.
    std::vector<double> grad(links);
    for (std::size_t k = 0; k < links; ++k) {
      grad[k] = erlang::loss_rate_dload(loads[k], capacity[k]);
    }
    // All-or-nothing target: each commodity moves to its cheapest candidate.
    std::vector<double> target_loads(links, 0.0);
    std::vector<std::size_t> best_path(commodities.size(), 0);
    for (std::size_t ci = 0; ci < commodities.size(); ++ci) {
      const Commodity& c = commodities[ci];
      double best_cost = 0.0;
      std::size_t best = 0;
      for (std::size_t p = 0; p < c.candidates.size(); ++p) {
        double cost = 0.0;
        for (const net::LinkId id : c.candidates[p].links) cost += grad[id.index()];
        if (p == 0 || cost < best_cost) {
          best_cost = cost;
          best = p;
        }
      }
      best_path[ci] = best;
      for (const net::LinkId id : c.candidates[best].links) {
        target_loads[id.index()] += c.demand;
      }
    }
    // Line search over alpha in [0,1] on the load segment (F depends on the
    // flows only through the link loads, which are affine in alpha).
    const auto f_alpha = [&](double alpha) {
      double value = 0.0;
      for (std::size_t k = 0; k < links; ++k) {
        const double load = loads[k] + alpha * (target_loads[k] - loads[k]);
        value += erlang::loss_rate(load, capacity[k]);
      }
      return value;
    };
    constexpr double kGolden = 0.6180339887498949;
    double lo = 0.0;
    double hi = 1.0;
    double x1 = hi - kGolden * (hi - lo);
    double x2 = lo + kGolden * (hi - lo);
    double f1 = f_alpha(x1);
    double f2 = f_alpha(x2);
    for (int e = 0; e < options.line_search_evals; ++e) {
      if (f1 < f2) {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - kGolden * (hi - lo);
        f1 = f_alpha(x1);
      } else {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + kGolden * (hi - lo);
        f2 = f_alpha(x2);
      }
    }
    const double alpha = 0.5 * (lo + hi);
    const double f_new = f_alpha(alpha);
    if (alpha <= 0.0 || f_new >= f) break;
    // Converged?  Check BEFORE applying: at negligible loads the "optimal"
    // direction spreads flow onto long paths to shave loss that is already
    // ~0, which would be a pointless (and alternate-routing-hostile)
    // bifurcation.
    if (f - f_new < options.tolerance * std::max(1.0, f)) break;
    // Apply the step to per-path flows and refresh loads exactly.
    for (std::size_t ci = 0; ci < commodities.size(); ++ci) {
      Commodity& c = commodities[ci];
      for (std::size_t p = 0; p < c.flow.size(); ++p) {
        const double target = (p == best_path[ci]) ? c.demand : 0.0;
        c.flow[p] += alpha * (target - c.flow[p]);
      }
    }
    loads = link_loads(commodities, links);
    f = objective(loads, capacity);
  }

  result.expected_loss_rate = f;
  result.iterations = iterations;

  // Assemble the bifurcated route table.
  result.routes = RouteTable(graph.node_count());
  for (const Commodity& c : commodities) {
    RouteSet& set = result.routes.at(c.src, c.dst);
    double kept = 0.0;
    for (std::size_t p = 0; p < c.candidates.size(); ++p) {
      const double prob = c.flow[p] / c.demand;
      if (prob < options.prune_probability) continue;
      set.primaries.push_back(c.candidates[p]);
      set.primary_probs.push_back(prob);
      kept += prob;
    }
    for (double& prob : set.primary_probs) prob /= kept;
    set.alternates = all_simple_paths(graph, c.src, c.dst, options.max_alt_hops);
  }
  return result;
}

}  // namespace altroute::routing
