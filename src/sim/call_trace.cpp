#include "sim/call_trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace altroute::sim {

CallTrace generate_trace(const net::TrafficMatrix& traffic, double horizon,
                         std::uint64_t seed) {
  if (!(horizon > 0.0)) throw std::invalid_argument("generate_trace: horizon must be > 0");
  CallTrace trace;
  trace.horizon = horizon;
  const int n = traffic.size();
  // Reserve using the expected call count to avoid repeated growth.
  trace.calls.reserve(static_cast<std::size_t>(traffic.total() * horizon * 1.1) + 64);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double rate = traffic.at(net::NodeId(i), net::NodeId(j));
      if (rate <= 0.0) continue;
      // Stream id derived from the ordered pair; stable across matrices of
      // the same size.
      Rng rng(seed, static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n) +
                        static_cast<std::uint64_t>(j) + 1);
      double t = rng.exponential(rate);
      while (t < horizon) {
        trace.calls.push_back(
            CallRecord{t, rng.exponential(1.0), net::NodeId(i), net::NodeId(j), 1});
        t += rng.exponential(rate);
      }
    }
  }
  std::sort(trace.calls.begin(), trace.calls.end(),
            [](const CallRecord& a, const CallRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return trace;
}

CallTrace generate_multirate_trace(const std::vector<TrafficClass>& classes, double horizon,
                                   std::uint64_t seed) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("generate_multirate_trace: horizon must be > 0");
  }
  if (classes.empty()) throw std::invalid_argument("generate_multirate_trace: no classes");
  const int n = classes.front().offered.size();
  for (const TrafficClass& c : classes) {
    if (c.offered.size() != n) {
      throw std::invalid_argument("generate_multirate_trace: node count mismatch");
    }
    if (c.bandwidth < 1) throw std::invalid_argument("generate_multirate_trace: bandwidth < 1");
    if (!(c.mean_holding > 0.0)) {
      throw std::invalid_argument("generate_multirate_trace: mean holding <= 0");
    }
  }
  CallTrace trace;
  trace.horizon = horizon;
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const TrafficClass& cls = classes[ci];
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double erlangs = cls.offered.at(net::NodeId(i), net::NodeId(j));
        if (erlangs <= 0.0) continue;
        const double rate = erlangs / cls.mean_holding;  // calls per unit time
        // Substream keyed by (class, pair) so classes never interact.
        Rng rng(seed, (ci + 1) * 0x10000ULL +
                          static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n) +
                          static_cast<std::uint64_t>(j) + 1);
        double t = rng.exponential(rate);
        while (t < horizon) {
          trace.calls.push_back(CallRecord{t, rng.exponential(1.0 / cls.mean_holding),
                                           net::NodeId(i), net::NodeId(j), cls.bandwidth});
          t += rng.exponential(rate);
        }
      }
    }
  }
  std::sort(trace.calls.begin(), trace.calls.end(),
            [](const CallRecord& a, const CallRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.bandwidth < b.bandwidth;
            });
  return trace;
}

CallTrace concatenate_traces(const CallTrace& first, const CallTrace& second) {
  if (!(first.horizon > 0.0) || !(second.horizon > 0.0)) {
    throw std::invalid_argument("concatenate_traces: horizons must be > 0");
  }
  CallTrace out;
  out.horizon = first.horizon + second.horizon;
  out.calls.reserve(first.calls.size() + second.calls.size());
  out.calls = first.calls;
  for (CallRecord call : second.calls) {
    call.arrival += first.horizon;
    out.calls.push_back(call);
  }
  return out;
}

}  // namespace altroute::sim
