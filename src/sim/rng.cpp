#include "sim/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace altroute::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix seed and stream through splitmix64 so that nearby pairs (0,0), (0,1),
  // (1,0)... still produce uncorrelated xoshiro states.
  std::uint64_t sm = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would be absorbing; splitmix64 cannot produce four zero
  // outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open_low() {
  // (0, 1]: complement of [0, 1) keeps 53-bit granularity without zero.
  return 1.0 - uniform01();
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  return -std::log(uniform01_open_low()) / rate;
}

std::array<std::uint64_t, 4> Rng::state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0) {
    throw std::invalid_argument("Rng::set_state: all-zero state is absorbing");
  }
  for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<std::size_t>(i)];
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t x = (*this)();
    if (x >= threshold) return x % n;
  }
}

}  // namespace altroute::sim
