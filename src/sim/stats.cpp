#include "sim/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace altroute::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return t_critical_95(n_ - 1) * stderr_mean();
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double new_mean = mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double t_critical_95(std::size_t degrees_of_freedom) {
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (degrees_of_freedom == 0) return 0.0;
  if (degrees_of_freedom < kTable.size()) return kTable[degrees_of_freedom];
  return 1.960;
}

void TimeWeighted::observe(double value, double duration) {
  if (!(duration >= 0.0)) throw std::invalid_argument("TimeWeighted: negative duration");
  weighted_sum_ += value * duration;
  elapsed_ += duration;
}

double TimeWeighted::average() const {
  if (elapsed_ <= 0.0) return 0.0;
  return weighted_sum_ / elapsed_;
}

SampleSummary summarize(const std::vector<double>& data) {
  SampleSummary s;
  s.count = data.size();
  if (data.empty()) return s;
  RunningStats rs;
  for (const double x : data) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.median = (n % 2 != 0) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  s.cv = (s.mean != 0.0) ? s.stddev / s.mean : 0.0;
  if (n >= 3 && s.stddev > 0.0) {
    double m3 = 0.0;
    for (const double x : data) {
      const double d = x - s.mean;
      m3 += d * d * d;
    }
    m3 /= static_cast<double>(n);
    const double g1 = m3 / std::pow(s.stddev * std::sqrt((static_cast<double>(n) - 1.0) /
                                                         static_cast<double>(n)),
                                    3.0);
    const double nn = static_cast<double>(n);
    s.skewness = g1 * std::sqrt(nn * (nn - 1.0)) / (nn - 2.0);
  }
  return s;
}

}  // namespace altroute::sim
