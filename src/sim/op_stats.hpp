// Lifetime operation counters of the hot-path containers.
//
// EventQueue, CalendarQueue, and SlabArena each keep one of these structs
// and bump it with plain integer increments on the operations that matter
// for run-health attribution: how many events moved through the future
// event list, how often the calendar rebucketed itself, how often the
// arena recycled a slot versus growing the slab, and the high-water marks.
// The increments are unconditional (no branch, no indirection) and present
// in every build -- they are DETERMINISTIC facts about the run, not
// timing, so the profiler's ALTROUTE_OBS_ENABLED=0 switch does not touch
// them (see obs/prof/counters.hpp for the aggregation layer).
#pragma once

#include <cstdint>

namespace altroute::sim {

/// Counters of one event queue since construction.  clear() does not reset
/// them: they describe everything the queue ever did.
struct QueueStats {
  std::uint64_t scheduled{0};  ///< schedule() calls (restore_entry excluded)
  std::uint64_t popped{0};     ///< pop() calls
  std::uint64_t resizes{0};    ///< calendar rebucketings (always 0 for the heap)
  std::uint64_t peak_size{0};  ///< largest pending-event population ever
};

/// Counters of one slab arena since construction.
struct ArenaStats {
  std::uint64_t allocations{0};  ///< acquires that grew the slab
  std::uint64_t reuses{0};       ///< acquires served from the free-list
  std::uint64_t peak_live{0};    ///< largest live population ever
};

}  // namespace altroute::sim
