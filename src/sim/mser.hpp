// MSER-5 warm-up (initial-transient) detection.
//
// The paper states that a 10-unit warm-up from an idle network "was found
// to be sufficient"; the Marginal Standard Error Rule (White/Franklin)
// makes that check objective.  Observations are grouped into batches of 5,
// and the truncation point d* minimizes
//
//     MSER(d) = sum_{i > d} (y_i - mean_{i > d})^2 / (n - d)^2
//
// over the batch-mean series y, i.e. it trades bias (keeping transient
// batches) against variance (throwing data away).  The search is capped at
// half the series, the standard guard against degenerate tails.
#pragma once

#include <cstddef>
#include <vector>

namespace altroute::sim {

struct MserResult {
  /// Chosen truncation, in batches (multiply by batch size for
  /// observations).
  std::size_t truncation_batches{0};
  /// The minimized MSER statistic.
  double statistic{0.0};
  /// Number of batch means the rule saw.
  std::size_t batches{0};
};

/// Runs MSER on the batch means of `observations` (batch size 5 gives the
/// classic MSER-5).  Throws when observations are fewer than 2 batches or
/// batch_size < 1.
[[nodiscard]] MserResult mser_truncation(const std::vector<double>& observations,
                                         int batch_size = 5);

}  // namespace altroute::sim
