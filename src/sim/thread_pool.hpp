// Fixed-size worker pool for the deterministic parallel sweep harness.
//
// Design constraints (see DESIGN.md "Parallel sweep harness"):
//   - fixed worker count chosen at construction, no work stealing between
//     higher-level constructs: tasks are claimed from one FIFO queue;
//   - tasks must not submit further tasks (nested submission is rejected
//     with std::logic_error) -- the sweep fan-out is a flat bag of
//     independent replications, and a flat pool cannot deadlock;
//   - exceptions escaping a task are captured and re-thrown from the next
//     wait() on the submitting thread, first-come-first-kept;
//   - destruction drains the queue: every task submitted before the
//     destructor runs is executed before the workers join.
//
// Determinism is a property of the *callers*: the pool makes no ordering
// promises, so callers write results into pre-sized per-task slots and
// reduce them in a fixed order afterwards (see sim/parallel_for.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace altroute::sim {

class ThreadPool {
 public:
  /// Spawns `threads` workers.  Throws std::invalid_argument unless
  /// threads >= 1.
  explicit ThreadPool(int threads);

  /// Drains all queued tasks, then joins the workers.  A pending captured
  /// exception that was never collected by wait() is discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.  Throws std::logic_error when called from one of
  /// this process's pool worker threads (nested submission).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  If any task threw,
  /// re-throws the first captured exception (and clears it, so the pool
  /// stays usable).
  void wait();

  [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* ThreadPool.
  [[nodiscard]] static bool on_worker_thread();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  std::size_t in_flight_{0};  ///< queued + currently running tasks
  bool stopping_{false};
};

}  // namespace altroute::sim
