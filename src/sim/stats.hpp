// Statistics helpers for simulation output analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace altroute::sim {

/// Streaming mean/variance accumulator (Welford's algorithm); numerically
/// stable for long runs.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than 2 observations.
  [[nodiscard]] double variance() const;
  /// sqrt(variance()).
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 with fewer than 2 observations.
  [[nodiscard]] double stderr_mean() const;
  /// Half-width of the two-sided 95% Student-t confidence interval for the
  /// mean; 0 with fewer than 2 observations.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Two-sided 95% Student-t critical value for the given degrees of freedom
/// (exact table through 30 df, 1.960 beyond).
[[nodiscard]] double t_critical_95(std::size_t degrees_of_freedom);

/// Time-weighted average of a piecewise-constant signal, e.g. link
/// occupancy: feed (value, duration) segments via observe(); read average().
class TimeWeighted {
 public:
  /// Accounts `value` held for `duration` time units (duration >= 0).
  void observe(double value, double duration);
  /// Total accounted time.
  [[nodiscard]] double elapsed() const { return elapsed_; }
  /// Time average; 0 when no time accounted.
  [[nodiscard]] double average() const;

 private:
  double weighted_sum_{0.0};
  double elapsed_{0.0};
};

/// Descriptive summary of a sample (used for the O-D fairness experiment).
struct SampleSummary {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
  double median{0.0};
  /// Coefficient of variation stddev/mean; 0 when mean == 0.
  double cv{0.0};
  /// Adjusted Fisher-Pearson sample skewness; 0 with fewer than 3 samples.
  double skewness{0.0};
};

/// Computes a SampleSummary (sorts a copy of the data for the median).
[[nodiscard]] SampleSummary summarize(const std::vector<double>& data);

}  // namespace altroute::sim
