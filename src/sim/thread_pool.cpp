#include "sim/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace altroute::sim {

namespace {
thread_local bool tls_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) throw std::invalid_argument("ThreadPool: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (tls_on_worker) {
    throw std::logic_error("ThreadPool::submit: nested submission from a worker thread");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error;
    std::swap(error, first_error_);
    std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      // Shutdown drains the queue: exit only once no work is left.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace altroute::sim
