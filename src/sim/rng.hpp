// Deterministic random number generation for the simulator.
//
// xoshiro256++ seeded through splitmix64, with an explicit (seed, stream)
// pair so that independent substreams (one per experiment seed, per traffic
// pair, ...) are reproducible bit-for-bit across platforms and runs.  The
// library never touches std::random_device: every simulation result in the
// repository can be regenerated exactly.
#pragma once

#include <array>
#include <cstdint>

namespace altroute::sim {

/// xoshiro256++ PRNG.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a (seed, stream) pair; distinct pairs give
  /// statistically independent sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in (0, 1] -- never zero, safe for -log().
  double uniform01_open_low();

  /// Exponential variate with the given rate (mean 1/rate).  rate > 0.
  double exponential(double rate);

  /// Uniform integer in [0, n).  n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Checkpoint support: the raw 256-bit xoshiro state.  set_state with a
  /// value from state() resumes the exact output stream -- the snapshot
  /// layer's common-random-numbers guarantee.  Throws on the all-zero
  /// (absorbing) state.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
};

}  // namespace altroute::sim
