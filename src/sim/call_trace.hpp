// Pre-generated call traces for common-random-number policy comparison.
//
// The paper evaluates every routing algorithm "with identical call arrivals
// and call holding times".  We realize that by sampling, per experiment
// seed, one trace of (arrival time, origin, destination, holding time)
// records from the traffic matrix's independent Poisson processes, and
// replaying the same trace against each policy.  Differences between
// policies are then purely due to routing, not sampling noise.
#pragma once

#include <cstdint>
#include <vector>

#include "netgraph/ids.hpp"
#include "netgraph/traffic_matrix.hpp"

namespace altroute::sim {

/// One call request in a trace.
struct CallRecord {
  double arrival;     ///< absolute arrival time
  double holding;     ///< holding time (Exp with the class's mean)
  net::NodeId src;    ///< origin node
  net::NodeId dst;    ///< destination node
  int bandwidth{1};   ///< circuits seized per link (1 = the paper's model)
};

/// A time-sorted sequence of call requests over [0, horizon).
struct CallTrace {
  std::vector<CallRecord> calls;
  double horizon{0.0};

  /// Offered load realized by the trace: number of calls / horizon equals
  /// the matrix total in expectation.
  [[nodiscard]] std::size_t size() const { return calls.size(); }
};

/// Samples a trace over [0, horizon) from independent Poisson streams, one
/// per ordered pair with positive demand (rate = T(i,j); holding Exp(1)).
/// Each pair gets its own RNG substream, so the trace for a pair is
/// unchanged when other entries of the matrix change (variance reduction
/// across load points that share unscaled pairs).  Deterministic in `seed`.
[[nodiscard]] CallTrace generate_trace(const net::TrafficMatrix& traffic, double horizon,
                                       std::uint64_t seed);

/// One call class of the multi-rate extension: its own demand matrix (in
/// Erlangs of CALLS, i.e. arrival rate x mean holding), per-call circuit
/// width, and mean holding time.
struct TrafficClass {
  net::TrafficMatrix offered;
  int bandwidth{1};
  double mean_holding{1.0};
};

/// Multi-rate trace: the superposition of every class's independent
/// Poisson streams, time-sorted.  Class c's pair (i,j) draws from RNG
/// substream (c, i, j), so adding a class never perturbs another class's
/// arrivals.  All matrices must share one node count.  Deterministic in
/// `seed`.
[[nodiscard]] CallTrace generate_multirate_trace(const std::vector<TrafficClass>& classes,
                                                 double horizon, std::uint64_t seed);

/// Plays `second` after `first`: every arrival of `second` is shifted by
/// first.horizon and the result's horizon is the sum.  Used to build
/// phase-change scenarios (load steps, hot-start hysteresis probes) from
/// stationary segments.  Throws if either horizon is non-positive.
[[nodiscard]] CallTrace concatenate_traces(const CallTrace& first, const CallTrace& second);

}  // namespace altroute::sim
