// Time-varying offered load: piecewise-constant scaling profiles and
// non-homogeneous Poisson trace generation by thinning.
//
// The paper evaluates stationary loads; real networks breathe (the AT&T
// Thanksgiving-day overloads of its introduction are the extreme case).
// A LoadProfile scales a nominal traffic matrix over time, so experiments
// can drive the schemes through load swings and test how the control -- and
// the online Lambda estimator -- cope with non-stationarity.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/call_trace.hpp"

namespace altroute::sim {

/// Piecewise-constant, optionally periodic, non-negative scaling factor of
/// time.  Segment i spans [times[i], times[i+1]) with value factors[i];
/// the final segment extends to infinity (aperiodic) or wraps (periodic
/// with period = times.back() + last segment length implied by times[0]).
class LoadProfile {
 public:
  /// `times` must start at 0 and increase strictly; factors must be
  /// non-negative, one per breakpoint.  When `periodic`, `period` must
  /// exceed the last breakpoint and the profile repeats with that period.
  LoadProfile(std::vector<double> times, std::vector<double> factors, bool periodic = false,
              double period = 0.0);

  /// Constant profile.
  [[nodiscard]] static LoadProfile constant(double factor);

  /// Sinusoid-like diurnal swing between `low` and `high`, approximated by
  /// `steps` piecewise-constant segments per period, repeating forever.
  [[nodiscard]] static LoadProfile diurnal(double period, double low, double high,
                                           int steps = 12);

  [[nodiscard]] double factor_at(double t) const;
  [[nodiscard]] double max_factor() const { return max_factor_; }

  /// Mean factor over one period (periodic) or over the breakpoint span
  /// plus the final value (aperiodic profiles: the time-average as t->inf
  /// is just the last factor; this returns the average over [0, last)).
  [[nodiscard]] double mean_factor() const;

 private:
  std::vector<double> times_;
  std::vector<double> factors_;
  bool periodic_;
  double period_;
  double max_factor_;
};

/// Samples a trace whose pair (i,j) arrives as a non-homogeneous Poisson
/// process with rate T(i,j) * profile.factor_at(t), by thinning a
/// homogeneous process at rate T(i,j) * profile.max_factor().
/// Deterministic in `seed`; holding times stay Exp(1).
[[nodiscard]] CallTrace generate_profiled_trace(const net::TrafficMatrix& nominal,
                                                const LoadProfile& profile, double horizon,
                                                std::uint64_t seed);

}  // namespace altroute::sim
