// Discrete-event future event list.
//
// A binary min-heap keyed by (time, insertion sequence).  The sequence
// number makes simultaneous events pop in insertion order, so simulations
// are deterministic even in the presence of ties (e.g. a departure and an
// arrival scheduled at exactly the same instant).
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/op_stats.hpp"

namespace altroute::sim {

/// Priority queue of timed events carrying an arbitrary payload.
/// Pops in nondecreasing time order; ties break by insertion order (FIFO).
template <typename Payload>
class EventQueue {
 public:
  /// Schedules `payload` at absolute time `time` (must be finite, >= 0).
  void schedule(double time, Payload payload) {
    if (!(time >= 0.0)) throw std::invalid_argument("EventQueue: negative or NaN time");
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
    ++stats_.scheduled;
    if (heap_.size() > stats_.peak_size) stats_.peak_size = heap_.size();
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Lifetime operation counters (see sim/op_stats.hpp); resizes stays 0,
  /// the heap never rebuckets.
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Time of the earliest pending event.  Queue must be non-empty.
  [[nodiscard]] double next_time() const { return heap_.front().time; }

  /// Removes and returns the earliest event's (time, payload).
  std::pair<double, Payload> pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
    Entry top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    ++stats_.popped;
    return {top.time, std::move(top.payload)};
  }

  void clear() {
    heap_.clear();
    next_seq_ = 0;
  }

  // --- checkpoint support ---------------------------------------------------
  // Pop order depends only on the (time, seq) multiset, never on the heap's
  // internal shape, so a queue restored entry-by-entry pops exactly like
  // the saved one -- even when the save came from the calendar engine.

  /// Calls f(time, seq, payload) for every pending entry, in unspecified
  /// order (the snapshot layer canonicalizes by sorting on seq).
  template <typename Visitor>
  void visit(Visitor&& f) const {
    for (const Entry& e : heap_) f(e.time, e.seq, e.payload);
  }

  /// Sequence number the next schedule() will use.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Re-inserts an entry under its ORIGINAL sequence number, so restored
  /// FIFO tie groups pop in their original order.  Callers must also
  /// restore the counter via set_next_seq.
  void restore_entry(double time, std::uint64_t seq, Payload payload) {
    if (!(time >= 0.0)) throw std::invalid_argument("EventQueue: negative or NaN time");
    heap_.push_back(Entry{time, seq, std::move(payload)});
    sift_up(heap_.size() - 1);
    if (heap_.size() > stats_.peak_size) stats_.peak_size = heap_.size();
  }

  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Payload payload;

    [[nodiscard]] bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && heap_[left].before(heap_[smallest])) smallest = left;
      if (right < n && heap_[right].before(heap_[smallest])) smallest = right;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_{0};
  QueueStats stats_;
};

}  // namespace altroute::sim
