// Batch-means confidence intervals for single long runs.
//
// The paper's protocol averages 10 independent replications; for very long
// single runs (cheaper per measured unit once warmed up) the method of
// non-overlapping batch means gives a CI from one run: split the
// observation series into k batches, treat the batch means as approximately
// independent normals, and report a Student-t interval.  The lag-1
// autocorrelation of the batch means is exposed so callers can detect
// batches that are still too short.
#pragma once

#include <cstddef>
#include <vector>

namespace altroute::sim {

struct BatchMeansResult {
  std::size_t batches{0};
  double mean{0.0};
  double ci95_halfwidth{0.0};
  /// Lag-1 autocorrelation of the batch means; |value| well under ~0.2
  /// indicates the batches are long enough to be treated as independent.
  double lag1_autocorrelation{0.0};
};

/// Computes batch means over `observations` split into `batches` equal
/// groups (trailing remainder dropped).  Throws when fewer than 2 batches
/// or batches of size 0 would result.
[[nodiscard]] BatchMeansResult batch_means(const std::vector<double>& observations,
                                           std::size_t batches = 20);

}  // namespace altroute::sim
