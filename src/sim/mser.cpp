#include "sim/mser.hpp"

#include <limits>
#include <stdexcept>

namespace altroute::sim {

MserResult mser_truncation(const std::vector<double>& observations, int batch_size) {
  if (batch_size < 1) throw std::invalid_argument("mser_truncation: batch_size < 1");
  const std::size_t batches = observations.size() / static_cast<std::size_t>(batch_size);
  if (batches < 2) {
    throw std::invalid_argument("mser_truncation: need at least 2 full batches");
  }
  std::vector<double> means(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (int i = 0; i < batch_size; ++i) {
      sum += observations[b * static_cast<std::size_t>(batch_size) +
                          static_cast<std::size_t>(i)];
    }
    means[b] = sum / batch_size;
  }

  // Suffix sums let every candidate truncation be scored in O(1).
  std::vector<double> suffix_sum(batches + 1, 0.0);
  std::vector<double> suffix_sq(batches + 1, 0.0);
  for (std::size_t b = batches; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + means[b];
    suffix_sq[b] = suffix_sq[b + 1] + means[b] * means[b];
  }

  MserResult result;
  result.batches = batches;
  result.statistic = std::numeric_limits<double>::infinity();
  const std::size_t max_cut = batches / 2;  // standard guard
  for (std::size_t d = 0; d <= max_cut; ++d) {
    const double count = static_cast<double>(batches - d);
    const double mean = suffix_sum[d] / count;
    const double sq = suffix_sq[d] - count * mean * mean;
    const double statistic = (sq > 0.0 ? sq : 0.0) / (count * count);
    if (statistic < result.statistic) {
      result.statistic = statistic;
      result.truncation_batches = d;
    }
  }
  return result;
}

}  // namespace altroute::sim
