// Slab arena with a free-list and an intrusive insertion-order list.
//
// The scenario engine keeps every in-flight call in one of these: a call is
// acquired on admission, released on departure/kill/preemption, and the
// slot is recycled through the free-list -- so after the population peaks,
// steady state performs ZERO heap allocations (recycled slots keep their
// payload's capacity, e.g. a routing::Path's vectors).  Handles carry a
// generation counter, so a stale handle (a departure event for a call that
// a scenario event already killed) is detected as dead instead of touching
// a recycled slot.
//
// The intrusive doubly-linked list preserves acquisition order: oldest() /
// next() iterate calls in admission order (the kill-on-failure order),
// newest() / prev() in reverse (the preemption order) -- the exact orders
// the ordered-map implementation used to provide, at O(1) per step and
// without per-node allocation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/op_stats.hpp"

namespace altroute::sim {

template <typename T>
class SlabArena {
 public:
  /// Opaque slot reference: low 32 bits index, high 32 bits generation.
  using Handle = std::uint64_t;
  static constexpr Handle kInvalid = ~Handle{0};

  /// Claims a slot (recycling the free-list when possible) and appends it
  /// to the tail of the insertion-order list.  The payload is whatever the
  /// slot last held (or a default-constructed T for a fresh slot); callers
  /// assign the fields they need -- reusing, not reconstructing, lets
  /// vector members keep their capacity.
  Handle acquire() {
    std::uint32_t index;
    if (free_head_ != kNone) {
      index = free_head_;
      free_head_ = slots_[index].next;
      ++stats_.reuses;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      ++stats_.allocations;
    }
    Slot& slot = slots_[index];
    slot.live = true;
    slot.prev = tail_;
    slot.next = kNone;
    if (tail_ != kNone) {
      slots_[tail_].next = index;
    } else {
      head_ = index;
    }
    tail_ = index;
    ++live_;
    if (live_ > stats_.peak_live) stats_.peak_live = live_;
    return make_handle(index, slot.gen);
  }

  /// Releases a live slot back to the free-list.  Throws on dead/stale
  /// handles -- double release is a bug, not a no-op.
  void release(Handle h) {
    const std::uint32_t index = check(h);
    Slot& slot = slots_[index];
    if (slot.prev != kNone) {
      slots_[slot.prev].next = slot.next;
    } else {
      head_ = slot.next;
    }
    if (slot.next != kNone) {
      slots_[slot.next].prev = slot.prev;
    } else {
      tail_ = slot.prev;
    }
    slot.live = false;
    ++slot.gen;  // stale handles to this slot die here
    slot.next = free_head_;
    free_head_ = index;
    --live_;
  }

  /// True when `h` still names a live call (its slot has not been released
  /// or recycled since).
  [[nodiscard]] bool alive(Handle h) const {
    if (h == kInvalid) return false;
    const std::uint32_t index = index_of(h);
    return index < slots_.size() && slots_[index].live && slots_[index].gen == gen_of(h);
  }

  [[nodiscard]] T& value(Handle h) { return slots_[check(h)].value; }
  [[nodiscard]] const T& value(Handle h) const { return slots_[check(h)].value; }

  /// Live slot count.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Slots ever allocated (live + free): the arena's high-water mark.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Lifetime operation counters (see sim/op_stats.hpp).  restore_layout
  /// raises peak_live to the restored population but leaves the
  /// allocation/reuse tallies alone: they describe THIS process's work.
  [[nodiscard]] const ArenaStats& stats() const { return stats_; }

  // Insertion-order traversal (kInvalid at either end).
  [[nodiscard]] Handle oldest() const { return handle_at(head_); }
  [[nodiscard]] Handle newest() const { return handle_at(tail_); }
  [[nodiscard]] Handle next(Handle h) const { return handle_at(slots_[check(h)].next); }
  [[nodiscard]] Handle prev(Handle h) const { return handle_at(slots_[check(h)].prev); }

  /// Releases every live slot (payload capacity is kept for reuse).
  void clear() {
    while (head_ != kNone) release(make_handle(head_, slots_[head_].gen));
  }

  // --- checkpoint support ---------------------------------------------------
  // The arena's observable behavior -- which handle the next acquire()
  // returns, which stale handles read as dead -- depends on the exact slot
  // generations and both intrusive lists.  Layout captures all of it;
  // restore_layout rebuilds an identical arena (values default-constructed;
  // callers refill them by walking oldest()/next(), which visits live slots
  // in the same order layout() recorded them).

  struct Layout {
    std::vector<std::uint32_t> gens;        ///< per slot, index order
    std::vector<std::uint32_t> live_order;  ///< oldest -> newest slot index
    std::vector<std::uint32_t> free_order;  ///< free-list pop order
  };

  [[nodiscard]] Layout layout() const {
    Layout l;
    l.gens.reserve(slots_.size());
    for (const Slot& slot : slots_) l.gens.push_back(slot.gen);
    l.live_order.reserve(live_);
    for (std::uint32_t i = head_; i != kNone; i = slots_[i].next) l.live_order.push_back(i);
    for (std::uint32_t i = free_head_; i != kNone; i = slots_[i].next) {
      l.free_order.push_back(i);
    }
    return l;
  }

  /// Rebuilds the arena to exactly `l` (see layout()).  Every slot value is
  /// default-constructed.  Throws std::invalid_argument when the layout is
  /// inconsistent (an index out of range, a slot in both lists, or a slot
  /// in neither).
  void restore_layout(const Layout& l) {
    const auto slot_count = static_cast<std::uint32_t>(l.gens.size());
    if (l.live_order.size() + l.free_order.size() != l.gens.size()) {
      throw std::invalid_argument("SlabArena::restore_layout: live + free != slot count");
    }
    std::vector<char> seen(slot_count, 0);
    const auto claim = [&](std::uint32_t index) {
      if (index >= slot_count || seen[index]) {
        throw std::invalid_argument(
            "SlabArena::restore_layout: slot index out of range or repeated");
      }
      seen[index] = 1;
    };
    slots_.assign(l.gens.size(), Slot{});
    for (std::size_t i = 0; i < l.gens.size(); ++i) slots_[i].gen = l.gens[i];
    head_ = tail_ = free_head_ = kNone;
    live_ = l.live_order.size();
    if (live_ > stats_.peak_live) stats_.peak_live = live_;
    std::uint32_t prev = kNone;
    for (const std::uint32_t index : l.live_order) {
      claim(index);
      Slot& slot = slots_[index];
      slot.live = true;
      slot.prev = prev;
      slot.next = kNone;
      if (prev != kNone) {
        slots_[prev].next = index;
      } else {
        head_ = index;
      }
      prev = index;
    }
    tail_ = prev;
    // The free chain links through `next` only; rebuild it back-to-front so
    // free_head_ pops in the recorded order.
    for (std::size_t i = l.free_order.size(); i-- > 0;) {
      const std::uint32_t index = l.free_order[i];
      claim(index);
      slots_[index].next = free_head_;
      free_head_ = index;
    }
  }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Slot {
    T value{};
    std::uint32_t gen{0};
    std::uint32_t prev{kNone};
    std::uint32_t next{kNone};  ///< order-list link when live, free-list link when dead
    bool live{false};
  };

  static Handle make_handle(std::uint32_t index, std::uint32_t gen) {
    return (static_cast<Handle>(gen) << 32) | index;
  }
  static std::uint32_t index_of(Handle h) { return static_cast<std::uint32_t>(h); }
  static std::uint32_t gen_of(Handle h) { return static_cast<std::uint32_t>(h >> 32); }

  [[nodiscard]] Handle handle_at(std::uint32_t index) const {
    return index == kNone ? kInvalid : make_handle(index, slots_[index].gen);
  }

  [[nodiscard]] std::uint32_t check(Handle h) const {
    if (!alive(h)) throw std::logic_error("SlabArena: dead or stale handle");
    return index_of(h);
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNone};
  std::uint32_t head_{kNone};
  std::uint32_t tail_{kNone};
  std::size_t live_{0};
  ArenaStats stats_;
};

}  // namespace altroute::sim
