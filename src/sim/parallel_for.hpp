// parallel_for: the one parallel construct the sweep harness uses.
//
// Runs body(0) .. body(count - 1).  With a null pool (or a single-worker
// pool) the loop runs inline on the calling thread in index order -- the
// `threads=1` mode that bypasses the pool entirely.  Otherwise indices are
// claimed dynamically from a shared atomic counter by the pool's workers.
//
// Determinism contract: execution ORDER is unspecified in the parallel
// case, so body(i) must touch only state owned by index i (pre-sized result
// slots).  Under that discipline the set of (i -> slot_i) writes is
// identical for every thread count, and a fixed-order reduction over the
// slots afterwards gives bit-for-bit identical results.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>

#include "sim/thread_pool.hpp"

namespace altroute::sim {

inline void parallel_for(ThreadPool* pool, std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->thread_count() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t lanes =
      std::min(static_cast<std::size_t>(pool->thread_count()), count);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool->submit([&next, &body, count] {
      for (std::size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < count;) {
        body(i);
      }
    });
  }
  // wait() re-throws the first exception thrown by any body(i); the
  // remaining lanes still run to completion first, so `next`/`body` never
  // dangle.
  pool->wait();
}

}  // namespace altroute::sim
