#include "sim/load_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "sim/rng.hpp"

namespace altroute::sim {

LoadProfile::LoadProfile(std::vector<double> times, std::vector<double> factors, bool periodic,
                         double period)
    : times_(std::move(times)), factors_(std::move(factors)), periodic_(periodic),
      period_(period) {
  if (times_.empty() || times_.size() != factors_.size()) {
    throw std::invalid_argument("LoadProfile: times/factors must be non-empty and equal size");
  }
  if (times_.front() != 0.0) throw std::invalid_argument("LoadProfile: times must start at 0");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("LoadProfile: times must increase strictly");
    }
  }
  for (const double f : factors_) {
    if (!(f >= 0.0)) throw std::invalid_argument("LoadProfile: negative factor");
  }
  if (periodic_ && !(period_ > times_.back())) {
    throw std::invalid_argument("LoadProfile: period must exceed the last breakpoint");
  }
  max_factor_ = *std::max_element(factors_.begin(), factors_.end());
}

LoadProfile LoadProfile::constant(double factor) {
  return LoadProfile({0.0}, {factor});
}

LoadProfile LoadProfile::diurnal(double period, double low, double high, int steps) {
  if (!(period > 0.0)) throw std::invalid_argument("LoadProfile::diurnal: period <= 0");
  if (!(low >= 0.0) || !(high >= low)) {
    throw std::invalid_argument("LoadProfile::diurnal: need 0 <= low <= high");
  }
  if (steps < 2) throw std::invalid_argument("LoadProfile::diurnal: steps < 2");
  std::vector<double> times;
  std::vector<double> factors;
  const double mid = 0.5 * (low + high);
  const double amplitude = 0.5 * (high - low);
  for (int i = 0; i < steps; ++i) {
    const double t = period * static_cast<double>(i) / steps;
    const double t_mid = period * (static_cast<double>(i) + 0.5) / steps;
    times.push_back(t);
    // Trough at t = 0, peak at t = period / 2.
    factors.push_back(mid - amplitude * std::cos(2.0 * std::numbers::pi * t_mid / period));
  }
  return LoadProfile(std::move(times), std::move(factors), /*periodic=*/true, period);
}

double LoadProfile::factor_at(double t) const {
  if (!(t >= 0.0)) throw std::invalid_argument("LoadProfile::factor_at: negative time");
  double local = t;
  if (periodic_) local = std::fmod(t, period_);
  // Last segment whose breakpoint is <= local.
  const auto it = std::upper_bound(times_.begin(), times_.end(), local);
  const std::size_t index = static_cast<std::size_t>(it - times_.begin()) - 1;
  return factors_[index];
}

double LoadProfile::mean_factor() const {
  const double span = periodic_ ? period_ : times_.back();
  if (span <= 0.0) return factors_.front();
  double integral = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double end = (i + 1 < times_.size()) ? times_[i + 1] : span;
    integral += factors_[i] * (end - times_[i]);
  }
  return integral / span;
}

CallTrace generate_profiled_trace(const net::TrafficMatrix& nominal,
                                  const LoadProfile& profile, double horizon,
                                  std::uint64_t seed) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("generate_profiled_trace: horizon must be > 0");
  }
  CallTrace trace;
  trace.horizon = horizon;
  const int n = nominal.size();
  const double ceiling = profile.max_factor();
  if (ceiling <= 0.0) return trace;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double base_rate = nominal.at(net::NodeId(i), net::NodeId(j));
      if (base_rate <= 0.0) continue;
      Rng rng(seed, 0x9D0F11E0ULL + static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n) +
                        static_cast<std::uint64_t>(j));
      const double envelope = base_rate * ceiling;
      double t = rng.exponential(envelope);
      while (t < horizon) {
        // Thinning: keep with probability factor(t) / ceiling.
        if (rng.uniform01() * ceiling < profile.factor_at(t)) {
          trace.calls.push_back(
              CallRecord{t, rng.exponential(1.0), net::NodeId(i), net::NodeId(j), 1});
        }
        t += rng.exponential(envelope);
      }
    }
  }
  std::sort(trace.calls.begin(), trace.calls.end(),
            [](const CallRecord& a, const CallRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return trace;
}

}  // namespace altroute::sim
