// Bucketed calendar event queue (Brown 1988) -- the hot-path future event
// list of the simulation engines.
//
// Events live in an array of time buckets, each covering one `width`-wide
// slice of a repeating "year" of nbuckets * width time units.  Enqueue
// hashes the event's timestamp to its bucket and inserts into that bucket's
// (short, sorted) entry list; dequeue walks the calendar from the bucket of
// the last popped event, taking the earliest entry that falls inside the
// current year window.  With the bucket count tracking the queue size and
// the width tracking the mean inter-event gap, both operations are O(1)
// amortized -- against the O(log n) sift of a binary heap.
//
// Ordering contract (identical to sim::EventQueue, property-tested against
// it in tests/property_event_queue_*):
//   * pops come in nondecreasing time order;
//   * ties at equal timestamps break by insertion order (FIFO), carried by
//     a monotone sequence number.  Equal times hash to the SAME bucket, so
//     the tie-break never crosses a bucket boundary.
// Scheduling an event earlier than the current scan position (allowed, the
// engines never need it but the interface permits it) rewinds the scan, so
// correctness does not depend on monotone use.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/op_stats.hpp"

namespace altroute::sim {

/// Calendar queue of timed events carrying an arbitrary payload.  Drop-in
/// replacement for sim::EventQueue (same schedule/next_time/pop interface,
/// same ordering semantics).
template <typename Payload>
class CalendarQueue {
 public:
  CalendarQueue() { init(kMinBuckets, 1.0); }

  /// Schedules `payload` at absolute time `time` (must be finite, >= 0).
  void schedule(double time, Payload payload) {
    if (!(time >= 0.0)) throw std::invalid_argument("CalendarQueue: negative or NaN time");
    insert(Entry{time, next_seq_++, std::move(payload)});
    ++count_;
    ++stats_.scheduled;
    if (count_ > stats_.peak_size) stats_.peak_size = count_;
    if (count_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      resize(2 * buckets_.size());
    }
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Lifetime operation counters (see sim/op_stats.hpp).
  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Time of the earliest pending event.  Queue must be non-empty.
  [[nodiscard]] double next_time() const {
    if (count_ == 0) throw std::logic_error("CalendarQueue::next_time on empty queue");
    locate_min();
    return buckets_[min_bucket_].back().time;
  }

  /// Removes and returns the earliest event's (time, payload).
  std::pair<double, Payload> pop() {
    if (count_ == 0) throw std::logic_error("CalendarQueue::pop on empty queue");
    locate_min();
    std::vector<Entry>& bucket = buckets_[min_bucket_];
    Entry top = std::move(bucket.back());
    bucket.pop_back();
    --count_;
    ++stats_.popped;
    have_min_ = false;
    // Restart the next scan from the popped event's calendar position.
    last_time_ = top.time;
    cursor_ = min_bucket_;
    cursor_top_ = bucket_top_of(top.time);
    if (count_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
      resize(buckets_.size() / 2);
    }
    return {top.time, std::move(top.payload)};
  }

  void clear() {
    for (std::vector<Entry>& b : buckets_) b.clear();
    count_ = 0;
    next_seq_ = 0;
    have_min_ = false;
    last_time_ = 0.0;
    cursor_ = 0;
    cursor_top_ = width_;
  }

  // --- checkpoint support ---------------------------------------------------
  // The ordering contract is comparator-driven ((time, seq) only), so the
  // calendar's bucket layout is NOT state: restoring the logical entry set
  // into a fresh calendar reproduces the exact pop stream, including one
  // saved from the binary-heap engine.

  /// Calls f(time, seq, payload) for every pending entry, in unspecified
  /// order (the snapshot layer canonicalizes by sorting on seq).
  template <typename Visitor>
  void visit(Visitor&& f) const {
    for (const std::vector<Entry>& bucket : buckets_) {
      for (const Entry& e : bucket) f(e.time, e.seq, e.payload);
    }
  }

  /// Sequence number the next schedule() will use.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Re-inserts an entry under its ORIGINAL sequence number, so restored
  /// FIFO tie groups pop in their original order.  Callers must also
  /// restore the counter via set_next_seq.
  void restore_entry(double time, std::uint64_t seq, Payload payload) {
    if (!(time >= 0.0)) throw std::invalid_argument("CalendarQueue: negative or NaN time");
    insert(Entry{time, seq, std::move(payload)});
    ++count_;
    if (count_ > stats_.peak_size) stats_.peak_size = count_;
    if (count_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      resize(2 * buckets_.size());
    }
  }

  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Payload payload;

    [[nodiscard]] bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  static constexpr std::size_t kMinBuckets = 16;   // always a power of two
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  void init(std::size_t nbuckets, double width) {
    buckets_.assign(nbuckets, {});
    mask_ = nbuckets - 1;
    width_ = width;
    cursor_ = 0;
    cursor_top_ = width_;
    last_time_ = 0.0;
    have_min_ = false;
  }

  /// Virtual bucket index of a timestamp: which width-wide slice it lives
  /// in.  Doubles far beyond any simulation horizon saturate safely.
  [[nodiscard]] std::uint64_t virtual_bucket(double time) const {
    const double vb = time / width_;
    if (vb >= 9.0e18) return std::uint64_t{9000000000000000000u};
    return static_cast<std::uint64_t>(vb);
  }

  /// Upper edge of the calendar-year window containing `time`.
  [[nodiscard]] double bucket_top_of(double time) const {
    return static_cast<double>(virtual_bucket(time) + 1) * width_;
  }

  void insert(Entry entry) {
    const double time = entry.time;
    const std::size_t bi = virtual_bucket(time) & mask_;
    std::vector<Entry>& bucket = buckets_[bi];
    // Buckets are sorted descending by (time, seq): back() is the earliest.
    // Typical buckets hold O(1) entries, so the scan from the back is O(1).
    auto pos = bucket.end();
    while (pos != bucket.begin() && (pos - 1)->before(entry)) --pos;
    bucket.insert(pos, std::move(entry));
    if (time < last_time_) {
      // Rewind: the scan position has moved past this event's slice.
      last_time_ = time;
      cursor_ = bi;
      cursor_top_ = bucket_top_of(time);
      have_min_ = false;
    } else if (have_min_ && bi != min_bucket_ &&
               bucket.back().before(buckets_[min_bucket_].back())) {
      // The new entry displaced the cached global minimum.
      min_bucket_ = bi;
    }
  }

  /// Finds the bucket holding the global minimum entry and caches it in
  /// min_bucket_.  One lap of the calendar from the cursor; falls back to a
  /// direct min scan when the lap finds nothing (sparse far-future events).
  void locate_min() const {
    if (have_min_) return;
    std::size_t i = cursor_;
    double top = cursor_top_;
    for (std::size_t step = 0; step <= mask_; ++step) {
      const std::vector<Entry>& bucket = buckets_[i];
      if (!bucket.empty() && bucket.back().time < top) {
        min_bucket_ = i;
        have_min_ = true;
        return;
      }
      i = (i + 1) & mask_;
      top += width_;
    }
    // Direct search: earliest entry across all non-empty buckets.
    const Entry* best = nullptr;
    std::size_t best_bucket = 0;
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
      if (buckets_[k].empty()) continue;
      const Entry& candidate = buckets_[k].back();
      if (best == nullptr || candidate.before(*best)) {
        best = &candidate;
        best_bucket = k;
      }
    }
    min_bucket_ = best_bucket;
    have_min_ = true;
  }

  /// Rebuilds the calendar with `nbuckets` buckets and a width matched to
  /// the current event population (mean gap between adjacent events, times
  /// two -- Brown's rule keeps bucket occupancy near one).
  void resize(std::size_t nbuckets) {
    ++stats_.resizes;
    std::vector<std::vector<Entry>> old = std::move(buckets_);
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (const std::vector<Entry>& b : old) {
      for (const Entry& e : b) {
        if (first) {
          lo = hi = e.time;
          first = false;
        } else {
          lo = std::min(lo, e.time);
          hi = std::max(hi, e.time);
        }
      }
    }
    double width = 1.0;
    if (count_ > 1 && hi > lo) {
      width = 2.0 * (hi - lo) / static_cast<double>(count_);
    }
    if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;
    const double resume_from = count_ > 0 ? lo : last_time_;
    init(nbuckets, width);
    for (std::vector<Entry>& b : old) {
      for (Entry& e : b) insert(std::move(e));
    }
    // Resume scanning at the earliest surviving event's slice.
    last_time_ = resume_from;
    cursor_ = virtual_bucket(resume_from) & mask_;
    cursor_top_ = bucket_top_of(resume_from);
    have_min_ = false;
  }

  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_{0};
  double width_{1.0};
  std::size_t count_{0};
  std::uint64_t next_seq_{0};
  QueueStats stats_;

  // Scan state: the calendar position dequeues resume from.
  double last_time_{0.0};
  std::size_t cursor_{0};
  double cursor_top_{1.0};

  // Cached location of the global minimum (valid while have_min_).
  mutable bool have_min_{false};
  mutable std::size_t min_bucket_{0};
};

}  // namespace altroute::sim
