#include "sim/batch_means.hpp"

#include <stdexcept>

#include "sim/stats.hpp"

namespace altroute::sim {

BatchMeansResult batch_means(const std::vector<double>& observations, std::size_t batches) {
  if (batches < 2) throw std::invalid_argument("batch_means: need at least 2 batches");
  const std::size_t batch_size = observations.size() / batches;
  if (batch_size == 0) throw std::invalid_argument("batch_means: not enough observations");

  std::vector<double> means(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) {
      sum += observations[b * batch_size + i];
    }
    means[b] = sum / static_cast<double>(batch_size);
  }

  RunningStats stats;
  for (const double m : means) stats.add(m);

  BatchMeansResult result;
  result.batches = batches;
  result.mean = stats.mean();
  result.ci95_halfwidth = stats.ci95_halfwidth();

  // Lag-1 autocorrelation of the batch-mean series.
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    const double d = means[b] - result.mean;
    denominator += d * d;
    if (b + 1 < batches) {
      numerator += d * (means[b + 1] - result.mean);
    }
  }
  result.lag1_autocorrelation = denominator > 0.0 ? numerator / denominator : 0.0;
  return result;
}

}  // namespace altroute::sim
