// The hook object the simulation engines drive.
//
// A Probe bundles an optional MetricRegistry and an optional TraceSink and
// exposes one method per instrumentable simulation event.  The engines
// store `obs::Probe*` in their options structs with nullptr meaning "off":
// every hook site is
//
//     if (probe != nullptr) probe->on_admitted(...);
//
// -- a single never-taken branch per event when observability is disabled,
// which is the whole of the disabled-path cost.  For builds that must not
// carry even that branch, defining ALTROUTE_OBS_ENABLED=0 compiles the
// hook sites out entirely (the obs library itself still builds).
//
// bind() pre-registers every instrument and sizes the per-link storage, so
// the hooks never allocate.  One Probe instruments one replication; sweep
// harnesses create a fresh (registry, sink, probe) triple per replication
// and merge the results in slot order (see study/experiment.hpp).
#pragma once

#include <cstddef>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/path.hpp"

#ifndef ALTROUTE_OBS_ENABLED
#define ALTROUTE_OBS_ENABLED 1
#endif

#if ALTROUTE_OBS_ENABLED
/// Hook-site helper: expands to a guarded probe call, or to nothing when
/// observability is compiled out.
#define ALTROUTE_OBS_HOOK(probe_ptr, call) \
  do {                                     \
    if ((probe_ptr) != nullptr) (probe_ptr)->call; \
  } while (0)
#else
#define ALTROUTE_OBS_HOOK(probe_ptr, call) \
  do {                                     \
  } while (0)
#endif

namespace altroute::obs {

class Probe {
 public:
  /// Disabled probe: no registry, no sink.  Engines never see this --
  /// "off" is a null Probe pointer -- but it makes Probe default-
  /// constructible for containers.
  Probe() = default;

  /// Either pointer may be null (metrics-only / trace-only probes).  The
  /// probe does not own them; they must outlive the run.
  Probe(MetricRegistry* metrics, TraceSink* sink) : metrics_(metrics), sink_(sink) {}

  [[nodiscard]] MetricRegistry* metrics() const { return metrics_; }
  [[nodiscard]] TraceSink* sink() const { return sink_; }

  /// Registers every instrument and sizes per-link families.  Engines call
  /// it once at run start; the occupancy grid (if any) must be configured
  /// first via grid().
  void bind(std::size_t link_count);

  /// Registers the adaptive-control instruments (epoch/retarget/hold
  /// counters and the estimator-error gauge).  Separate from bind() on
  /// purpose: runs without control keep the exact metric schema they had
  /// before the control plane existed, so goldens and merge compatibility
  /// are untouched.  Call after bind(), only when control is enabled.
  void bind_control();

  /// Configures the registry's per-link occupancy sampling grid: `samples`
  /// points t0 + i*dt.  Call before the run (before bind is fine).
  void grid(double t0, double dt, int samples);

  // --- hot-path hooks -----------------------------------------------------

  /// A measured call request arrived (counted whether admitted or not).
  void on_offered(double t, int src, int dst, int units);

  /// A measured call was admitted on `path`.  `protected_band_links` is
  /// the number of links of the path on which an ALTERNATE-class admission
  /// landed inside the reserved band occupancy > C - r (always 0 for a
  /// correct protected policy; counted so tests can assert exactly that).
  /// `hold` is the call's holding time; the trace record carries it along
  /// with the booked link ids so the analysis layer can reconstruct
  /// per-link occupancy and the O-D x link attribution matrix offline.
  /// `occupancy_after` is the post-booking occupancy of each path link in
  /// path order (the admission state s the Theorem-1 audit charges); it is
  /// moved into the trace record and may be empty when the caller cannot
  /// supply it.
  void on_admitted(double t, int src, int dst, const routing::Path& path, bool alternate,
                   int units, int protected_band_links, double hold,
                   std::vector<int> occupancy_after = {});

  /// A measured call was blocked; `first_blocking_link` is the directed
  /// link index the loss is attributed to (-1 when unattributable) and
  /// `alt_occupancy` the alternate-class circuits held on that link at the
  /// block instant (0 when unattributable) -- the Theorem-1 audit counts a
  /// primary loss at a link currently carrying alternates as attributable
  /// to alternate routing.
  void on_blocked(double t, int src, int dst, int first_blocking_link, int units,
                  int alt_occupancy);

  /// An alternate path of the (src, dst) call was shut out purely by state
  /// protection at `link` (the link had free circuits for a primary, but
  /// refused the alternate class).  Counted per blocked call and per
  /// refusing alternate, and traced with the O-D pair for attribution.
  void on_reserved_rejection(double t, int src, int dst, int link);

  /// An in-flight call was preempted by a capacity shrink at `link`.
  void on_preempted(double t, const routing::Path& path, int link, int units);

  /// An in-flight call was killed by a facility failure; `link` is the
  /// failed directed link the call's path used.
  void on_killed(double t, const routing::Path& path, int link, int units);

  /// A scenario event was applied.
  void on_event_applied(double t, std::string_view kind_name, int links_changed,
                        long long calls_killed);

  /// Protection levels were re-solved for `links` links.
  void on_protection_resolved(double t, int links);

  /// A control epoch fired (epoch index `epoch_index`, 1-based).
  /// `reservation` is the per-link protection vector now in force,
  /// `capacity` and `lambda_eff` the inputs the Eq.-15 re-solve used, and
  /// `est_abs_error` the sum over links of |estimated - true| offered load
  /// when the caller can supply the truth (0 otherwise; accumulated into
  /// the control_est_error gauge, divide by control_epochs for the mean).
  /// Requires bind_control().
  void on_control_epoch(double t, long long epoch_index, int links_changed, int links_held,
                        const std::vector<int>& reservation,
                        const std::vector<int>& capacity,
                        const std::vector<double>& lambda_eff, double est_abs_error);

  /// Samples per-link occupancy for every grid point strictly before `t`.
  /// `occ(k)` must return link k's current occupancy.  Call with the
  /// timestamp of each timeline item BEFORE applying its state change, and
  /// finish with t = +infinity; grid point g then holds the occupancy
  /// after every item with time <= g, deterministically.
  template <class OccupancyFn>
  void sample_occupancy_to(double t, OccupancyFn&& occ) {
    if (metrics_ == nullptr) return;
    const int samples = metrics_->occupancy_samples();
    while (grid_next_ < samples &&
           metrics_->occupancy_grid_t0() + grid_next_ * metrics_->occupancy_grid_dt() < t) {
      const auto s = static_cast<std::size_t>(grid_next_);
      for (std::size_t k = 0; k < links_; ++k) {
        metrics_->record_occupancy(s, k, occ(k));
      }
      ++grid_next_;
    }
  }

  /// Convenience: flush every remaining grid point (end of run).
  template <class OccupancyFn>
  void finish_sampling(OccupancyFn&& occ) {
    sample_occupancy_to(std::numeric_limits<double>::infinity(), occ);
  }

  /// Checkpoint support: the index of the next unfilled occupancy-grid
  /// point.  Restored together with the registry's accumulated values so a
  /// resumed run samples exactly the remaining grid points.
  [[nodiscard]] int grid_cursor() const { return grid_next_; }
  void set_grid_cursor(int next) { grid_next_ = next; }

 private:
  void trace(const TraceRecord& record) {
    if (sink_ != nullptr && sink_->wants(record.kind)) sink_->write(record);
  }

  MetricRegistry* metrics_{nullptr};
  TraceSink* sink_{nullptr};
  std::size_t links_{0};
  int grid_next_{0};

  // Cached instrument ids (valid after bind()).
  MetricId offered_{0};
  MetricId blocked_{0};
  MetricId admitted_primary_{0};
  MetricId admitted_alternate_{0};
  MetricId preempted_{0};
  MetricId killed_{0};
  MetricId events_applied_{0};
  MetricId protection_resolves_{0};
  MetricId protected_band_admits_{0};
  MetricId carried_hops_{0};
  MetricId link_alternate_admits_{0};
  MetricId link_reserved_rejections_{0};
  MetricId link_preemptions_{0};
  MetricId link_kills_{0};
  // Control-plane instruments (valid after bind_control()).
  MetricId control_epochs_{0};
  MetricId control_retargets_{0};
  MetricId control_holds_{0};
  MetricId control_est_error_{0};
};

}  // namespace altroute::obs
