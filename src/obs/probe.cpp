#include "obs/probe.hpp"

#include <cstdio>

namespace altroute::obs {

namespace {

// Round-trip-exact CSV of the effective lambda vector.  "%.17g" (not the
// sinks' display-grade "%.9g") because the checker re-derives r* from this
// string: any rounding would make the epoch-purity re-solve diverge.
std::string lambda_csv(const std::vector<double>& lambda) {
  std::string out;
  char buffer[40];
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    if (k != 0) out += ',';
    std::snprintf(buffer, sizeof buffer, "%.17g", lambda[k]);
    out += buffer;
  }
  return out;
}

}  // namespace

void Probe::bind(std::size_t link_count) {
  links_ = link_count;
  grid_next_ = 0;
  if (metrics_ == nullptr) return;
  metrics_->set_link_count(link_count);
  offered_ = metrics_->counter("calls_offered");
  blocked_ = metrics_->counter("calls_blocked");
  admitted_primary_ = metrics_->counter("calls_admitted_primary");
  admitted_alternate_ = metrics_->counter("calls_admitted_alternate");
  preempted_ = metrics_->counter("calls_preempted");
  killed_ = metrics_->counter("calls_killed_failure");
  events_applied_ = metrics_->counter("events_applied");
  protection_resolves_ = metrics_->counter("protection_resolves");
  protected_band_admits_ = metrics_->counter("protected_band_alternate_admits");
  carried_hops_ = metrics_->histogram("carried_hops", {1, 2, 3, 4, 5, 6, 8, 12});
  link_alternate_admits_ = metrics_->link_counter("alternate_admits");
  link_reserved_rejections_ = metrics_->link_counter("reserved_rejections");
  link_preemptions_ = metrics_->link_counter("preemptions");
  link_kills_ = metrics_->link_counter("kills_on_failure");
}

void Probe::bind_control() {
  if (metrics_ == nullptr) return;
  control_epochs_ = metrics_->counter("control_epochs");
  control_retargets_ = metrics_->counter("control_retargets");
  control_holds_ = metrics_->counter("control_holds");
  control_est_error_ = metrics_->gauge("control_est_error");
}

void Probe::grid(double t0, double dt, int samples) {
  if (metrics_ != nullptr) metrics_->set_occupancy_grid(t0, dt, samples);
}

// Offered calls are counted but not traced on their own -- the admission
// or block record carries the request.
void Probe::on_offered(double t, int src, int dst, int units) {
  (void)t;
  (void)src;
  (void)dst;
  (void)units;
  if (metrics_ != nullptr) metrics_->add(offered_);
}

void Probe::on_admitted(double t, int src, int dst, const routing::Path& path, bool alternate,
                        int units, int protected_band_links, double hold,
                        std::vector<int> occupancy_after) {
  if (metrics_ != nullptr) {
    metrics_->add(alternate ? admitted_alternate_ : admitted_primary_);
    metrics_->observe(carried_hops_, static_cast<double>(path.hops()));
    if (protected_band_links > 0) metrics_->add(protected_band_admits_, protected_band_links);
    if (alternate) {
      for (const net::LinkId id : path.links) {
        metrics_->add_link(link_alternate_admits_, id.index());
      }
    }
  }
  // The admitted record carries the booked links and allocates for them, so
  // it is only built when a sink actually wants the kind.
  if (sink_ != nullptr && sink_->wants(TraceKind::kCallAdmitted)) {
    TraceRecord r;
    r.time = t;
    r.kind = TraceKind::kCallAdmitted;
    r.src = src;
    r.dst = dst;
    r.hops = path.hops();
    r.units = units;
    r.alternate = alternate;
    r.hold = hold;
    r.links.reserve(path.links.size());
    for (const net::LinkId id : path.links) r.links.push_back(static_cast<int>(id.index()));
    r.occ = std::move(occupancy_after);
    sink_->write(r);
  }
}

void Probe::on_blocked(double t, int src, int dst, int first_blocking_link, int units,
                       int alt_occupancy) {
  if (metrics_ != nullptr) metrics_->add(blocked_);
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kCallBlocked;
  r.src = src;
  r.dst = dst;
  r.link = first_blocking_link;
  r.units = units;
  r.alt_occupancy = first_blocking_link >= 0 ? alt_occupancy : 0;
  trace(r);
}

void Probe::on_reserved_rejection(double t, int src, int dst, int link) {
  if (metrics_ != nullptr) {
    metrics_->add_link(link_reserved_rejections_, static_cast<std::size_t>(link));
  }
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kReservedRejection;
  r.src = src;
  r.dst = dst;
  r.link = link;
  trace(r);
}

void Probe::on_preempted(double t, const routing::Path& path, int link, int units) {
  if (metrics_ != nullptr) {
    metrics_->add(preempted_);
    metrics_->add_link(link_preemptions_, static_cast<std::size_t>(link));
  }
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kCallPreempted;
  r.link = link;
  r.hops = path.hops();
  r.units = units;
  trace(r);
}

void Probe::on_killed(double t, const routing::Path& path, int link, int units) {
  if (metrics_ != nullptr) {
    metrics_->add(killed_);
    metrics_->add_link(link_kills_, static_cast<std::size_t>(link));
  }
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kCallKilled;
  r.link = link;
  r.hops = path.hops();
  r.units = units;
  trace(r);
}

void Probe::on_event_applied(double t, std::string_view kind_name, int links_changed,
                             long long calls_killed) {
  if (metrics_ != nullptr) metrics_->add(events_applied_);
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kEventApplied;
  r.detail = kind_name;
  r.links_changed = links_changed;
  r.count = calls_killed;
  trace(r);
}

void Probe::on_protection_resolved(double t, int links) {
  if (metrics_ != nullptr) metrics_->add(protection_resolves_);
  TraceRecord r;
  r.time = t;
  r.kind = TraceKind::kProtectionResolved;
  r.links_changed = links;
  trace(r);
}

void Probe::on_control_epoch(double t, long long epoch_index, int links_changed,
                             int links_held, const std::vector<int>& reservation,
                             const std::vector<int>& capacity,
                             const std::vector<double>& lambda_eff, double est_abs_error) {
  if (metrics_ != nullptr) {
    metrics_->add(control_epochs_);
    if (links_changed > 0) metrics_->add(control_retargets_, links_changed);
    if (links_held > 0) metrics_->add(control_holds_, links_held);
    metrics_->add_gauge(control_est_error_, est_abs_error);
  }
  // The epoch record carries three vectors and allocates for them, so it
  // is only built when a sink actually wants the kind.
  if (sink_ != nullptr && sink_->wants(TraceKind::kControlEpoch)) {
    TraceRecord r;
    r.time = t;
    r.kind = TraceKind::kControlEpoch;
    r.count = epoch_index;
    r.links_changed = links_changed;
    r.links = reservation;
    r.occ = capacity;
    r.detail = lambda_csv(lambda_eff);
    sink_->write(r);
  }
}

}  // namespace altroute::obs
