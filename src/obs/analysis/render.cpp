#include "obs/analysis/render.hpp"

#include <cstdio>
#include <string>

namespace altroute::obs::analysis {

namespace {

std::string num(double value, const char* format = "%.6g") {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

std::string json_num(double value) { return num(value, "%.17g"); }

std::string pad(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string pair_name(int src, int dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

const char* verdict_name(LinkAudit::Verdict verdict) {
  switch (verdict) {
    case LinkAudit::Verdict::kPass:
      return "pass";
    case LinkAudit::Verdict::kViolation:
      return "VIOLATION";
    case LinkAudit::Verdict::kNotApplicable:
      return "n/a";
  }
  return "?";
}

void render_section_table(const AnalysisReport& report, const AnalysisSection& s,
                          std::string& out) {
  out += "== " + s.policy + " @ load " + num(s.load_factor) + " (" +
         std::to_string(s.replications) + " replications) ==\n";

  out += "-- metrics (mean +- 95% CI over replications) --\n";
  out += pad("metric", 20) + pad("mean", 14) + pad("stderr", 14) + "ci95\n";
  for (const MetricStat& m : s.metrics) {
    out += pad(m.name, 20) + pad(num(m.mean), 14) + pad(num(m.stderr_mean), 14) +
           num(m.ci95) + "\n";
  }

  out += "-- theorem-1 audit: L-hat^k vs B(L,C)/B(L,C-r*), H=" +
         std::to_string(report.max_alt_hops) + " --\n";
  out += pad("link", 6) + pad("lambda", 10) + pad("cap", 5) + pad("r*", 4) +
         pad("bound", 12) + pad("alt_adm", 9) + pad("attr_loss", 11) + pad("Lhat_mean", 12) +
         pad("ci95", 12) + "verdict\n";
  for (const LinkAudit& a : s.links) {
    if (a.verdict == LinkAudit::Verdict::kNotApplicable) continue;
    out += pad(std::to_string(a.link), 6) + pad(num(a.lambda, "%.4g"), 10) +
           pad(std::to_string(a.capacity), 5) + pad(std::to_string(a.eq15_reservation), 4) +
           pad(num(a.bound, "%.4g"), 12) + pad(std::to_string(a.alternate_admissions), 9) +
           pad(std::to_string(a.attributed_losses), 11) + pad(num(a.l_mean, "%.4g"), 12) +
           pad(num(a.l_ci95, "%.4g"), 12) + verdict_name(a.verdict) + "\n";
  }
  out += "audited " + std::to_string(s.audited) + "/" + std::to_string(s.links.size()) +
         " links: " + std::to_string(s.violations) + " violation(s)\n";

  out += "-- attribution: top pairs by blocked (of " + std::to_string(s.pairs.size()) +
         " active) --\n";
  out += pad("pair", 8) + pad("carried_p", 11) + pad("carried_a", 11) + pad("blocked", 9) +
         "resv_rej\n";
  std::size_t rows = 0;
  for (const PairStats& p : s.pairs) {
    if (static_cast<int>(rows++) >= report.top_pairs) break;
    out += pad(pair_name(p.src, p.dst), 8) + pad(std::to_string(p.carried_primary), 11) +
           pad(std::to_string(p.carried_alternate), 11) + pad(std::to_string(p.blocked), 9) +
           std::to_string(p.reserved_rejections) + "\n";
  }

  out += "-- attribution: top (pair, link) alternate-riding cells (of " +
         std::to_string(s.cells.size()) + ") --\n";
  out += pad("pair", 8) + pad("link", 6) + pad("alt_carried", 13) + "blocked_at\n";
  rows = 0;
  for (const PairLinkCell& c : s.cells) {
    if (static_cast<int>(rows++) >= report.top_cells) break;
    out += pad(pair_name(c.src, c.dst), 8) + pad(std::to_string(c.link), 6) +
           pad(std::to_string(c.alternate_carried), 13) + std::to_string(c.blocked_at) + "\n";
  }

  if (!s.control_links.empty()) {
    out += "-- control plane: estimated vs nominal Lambda (last epoch per replication; " +
           std::to_string(s.control_epochs) + " epoch(s), " +
           std::to_string(s.control_retargets) + " retarget(s)) --\n";
    out += pad("link", 6) + pad("lambda", 10) + pad("est_mean", 12) + pad("ci95", 12) +
           pad("abs_err", 12) + "r_final\n";
    for (const ControlLinkAudit& a : s.control_links) {
      out += pad(std::to_string(a.link), 6) + pad(num(a.lambda_true, "%.4g"), 10) +
             pad(num(a.est_mean, "%.4g"), 12) + pad(num(a.est_ci95, "%.4g"), 12) +
             pad(num(a.abs_error, "%.4g"), 12) + num(a.final_r_mean, "%.4g") + "\n";
    }
  }

  if (!s.bin_time.empty()) {
    out += "-- booked occupancy per bin (mean circuits; batch-means lag1=" +
           num(s.stationarity.lag1_autocorrelation, "%.3g") +
           (s.stationary ? ", stationary" : ", NONSTATIONARY") + ") --\n";
    for (std::size_t b = 0; b < s.bin_time.size(); ++b) {
      out += "t=" + pad(num(s.bin_time[b], "%.6g"), 10) + num(s.bin_occupancy[b], "%.6g") +
             "\n";
    }
  }
}

void render_section_json(const AnalysisSection& s, std::string& out) {
  out += "{\"policy\":\"" + s.policy + "\",\"policy_slot\":" +
         std::to_string(s.policy_slot) + ",\"load_factor\":" + json_num(s.load_factor) +
         ",\"replications\":" + std::to_string(s.replications);

  out += ",\"metrics\":{";
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    const MetricStat& m = s.metrics[i];
    if (i != 0) out += ',';
    out += "\"" + m.name + "\":{\"n\":" + std::to_string(m.replications) +
           ",\"mean\":" + json_num(m.mean) + ",\"stderr\":" + json_num(m.stderr_mean) +
           ",\"ci95\":" + json_num(m.ci95) + "}";
  }
  out += "}";

  out += ",\"theorem1\":{\"audited\":" + std::to_string(s.audited) +
         ",\"violations\":" + std::to_string(s.violations) + ",\"links\":[";
  bool first = true;
  for (const LinkAudit& a : s.links) {
    if (a.verdict == LinkAudit::Verdict::kNotApplicable) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"link\":" + std::to_string(a.link) + ",\"lambda\":" + json_num(a.lambda) +
           ",\"capacity\":" + std::to_string(a.capacity) +
           ",\"r\":" + std::to_string(a.eq15_reservation) +
           ",\"bound\":" + json_num(a.bound) +
           ",\"alt_admissions\":" + std::to_string(a.alternate_admissions) +
           ",\"attributed_losses\":" + std::to_string(a.attributed_losses) +
           ",\"l_pooled\":" + json_num(a.l_pooled) + ",\"l_mean\":" + json_num(a.l_mean) +
           ",\"l_ci95\":" + json_num(a.l_ci95) + ",\"samples\":" +
           std::to_string(a.samples) + ",\"verdict\":\"" + verdict_name(a.verdict) + "\"}";
  }
  out += "]}";

  out += ",\"control\":{\"epochs\":" + std::to_string(s.control_epochs) +
         ",\"retargets\":" + std::to_string(s.control_retargets) + ",\"links\":[";
  for (std::size_t i = 0; i < s.control_links.size(); ++i) {
    const ControlLinkAudit& a = s.control_links[i];
    if (i != 0) out += ',';
    out += "{\"link\":" + std::to_string(a.link) +
           ",\"lambda_true\":" + json_num(a.lambda_true) +
           ",\"est_mean\":" + json_num(a.est_mean) +
           ",\"est_stderr\":" + json_num(a.est_stderr) +
           ",\"est_ci95\":" + json_num(a.est_ci95) +
           ",\"abs_error\":" + json_num(a.abs_error) +
           ",\"final_r_mean\":" + json_num(a.final_r_mean) +
           ",\"samples\":" + std::to_string(a.samples) + "}";
  }
  out += "]}";

  out += ",\"pairs\":[";
  for (std::size_t i = 0; i < s.pairs.size(); ++i) {
    const PairStats& p = s.pairs[i];
    if (i != 0) out += ',';
    out += "{\"src\":" + std::to_string(p.src) + ",\"dst\":" + std::to_string(p.dst) +
           ",\"carried_primary\":" + std::to_string(p.carried_primary) +
           ",\"carried_alternate\":" + std::to_string(p.carried_alternate) +
           ",\"blocked\":" + std::to_string(p.blocked) +
           ",\"reserved_rejections\":" + std::to_string(p.reserved_rejections) + "}";
  }
  out += "]";

  out += ",\"cells\":[";
  for (std::size_t i = 0; i < s.cells.size(); ++i) {
    const PairLinkCell& c = s.cells[i];
    if (i != 0) out += ',';
    out += "{\"src\":" + std::to_string(c.src) + ",\"dst\":" + std::to_string(c.dst) +
           ",\"link\":" + std::to_string(c.link) +
           ",\"alternate_carried\":" + std::to_string(c.alternate_carried) +
           ",\"blocked_at\":" + std::to_string(c.blocked_at) + "}";
  }
  out += "]";

  out += ",\"occupancy\":{\"bin_time\":[";
  for (std::size_t b = 0; b < s.bin_time.size(); ++b) {
    if (b != 0) out += ',';
    out += json_num(s.bin_time[b]);
  }
  out += "],\"mean_booked\":[";
  for (std::size_t b = 0; b < s.bin_occupancy.size(); ++b) {
    if (b != 0) out += ',';
    out += json_num(s.bin_occupancy[b]);
  }
  out += "],\"batch_means\":{\"batches\":" + std::to_string(s.stationarity.batches) +
         ",\"mean\":" + json_num(s.stationarity.mean) +
         ",\"ci95\":" + json_num(s.stationarity.ci95_halfwidth) +
         ",\"lag1\":" + json_num(s.stationarity.lag1_autocorrelation) +
         ",\"stationary\":" + (s.stationary ? "true" : "false") + "}}";

  out += "}";
}

}  // namespace

std::string analysis_table(const AnalysisReport& report) {
  std::string out;
  out += "analysis: " + std::to_string(report.records) + " trace records, " +
         std::to_string(report.sections.size()) + " section(s), theorem-1 " +
         (report.theorem1_ok() ? "OK" : "VIOLATED") + "\n";
  for (const AnalysisSection& s : report.sections) {
    out += "\n";
    render_section_table(report, s, out);
  }
  return out;
}

std::string analysis_json(const AnalysisReport& report) {
  std::string out = "{\"records\":" + std::to_string(report.records) +
                    ",\"max_alt_hops\":" + std::to_string(report.max_alt_hops) +
                    ",\"theorem1_ok\":" + (report.theorem1_ok() ? "true" : "false") +
                    ",\"sections\":[";
  for (std::size_t i = 0; i < report.sections.size(); ++i) {
    if (i != 0) out += ',';
    render_section_json(report.sections[i], out);
  }
  out += "]}";
  return out;
}

}  // namespace altroute::obs::analysis
