#include "obs/analysis/trace_read.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

namespace altroute::obs::analysis {

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw std::invalid_argument("parse_trace_line: " + why + " in '" + std::string(line) + "'");
}

/// Cursor over one line; the methods consume exactly the writer's grammar.
struct Scanner {
  std::string_view line;
  std::size_t pos{0};

  [[nodiscard]] char peek() const { return pos < line.size() ? line[pos] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(line, std::string("expected '") + c + "'");
    ++pos;
  }

  [[nodiscard]] bool consume(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  [[nodiscard]] std::string_view string_value() {
    expect('"');
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != '"') ++pos;
    if (pos == line.size()) fail(line, "unterminated string");
    return line.substr(start, pos++ - start);
  }

  [[nodiscard]] double number_value() {
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(line.data() + pos, line.data() + line.size(), value);
    if (ec != std::errc()) fail(line, "malformed number");
    pos = static_cast<std::size_t>(end - line.data());
    return value;
  }

  [[nodiscard]] std::vector<int> array_value() {
    expect('[');
    std::vector<int> out;
    if (!consume(']')) {
      do {
        out.push_back(static_cast<int>(number_value()));
      } while (consume(','));
      expect(']');
    }
    return out;
  }
};

TraceKind kind_from_name(std::string_view name, std::string_view line) {
  for (const TraceKind kind : all_trace_kinds()) {
    if (name == trace_kind_name(kind)) return kind;
  }
  fail(line, "unknown kind '" + std::string(name) + "' (known: " + trace_kind_list() + ")");
}

}  // namespace

TraceRecord parse_trace_line(std::string_view line) {
  Scanner s{line};
  TraceRecord r;
  bool saw_kind = false;
  s.expect('{');
  if (!s.consume('}')) {
    do {
      const std::string_view key = s.string_value();
      s.expect(':');
      if (key == "kind") {
        r.kind = kind_from_name(s.string_value(), line);
        saw_kind = true;
      } else if (key == "class") {
        r.alternate = s.string_value() == "alternate";
      } else if (key == "event") {
        r.detail = std::string(s.string_value());
      } else if (key == "links") {
        // Type disambiguates the key: the admitted record's booked-path
        // array vs. protection_resolved's links-touched count.
        if (s.peek() == '[') {
          r.links = s.array_value();
        } else {
          r.links_changed = static_cast<int>(s.number_value());
        }
      } else if (key == "occ") {
        r.occ = s.array_value();
      } else if (key == "t") {
        r.time = s.number_value();
      } else if (key == "hold") {
        r.hold = s.number_value();
      } else if (key == "rep") {
        r.replication = static_cast<int>(s.number_value());
      } else if (key == "policy") {
        r.policy = static_cast<int>(s.number_value());
      } else if (key == "src") {
        r.src = static_cast<int>(s.number_value());
      } else if (key == "dst") {
        r.dst = static_cast<int>(s.number_value());
      } else if (key == "hops") {
        r.hops = static_cast<int>(s.number_value());
      } else if (key == "units") {
        r.units = static_cast<int>(s.number_value());
      } else if (key == "link") {
        r.link = static_cast<int>(s.number_value());
      } else if (key == "alt_occ") {
        r.alt_occupancy = static_cast<int>(s.number_value());
      } else if (key == "links_changed") {
        r.links_changed = static_cast<int>(s.number_value());
      } else if (key == "killed") {
        r.count = static_cast<long long>(s.number_value());
      } else if (key == "epoch") {
        r.count = static_cast<long long>(s.number_value());
      } else if (key == "r") {
        r.links = s.array_value();
      } else if (key == "cap") {
        r.occ = s.array_value();
      } else if (key == "lam") {
        r.detail = std::string(s.string_value());
      } else {
        fail(line, "unknown key '" + std::string(key) + "'");
      }
    } while (s.consume(','));
    s.expect('}');
  }
  if (s.pos != line.size()) fail(line, "trailing characters");
  if (!saw_kind) fail(line, "missing kind");
  return r;
}

std::vector<TraceRecord> parse_trace(std::string_view jsonl) {
  std::vector<TraceRecord> out;
  std::size_t start = 0;
  while (start <= jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(start, end - start);
    if (!line.empty()) out.push_back(parse_trace_line(line));
    if (end == jsonl.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace altroute::obs::analysis
