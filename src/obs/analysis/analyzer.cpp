#include "obs/analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "erlang/erlang_b.hpp"
#include "erlang/memo.hpp"
#include "erlang/state_protection.hpp"
#include "obs/analysis/trace_read.hpp"
#include "sim/stats.hpp"

namespace altroute::obs::analysis {

namespace {

/// Everything accumulated for one replication of one (policy, point).
struct RepAccum {
  long long admitted_primary{0};
  long long admitted_alternate{0};
  long long blocked{0};
  long long reserved_rejections{0};
  std::vector<long long> link_alt_admissions;
  std::vector<long long> link_attributed_losses;
  /// Sum over the replication's alternate admissions riding link k of the
  /// Eq. 4-6 kernel charge B(Lambda,C)/B(Lambda,s) at the recorded
  /// admission state s.
  std::vector<double> link_kernel;
  std::vector<double> bin_occupancy;
  /// Adaptive control plane: epoch count and the latest epoch's estimated
  /// per-link loads / installed reservations (kControlEpoch records).
  long long control_epochs{0};
  long long control_retargets{0};
  std::vector<double> control_last_lambda;
  std::vector<int> control_last_r;
};

/// Parses the kControlEpoch detail payload: per-link estimated loads as a
/// %.17g CSV (bit-exact round trip; see obs::Probe::on_control_epoch).
std::vector<double> parse_control_lambda(const std::string& csv) {
  std::vector<double> out;
  const char* p = csv.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    out.push_back(std::strtod(p, &end));
    if (end == p) {
      throw std::invalid_argument("analyze: malformed control epoch lambda payload '" +
                                  csv + "'");
    }
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

/// Kernel table for one (load point, link): entry s in [0, C] is the
/// expected extra primary losses caused by occupying one more circuit when
/// the link reaches occupancy s, B(Lambda, C) / B(Lambda, s) -- the
/// Theorem-1 proof quantity (Eqs. 4-6).  Monotone decreasing in free
/// circuits: s = C charges 1, s = C - r* charges exactly the Eq.-15 bound.
std::vector<double> build_kernel(double lambda, int capacity) {
  std::vector<double> kernel(static_cast<std::size_t>(capacity) + 1, 0.0);
  if (!(lambda > 0.0) || capacity < 1) return kernel;
  // One inverse Erlang-B sequence yields every B(Lambda, s) at once --
  // O(C) against the O(C^2) of calling erlang_b per state, and
  // bit-identical (the reciprocals come from the same recursion).
  erlang::LinkErlangMemo memo;
  memo.configure(lambda, capacity);
  return memo.kernel();
}

/// One (policy, load point) group; ordered maps keep everything in
/// deterministic (replication / pair / cell) order.
struct GroupAccum {
  std::map<int, RepAccum> reps;
  std::map<std::pair<int, int>, PairStats> pairs;
  std::map<std::tuple<int, int, int>, PairLinkCell> cells;
};

void check_config(const AnalysisConfig& config) {
  if (config.link_count == 0) {
    throw std::invalid_argument("analyze: link_count must be > 0");
  }
  if (config.lambda.size() != config.link_count ||
      config.capacity.size() != config.link_count) {
    throw std::invalid_argument("analyze: lambda/capacity must have one entry per link");
  }
  if (config.load_factors.empty()) {
    throw std::invalid_argument("analyze: load_factors must be non-empty");
  }
  if (config.max_alt_hops < 1) throw std::invalid_argument("analyze: max_alt_hops < 1");
  if (config.replications_per_point < 0) {
    throw std::invalid_argument("analyze: replications_per_point < 0");
  }
  if (!(config.measure > 0.0)) throw std::invalid_argument("analyze: measure must be > 0");
}

void check_link(int link, const AnalysisConfig& config) {
  if (link < 0 || static_cast<std::size_t>(link) >= config.link_count) {
    throw std::invalid_argument("analyze: trace names link " + std::to_string(link) +
                                " outside the configured topology");
  }
}

MetricStat make_stat(std::string name, const sim::RunningStats& stats) {
  MetricStat out;
  out.name = std::move(name);
  out.replications = stats.count();
  out.mean = stats.mean();
  out.stderr_mean = stats.stderr_mean();
  out.ci95 = stats.ci95_halfwidth();
  return out;
}

}  // namespace

AnalysisReport analyze_records(const std::vector<TraceRecord>& records,
                               const AnalysisConfig& config) {
  check_config(config);
  const int bins = config.time_bins;
  const double bin_width = bins > 0 ? config.measure / bins : 0.0;
  const int rpp = config.replications_per_point;

  std::map<std::pair<int, int>, GroupAccum> groups;  // (policy slot, load point)

  // Per-(load point, link) kernel tables, built on first use.
  std::map<std::pair<int, std::size_t>, std::vector<double>> kernels;
  const auto kernel_charge = [&](int point, std::size_t k, int s) {
    auto [it, fresh] = kernels.try_emplace({point, k});
    if (fresh) {
      it->second =
          build_kernel(config.lambda[k] * config.load_factors[static_cast<std::size_t>(point)],
                       config.capacity[k]);
    }
    const int clamped = std::clamp(s, 1, config.capacity[k]);
    return it->second[static_cast<std::size_t>(clamped)];
  };

  for (const TraceRecord& r : records) {
    const int policy = std::max(r.policy, 0);
    const int rep = std::max(r.replication, 0);
    const int point = rpp > 0 ? rep / rpp : 0;
    if (static_cast<std::size_t>(point) >= config.load_factors.size()) {
      throw std::invalid_argument("analyze: replication " + std::to_string(rep) +
                                  " falls outside the configured load points");
    }
    GroupAccum& group = groups[{policy, point}];
    RepAccum& acc = group.reps[rep];
    if (acc.link_alt_admissions.empty()) {
      acc.link_alt_admissions.assign(config.link_count, 0);
      acc.link_attributed_losses.assign(config.link_count, 0);
      acc.link_kernel.assign(config.link_count, 0.0);
      if (bins > 0) acc.bin_occupancy.assign(static_cast<std::size_t>(bins), 0.0);
    }

    switch (r.kind) {
      case TraceKind::kCallAdmitted: {
        PairStats& pair = group.pairs[{r.src, r.dst}];
        pair.src = r.src;
        pair.dst = r.dst;
        if (r.alternate) {
          ++acc.admitted_alternate;
          ++pair.carried_alternate;
          for (std::size_t i = 0; i < r.links.size(); ++i) {
            const int link = r.links[i];
            check_link(link, config);
            const auto k = static_cast<std::size_t>(link);
            ++acc.link_alt_admissions[k];
            // Admission state s: post-booking occupancy from the record; a
            // trace without occ data is charged as if admitted at a full
            // link (the conservative worst case).
            const int s = i < r.occ.size() ? r.occ[i] : config.capacity[k];
            acc.link_kernel[k] += kernel_charge(point, k, s);
            PairLinkCell& cell = group.cells[{r.src, r.dst, link}];
            cell.src = r.src;
            cell.dst = r.dst;
            cell.link = link;
            ++cell.alternate_carried;
          }
        } else {
          ++acc.admitted_primary;
          ++pair.carried_primary;
        }
        // Booked occupancy: spread units over the bins the holding
        // interval [t, t + hold) overlaps (clipped to the window).
        if (bins > 0 && r.hold > 0.0) {
          const double t0 = r.time;
          const double t1 = r.time + r.hold;
          int b = std::max(0, static_cast<int>((t0 - config.warmup) / bin_width));
          for (; b < bins; ++b) {
            const double edge = config.warmup + b * bin_width;
            if (edge >= t1) break;
            const double overlap = std::min(t1, edge + bin_width) - std::max(t0, edge);
            if (overlap > 0.0) {
              acc.bin_occupancy[static_cast<std::size_t>(b)] +=
                  r.units * overlap / bin_width;
            }
          }
        }
        break;
      }
      case TraceKind::kCallBlocked: {
        ++acc.blocked;
        PairStats& pair = group.pairs[{r.src, r.dst}];
        pair.src = r.src;
        pair.dst = r.dst;
        ++pair.blocked;
        if (r.link >= 0) {
          check_link(r.link, config);
          PairLinkCell& cell = group.cells[{r.src, r.dst, r.link}];
          cell.src = r.src;
          cell.dst = r.dst;
          cell.link = r.link;
          ++cell.blocked_at;
          if (r.alt_occupancy > 0) {
            ++acc.link_attributed_losses[static_cast<std::size_t>(r.link)];
          }
        }
        break;
      }
      case TraceKind::kReservedRejection: {
        ++acc.reserved_rejections;
        PairStats& pair = group.pairs[{r.src, r.dst}];
        pair.src = r.src;
        pair.dst = r.dst;
        ++pair.reserved_rejections;
        break;
      }
      case TraceKind::kControlEpoch: {
        ++acc.control_epochs;
        acc.control_retargets += r.links_changed;
        acc.control_last_lambda = parse_control_lambda(r.detail);
        if (acc.control_last_lambda.size() != config.link_count) {
          throw std::invalid_argument(
              "analyze: control epoch carries " +
              std::to_string(acc.control_last_lambda.size()) + " loads for a " +
              std::to_string(config.link_count) + "-link topology");
        }
        if (r.links.size() != config.link_count) {
          throw std::invalid_argument("analyze: control epoch carries " +
                                      std::to_string(r.links.size()) +
                                      " reservations for a " +
                                      std::to_string(config.link_count) + "-link topology");
        }
        acc.control_last_r = r.links;
        break;
      }
      case TraceKind::kCallPreempted:
      case TraceKind::kCallKilled:
      case TraceKind::kEventApplied:
      case TraceKind::kProtectionResolved:
        break;  // narrative records; no analysis contribution
    }
  }

  AnalysisReport report;
  report.records = static_cast<long long>(records.size());
  report.max_alt_hops = config.max_alt_hops;
  report.top_pairs = config.top_pairs;
  report.top_cells = config.top_cells;

  for (const auto& [key, group] : groups) {
    AnalysisSection section;
    section.policy_slot = key.first;
    section.policy =
        static_cast<std::size_t>(key.first) < config.policy_names.size()
            ? config.policy_names[static_cast<std::size_t>(key.first)]
            : "policy " + std::to_string(key.first);
    section.load_factor = config.load_factors[static_cast<std::size_t>(key.second)];
    section.replications = group.reps.size();

    // (c) across-replication statistics.
    sim::RunningStats offered, carried_primary, carried_alternate, blocked, reserved,
        blocking, alternate_fraction;
    for (const auto& [rep, acc] : group.reps) {
      const long long off = acc.admitted_primary + acc.admitted_alternate + acc.blocked;
      const long long carried = acc.admitted_primary + acc.admitted_alternate;
      offered.add(static_cast<double>(off));
      carried_primary.add(static_cast<double>(acc.admitted_primary));
      carried_alternate.add(static_cast<double>(acc.admitted_alternate));
      blocked.add(static_cast<double>(acc.blocked));
      reserved.add(static_cast<double>(acc.reserved_rejections));
      if (off > 0) blocking.add(static_cast<double>(acc.blocked) / off);
      if (carried > 0) {
        alternate_fraction.add(static_cast<double>(acc.admitted_alternate) / carried);
      }
    }
    section.metrics.push_back(make_stat("blocking", blocking));
    section.metrics.push_back(make_stat("alternate_fraction", alternate_fraction));
    section.metrics.push_back(make_stat("offered", offered));
    section.metrics.push_back(make_stat("carried_primary", carried_primary));
    section.metrics.push_back(make_stat("carried_alternate", carried_alternate));
    section.metrics.push_back(make_stat("blocked", blocked));
    section.metrics.push_back(make_stat("reserved_rejections", reserved));

    // (a) Theorem-1 audit.
    for (std::size_t k = 0; k < config.link_count; ++k) {
      LinkAudit audit;
      audit.link = static_cast<int>(k);
      audit.lambda = config.lambda[k] * section.load_factor;
      audit.capacity = config.capacity[k];
      if (audit.lambda == 0.0) {
        // min_state_protection's lambda == 0 early-out, without a table.
        audit.eq15_reservation = 0;
        audit.bound = erlang::theorem1_bound(audit.lambda, audit.capacity, 0);
      } else {
        // One cached sequence serves the Eq.-15 search and both blocking
        // factors of the Theorem-1 bound, bit-identical to the direct
        // min_state_protection / theorem1_bound computations.
        erlang::LinkErlangMemo link_memo;
        link_memo.configure(audit.lambda, audit.capacity);
        audit.eq15_reservation = link_memo.r_star(config.max_alt_hops);
        const double denom = link_memo.blocking_at(audit.capacity - audit.eq15_reservation);
        audit.bound = denom == 0.0 ? std::numeric_limits<double>::infinity()
                                   : link_memo.blocking() / denom;
      }
      sim::RunningStats samples;
      double kernel_total = 0.0;
      for (const auto& [rep, acc] : group.reps) {
        audit.alternate_admissions += acc.link_alt_admissions[k];
        audit.attributed_losses += acc.link_attributed_losses[k];
        kernel_total += acc.link_kernel[k];
        if (acc.link_alt_admissions[k] > 0) {
          samples.add(acc.link_kernel[k] / static_cast<double>(acc.link_alt_admissions[k]));
        }
      }
      audit.samples = samples.count();
      if (audit.alternate_admissions > 0) {
        audit.l_pooled = kernel_total / static_cast<double>(audit.alternate_admissions);
        audit.l_mean = samples.mean();
        audit.l_stderr = samples.stderr_mean();
        audit.l_ci95 = samples.ci95_halfwidth();
        // VIOLATION only when the bound lies below the whole interval:
        // noisy links whose CI straddles the bound still pass.
        audit.verdict = audit.l_mean - audit.l_ci95 > audit.bound
                            ? LinkAudit::Verdict::kViolation
                            : LinkAudit::Verdict::kPass;
        ++section.audited;
        if (audit.verdict == LinkAudit::Verdict::kViolation) ++section.violations;
      }
      section.links.push_back(audit);
    }

    // (b) attribution, worst offenders first.
    for (const auto& [pk, pair] : group.pairs) section.pairs.push_back(pair);
    std::sort(section.pairs.begin(), section.pairs.end(),
              [](const PairStats& a, const PairStats& b) {
                if (a.blocked != b.blocked) return a.blocked > b.blocked;
                if (a.carried_alternate != b.carried_alternate) {
                  return a.carried_alternate > b.carried_alternate;
                }
                return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
              });
    for (const auto& [ck, cell] : group.cells) section.cells.push_back(cell);
    std::sort(section.cells.begin(), section.cells.end(),
              [](const PairLinkCell& a, const PairLinkCell& b) {
                if (a.alternate_carried != b.alternate_carried) {
                  return a.alternate_carried > b.alternate_carried;
                }
                if (a.blocked_at != b.blocked_at) return a.blocked_at > b.blocked_at;
                return std::tie(a.src, a.dst, a.link) < std::tie(b.src, b.dst, b.link);
              });

    // (c) occupancy series + stationarity.
    if (bins > 0 && !group.reps.empty()) {
      section.bin_time.resize(static_cast<std::size_t>(bins));
      section.bin_occupancy.assign(static_cast<std::size_t>(bins), 0.0);
      for (int b = 0; b < bins; ++b) {
        section.bin_time[static_cast<std::size_t>(b)] = config.warmup + b * bin_width;
      }
      for (const auto& [rep, acc] : group.reps) {
        for (int b = 0; b < bins; ++b) {
          section.bin_occupancy[static_cast<std::size_t>(b)] +=
              acc.bin_occupancy[static_cast<std::size_t>(b)];
        }
      }
      for (double& occ : section.bin_occupancy) {
        occ /= static_cast<double>(group.reps.size());
      }
      if (bins >= 8) {
        const std::size_t batches =
            std::min<std::size_t>(10, static_cast<std::size_t>(bins) / 2);
        section.stationarity = sim::batch_means(section.bin_occupancy, batches);
        section.stationary =
            std::abs(section.stationarity.lag1_autocorrelation) <= 0.2;
      }
    }

    // (d) control plane: estimated vs nominal Lambda, folded over the last
    // control epoch of each replication.
    for (const auto& [rep, acc] : group.reps) {
      section.control_epochs += acc.control_epochs;
      section.control_retargets += acc.control_retargets;
    }
    if (section.control_epochs > 0) {
      for (std::size_t k = 0; k < config.link_count; ++k) {
        sim::RunningStats est, final_r;
        for (const auto& [rep, acc] : group.reps) {
          if (acc.control_epochs == 0) continue;
          est.add(acc.control_last_lambda[k]);
          final_r.add(static_cast<double>(acc.control_last_r[k]));
        }
        ControlLinkAudit audit;
        audit.link = static_cast<int>(k);
        audit.lambda_true = config.lambda[k] * section.load_factor;
        audit.samples = est.count();
        audit.est_mean = est.mean();
        audit.est_stderr = est.stderr_mean();
        audit.est_ci95 = est.ci95_halfwidth();
        audit.abs_error = std::abs(audit.est_mean - audit.lambda_true);
        audit.final_r_mean = final_r.mean();
        section.control_links.push_back(audit);
      }
    }

    report.sections.push_back(std::move(section));
  }
  return report;
}

AnalysisReport analyze_trace(std::string_view jsonl, const AnalysisConfig& config) {
  return analyze_records(parse_trace(jsonl), config);
}

}  // namespace altroute::obs::analysis
