// Deterministic renderers for AnalysisReport.
//
// Both renderers are pure functions of the report with fixed field order
// and fixed snprintf number formatting, so live and offline analysis of
// the same trace produce byte-identical output (the property the ctest
// determinism checks compare with cmp/EXPECT_EQ).
#pragma once

#include <string>

#include "obs/analysis/analyzer.hpp"

namespace altroute::obs::analysis {

/// Human-readable multi-section text report: per (policy, load point), the
/// across-replication statistics, the Theorem-1 per-link audit with
/// verdicts, the attribution tables (truncated to report.top_pairs /
/// top_cells rows), and the binned occupancy series with its batch-means
/// stationarity diagnostic.
[[nodiscard]] std::string analysis_table(const AnalysisReport& report);

/// The same content as machine-readable JSON ("%.17g" doubles: loss-less).
[[nodiscard]] std::string analysis_json(const AnalysisReport& report);

}  // namespace altroute::obs::analysis
