// Offline trace ingestion: parses the JSONL emitted by JsonlTraceSink back
// into TraceRecords, loss-lessly.
//
// The writer renders every record with a fixed field order and "%.9g"
// number formatting; this parser accepts exactly that flat one-object-per-
// line dialect (string, number, and integer-array values -- no nesting).
// The loss-less round trip
//
//     JsonlTraceSink::format(parse_trace_line(JsonlTraceSink::format(r)))
//        == JsonlTraceSink::format(r)
//
// is what lets the live and offline analyzers produce byte-identical
// reports from the same run: the live path feeds the formatted bytes
// through this same parser (see obs/analysis/analyzer.hpp).
#pragma once

#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace altroute::obs::analysis {

/// Parses one JSONL trace line (no trailing newline) into a record.
/// Throws std::invalid_argument naming the offending token on malformed
/// input, unknown keys, or an unknown record kind.
[[nodiscard]] TraceRecord parse_trace_line(std::string_view line);

/// Parses a whole JSONL stream (newline-separated; blank lines ignored).
/// Record order is preserved -- slot order in, slot order out.
[[nodiscard]] std::vector<TraceRecord> parse_trace(std::string_view jsonl);

}  // namespace altroute::obs::analysis
