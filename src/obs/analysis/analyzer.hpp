// Trace analytics: the deterministic post-pass that turns a probe trace
// into the numbers the paper's Sections 3-5 actually argue about.
//
// One pass over the (slot-ordered) trace records produces, per policy and
// load point:
//
//   (a) the Theorem-1 audit -- each link's empirical L^k, the lost primary
//       calls attributable to admitted alternate calls, against the
//       analytic Eq.-15 bound B(Lambda^k, C^k) / B(Lambda^k, C^k - r*)
//       with a pass / VIOLATION / n/a verdict;
//   (b) the overflow attribution matrix -- per-O-D-pair and per-
//       (pair, link) accounting of who rides alternates where and who
//       gets displaced;
//   (c) across-replication statistics -- Student-t confidence intervals
//       for every blocking/carried metric, plus a time-binned booked-
//       occupancy series with a batch-means stationarity diagnostic that
//       flags bistable runs.
//
// Estimators (see DESIGN.md "Analysis"):
//   L-hat^k  = mean over the link's measured alternate admissions of the
//              Eq. 4-6 kernel B(Lambda^k, C^k) / B(Lambda^k, s), where s
//              is the post-booking occupancy recorded at the admission
//              instant (occ field of admitted records) -- the Theorem-1
//              proof's expected extra primary losses caused by occupying
//              one more circuit at state s.  Per-replication means give
//              the across-replication CI; admissions without occ data are
//              charged as if the link were full (charge 1, conservative).
//   attr_loss = diagnostic count of primary-attributed blocks at link k
//              whose record shows alternate occupancy > 0 at the block
//              instant (alt_occ field) -- reported, not audited, because
//              co-occurrence wildly overstates causation when alternates
//              are rare.
//   verdict  = VIOLATION when mean_rep(L-hat^k) - CI95 > bound, i.e. the
//              bound lies below the interval, not merely below the point
//              estimate -- pass verdicts are robust to replication noise
//              by construction.
// The audited bound uses the Eq.-15 reservation r* RECOMPUTED from
// (Lambda^k, C^k, H) -- not whatever reservation the run had in force.  A
// compliant controlled run admits alternates only at s <= C - r*, so every
// kernel charge is at most the bound and the link passes; an uncontrolled
// run (r = 0) under overload admits alternates deep in the protected band,
// where the kernel exceeds the bound, and the audit flags it.
//
// Determinism contract: analyze_trace is a pure function of the trace
// bytes and the config.  The live path formats its records with
// JsonlTraceSink::format and feeds the SAME bytes through the SAME parser
// the offline tool uses, so live and offline reports are byte-identical,
// and thread-count invariance is inherited from the slot-ordered trace.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "sim/batch_means.hpp"

namespace altroute::obs::analysis {

struct AnalysisConfig {
  int node_count{0};
  std::size_t link_count{0};
  /// Display name per directed link ("2->3"); optional, defaults to the
  /// link index.
  std::vector<std::string> link_names;
  /// Per-link primary traffic demand Lambda^k in Erlangs at load factor 1
  /// (routing::primary_link_loads of the nominal matrix).
  std::vector<double> lambda;
  /// Per-link capacity C^k.
  std::vector<int> capacity;
  /// Network-wide alternate hop limit H (the Eq.-15 design constant).
  int max_alt_hops{6};
  /// Policy display names, one per trace policy slot; slots beyond the
  /// list render as "policy N".
  std::vector<std::string> policy_names;
  /// Load factors of the sweep, one per load point; lambda scales
  /// linearly (primary_link_loads is linear in the traffic matrix).
  std::vector<double> load_factors{1.0};
  /// Replications per load point: record replication r belongs to point
  /// r / replications_per_point (the sweep harness's task order).  0 means
  /// every replication is the single load point (scenario runs).
  int replications_per_point{0};
  /// Measurement window (bin edges; matches the run's options).
  double warmup{10.0};
  double measure{100.0};
  /// Bins of the occupancy series; 0 disables the series.
  int time_bins{20};
  /// Rows kept in the per-pair and per-(pair, link) attribution tables.
  int top_pairs{10};
  int top_cells{12};
};

struct LinkAudit {
  int link{-1};
  double lambda{0.0};  ///< Lambda^k at this point's load factor
  int capacity{0};
  int eq15_reservation{0};  ///< r* = min_state_protection(lambda, C, H)
  double bound{0.0};        ///< theorem1_bound(lambda, C, r*)
  long long alternate_admissions{0};  ///< all replications
  long long attributed_losses{0};     ///< diagnostic co-occurrence count
  double l_pooled{0.0};  ///< total kernel charge / alternate_admissions
  double l_mean{0.0};    ///< mean over replications of per-rep L-hat^k
  double l_stderr{0.0};
  double l_ci95{0.0};
  std::size_t samples{0};  ///< replications with >= 1 alternate admission
  enum class Verdict { kPass, kViolation, kNotApplicable };
  Verdict verdict{Verdict::kNotApplicable};
};

/// Per-O-D-pair measured totals over all replications of a section.
struct PairStats {
  int src{-1};
  int dst{-1};
  long long carried_primary{0};
  long long carried_alternate{0};
  long long blocked{0};
  long long reserved_rejections{0};
};

/// One attribution cell: pair (src, dst) x directed link.
struct PairLinkCell {
  int src{-1};
  int dst{-1};
  int link{-1};
  long long alternate_carried{0};  ///< the pair's alternate calls riding the link
  long long blocked_at{0};         ///< the pair's losses attributed to the link
};

/// Estimated-vs-true offered-load comparison for one link, from the
/// adaptive control plane's kControlEpoch records.  The estimate audited
/// is the LAST epoch of each replication (the estimator's most-converged
/// state); "true" is the nominal per-link primary load at the section's
/// load factor -- on scenarios that rewire routes mid-run the comparison
/// is against that intact-topology nominal, so read large errors there as
/// "the controller tracked the post-event network", not estimator bias.
struct ControlLinkAudit {
  int link{-1};
  double lambda_true{0.0};   ///< config.lambda[k] * load factor
  double est_mean{0.0};      ///< mean over replications of the last estimate
  double est_stderr{0.0};
  double est_ci95{0.0};
  double abs_error{0.0};     ///< |est_mean - lambda_true|
  double final_r_mean{0.0};  ///< mean over replications of the final r*
  std::size_t samples{0};    ///< replications with >= 1 control epoch
};

/// One across-replication statistic (Student-t, two-sided 95%).
struct MetricStat {
  std::string name;
  std::size_t replications{0};
  double mean{0.0};
  double stderr_mean{0.0};
  double ci95{0.0};
};

/// Everything the analyzer derives for one (policy, load point) group.
struct AnalysisSection {
  std::string policy;
  int policy_slot{0};
  double load_factor{1.0};
  std::size_t replications{0};
  // (a) Theorem-1 audit.
  std::vector<LinkAudit> links;
  int audited{0};     ///< links with a verdict other than n/a
  int violations{0};  ///< links whose CI lies above the bound
  // (b) attribution.
  std::vector<PairStats> pairs;      ///< active pairs, worst-blocked first
  std::vector<PairLinkCell> cells;   ///< heaviest alternate-riding cells
  // (d) adaptive control plane (empty when the run had control off).
  std::vector<ControlLinkAudit> control_links;
  long long control_epochs{0};     ///< kControlEpoch records in the section
  long long control_retargets{0};  ///< summed links_changed over those epochs
  // (c) statistics.
  std::vector<MetricStat> metrics;
  std::vector<double> bin_time;       ///< bin left edges
  std::vector<double> bin_occupancy;  ///< mean booked circuits per bin
  sim::BatchMeansResult stationarity;
  bool stationary{true};  ///< |lag-1 autocorrelation| <= 0.2 (or too few bins)
};

struct AnalysisReport {
  std::vector<AnalysisSection> sections;  ///< policy-major, then load point
  long long records{0};                   ///< trace records consumed
  int max_alt_hops{6};
  /// Row limits the renderers apply to the (complete, sorted) attribution
  /// vectors -- the section data itself is never truncated.
  int top_pairs{10};
  int top_cells{12};

  /// True when no audited link of any section is in violation.
  [[nodiscard]] bool theorem1_ok() const {
    for (const AnalysisSection& s : sections) {
      if (s.violations > 0) return false;
    }
    return true;
  }
};

/// Analyzes parsed records (slot order expected, as the sinks emit them).
[[nodiscard]] AnalysisReport analyze_records(const std::vector<TraceRecord>& records,
                                             const AnalysisConfig& config);

/// Parses a JSONL trace and analyzes it.  This is THE entry point both the
/// live path and the offline tool use -- same bytes, same parser, same
/// report.
[[nodiscard]] AnalysisReport analyze_trace(std::string_view jsonl,
                                           const AnalysisConfig& config);

}  // namespace altroute::obs::analysis
