// Typed metric registry -- the counting half of the observability layer.
//
// A MetricRegistry is a flat, allocation-free-on-the-hot-path store of
// typed instruments keyed by interned names:
//
//   * counters     monotone long long totals (calls offered, kills, ...)
//   * gauges       double-valued levels (merge sums them; record rates or
//                  totals, not instantaneous readings, if you merge)
//   * histograms   fixed upper-bound buckets plus an overflow bucket and a
//                  running sum (e.g. carried path hop counts)
//   * link counters  one long long per directed link (alternate admits,
//                  reserved-state rejections, preemptions, kills)
//   * occupancy grid  per-link occupancy sampled on a fixed event-time
//                  grid t0 + i*dt, i in [0, samples)
//
// Registration (interning a name, sizing a family) allocates; afterwards
// every update is an indexed add, so an instrumented simulation's inner
// loop never allocates.  Registries from independent replications whose
// schemas match (same names registered in the same order, same buckets,
// same grid) merge by element-wise addition -- the sweep harnesses merge
// per-replication registries in slot order, making merged metrics
// bit-identical at any thread count.  See DESIGN.md, "Observability".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace altroute::obs {

/// Dense handle into one of a registry's instrument families.
using MetricId = std::size_t;

class MetricRegistry {
 public:
  // --- registration (cold path; idempotent per name) ----------------------

  /// Interns a counter and returns its id (the existing id when `name` is
  /// already registered).
  MetricId counter(std::string_view name);

  /// Interns a gauge.  Merge adds gauges, so store totals or rates.
  MetricId gauge(std::string_view name);

  /// Interns a histogram with the given ascending finite upper bounds; an
  /// implicit overflow bucket catches values above the last bound.
  /// Re-registering a name with different bounds throws.
  MetricId histogram(std::string_view name, std::vector<double> upper_bounds);

  /// Interns a per-link counter family of `link_count()` slots (0 until
  /// set_link_count is called; families resize with it).
  MetricId link_counter(std::string_view name);

  /// Sizes every per-link family (and the occupancy grid's link axis).
  /// Throws if a different non-zero size was already set.
  void set_link_count(std::size_t links);

  /// Configures the occupancy sampling grid: `samples` event-time points
  /// t0 + i*dt.  Throws if a different non-empty grid was already set.
  void set_occupancy_grid(double t0, double dt, int samples);

  // --- hot-path updates (no allocation, no lookup) ------------------------

  void add(MetricId id, long long delta = 1) { counters_[id].value += delta; }
  void add_gauge(MetricId id, double delta) { gauges_[id].value += delta; }
  void observe(MetricId id, double value);
  void add_link(MetricId id, std::size_t link, long long delta = 1) {
    link_counters_[id].values[link] += delta;
  }
  /// Accumulates `value` into occupancy grid cell (sample, link).
  void record_occupancy(std::size_t sample, std::size_t link, long long value) {
    occupancy_grid_[sample * links_ + link] += value;
  }

  // --- reads --------------------------------------------------------------

  [[nodiscard]] long long counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  /// Registered names in registration order (table renderers iterate these).
  [[nodiscard]] std::vector<std::string_view> counter_names() const;
  [[nodiscard]] std::vector<std::string_view> histogram_names() const;
  [[nodiscard]] std::vector<std::string_view> link_counter_names() const;
  /// Sum of every observed value of a histogram (mean = sum / counts).
  [[nodiscard]] double histogram_sum(std::string_view name) const;
  /// Bucket counts of a histogram (size = bounds.size() + 1, last =
  /// overflow).  Throws on unknown name.
  [[nodiscard]] const std::vector<long long>& histogram_counts(std::string_view name) const;
  [[nodiscard]] const std::vector<long long>& link_counter_values(std::string_view name) const;
  /// Sum of one per-link family over all links.
  [[nodiscard]] long long link_counter_total(std::string_view name) const;
  [[nodiscard]] std::size_t link_count() const { return links_; }
  [[nodiscard]] int occupancy_samples() const { return grid_samples_; }
  [[nodiscard]] double occupancy_grid_t0() const { return grid_t0_; }
  [[nodiscard]] double occupancy_grid_dt() const { return grid_dt_; }
  /// Accumulated occupancy at grid cell (sample, link).
  [[nodiscard]] long long occupancy_at(std::size_t sample, std::size_t link) const {
    return occupancy_grid_[sample * links_ + link];
  }

  /// True when nothing was ever registered.
  [[nodiscard]] bool empty() const;

  // --- reduction & output ---------------------------------------------------

  /// Element-wise addition.  Schemas must match exactly (same names in the
  /// same registration order, same histogram bounds, same link count, same
  /// grid); throws std::invalid_argument otherwise.  An empty registry may
  /// absorb any schema (the first merge adopts it) -- this is what lets a
  /// sweep epilogue fold per-replication registries into a default-
  /// constructed accumulator in slot order.
  void merge(const MetricRegistry& other);

  /// Deterministic JSON rendering: families in registration order, doubles
  /// via "%.17g".  The schema is documented in DESIGN.md "Observability".
  [[nodiscard]] std::string to_json() const;

  // --- checkpoint support ---------------------------------------------------

  /// Flattens every instrument's ACCUMULATED values (not the schema) into
  /// two appended vectors in deterministic order: counters, histogram
  /// bucket counts, link counters, occupancy grid into `ints`; gauges,
  /// histogram sums into `reals`.  The snapshot layer stores only these --
  /// on restore the schema is re-registered by the same bind() call that
  /// built it, then refilled via import_accumulated.
  void export_accumulated(std::vector<long long>& ints, std::vector<double>& reals) const;

  /// Pours values exported by export_accumulated back into a registry with
  /// the IDENTICAL schema.  Throws std::invalid_argument when the value
  /// counts do not match this registry's instruments.
  void import_accumulated(const std::vector<long long>& ints,
                          const std::vector<double>& reals);

 private:
  struct Counter {
    std::string name;
    long long value{0};
  };
  struct Gauge {
    std::string name;
    double value{0.0};
  };
  struct Histogram {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<long long> counts;  ///< size upper_bounds.size() + 1
    double sum{0.0};
  };
  struct LinkCounter {
    std::string name;
    std::vector<long long> values;  ///< size links_
  };

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  std::vector<LinkCounter> link_counters_;
  std::size_t links_{0};
  double grid_t0_{0.0};
  double grid_dt_{0.0};
  int grid_samples_{0};
  std::vector<long long> occupancy_grid_;  ///< samples x links, sample-major

  friend class Probe;
  [[nodiscard]] const Histogram& find_histogram(std::string_view name) const;
  [[nodiscard]] const LinkCounter& find_link_counter(std::string_view name) const;
};

}  // namespace altroute::obs
