#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace altroute::obs {

namespace {

template <class Family>
MetricId find_or_append(std::vector<Family>& family, std::string_view name) {
  for (std::size_t i = 0; i < family.size(); ++i) {
    if (family[i].name == name) return i;
  }
  family.push_back(Family{});
  family.back().name = std::string(name);
  return family.size() - 1;
}

void append_json_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

MetricId MetricRegistry::counter(std::string_view name) {
  return find_or_append(counters_, name);
}

MetricId MetricRegistry::gauge(std::string_view name) { return find_or_append(gauges_, name); }

MetricId MetricRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (!(upper_bounds[i] > upper_bounds[i - 1])) {
      throw std::invalid_argument("MetricRegistry::histogram: bounds must be ascending");
    }
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) {
      if (histograms_[i].upper_bounds != upper_bounds) {
        throw std::invalid_argument("MetricRegistry::histogram: bounds mismatch for '" +
                                    std::string(name) + "'");
      }
      return i;
    }
  }
  Histogram h;
  h.name = std::string(name);
  h.counts.assign(upper_bounds.size() + 1, 0);
  h.upper_bounds = std::move(upper_bounds);
  histograms_.push_back(std::move(h));
  return histograms_.size() - 1;
}

MetricId MetricRegistry::link_counter(std::string_view name) {
  const MetricId id = find_or_append(link_counters_, name);
  link_counters_[id].values.resize(links_, 0);
  return id;
}

void MetricRegistry::set_link_count(std::size_t links) {
  if (links_ != 0 && links_ != links) {
    throw std::invalid_argument("MetricRegistry::set_link_count: size already fixed");
  }
  links_ = links;
  for (LinkCounter& family : link_counters_) family.values.resize(links_, 0);
  occupancy_grid_.assign(static_cast<std::size_t>(grid_samples_) * links_, 0);
}

void MetricRegistry::set_occupancy_grid(double t0, double dt, int samples) {
  if (samples < 0 || (samples > 0 && !(dt > 0.0))) {
    throw std::invalid_argument("MetricRegistry::set_occupancy_grid: bad grid");
  }
  if (grid_samples_ != 0 &&
      (grid_t0_ != t0 || grid_dt_ != dt || grid_samples_ != samples)) {
    throw std::invalid_argument("MetricRegistry::set_occupancy_grid: grid already fixed");
  }
  grid_t0_ = t0;
  grid_dt_ = dt;
  grid_samples_ = samples;
  occupancy_grid_.assign(static_cast<std::size_t>(samples) * links_, 0);
}

void MetricRegistry::observe(MetricId id, double value) {
  Histogram& h = histograms_[id];
  std::size_t bucket = h.upper_bounds.size();  // overflow by default
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (value <= h.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h.counts[bucket];
  h.sum += value;
}

long long MetricRegistry::counter_value(std::string_view name) const {
  for (const Counter& c : counters_) {
    if (c.name == name) return c.value;
  }
  throw std::invalid_argument("MetricRegistry: unknown counter '" + std::string(name) + "'");
}

double MetricRegistry::gauge_value(std::string_view name) const {
  for (const Gauge& g : gauges_) {
    if (g.name == name) return g.value;
  }
  throw std::invalid_argument("MetricRegistry: unknown gauge '" + std::string(name) + "'");
}

std::vector<std::string_view> MetricRegistry::counter_names() const {
  std::vector<std::string_view> names;
  names.reserve(counters_.size());
  for (const Counter& c : counters_) names.push_back(c.name);
  return names;
}

std::vector<std::string_view> MetricRegistry::histogram_names() const {
  std::vector<std::string_view> names;
  names.reserve(histograms_.size());
  for (const Histogram& h : histograms_) names.push_back(h.name);
  return names;
}

std::vector<std::string_view> MetricRegistry::link_counter_names() const {
  std::vector<std::string_view> names;
  names.reserve(link_counters_.size());
  for (const LinkCounter& family : link_counters_) names.push_back(family.name);
  return names;
}

double MetricRegistry::histogram_sum(std::string_view name) const {
  return find_histogram(name).sum;
}

const MetricRegistry::Histogram& MetricRegistry::find_histogram(std::string_view name) const {
  for (const Histogram& h : histograms_) {
    if (h.name == name) return h;
  }
  throw std::invalid_argument("MetricRegistry: unknown histogram '" + std::string(name) + "'");
}

const std::vector<long long>& MetricRegistry::histogram_counts(std::string_view name) const {
  return find_histogram(name).counts;
}

const MetricRegistry::LinkCounter& MetricRegistry::find_link_counter(
    std::string_view name) const {
  for (const LinkCounter& family : link_counters_) {
    if (family.name == name) return family;
  }
  throw std::invalid_argument("MetricRegistry: unknown link counter '" + std::string(name) +
                              "'");
}

const std::vector<long long>& MetricRegistry::link_counter_values(std::string_view name) const {
  return find_link_counter(name).values;
}

long long MetricRegistry::link_counter_total(std::string_view name) const {
  long long total = 0;
  for (const long long v : find_link_counter(name).values) total += v;
  return total;
}

bool MetricRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         link_counters_.empty() && links_ == 0 && grid_samples_ == 0;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  if (empty()) {
    *this = other;
    return;
  }
  const auto mismatch = [](const char* what) {
    throw std::invalid_argument(std::string("MetricRegistry::merge: schema mismatch (") +
                                what + ")");
  };
  if (counters_.size() != other.counters_.size()) mismatch("counters");
  if (gauges_.size() != other.gauges_.size()) mismatch("gauges");
  if (histograms_.size() != other.histograms_.size()) mismatch("histograms");
  if (link_counters_.size() != other.link_counters_.size()) mismatch("link counters");
  if (links_ != other.links_) mismatch("link count");
  if (grid_t0_ != other.grid_t0_ || grid_dt_ != other.grid_dt_ ||
      grid_samples_ != other.grid_samples_) {
    mismatch("occupancy grid");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name != other.counters_[i].name) mismatch("counter names");
    counters_[i].value += other.counters_[i].value;
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name != other.gauges_[i].name) mismatch("gauge names");
    gauges_[i].value += other.gauges_[i].value;
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    Histogram& mine = histograms_[i];
    const Histogram& theirs = other.histograms_[i];
    if (mine.name != theirs.name || mine.upper_bounds != theirs.upper_bounds) {
      mismatch("histogram schema");
    }
    for (std::size_t b = 0; b < mine.counts.size(); ++b) mine.counts[b] += theirs.counts[b];
    mine.sum += theirs.sum;
  }
  for (std::size_t i = 0; i < link_counters_.size(); ++i) {
    if (link_counters_[i].name != other.link_counters_[i].name) mismatch("link counter names");
    for (std::size_t k = 0; k < links_; ++k) {
      link_counters_[i].values[k] += other.link_counters_[i].values[k];
    }
  }
  for (std::size_t i = 0; i < occupancy_grid_.size(); ++i) {
    occupancy_grid_[i] += other.occupancy_grid_[i];
  }
}

void MetricRegistry::export_accumulated(std::vector<long long>& ints,
                                        std::vector<double>& reals) const {
  for (const Counter& c : counters_) ints.push_back(c.value);
  for (const Histogram& h : histograms_) {
    ints.insert(ints.end(), h.counts.begin(), h.counts.end());
  }
  for (const LinkCounter& lc : link_counters_) {
    ints.insert(ints.end(), lc.values.begin(), lc.values.end());
  }
  ints.insert(ints.end(), occupancy_grid_.begin(), occupancy_grid_.end());
  for (const Gauge& g : gauges_) reals.push_back(g.value);
  for (const Histogram& h : histograms_) reals.push_back(h.sum);
}

void MetricRegistry::import_accumulated(const std::vector<long long>& ints,
                                        const std::vector<double>& reals) {
  std::size_t int_count = counters_.size() + occupancy_grid_.size();
  for (const Histogram& h : histograms_) int_count += h.counts.size();
  for (const LinkCounter& lc : link_counters_) int_count += lc.values.size();
  const std::size_t real_count = gauges_.size() + histograms_.size();
  if (ints.size() != int_count || reals.size() != real_count) {
    throw std::invalid_argument(
        "MetricRegistry::import_accumulated: value count mismatch (saved " +
        std::to_string(ints.size()) + "+" + std::to_string(reals.size()) +
        " values, this schema holds " + std::to_string(int_count) + "+" +
        std::to_string(real_count) + ")");
  }
  std::size_t i = 0;
  for (Counter& c : counters_) c.value = ints[i++];
  for (Histogram& h : histograms_) {
    for (long long& count : h.counts) count = ints[i++];
  }
  for (LinkCounter& lc : link_counters_) {
    for (long long& v : lc.values) v = ints[i++];
  }
  for (long long& cell : occupancy_grid_) cell = ints[i++];
  std::size_t r = 0;
  for (Gauge& g : gauges_) g.value = reals[r++];
  for (Histogram& h : histograms_) h.sum = reals[r++];
}

std::string MetricRegistry::to_json() const {
  std::string out = "{";
  out += "\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, counters_[i].name);
    out += ':';
    out += std::to_string(counters_[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, gauges_[i].name);
    out += ':';
    append_json_double(out, gauges_[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i];
    if (i != 0) out += ',';
    append_json_string(out, h.name);
    out += ":{\"bounds\":[";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      if (b != 0) out += ',';
      append_json_double(out, h.upper_bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ',';
      out += std::to_string(h.counts[b]);
    }
    out += "],\"sum\":";
    append_json_double(out, h.sum);
    out += '}';
  }
  out += "},\"link_counters\":{";
  for (std::size_t i = 0; i < link_counters_.size(); ++i) {
    const LinkCounter& family = link_counters_[i];
    if (i != 0) out += ',';
    append_json_string(out, family.name);
    out += ":[";
    for (std::size_t k = 0; k < family.values.size(); ++k) {
      if (k != 0) out += ',';
      out += std::to_string(family.values[k]);
    }
    out += ']';
  }
  out += "},\"occupancy_grid\":{\"t0\":";
  append_json_double(out, grid_t0_);
  out += ",\"dt\":";
  append_json_double(out, grid_dt_);
  out += ",\"samples\":[";
  for (int s = 0; s < grid_samples_; ++s) {
    if (s != 0) out += ',';
    out += '[';
    for (std::size_t k = 0; k < links_; ++k) {
      if (k != 0) out += ',';
      out += std::to_string(occupancy_at(static_cast<std::size_t>(s), k));
    }
    out += ']';
  }
  out += "]}}";
  return out;
}

}  // namespace altroute::obs
