// Structured event tracing -- the narrative half of the observability
// layer.
//
// A TraceSink receives one TraceRecord per simulation event of interest
// (admissions, blocks, reserved-state rejections, preemptions, kills,
// applied scenario events, protection re-solves).  Sinks carry a kind mask
// so uninteresting kinds are dropped before a record is even built; the
// engines hold a Probe whose "off" state is a null pointer, so a run
// without tracing pays one never-taken branch per hook and nothing else.
//
// Records are plain data: the JSON-lines writer renders them with a fixed
// field order and fixed number formatting, so two runs that apply the same
// events produce byte-identical trace files -- the property the ctest
// thread-count bit-identity checks rely on.  The analysis layer
// (obs/analysis) parses those lines back into records loss-lessly, which
// is what lets the live and offline analyzers produce identical reports.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace altroute::obs {

/// One bit per record kind, combinable into sink masks.
enum class TraceKind : unsigned {
  kCallAdmitted = 1u << 0,
  kCallBlocked = 1u << 1,
  kCallPreempted = 1u << 2,
  kCallKilled = 1u << 3,
  kEventApplied = 1u << 4,
  kProtectionResolved = 1u << 5,
  /// An alternate path was refused purely by state protection at a link
  /// that would still have admitted a primary-class call (the protection
  /// cost the Eq.-15 audit accounts per O-D pair).
  kReservedRejection = 1u << 6,
  /// A control epoch fired: the adaptive controller re-derived the
  /// protection vector from estimated loads.  `count` carries the epoch
  /// index, `links` the reservation vector now in force, `occ` the
  /// capacities the solve used, and `detail` the effective per-link lambda
  /// vector as a "%.17g" CSV -- enough for the checker to re-derive r*
  /// from recorded state alone (the epoch-purity invariant).
  kControlEpoch = 1u << 7,
};

inline constexpr unsigned kAllTraceKinds = (1u << 8) - 1;

/// Lower-case token used in JSONL output and --trace-filter lists
/// ("call_admitted", ...).
[[nodiscard]] std::string_view trace_kind_name(TraceKind kind);

/// Every kind, in mask-bit order -- the authoritative list CLI help and
/// error messages enumerate.
[[nodiscard]] const std::vector<TraceKind>& all_trace_kinds();

/// Space-separated list of every kind token ("call_admitted call_blocked
/// ..."), for --trace-filter list/help output and error messages.
[[nodiscard]] std::string trace_kind_list();

/// Parses a comma-separated kind list ("call_blocked,event_applied") into
/// a mask.  Empty string or "all" selects every kind.  Throws
/// std::invalid_argument naming the unknown token and enumerating the
/// valid ones otherwise.
[[nodiscard]] unsigned parse_trace_filter(std::string_view csv);

/// One structured trace record.  Which fields are meaningful depends on
/// `kind`; unused fields keep their defaults and are omitted from JSONL.
struct TraceRecord {
  double time{0.0};
  TraceKind kind{TraceKind::kCallAdmitted};
  int src{-1};             ///< call records: origin node
  int dst{-1};             ///< call records: destination node
  int link{-1};            ///< blocking / refusing / killed-at / preempted-at directed link
  int hops{0};             ///< admitted/killed/preempted: booked path length
  int units{1};            ///< circuits per link
  bool alternate{false};   ///< admitted under the alternate class
  double hold{0.0};        ///< admitted: holding time (occupancy reconstruction)
  /// Admitted: the directed link ids of the booked path, in path order --
  /// what the attribution matrix needs to know which alternates ride where.
  std::vector<int> links;
  /// Admitted: post-booking occupancy of each `links` entry (parallel
  /// array).  This is the state s the Theorem-1 audit charges with the
  /// Eq. 4-6 kernel B(Lambda,C)/B(Lambda,s): an alternate admitted deep in
  /// the protected band carries a charge above the Eq.-15 bound.
  std::vector<int> occ;
  /// Blocked: alternate-class circuits held on the attributed blocking
  /// link at the block instant (the Theorem-1 numerator: a primary loss at
  /// a link currently carrying alternates is attributable to them).
  int alt_occupancy{0};
  /// Event kind name for kEventApplied.  OWNED by the record (not a view):
  /// buffered records outlive the hook call and are routinely moved across
  /// threads and containers by the sweep harness, so a borrowed pointer
  /// here is a use-after-free waiting to happen (regression-tested).  The
  /// names are short, so small-string optimisation makes the copy free.
  std::string detail;
  int links_changed{0};    ///< kEventApplied / kProtectionResolved: links touched
  long long count{0};      ///< kEventApplied: in-flight calls killed
  int replication{-1};     ///< sweep merges stamp the replication (seed) index
  int policy{-1};          ///< sweep merges stamp the policy's position in the request
};

/// Destination of trace records.  `mask` filters kinds at the probe, so a
/// masked-out kind costs one bit test.
class TraceSink {
 public:
  explicit TraceSink(unsigned mask = kAllTraceKinds) : mask_(mask) {}
  virtual ~TraceSink() = default;

  [[nodiscard]] bool wants(TraceKind kind) const {
    return (mask_ & static_cast<unsigned>(kind)) != 0;
  }
  [[nodiscard]] unsigned mask() const { return mask_; }

  virtual void write(const TraceRecord& record) = 0;

 private:
  unsigned mask_;
};

/// Renders records as one JSON object per line onto a stream, with fixed
/// field order and "%.9g" number formatting (byte-stable across runs).
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out, unsigned mask = kAllTraceKinds)
      : TraceSink(mask), out_(out) {}

  void write(const TraceRecord& record) override;

  /// The JSONL line for one record (no trailing newline) -- exposed for
  /// tests and for sinks that buffer.
  [[nodiscard]] static std::string format(const TraceRecord& record);

 private:
  std::ostream& out_;
};

/// Collects records in memory (tests, and the sweep harness's
/// per-replication buffers that are later flushed in slot order).  Records
/// are self-contained (TraceRecord owns its strings), so the buffer stays
/// valid when moved out of the sink or across threads.
class VectorTraceSink final : public TraceSink {
 public:
  explicit VectorTraceSink(unsigned mask = kAllTraceKinds) : TraceSink(mask) {}

  void write(const TraceRecord& record) override { records.push_back(record); }

  std::vector<TraceRecord> records;
};

}  // namespace altroute::obs
