#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace altroute::obs {

namespace {

void append_number(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  out += buffer;
}

}  // namespace

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCallAdmitted:
      return "call_admitted";
    case TraceKind::kCallBlocked:
      return "call_blocked";
    case TraceKind::kCallPreempted:
      return "call_preempted";
    case TraceKind::kCallKilled:
      return "call_killed";
    case TraceKind::kEventApplied:
      return "event_applied";
    case TraceKind::kProtectionResolved:
      return "protection_resolved";
    case TraceKind::kReservedRejection:
      return "reserved_rejection";
    case TraceKind::kControlEpoch:
      return "control_epoch";
  }
  throw std::invalid_argument("trace_kind_name: unknown kind");
}

const std::vector<TraceKind>& all_trace_kinds() {
  static const std::vector<TraceKind> kinds = [] {
    std::vector<TraceKind> all;
    for (unsigned bit = 1; bit < (kAllTraceKinds + 1); bit <<= 1) {
      all.push_back(static_cast<TraceKind>(bit));
    }
    return all;
  }();
  return kinds;
}

std::string trace_kind_list() {
  std::string out;
  for (const TraceKind kind : all_trace_kinds()) {
    if (!out.empty()) out += ' ';
    out += trace_kind_name(kind);
  }
  return out;
}

unsigned parse_trace_filter(std::string_view csv) {
  if (csv.empty() || csv == "all") return kAllTraceKinds;
  unsigned mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) comma = csv.size();
    const std::string_view token = csv.substr(start, comma - start);
    if (!token.empty()) {
      bool known = false;
      for (const TraceKind kind : all_trace_kinds()) {
        if (token == trace_kind_name(kind)) {
          mask |= static_cast<unsigned>(kind);
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::invalid_argument("parse_trace_filter: unknown kind '" + std::string(token) +
                                    "' (known: " + trace_kind_list() + ", or 'all')");
      }
    }
    start = comma + 1;
  }
  if (mask == 0) throw std::invalid_argument("parse_trace_filter: empty filter");
  return mask;
}

std::string JsonlTraceSink::format(const TraceRecord& r) {
  std::string out = "{\"t\":";
  append_number(out, r.time);
  out += ",\"kind\":\"";
  out += trace_kind_name(r.kind);
  out += '"';
  if (r.replication >= 0) {
    out += ",\"rep\":";
    out += std::to_string(r.replication);
  }
  if (r.policy >= 0) {
    out += ",\"policy\":";
    out += std::to_string(r.policy);
  }
  switch (r.kind) {
    case TraceKind::kCallAdmitted:
      out += ",\"src\":" + std::to_string(r.src) + ",\"dst\":" + std::to_string(r.dst) +
             ",\"hops\":" + std::to_string(r.hops) + ",\"units\":" + std::to_string(r.units) +
             ",\"hold\":";
      append_number(out, r.hold);
      out += ",\"class\":\"";
      out += r.alternate ? "alternate" : "primary";
      out += "\",\"links\":[";
      for (std::size_t i = 0; i < r.links.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(r.links[i]);
      }
      out += ']';
      if (!r.occ.empty()) {
        out += ",\"occ\":[";
        for (std::size_t i = 0; i < r.occ.size(); ++i) {
          if (i != 0) out += ',';
          out += std::to_string(r.occ[i]);
        }
        out += ']';
      }
      break;
    case TraceKind::kCallBlocked:
      out += ",\"src\":" + std::to_string(r.src) + ",\"dst\":" + std::to_string(r.dst) +
             ",\"units\":" + std::to_string(r.units);
      if (r.link >= 0) {
        out += ",\"link\":" + std::to_string(r.link) +
               ",\"alt_occ\":" + std::to_string(r.alt_occupancy);
      }
      break;
    case TraceKind::kReservedRejection:
      out += ",\"src\":" + std::to_string(r.src) + ",\"dst\":" + std::to_string(r.dst) +
             ",\"link\":" + std::to_string(r.link);
      break;
    case TraceKind::kCallPreempted:
    case TraceKind::kCallKilled:
      out += ",\"link\":" + std::to_string(r.link) + ",\"hops\":" + std::to_string(r.hops) +
             ",\"units\":" + std::to_string(r.units);
      break;
    case TraceKind::kEventApplied:
      out += ",\"event\":\"";
      out += r.detail;
      out += "\",\"links_changed\":" + std::to_string(r.links_changed) +
             ",\"killed\":" + std::to_string(r.count);
      break;
    case TraceKind::kProtectionResolved:
      out += ",\"links\":" + std::to_string(r.links_changed);
      break;
    case TraceKind::kControlEpoch:
      out += ",\"epoch\":" + std::to_string(r.count) +
             ",\"links_changed\":" + std::to_string(r.links_changed) + ",\"r\":[";
      for (std::size_t i = 0; i < r.links.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(r.links[i]);
      }
      out += "],\"cap\":[";
      for (std::size_t i = 0; i < r.occ.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(r.occ[i]);
      }
      out += "],\"lam\":\"";
      out += r.detail;
      out += '"';
      break;
  }
  out += '}';
  return out;
}

void JsonlTraceSink::write(const TraceRecord& record) { out_ << format(record) << '\n'; }

}  // namespace altroute::obs
