#include "obs/prof/counters.hpp"

#include <algorithm>
#include <cstdio>

namespace altroute::obs::prof {

namespace {

constexpr CounterField kFields[] = {
    {"events_scheduled", &EngineCounters::events_scheduled, false},
    {"events_popped", &EngineCounters::events_popped, false},
    {"peak_queue_depth", &EngineCounters::peak_queue_depth, true},
    {"arena_allocations", &EngineCounters::arena_allocations, false},
    {"arena_reuses", &EngineCounters::arena_reuses, false},
    {"peak_arena_occupancy", &EngineCounters::peak_arena_occupancy, true},
    {"calls_killed", &EngineCounters::calls_killed, false},
    {"preemptions", &EngineCounters::preemptions, false},
    {"route_rebuilds", &EngineCounters::route_rebuilds, false},
    {"protection_resolves", &EngineCounters::protection_resolves, false},
    {"calendar_resizes", &EngineCounters::calendar_resizes, false},
    {"memo_hits", &EngineCounters::memo_hits, false},
    {"memo_misses", &EngineCounters::memo_misses, false},
    {"control_epochs", &EngineCounters::control_epochs, false},
    {"control_retargets", &EngineCounters::control_retargets, false},
    {"control_holds", &EngineCounters::control_holds, false},
    {"estimator_updates", &EngineCounters::estimator_updates, false},
};

}  // namespace

const CounterField* counter_fields(std::size_t* count) {
  *count = sizeof(kFields) / sizeof(kFields[0]);
  return kFields;
}

void EngineCounters::merge(const EngineCounters& other) {
  for (const CounterField& f : kFields) {
    if (f.peak) {
      this->*f.member = std::max(this->*f.member, other.*f.member);
    } else {
      this->*f.member += other.*f.member;
    }
  }
}

bool EngineCounters::operator==(const EngineCounters& other) const {
  for (const CounterField& f : kFields) {
    if (this->*f.member != other.*f.member) return false;
  }
  return true;
}

std::string EngineCounters::to_json() const {
  std::string out = "{";
  char buf[64];
  bool first = true;
  for (const CounterField& f : kFields) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",", f.name,
                  static_cast<unsigned long long>(this->*f.member));
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace altroute::obs::prof
