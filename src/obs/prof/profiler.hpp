// Hierarchical phase profiler -- the TIMING half of the run-health layer.
//
// A PhaseAccumulator holds one table of named phases; a ScopedPhase is an
// RAII timer that charges its enclosing scope's wall and thread-CPU time
// to one phase on destruction.  Phases nest: a ScopedPhase opened while
// another is live records under the composed path ("sweep/task/engine"),
// so the table is a flattened call tree.  Self-time is implicit -- a
// parent's numbers include its children, exactly like a sampling
// profiler's inclusive view; subtract to taste when rendering.
//
// Threading model: one accumulator is SINGLE-THREADED.  The sweep harness
// gives every replication its own accumulator (the same pattern as the
// per-replication MetricRegistry) and merges them in slot order, so the
// set of phases and their call counts are bit-identical at any --threads
// value; only the measured durations vary run to run -- they are wall
// clock, the one legitimately nondeterministic output of this subsystem.
// Everything DETERMINISTIC about a run lives in counters.hpp instead.
//
// Cost: one steady_clock read + one CLOCK_THREAD_CPUTIME_ID read at each
// end of a scope, against a null check when profiling is off (accumulator
// pointer == nullptr).  Defining ALTROUTE_PROF_ENABLED=0 compiles the
// ALTROUTE_PROF_SCOPE sites out entirely; it defaults to
// ALTROUTE_OBS_ENABLED, so an OBS=0 build drops the profiler along with
// the obs::Probe hooks, while -DALTROUTE_PROF_ENABLED=0 alone isolates
// JUST the profiler's cost -- that is the axis the CI overhead gate
// measures (tools/overhead_gate.py): scope sites must stay off the
// per-event paths, cheap enough to leave compiled in everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef ALTROUTE_OBS_ENABLED
#define ALTROUTE_OBS_ENABLED 1
#endif
#ifndef ALTROUTE_PROF_ENABLED
#define ALTROUTE_PROF_ENABLED ALTROUTE_OBS_ENABLED
#endif

#if ALTROUTE_PROF_ENABLED
/// Opens an RAII phase scope charging `acc_ptr` (may be null = off) under
/// `name`.  The variable name encodes the line so two scopes can share a
/// block.
#define ALTROUTE_PROF_CONCAT2(a, b) a##b
#define ALTROUTE_PROF_CONCAT(a, b) ALTROUTE_PROF_CONCAT2(a, b)
#define ALTROUTE_PROF_SCOPE(acc_ptr, name) \
  ::altroute::obs::prof::ScopedPhase ALTROUTE_PROF_CONCAT(prof_scope_, __LINE__)( \
      (acc_ptr), (name))
#else
#define ALTROUTE_PROF_SCOPE(acc_ptr, name) \
  do {                                     \
  } while (0)
#endif

namespace altroute::obs::prof {

/// One row of the flattened phase tree.
struct PhaseStats {
  std::string path;         ///< "/"-joined nesting, e.g. "sweep/task/engine"
  std::uint64_t calls{0};   ///< scopes closed under this path
  double wall_seconds{0.0}; ///< summed wall time (inclusive of children)
  double cpu_seconds{0.0};  ///< summed thread-CPU time (inclusive)
};

/// Phase table of one replication (or one tool run).  Single-threaded.
class PhaseAccumulator {
 public:
  /// Charges (calls, wall, cpu) to `path` directly -- the merge path and
  /// tests use this; live timing goes through ScopedPhase.
  void add(const std::string& path, std::uint64_t calls, double wall_seconds,
           double cpu_seconds);

  /// Folds `other` into this table.  Deterministic: the resulting table is
  /// sorted by path, so merging per-replication accumulators in slot order
  /// yields the same table at any thread count.
  void merge(const PhaseAccumulator& other);

  /// True when no phase was ever recorded.
  [[nodiscard]] bool empty() const { return phases_.empty(); }

  /// All phases, sorted by path.
  [[nodiscard]] std::vector<PhaseStats> phases() const;

  /// Deterministically ORDERED single-line JSON array (values are wall
  /// clock, so bytes still vary run to run; structure does not).
  [[nodiscard]] std::string to_json() const;

 private:
  friend class ScopedPhase;

  /// Index into phases_ for `path`, creating the row on first use.
  std::size_t row_of(const std::string& path);

  std::vector<PhaseStats> phases_;      ///< insertion order; sorted on read
  std::vector<std::string> stack_;      ///< live scope names, outermost first
  std::string current_path_;            ///< "/"-joined stack_ (cached)
};

/// RAII scope timer.  Null accumulator = disabled (two null checks).
class ScopedPhase {
 public:
  ScopedPhase(PhaseAccumulator* acc, const char* name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator* acc_;
  std::uint64_t wall_start_ns_{0};
  std::uint64_t cpu_start_ns_{0};
};

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
[[nodiscard]] std::uint64_t wall_now_ns();
/// This thread's consumed CPU time in nanoseconds; 0 where unsupported.
[[nodiscard]] std::uint64_t thread_cpu_now_ns();
/// Whole-process consumed CPU time in nanoseconds; 0 where unsupported.
[[nodiscard]] std::uint64_t process_cpu_now_ns();

}  // namespace altroute::obs::prof
