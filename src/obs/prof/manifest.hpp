// Run manifest: one self-describing health record per run.
//
// A RunManifest bundles everything needed to interpret, compare, or
// triage a run after the fact: which build produced it (git sha), which
// configuration it ran (the hex-float fingerprint the checkpoint carries
// reuse), how it was parallelised, where the time went (phase table), what
// the engine actually did (deterministic counters, peaks), and the
// per-task duration table that exposes thread-pool load imbalance.
//
// Two renderings of the same struct:
//  * to_json()       -- the run's archival record (--manifest-out);
//  * to_openmetrics() -- OpenMetrics text exposition, so external scrapers
//    (Prometheus and friends) ingest it without a custom parser.  Counters
//    render with the mandatory _total suffix; peaks and timings as gauges;
//    one "# EOF" terminator as the spec requires.
//
// Determinism: every field except the wall/CPU durations is bit-identical
// across thread counts; the golden-file test renders a manifest with
// pinned durations, so the FORMAT is pinned even though live timings vary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/prof/counters.hpp"
#include "obs/prof/profiler.hpp"

namespace altroute::obs::prof {

/// Wall-clock duration of one sweep task (one load point x seed, all
/// policies), for the load-imbalance table.
struct TaskTiming {
  double load_factor{0.0};
  std::uint64_t seed{0};
  double wall_seconds{0.0};
};

struct RunManifest {
  std::string tool;                ///< binary / entry point name
  std::string git_sha;             ///< see build_git_sha()
  std::string config_fingerprint;  ///< run-configuration fingerprint (hex-float scheme)
  int threads{0};                  ///< worker threads the run used
  double wall_seconds{0.0};        ///< end-to-end wall time
  double cpu_seconds{0.0};         ///< whole-process CPU time
  EngineCounters counters;         ///< deterministic totals across the run
  std::vector<PhaseStats> phases;  ///< flattened phase tree, sorted by path
  std::vector<TaskTiming> tasks;   ///< per-(load point x seed) durations

  /// Multi-line JSON object, keys in a fixed order.
  [[nodiscard]] std::string to_json() const;
  /// OpenMetrics text exposition (ends with "# EOF\n").
  [[nodiscard]] std::string to_openmetrics() const;
};

/// The git commit this binary was built from ("unknown" outside a git
/// checkout) -- injected by CMake as ALTROUTE_GIT_SHA at configure time.
[[nodiscard]] const char* build_git_sha();

/// Renders the per-task duration table as aligned text (one row per task,
/// slowest flagged), for --profile console output.
[[nodiscard]] std::string task_table(const std::vector<TaskTiming>& tasks);

/// Renders the flattened phase tree as aligned text (calls, wall, CPU per
/// path; parents include their children), for --profile console output.
[[nodiscard]] std::string phase_table(const std::vector<PhaseStats>& phases);

}  // namespace altroute::obs::prof
