// Flight recorder: a fixed-size ring buffer of the last N trace records.
//
// When an invariant trips, a checkpoint validation rejects, or the process
// takes a fatal signal, the question is always "what happened JUST
// before?"  -- and by then the full trace is either disabled or megabytes
// deep.  A FlightRecorder is a TraceSink that keeps only the most recent
// `capacity` records in a ring, so every replication can afford one even
// on runs that buffer no trace at all.  Dumps render through
// JsonlTraceSink::format -- the exact bytes a real trace file would have
// held for those records -- so existing trace tooling reads them as-is.
//
// Tee-ing: a recorder can wrap a downstream sink (the run's real trace
// sink); records flow to both, each honoring its own kind mask.  That is
// how the checker attaches a recorder without perturbing the byte-compared
// trace streams.
//
// Crash dumps: recorders registered via CrashDumpScope are written to
// stderr from a best-effort fatal-signal handler (SIGSEGV/SIGABRT/SIGBUS/
// SIGFPE/SIGILL).  The handler allocates (it formats records), which is
// formally outside async-signal-safety -- acceptable for a diagnostic of
// last resort that runs right before the default signal action is
// re-raised.  Registration is thread-safe; the handler itself takes no
// locks and reads a fixed-size slot table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace altroute::obs::prof {

class FlightRecorder final : public TraceSink {
 public:
  /// Ring of the last `capacity` records whose kind is in `ring_mask`.
  /// `downstream` (optional, not owned) receives every record its own mask
  /// wants, unchanged.  capacity must be >= 1.
  explicit FlightRecorder(std::size_t capacity, unsigned ring_mask = kAllTraceKinds,
                          TraceSink* downstream = nullptr);

  void write(const TraceRecord& record) override;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records currently held (min(total_written, capacity)).
  [[nodiscard]] std::size_t size() const;
  /// Records ever offered to the ring (accepted by ring_mask), including
  /// the ones already overwritten.
  [[nodiscard]] std::uint64_t total_written() const { return total_; }

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Renders the retained records as JSONL (JsonlTraceSink::format, one
  /// line per record, oldest first) preceded by one "# flight recorder"
  /// comment line carrying label/capacity/total counts.
  void dump(std::ostream& out, const std::string& label = "") const;
  /// dump() into a string.
  [[nodiscard]] std::string dump_string(const std::string& label = "") const;

 private:
  std::size_t capacity_;
  unsigned ring_mask_;
  TraceSink* downstream_;
  std::vector<TraceRecord> ring_;  ///< ring_[ (total_ - size() + i) % capacity_ ]
  std::uint64_t total_{0};
};

/// Registers `recorder` for the fatal-signal dump while in scope, under
/// `label` (shown in the dump header; keep it short and identifying, e.g.
/// "case 42/cfg heap+direct").  Installs the signal handlers on first use.
/// Scopes nest; destruction unregisters.  Thread-safe.
class CrashDumpScope {
 public:
  CrashDumpScope(const FlightRecorder* recorder, std::string label);
  ~CrashDumpScope();

  CrashDumpScope(const CrashDumpScope&) = delete;
  CrashDumpScope& operator=(const CrashDumpScope&) = delete;

 private:
  int slot_;
};

/// Writes every registered recorder's dump to stderr.  The fatal-signal
/// handler calls this; tests may call it directly.
void dump_registered_recorders();

}  // namespace altroute::obs::prof
