#include "obs/prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace altroute::obs::prof {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

#if defined(__linux__) || defined(__APPLE__)
std::uint64_t clock_ns(clockid_t id) {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
#endif

}  // namespace

std::uint64_t thread_cpu_now_ns() {
#if defined(__linux__) || defined(__APPLE__)
  return clock_ns(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0;
#endif
}

std::uint64_t process_cpu_now_ns() {
#if defined(__linux__) || defined(__APPLE__)
  return clock_ns(CLOCK_PROCESS_CPUTIME_ID);
#else
  return 0;
#endif
}

std::size_t PhaseAccumulator::row_of(const std::string& path) {
  // Linear probe: phase tables are small (tens of rows), and the common
  // case is re-hitting the row the previous iteration used.
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].path == path) return i;
  }
  phases_.push_back(PhaseStats{path, 0, 0.0, 0.0});
  return phases_.size() - 1;
}

void PhaseAccumulator::add(const std::string& path, std::uint64_t calls,
                           double wall_seconds, double cpu_seconds) {
  PhaseStats& row = phases_[row_of(path)];
  row.calls += calls;
  row.wall_seconds += wall_seconds;
  row.cpu_seconds += cpu_seconds;
}

void PhaseAccumulator::merge(const PhaseAccumulator& other) {
  for (const PhaseStats& p : other.phases_) {
    add(p.path, p.calls, p.wall_seconds, p.cpu_seconds);
  }
}

std::vector<PhaseStats> PhaseAccumulator::phases() const {
  std::vector<PhaseStats> out = phases_;
  std::sort(out.begin(), out.end(),
            [](const PhaseStats& a, const PhaseStats& b) { return a.path < b.path; });
  return out;
}

std::string PhaseAccumulator::to_json() const {
  std::string out = "[";
  char buf[128];
  bool first = true;
  for (const PhaseStats& p : phases()) {
    std::snprintf(buf, sizeof(buf), "%s{\"phase\":\"%s\",\"calls\":%llu,", first ? "" : ",",
                  p.path.c_str(), static_cast<unsigned long long>(p.calls));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"wall_seconds\":%.9g,\"cpu_seconds\":%.9g}",
                  p.wall_seconds, p.cpu_seconds);
    out += buf;
    first = false;
  }
  out += "]";
  return out;
}

ScopedPhase::ScopedPhase(PhaseAccumulator* acc, const char* name) : acc_(acc) {
  if (acc_ == nullptr) return;
  acc_->stack_.emplace_back(name);
  if (!acc_->current_path_.empty()) acc_->current_path_ += '/';
  acc_->current_path_ += name;
  wall_start_ns_ = wall_now_ns();
  cpu_start_ns_ = thread_cpu_now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (acc_ == nullptr) return;
  const double wall =
      static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
  const double cpu = static_cast<double>(thread_cpu_now_ns() - cpu_start_ns_) * 1e-9;
  acc_->add(acc_->current_path_, 1, wall, cpu);
  const std::string& name = acc_->stack_.back();
  const std::size_t cut = acc_->current_path_.size() - name.size();
  acc_->current_path_.resize(cut > 0 ? cut - 1 : 0);  // drop "/name" or "name"
  acc_->stack_.pop_back();
}

}  // namespace altroute::obs::prof
