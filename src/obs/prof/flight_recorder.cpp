#include "obs/prof/flight_recorder.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace altroute::obs::prof {

FlightRecorder::FlightRecorder(std::size_t capacity, unsigned ring_mask,
                               TraceSink* downstream)
    : TraceSink(ring_mask | (downstream != nullptr ? downstream->mask() : 0u)),
      capacity_(capacity),
      ring_mask_(ring_mask),
      downstream_(downstream) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be >= 1");
  }
  ring_.reserve(capacity_);
}

void FlightRecorder::write(const TraceRecord& record) {
  if ((ring_mask_ & static_cast<unsigned>(record.kind)) != 0) {
    if (ring_.size() < capacity_) {
      ring_.push_back(record);
    } else {
      ring_[static_cast<std::size_t>(total_ % capacity_)] = record;
    }
    ++total_;
  }
  if (downstream_ != nullptr && downstream_->wants(record.kind)) {
    downstream_->write(record);
  }
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  const std::size_t n = ring_.size();
  // Oldest record sits at total_ % capacity_ once the ring has wrapped.
  const std::size_t start = n < capacity_ ? 0 : static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& out, const std::string& label) const {
  out << "# flight recorder";
  if (!label.empty()) out << " [" << label << "]";
  out << ": " << size() << " of last " << capacity_ << " records retained, " << total_
      << " seen\n";
  for (const TraceRecord& r : snapshot()) {
    out << JsonlTraceSink::format(r) << '\n';
  }
}

std::string FlightRecorder::dump_string(const std::string& label) const {
  std::ostringstream out;
  dump(out, label);
  return out.str();
}

// --- crash-dump registry ----------------------------------------------------

namespace {

constexpr int kMaxSlots = 64;

struct Slot {
  std::atomic<const FlightRecorder*> recorder{nullptr};
  std::string label;  // written under the mutex before recorder is published
};

Slot g_slots[kMaxSlots];
std::mutex g_registry_mutex;
std::atomic<bool> g_handlers_installed{false};

extern "C" void flight_recorder_signal_handler(int sig) {
  // Best-effort: format and write the dumps, then restore the default
  // action and re-raise so the exit status still reflects the signal.
  std::fprintf(stderr, "\n# fatal signal %d -- dumping flight recorders\n", sig);
  dump_registered_recorders();
  std::fflush(stderr);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_handlers_once() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, flight_recorder_signal_handler);
  }
}

}  // namespace

void dump_registered_recorders() {
  for (Slot& slot : g_slots) {
    const FlightRecorder* recorder = slot.recorder.load(std::memory_order_acquire);
    if (recorder == nullptr) continue;
    std::fputs(recorder->dump_string(slot.label).c_str(), stderr);
  }
}

CrashDumpScope::CrashDumpScope(const FlightRecorder* recorder, std::string label)
    : slot_(-1) {
  install_handlers_once();
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (int i = 0; i < kMaxSlots; ++i) {
    if (g_slots[i].recorder.load(std::memory_order_relaxed) == nullptr) {
      g_slots[i].label = std::move(label);
      g_slots[i].recorder.store(recorder, std::memory_order_release);
      slot_ = i;
      return;
    }
  }
  // Table full: silently skip -- losing a crash-dump registration must
  // never fail a healthy run.
}

CrashDumpScope::~CrashDumpScope() {
  if (slot_ < 0) return;
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  g_slots[slot_].recorder.store(nullptr, std::memory_order_release);
  g_slots[slot_].label.clear();
}

}  // namespace altroute::obs::prof
