#include "obs/prof/manifest.hpp"

#include <algorithm>
#include <cstdio>

namespace altroute::obs::prof {

namespace {

/// Minimal JSON/label string escaping (quotes and backslashes; the strings
/// here are shas, fingerprints, and phase paths -- never control-heavy).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const char* build_git_sha() {
#ifdef ALTROUTE_GIT_SHA
  return ALTROUTE_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += " \"tool\": \"" + escaped(tool) + "\",\n";
  out += " \"git_sha\": \"" + escaped(git_sha) + "\",\n";
  out += " \"config_fingerprint\": \"" + escaped(config_fingerprint) + "\",\n";
  out += " \"threads\": " + std::to_string(threads) + ",\n";
  out += " \"wall_seconds\": " + num(wall_seconds) + ",\n";
  out += " \"cpu_seconds\": " + num(cpu_seconds) + ",\n";
  out += " \"counters\": " + counters.to_json() + ",\n";
  out += " \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"phase\": \"" + escaped(p.path) + "\", \"calls\": " + num(p.calls) +
           ", \"wall_seconds\": " + num(p.wall_seconds) +
           ", \"cpu_seconds\": " + num(p.cpu_seconds) + "}";
  }
  out += phases.empty() ? "],\n" : "\n ],\n";
  out += " \"tasks\": [";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskTiming& t = tasks[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"load\": " + num(t.load_factor) + ", \"seed\": " + num(t.seed) +
           ", \"wall_seconds\": " + num(t.wall_seconds) + "}";
  }
  out += tasks.empty() ? "]\n" : "\n ]\n";
  out += "}\n";
  return out;
}

std::string RunManifest::to_openmetrics() const {
  std::string out;
  const std::string run_labels = "tool=\"" + escaped(tool) + "\"";
  out += "# TYPE altroute_run info\n";
  out += "altroute_run_info{" + run_labels + ",git_sha=\"" + escaped(git_sha) +
         "\",config_fingerprint=\"" + escaped(config_fingerprint) + "\"} 1\n";
  out += "# TYPE altroute_threads gauge\n";
  out += "altroute_threads{" + run_labels + "} " + std::to_string(threads) + "\n";
  out += "# TYPE altroute_wall_seconds gauge\n";
  out += "altroute_wall_seconds{" + run_labels + "} " + num(wall_seconds) + "\n";
  out += "# TYPE altroute_cpu_seconds gauge\n";
  out += "altroute_cpu_seconds{" + run_labels + "} " + num(cpu_seconds) + "\n";

  std::size_t field_count = 0;
  const CounterField* fields = counter_fields(&field_count);
  for (std::size_t i = 0; i < field_count; ++i) {
    const CounterField& f = fields[i];
    const std::string name = std::string("altroute_") + f.name;
    if (f.peak) {
      out += "# TYPE " + name + " gauge\n";
      out += name + "{" + run_labels + "} " + num(counters.*f.member) + "\n";
    } else {
      out += "# TYPE " + name + " counter\n";
      out += name + "_total{" + run_labels + "} " + num(counters.*f.member) + "\n";
    }
  }

  if (!phases.empty()) {
    out += "# TYPE altroute_phase_calls counter\n";
    for (const PhaseStats& p : phases) {
      out += "altroute_phase_calls_total{" + run_labels + ",phase=\"" + escaped(p.path) +
             "\"} " + num(p.calls) + "\n";
    }
    out += "# TYPE altroute_phase_wall_seconds gauge\n";
    for (const PhaseStats& p : phases) {
      out += "altroute_phase_wall_seconds{" + run_labels + ",phase=\"" + escaped(p.path) +
             "\"} " + num(p.wall_seconds) + "\n";
    }
    out += "# TYPE altroute_phase_cpu_seconds gauge\n";
    for (const PhaseStats& p : phases) {
      out += "altroute_phase_cpu_seconds{" + run_labels + ",phase=\"" + escaped(p.path) +
             "\"} " + num(p.cpu_seconds) + "\n";
    }
  }

  if (!tasks.empty()) {
    out += "# TYPE altroute_task_wall_seconds gauge\n";
    for (const TaskTiming& t : tasks) {
      out += "altroute_task_wall_seconds{" + run_labels + ",load=\"" + num(t.load_factor) +
             "\",seed=\"" + num(t.seed) + "\"} " + num(t.wall_seconds) + "\n";
    }
  }

  out += "# EOF\n";
  return out;
}

std::string phase_table(const std::vector<PhaseStats>& phases) {
  std::string out = "phase                            calls    wall_ms     cpu_ms\n";
  char buf[160];
  for (const PhaseStats& p : phases) {
    std::snprintf(buf, sizeof(buf), "%-30s %7llu %10.3f %10.3f\n", p.path.c_str(),
                  static_cast<unsigned long long>(p.calls), p.wall_seconds * 1e3,
                  p.cpu_seconds * 1e3);
    out += buf;
  }
  return out;
}

std::string task_table(const std::vector<TaskTiming>& tasks) {
  std::string out = "load    seed    wall_ms\n";
  if (tasks.empty()) return out;
  double slowest = 0.0;
  for (const TaskTiming& t : tasks) slowest = std::max(slowest, t.wall_seconds);
  char buf[96];
  for (const TaskTiming& t : tasks) {
    std::snprintf(buf, sizeof(buf), "%-7.3g %-7llu %9.3f%s\n", t.load_factor,
                  static_cast<unsigned long long>(t.seed), t.wall_seconds * 1e3,
                  (t.wall_seconds == slowest && tasks.size() > 1) ? "  <- slowest" : "");
    out += buf;
  }
  return out;
}

}  // namespace altroute::obs::prof
