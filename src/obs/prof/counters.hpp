// Deterministic engine counters: what the run DID, never how long it took.
//
// One EngineCounters struct summarizes a simulation run's operational
// facts: events through the future event list, calendar rebucketings,
// arena slot recycling, Erlang-memo cache behavior, route rebuilds,
// Eq.-15 re-solves, preemptions and kills, and the queue/arena high-water
// marks.  Every field is derived from the deterministic replay, so the
// values are bit-identical at any --threads and independent of wall-clock
// noise -- the counter-determinism ctests enforce it.
//
// Two determinism classes (tests/test_prof_counters.cpp pins both):
//
//  * ENGINE-INDEPENDENT -- identical across ALL of
//    {heap,calendar} x {memo,direct} and every thread count, because the
//    admission/departure/event stream is identical by construction:
//    events_scheduled, events_popped, peak_queue_depth, arena_allocations,
//    arena_reuses, peak_arena_occupancy, calls_killed, preemptions,
//    route_rebuilds, protection_resolves.
//
//  * ENGINE-SPECIFIC -- identical across thread counts and across the
//    ORTHOGONAL configuration axis, but legitimately different along their
//    own axis: calendar_resizes (0 under the heap engine; same value for
//    memo and direct), memo_hits/memo_misses (0 under direct re-solves;
//    same value for heap and calendar).
//
// The struct is always-on (not gated by ALTROUTE_OBS_ENABLED): the
// underlying increments are plain integer adds in already-cold paths plus
// the container-internal tallies of sim/op_stats.hpp, so compiling them
// out would buy nothing while making the deterministic record build-
// dependent.  Only the TIMING side of the profiler compiles out.
#pragma once

#include <cstdint>
#include <string>

namespace altroute::obs::prof {

struct EngineCounters {
  // Engine-independent.
  std::uint64_t events_scheduled{0};     ///< departure-queue schedule() calls
  std::uint64_t events_popped{0};        ///< departure-queue pop() calls
  std::uint64_t peak_queue_depth{0};     ///< largest pending-departure population
  std::uint64_t arena_allocations{0};    ///< in-flight slots created fresh
  std::uint64_t arena_reuses{0};         ///< in-flight slots recycled from the free-list
  std::uint64_t peak_arena_occupancy{0}; ///< largest in-flight call population
  std::uint64_t calls_killed{0};         ///< in-flight calls killed by link failures
  std::uint64_t preemptions{0};          ///< in-flight calls preempted by capacity shrinks
  std::uint64_t route_rebuilds{0};       ///< route-table rebuilds after topology changes
  std::uint64_t protection_resolves{0};  ///< Eq.-15 re-solves (scenario events + auto)

  // Engine-specific (see the header comment for the exact identity class).
  std::uint64_t calendar_resizes{0};  ///< calendar-queue rebucketings (heap: 0)
  std::uint64_t memo_hits{0};         ///< re-solved links served from the Erlang memo
  std::uint64_t memo_misses{0};       ///< re-solved links whose (Lambda, C) key changed

  // Engine-independent, control plane (all 0 when --control is off).
  std::uint64_t control_epochs{0};     ///< control epochs fired on the event timeline
  std::uint64_t control_retargets{0};  ///< links whose protection level r changed
  std::uint64_t control_holds{0};      ///< links held by the deadband at an epoch
  std::uint64_t estimator_updates{0};  ///< call observations fed to the load estimator

  /// Accumulates `other` into this: tallies add, peaks take the max.
  void merge(const EngineCounters& other);

  [[nodiscard]] bool operator==(const EngineCounters& other) const;
  [[nodiscard]] bool operator!=(const EngineCounters& other) const {
    return !(*this == other);
  }

  /// Deterministic single-line JSON object, fields in declaration order.
  [[nodiscard]] std::string to_json() const;
};

/// One entry of the static field table below.
struct CounterField {
  const char* name;                        ///< field name as rendered in JSON
  std::uint64_t EngineCounters::* member;  ///< pointer-to-member accessor
  bool peak;                               ///< true: merge by max, not by sum
};

/// Every EngineCounters field, in declaration order -- the single source
/// the JSON renderer, the OpenMetrics renderer, and merge() iterate, so a
/// new counter added here flows through every output format.
[[nodiscard]] const CounterField* counter_fields(std::size_t* count);

}  // namespace altroute::obs::prof
