#include "study/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace altroute::study {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string fmt_sci(double value) {
  if (value == 0.0) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2e", value);
  return buffer;
}

TextTable sweep_table(const SweepResult& result, bool scientific) {
  std::vector<std::string> headers{"load_factor", "offered_E"};
  for (const PolicyCurve& curve : result.curves) {
    headers.push_back(curve.name);
    headers.push_back(curve.name + "_ci95");
  }
  if (!result.erlang_bound.empty()) headers.emplace_back("erlang_bound");
  TextTable table(std::move(headers));
  for (std::size_t i = 0; i < result.load_factors.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(fmt(result.load_factors[i], 3));
    row.push_back(fmt(result.offered_erlangs[i], 1));
    for (const PolicyCurve& curve : result.curves) {
      row.push_back(scientific ? fmt_sci(curve.mean_blocking[i])
                               : fmt(curve.mean_blocking[i], 4));
      row.push_back(scientific ? fmt_sci(curve.ci95[i]) : fmt(curve.ci95[i], 4));
    }
    if (!result.erlang_bound.empty()) {
      row.push_back(scientific ? fmt_sci(result.erlang_bound[i])
                               : fmt(result.erlang_bound[i], 4));
    }
    table.add_row(std::move(row));
  }
  return table;
}

TextTable scenario_table(const ScenarioSweepResult& result) {
  std::vector<std::string> headers{"t"};
  for (const ScenarioCurve& curve : result.curves) headers.push_back(curve.name);
  headers.emplace_back("events");
  TextTable table(std::move(headers));
  const std::size_t bins = result.bin_start.size();
  for (std::size_t b = 0; b < bins; ++b) {
    std::vector<std::string> row;
    row.push_back(fmt(result.bin_start[b], 1));
    for (const ScenarioCurve& curve : result.curves) {
      row.push_back(fmt(curve.bin_blocking[b], 4));
    }
    // Mark the events whose time falls inside [bin_start, next bin_start),
    // collapsing consecutive repeats ("traffic_scale x6").
    const double lo = result.bin_start[b];
    const double hi = b + 1 < bins ? result.bin_start[b + 1]
                                   : std::numeric_limits<double>::infinity();
    std::string marks;
    std::string_view pending;
    int repeats = 0;
    const auto flush = [&] {
      if (repeats == 0) return;
      if (!marks.empty()) marks += ", ";
      marks += std::string(pending);
      if (repeats > 1) marks += " x" + std::to_string(repeats);
      repeats = 0;
    };
    for (const scenario::AppliedEvent& event : result.applied) {
      if (event.time < lo || event.time >= hi) continue;
      const std::string_view name = scenario::event_kind_name(event.kind);
      if (repeats > 0 && name != pending) flush();
      pending = name;
      ++repeats;
    }
    flush();
    row.push_back(std::move(marks));
    table.add_row(std::move(row));
  }
  return table;
}

TextTable metrics_table(const std::vector<obs::MetricRegistry>& metrics,
                        const std::vector<std::string>& policy_names) {
  if (metrics.empty()) throw std::invalid_argument("metrics_table: no registries");
  if (metrics.size() != policy_names.size()) {
    throw std::invalid_argument("metrics_table: registry/name count mismatch");
  }
  std::vector<std::string> headers{"metric"};
  for (const std::string& name : policy_names) headers.push_back(name);
  TextTable table(std::move(headers));
  const obs::MetricRegistry& schema = metrics.front();
  for (const std::string_view name : schema.counter_names()) {
    std::vector<std::string> row{std::string(name)};
    for (const obs::MetricRegistry& reg : metrics) {
      row.push_back(std::to_string(reg.counter_value(name)));
    }
    table.add_row(std::move(row));
  }
  for (const std::string_view name : schema.histogram_names()) {
    std::vector<std::string> row{std::string(name) + " (mean)"};
    for (const obs::MetricRegistry& reg : metrics) {
      long long count = 0;
      for (const long long c : reg.histogram_counts(name)) count += c;
      row.push_back(count > 0 ? fmt(reg.histogram_sum(name) / static_cast<double>(count), 3)
                              : "-");
    }
    table.add_row(std::move(row));
  }
  for (const std::string_view name : schema.link_counter_names()) {
    std::vector<std::string> row{std::string(name) + " (total)"};
    for (const obs::MetricRegistry& reg : metrics) {
      row.push_back(std::to_string(reg.link_counter_total(name)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

TextTable metrics_table(const SweepResult& result) {
  std::vector<std::string> names;
  for (const PolicyCurve& curve : result.curves) names.push_back(curve.name);
  return metrics_table(result.metrics, names);
}

TextTable metrics_table(const ScenarioSweepResult& result) {
  std::vector<std::string> names;
  for (const ScenarioCurve& curve : result.curves) names.push_back(curve.name);
  return metrics_table(result.metrics, names);
}

std::string metrics_json(const std::vector<obs::MetricRegistry>& metrics,
                         const std::vector<std::string>& policy_names) {
  if (metrics.size() != policy_names.size()) {
    throw std::invalid_argument("metrics_json: registry/name count mismatch");
  }
  std::string out = "{";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += policy_names[i];
    out += "\":";
    out += metrics[i].to_json();
  }
  out += "}\n";
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace altroute::study
