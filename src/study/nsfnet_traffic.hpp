// Reconstruction of the paper's NSFNet nominal traffic matrix.
//
// The paper prints a 12x12 nominal matrix T derived from Internet traffic
// estimates; that matrix did not survive in the available text of the paper
// (see DESIGN.md, Substitutions).  Table 1, however, prints the primary
// demand Lambda^k that T induces on every directed link under min-hop
// primary routing (Eq. 1).  Since the state-protection levels and the
// blocking dynamics of the evaluation depend on T only through those link
// loads, we reconstruct a matrix that reproduces them:
//
//     minimize  || A t - Lambda ||^2   subject to  t >= 0,
//
// where t stacks the ordered-pair demands and A is the 30 x 132 incidence
// matrix of our (deterministic) min-hop primaries.  The system is
// underdetermined, so a non-negative least-squares fit by projected
// gradient descent suffices; the residual measures how faithfully Table 1
// is reproduced (it is small but non-zero because the printed loads are
// rounded to integers).
#pragma once

#include "netgraph/traffic_matrix.hpp"

namespace altroute::study {

/// Goodness-of-fit of the reconstruction against Table 1's printed loads.
struct ReconstructionQuality {
  double max_abs_residual{0.0};  ///< worst per-link |Lambda_fit - Lambda_table|
  double rms_residual{0.0};      ///< RMS over the 30 directed links
  int iterations{0};             ///< projected-gradient iterations used
};

/// The reconstructed nominal matrix (computed once, then cached).
[[nodiscard]] const net::TrafficMatrix& nsfnet_nominal_traffic();

/// Residual diagnostics for the cached reconstruction.
[[nodiscard]] const ReconstructionQuality& nsfnet_reconstruction_quality();

}  // namespace altroute::study
