// One-stop --profile / --manifest-out / --flight-recorder / --progress
// wiring for the sweep binaries (examples, figure benches, tools).
//
// Every tool that runs a sweep repeats the same four steps: hook the prof
// options into the sweep, tee a flight recorder in front of the trace
// sink, assemble the RunManifest afterwards, and emit tables/files
// according to the flags.  ProfCapture bundles them so a binary adds run
// health in three lines:
//
//   study::ProfCapture prof("nsfnet_study");
//   prof.attach(cli, sweep.obs, sweep.prof);        // before the sweep
//   ...run the sweep...
//   prof.emit(cli, study::sweep_fingerprint(...), resolved_threads,
//             std::cout);                           // after the sweep
//
// attach is a no-op when none of the prof flags was given, so adding this
// to a binary changes nothing for existing invocations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/prof/counters.hpp"
#include "obs/prof/flight_recorder.hpp"
#include "obs/prof/manifest.hpp"
#include "obs/prof/profiler.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"

namespace altroute::study {

class ProfCapture {
 public:
  /// `tool` names the binary in the manifest and the crash-dump label.
  /// Wall time is measured from construction, so construct before the
  /// sweep's setup work.
  explicit ProfCapture(std::string tool);

  /// Wires the CLI's prof flags into a sweep's options: counters, phase
  /// accumulator, and task-timing vector when a manifest is wanted;
  /// progress unconditionally from --progress; and with --flight-recorder
  /// a last-N ring teed in FRONT of any existing obs.trace sink (the
  /// downstream sink's bytes never change) and registered for fatal-signal
  /// dumps.  No-op when no prof flag was given.
  void attach(const CliOptions& cli, SweepObsOptions& obs, SweepProfOptions& prof);

  /// Assembles the manifest from everything collected so far.  `threads`
  /// is the RESOLVED worker count (0 already expanded); the fingerprint is
  /// the sweep's configuration fingerprint (study::sweep_fingerprint /
  /// study::scenario_sweep_fingerprint).
  [[nodiscard]] obs::prof::RunManifest manifest(const std::string& fingerprint,
                                                int threads) const;

  /// Emits according to the flags: --profile prints the phase, task, and
  /// counter tables to `out`; --manifest-out writes the manifest file
  /// (JSON, or OpenMetrics text when the path ends in .om / .prom).
  /// No-op otherwise.
  void emit(const CliOptions& cli, const std::string& fingerprint, int threads,
            std::ostream& out) const;

  /// The counters the sweep accumulated (valid after the sweep ran).
  [[nodiscard]] const obs::prof::EngineCounters& counters() const { return counters_; }

 private:
  std::string tool_;
  std::uint64_t wall_start_ns_;
  std::uint64_t cpu_start_ns_;
  obs::prof::EngineCounters counters_;
  obs::prof::PhaseAccumulator phases_;
  std::vector<obs::prof::TaskTiming> tasks_;
  std::unique_ptr<obs::prof::FlightRecorder> recorder_;
  std::unique_ptr<obs::prof::CrashDumpScope> crash_scope_;
};

/// True when `path` asks for the OpenMetrics text rendering (.om / .prom).
[[nodiscard]] bool manifest_path_is_openmetrics(const std::string& path);

}  // namespace altroute::study
