#include "study/analysis.hpp"

#include <ostream>

#include "routing/route_table.hpp"
#include "study/report.hpp"

namespace altroute::study {

obs::analysis::AnalysisConfig analysis_config_for(
    const net::Graph& graph, const net::TrafficMatrix& nominal, int max_alt_hops,
    const std::vector<PolicyKind>& policies, const std::vector<double>& load_factors,
    int replications_per_point, double warmup, double measure, int time_bins) {
  obs::analysis::AnalysisConfig config;
  config.node_count = graph.node_count();
  config.link_count = static_cast<std::size_t>(graph.link_count());
  const routing::RouteTable routes = routing::build_min_hop_routes(graph, max_alt_hops);
  config.lambda = routing::primary_link_loads(graph, routes, nominal);
  config.capacity.reserve(config.link_count);
  config.link_names.reserve(config.link_count);
  for (int k = 0; k < graph.link_count(); ++k) {
    const net::Link& link = graph.link(net::LinkId(k));
    config.capacity.push_back(link.capacity);
    config.link_names.push_back(std::to_string(link.src.index()) + "->" +
                                std::to_string(link.dst.index()));
  }
  config.max_alt_hops = max_alt_hops;
  for (const PolicyKind kind : policies) config.policy_names.push_back(policy_name(kind));
  config.load_factors = load_factors;
  config.replications_per_point = replications_per_point;
  config.warmup = warmup;
  config.measure = measure;
  config.time_bins = time_bins;
  return config;
}

obs::analysis::AnalysisReport render_analysis(std::string_view jsonl,
                                              const obs::analysis::AnalysisConfig& config,
                                              std::ostream& out,
                                              const std::optional<std::string>& json_path) {
  obs::analysis::AnalysisReport report = obs::analysis::analyze_trace(jsonl, config);
  out << obs::analysis::analysis_table(report);
  if (json_path) {
    write_file(*json_path, obs::analysis::analysis_json(report));
    out << "analysis report written to " << *json_path << '\n';
  }
  return report;
}

}  // namespace altroute::study
